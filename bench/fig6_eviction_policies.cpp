/**
 * @file
 * Figure 6: metadata cache misses (MPKI) for pseudo-LRU, EVA, Belady's
 * MIN (stale future knowledge from a true-LRU profiling run) and
 * iterMIN (MIN iterated to a fixed point), on a 64KB metadata cache.
 *
 * Extension columns: true LRU, SRRIP, and per-type-classified EVA.
 *
 * The paper's result: no policy wins everywhere, and MIN / iterMIN are
 * frequently *worse* than pseudo-LRU because the access stream depends
 * on cache contents and miss costs are non-uniform (§V).
 */
#include "common.hpp"

#include "cache/policy_belady.hpp"
#include "offline/itermin.hpp"

using namespace maps;
using namespace maps::bench;

namespace {

struct PolicyRun
{
    std::uint64_t misses = 0;
    std::uint64_t mdMemAccesses = 0;
    InstCount instructions = 1;

    double mpki() const
    {
        return 1000.0 * static_cast<double>(misses) /
               static_cast<double>(instructions);
    }
    /** Memory accesses are the cost-weighted view: a counter miss can
     * trigger a whole tree traversal (§V's non-uniform miss costs). */
    double trafficMpki() const
    {
        return 1000.0 * static_cast<double>(mdMemAccesses) /
               static_cast<double>(instructions);
    }
};

PolicyRun
runPolicy(const SimConfig &base, std::unique_ptr<ReplacementPolicy> policy,
          std::vector<Addr> *trace_out, CellOutput *metrics_out = nullptr,
          const std::string &metrics_label = "")
{
    SimConfig cfg = base;
    SecureMemorySim sim(cfg, std::move(policy));
    if (trace_out) {
        sim.setMetadataTap(
            [trace_out](const MetadataAccess &a) {
                trace_out->push_back(a.addr);
            },
            /*include_warmup=*/true);
    }
    const auto report = sim.run();
    if (metrics_out)
        addMetricsRows(*metrics_out, metrics_label, report);
    return {report.mdCache.totalMisses(),
            report.controller.metadataMemAccesses(),
            report.instructions};
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"fig6_eviction_policies",
                    "Figure 6: eviction policies on a 64KB metadata "
                    "cache",
                    "Figure 6 (§V-A/B, Eviction Policies / Optimal "
                    "Eviction)"},
                   opts);

    const std::vector<std::string> benchmarks{
        "canneal", "cactusADM", "fft",  "leslie3d",
        "libquantum", "mcf",   "barnes"};
    const char *kCountSection =
        "metadata cache miss MPKI (count view):";
    const char *kTrafficSection =
        "metadata *memory accesses* per kilo-instruction "
        "(cost-weighted view;\na counter miss can trigger a whole tree "
        "traversal):";

    // One cell per benchmark: the online policies are independent runs,
    // but MIN/iterMIN consume the profiling trace sequentially, so the
    // whole policy set stays inside the cell.
    std::vector<Cell> cells;
    for (const auto &benchmark : benchmarks) {
        cells.push_back({benchmark, 0, [=](const Cell &cell) {
            auto base = defaultConfig(benchmark, opts, 1'000'000,
                                      300'000);
            base.secure.cache.sizeBytes = 64_KiB; // paper's Fig. 6 point

            // Registry rows per policy run, appended after the figure
            // rows so consumers can keep using rows.front().
            CellOutput metrics;
            const auto plru =
                runPolicy(base, makeReplacementPolicy("plru"), nullptr,
                          &metrics, cell.id + "/plru");
            const auto eva =
                runPolicy(base, makeReplacementPolicy("eva"), nullptr,
                          &metrics, cell.id + "/eva");
            const auto lru =
                runPolicy(base, makeReplacementPolicy("lru"), nullptr,
                          &metrics, cell.id + "/lru");
            const auto srrip =
                runPolicy(base, makeReplacementPolicy("srrip"), nullptr,
                          &metrics, cell.id + "/srrip");
            const auto eva_typed =
                runPolicy(base, makeReplacementPolicy("eva-typed"),
                          nullptr, &metrics, cell.id + "/eva-typed");

            // MIN and iterMIN via the fixed-point driver: iteration 0
            // is the true-LRU profiling run, iteration 1 is the paper's
            // MIN.
            std::vector<PolicyRun> iterations;
            IterMinDriver driver;
            const auto simulate =
                [&](std::unique_ptr<ReplacementPolicy> policy,
                    std::vector<Addr> &trace_out) -> std::uint64_t {
                const auto run = runPolicy(
                    base, std::move(policy), &trace_out, &metrics,
                    cell.id + "/min.iter" +
                        std::to_string(iterations.size()));
                iterations.push_back(run);
                return run.misses;
            };
            const auto iter = driver.run(simulate, "lru", 3);
            const PolicyRun min_run =
                iterations.size() > 1 ? iterations[1] : PolicyRun{};
            const PolicyRun itermin_run = iterations.back();
            const double divergence =
                iter.divergencesPerIteration.size() > 1
                    ? static_cast<double>(
                          iter.divergencesPerIteration[1])
                    : 0.0;

            Row counts;
            counts.add("benchmark", benchmark)
                .add("pseudo-LRU", plru.mpki(), 1)
                .add("EVA", eva.mpki(), 1)
                .add("MIN", min_run.mpki(), 1)
                .add("iterMIN", itermin_run.mpki(), 1)
                .add("trueLRU*", lru.mpki(), 1)
                .add("SRRIP*", srrip.mpki(), 1)
                .add("EVA-typed*", eva_typed.mpki(), 1)
                .add("MIN divergence", divergence, 0);
            Row traffic;
            traffic.add("benchmark", benchmark)
                .add("pseudo-LRU", plru.trafficMpki(), 1)
                .add("EVA", eva.trafficMpki(), 1)
                .add("MIN", min_run.trafficMpki(), 1)
                .add("iterMIN", itermin_run.trafficMpki(), 1)
                .add("trueLRU*", lru.trafficMpki(), 1)
                .add("SRRIP*", srrip.trafficMpki(), 1)
                .add("EVA-typed*", eva_typed.trafficMpki(), 1);

            CellOutput out;
            out.add(kCountSection, std::move(counts));
            out.add(kTrafficSection, std::move(traffic));
            for (auto &r : metrics.rows)
                out.rows.push_back(std::move(r));
            return out;
        }});
    }
    exp.runAndEmit(cells);

    exp.note(
        "(*) extension columns beyond the paper's four policies.\n"
        "expected shape (paper): no single winner; MIN and iterMIN do\n"
        "not beat pseudo-LRU consistently (stale future knowledge +\n"
        "uniform-cost assumption: MIN minimizes miss *count* while the\n"
        "cost-weighted view shows the expensive counter misses it\n"
        "trades for cheap hash hits); EVA suffers from bimodal reuse.\n"
        "'MIN divergence' counts live accesses that differed from the\n"
        "profiling trace MIN's oracle was built from.");
    return exp.finish();
}
