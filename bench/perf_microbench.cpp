/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: cache
 * accesses per policy, controller request handling, DRAM model, reuse
 * analysis, and workload generation. These guard the simulator's own
 * performance, not the paper's results.
 */
#include <benchmark/benchmark.h>

#include "analysis/reuse.hpp"
#include "cache/cache.hpp"
#include "hierarchy/hierarchy.hpp"
#include "mem/dram.hpp"
#include "mem/fixed_latency.hpp"
#include "metrics/metrics.hpp"
#include "secmem/controller.hpp"
#include "util/rng.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace maps;

void
BM_CacheAccess(benchmark::State &state,
               const std::string &policy)
{
    CacheGeometry geom;
    geom.sizeBytes = 64_KiB;
    geom.assoc = 8;
    SetAssociativeCache cache(geom, makeReplacementPolicy(policy));
    Rng rng(1);
    for (auto _ : state) {
        const Addr addr = rng.nextBounded(4096) * kBlockSize;
        benchmark::DoNotOptimize(cache.access(addr, false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_CacheAccess, lru, std::string("lru"));
BENCHMARK_CAPTURE(BM_CacheAccess, plru, std::string("plru"));
BENCHMARK_CAPTURE(BM_CacheAccess, eva, std::string("eva"));
BENCHMARK_CAPTURE(BM_CacheAccess, srrip, std::string("srrip"));

void
BM_DramAccess(benchmark::State &state)
{
    DramModel dram;
    Rng rng(2);
    Cycles now = 0;
    for (auto _ : state) {
        const Addr addr = rng.nextBounded(1 << 22) * kBlockSize;
        benchmark::DoNotOptimize(dram.access(addr, false, now));
        now += 10;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramAccess);

void
BM_ControllerRead(benchmark::State &state)
{
    SecureMemoryConfig cfg;
    cfg.layout.protectedBytes = 256_MiB;
    FixedLatencyMemory mem(150);
    SecureMemoryController ctrl(cfg, mem);
    Rng rng(3);
    for (auto _ : state) {
        MemoryRequest req;
        req.addr = rng.nextBounded(256_MiB / kBlockSize) * kBlockSize;
        req.kind = rng.nextBool(0.2) ? RequestKind::Writeback
                                     : RequestKind::Read;
        benchmark::DoNotOptimize(ctrl.handleRequest(req));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControllerRead);

void
BM_ReuseAnalyzer(benchmark::State &state)
{
    ReuseDistanceAnalyzer analyzer;
    Rng rng(4);
    for (auto _ : state) {
        analyzer.observe(rng.nextBounded(1 << 16) * kBlockSize,
                         MetadataType::Counter, AccessType::Read);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReuseAnalyzer);

void
BM_WorkloadGeneration(benchmark::State &state, const std::string &bench)
{
    auto gen = makeBenchmark(bench, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen->next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_WorkloadGeneration, canneal,
                  std::string("canneal"));
BENCHMARK_CAPTURE(BM_WorkloadGeneration, libquantum,
                  std::string("libquantum"));
BENCHMARK_CAPTURE(BM_WorkloadGeneration, leslie3d,
                  std::string("leslie3d"));

void
BM_HierarchyAccess(benchmark::State &state)
{
    CacheHierarchy hierarchy;
    auto gen = makeBenchmark("fft", 1);
    for (auto _ : state)
        hierarchy.access(gen->next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyAccess);

// ---------------------------------------------------------------------------
// Registry-overhead pairs. Each *Registered bench is its plain
// counterpart with every counter attached to a metrics::Registry and the
// measure phase open — the claimed zero-overhead configuration. The CI
// guard (scripts/perf_guard.sh) compares each pair within one run and
// fails on >3% overhead; pairing makes the check machine-independent.
// ---------------------------------------------------------------------------

void
BM_HierarchyAccessRegistered(benchmark::State &state)
{
    CacheHierarchy hierarchy;
    metrics::Registry registry;
    hierarchy.attachMetrics(registry);
    registry.beginPhase(metrics::Phase::Measure);
    auto gen = makeBenchmark("fft", 1);
    for (auto _ : state)
        hierarchy.access(gen->next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyAccessRegistered);

void
BM_ControllerReadRegistered(benchmark::State &state)
{
    SecureMemoryConfig cfg;
    cfg.layout.protectedBytes = 256_MiB;
    FixedLatencyMemory mem(150);
    SecureMemoryController ctrl(cfg, mem);
    metrics::Registry registry;
    ctrl.attachMetrics(registry);
    registry.attach(mem.name(), mem.statsMut());
    registry.beginPhase(metrics::Phase::Measure);
    Rng rng(3);
    for (auto _ : state) {
        MemoryRequest req;
        req.addr = rng.nextBounded(256_MiB / kBlockSize) * kBlockSize;
        req.kind = rng.nextBool(0.2) ? RequestKind::Writeback
                                     : RequestKind::Read;
        benchmark::DoNotOptimize(ctrl.handleRequest(req));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControllerReadRegistered);

} // namespace

BENCHMARK_MAIN();
