/**
 * @file
 * Ablation (§III): speculation on/off. The paper states its Figure 2
 * trends hold with and without speculation; this harness quantifies
 * the delay gap and checks the sizing conclusion is unchanged.
 */
#include "common.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"abl_speculation",
                    "Ablation: speculative use of unverified data",
                    "§III (Simulation Methodologies) + PoisonIvy [12]"},
                   opts);

    const char *trend_section =
        "Figure-2 trend without speculation (1MB+16KB vs "
        "512KB+512KB):";

    std::vector<Cell> cells;
    for (const std::string bench :
         {"canneal", "libquantum", "fft", "mcf", "leslie3d"}) {
        cells.push_back({bench, 0, [=](const Cell &cell) {
            auto cfg = defaultConfig(bench, opts, 500'000, 150'000);
            cfg.secure.speculation = true;
            const auto spec = runBenchmark(cfg);
            cfg.secure.speculation = false;
            const auto nospec = runBenchmark(cfg);
            Row row;
            row.add("benchmark", bench)
                .add("cycles (spec)", spec.cycles)
                .add("cycles (no spec)", nospec.cycles)
                .add("slowdown",
                     static_cast<double>(nospec.cycles) /
                         static_cast<double>(spec.cycles),
                     2)
                .add("avg read lat (spec)",
                     spec.controller.avgReadLatency(), 0)
                .add("avg read lat (no spec)",
                     nospec.controller.avgReadLatency(), 0)
                .add("ED^2 ratio", nospec.ed2 / spec.ed2, 2);
            CellOutput out;
            out.add(std::move(row));
            addMetricsRows(out, cell.id + "/spec", spec);
            addMetricsRows(out, cell.id + "/nospec", nospec);
            return out;
        }});
    }
    // Trend check: does the Figure-2 conclusion (bigger LLC beats
    // bigger metadata cache for the average; reversed for canneal)
    // survive without speculation?
    for (const std::string bench : {"libquantum", "canneal"}) {
        cells.push_back({"trend/" + bench, 0, [=](const Cell &cell) {
            auto big_llc = defaultConfig(bench, opts, 400'000, 150'000);
            big_llc.secure.speculation = false;
            big_llc.hierarchy.llcBytes = 1_MiB;
            big_llc.secure.cache.sizeBytes = 16_KiB;
            const auto a = runBenchmark(big_llc);

            auto big_md = big_llc;
            big_md.hierarchy.llcBytes = 512_KiB;
            big_md.secure.cache.sizeBytes = 512_KiB;
            const auto b = runBenchmark(big_md);
            Row row;
            row.add("benchmark", bench)
                .add("big-LLC ED^2", a.ed2, 6)
                .add("big-md ED^2", b.ed2, 6)
                .add("winner", a.ed2 < b.ed2 ? "big LLC"
                                             : "big md cache");
            CellOutput out;
            out.add(trend_section, std::move(row));
            addMetricsRows(out, cell.id + "/big-llc", a);
            addMetricsRows(out, cell.id + "/big-md", b);
            return out;
        }});
    }
    exp.runAndEmit(cells);

    exp.note(
        "expected shape (paper): verification latency hidden when\n"
        "speculating; the general sizing trends are the same either\n"
        "way, with canneal still preferring metadata capacity.");
    return exp.finish();
}
