/**
 * @file
 * Ablation (§III): speculation on/off. The paper states its Figure 2
 * trends hold with and without speculation; this harness quantifies
 * the delay gap and checks the sizing conclusion is unchanged.
 */
#include "common.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    banner("Ablation: speculative use of unverified data",
           "§III (Simulation Methodologies) + PoisonIvy [12]", opts);

    TextTable table({"benchmark", "cycles (spec)", "cycles (no spec)",
                     "slowdown", "avg read lat (spec)",
                     "avg read lat (no spec)", "ED^2 ratio"});
    for (const char *bench :
         {"canneal", "libquantum", "fft", "mcf", "leslie3d"}) {
        auto cfg = defaultConfig(bench, opts, 500'000, 150'000);
        cfg.secure.speculation = true;
        const auto spec = runBenchmark(cfg);
        cfg.secure.speculation = false;
        const auto nospec = runBenchmark(cfg);
        table.addRow(
            {bench, TextTable::fmt(spec.cycles),
             TextTable::fmt(nospec.cycles),
             TextTable::fmt(static_cast<double>(nospec.cycles) /
                                static_cast<double>(spec.cycles),
                            2),
             TextTable::fmt(spec.controller.avgReadLatency(), 0),
             TextTable::fmt(nospec.controller.avgReadLatency(), 0),
             TextTable::fmt(nospec.ed2 / spec.ed2, 2)});
    }
    table.print(std::cout);

    // Trend check: does the Figure-2 conclusion (bigger LLC beats
    // bigger metadata cache for the average; reversed for canneal)
    // survive without speculation?
    std::printf("\nFigure-2 trend without speculation (1MB+16KB vs "
                "512KB+512KB):\n");
    TextTable trend({"benchmark", "big-LLC ED^2", "big-md ED^2",
                     "winner"});
    for (const char *bench : {"libquantum", "canneal"}) {
        auto big_llc = defaultConfig(bench, opts, 400'000, 150'000);
        big_llc.secure.speculation = false;
        big_llc.hierarchy.llcBytes = 1_MiB;
        big_llc.secure.cache.sizeBytes = 16_KiB;
        const auto a = runBenchmark(big_llc);

        auto big_md = big_llc;
        big_md.hierarchy.llcBytes = 512_KiB;
        big_md.secure.cache.sizeBytes = 512_KiB;
        const auto b = runBenchmark(big_md);
        trend.addRow({bench, TextTable::fmt(a.ed2, 6),
                      TextTable::fmt(b.ed2, 6),
                      a.ed2 < b.ed2 ? "big LLC" : "big md cache"});
    }
    trend.print(std::cout);
    std::printf(
        "\nexpected shape (paper): verification latency hidden when\n"
        "speculating; the general sizing trends are the same either\n"
        "way, with canneal still preferring metadata capacity.\n");
    return 0;
}
