/**
 * @file
 * Figure 4: classification of metadata reuse distances into the four
 * classes (<=128 / 128-256 / 256-512 / >512 blocks) for every
 * benchmark. Classification is over the workload-driven stream
 * (counters + data hashes): tree accesses are miss-driven and would
 * otherwise flood the histogram with their (short) distances.
 */
#include "common.hpp"

#include "analysis/bimodal.hpp"
#include "analysis/reuse.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"fig4_bimodal",
                    "Figure 4: bimodal reuse-distance classes",
                    "Figure 4 (§IV-D, Bimodal Reuse Distances)"},
                   opts);

    std::vector<Cell> cells;
    for (const auto &benchmark : benchmarkNames()) {
        cells.push_back({benchmark, 0, [benchmark, opts](const Cell &cell) {
            auto cfg = defaultConfig(benchmark, opts, 1'000'000, 250'000);
            cfg.secure.cacheEnabled = false;
            SecureMemorySim sim(cfg);
            ReuseDistanceAnalyzer analyzer;
            sim.setMetadataTap(
                [&analyzer](const MetadataAccess &a) {
                    analyzer.observe(a);
                });
            const auto report = sim.run();

            ExactHistogram workload_driven;
            workload_driven.merge(
                analyzer.typeHistogram(MetadataType::Counter));
            workload_driven.merge(
                analyzer.typeHistogram(MetadataType::Hash));
            const auto fractions = classifyReuse(workload_driven);

            Row row;
            row.add("benchmark", benchmark)
                .add("<=128blk(8KB)", fractions[0], 3)
                .add("128-256", fractions[1], 3)
                .add("256-512", fractions[2], 3)
                .add(">512blk(32KB)", fractions[3], 3)
                .add("bimodality", bimodalityScore(workload_driven), 3);
            CellOutput out;
            out.add(std::move(row));
            addMetricsRows(out, cell.id, report);
            return out;
        }});
    }
    exp.runAndEmit(cells);

    exp.note(
        "expected shape (paper): every benchmark except canneal and\n"
        "cactusADM has >=50% of accesses in the smallest class, with\n"
        "most of the remainder in the largest class (bimodality ~1.0);\n"
        "canneal and cactusADM are the exceptions.");
    return exp.finish();
}
