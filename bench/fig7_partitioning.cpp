/**
 * @file
 * Figure 7: metadata cache partitioning schemes — (i) no partition,
 * (ii) best static counter/hash split for the application, (iii) the
 * average best split across applications, (iv) dynamic set-dueling —
 * reporting ED^2 overhead over an insecure system and metadata MPKI,
 * with each application's best static split printed (the paper shows it
 * below the x-axis).
 */
#include "common.hpp"

#include "util/logging.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"fig7_partitioning",
                    "Figure 7: cache partitioning schemes",
                    "Figure 7 (§V-C, Cache Partitioning)"},
                   opts);

    const std::vector<std::string> benchmarks{
        "canneal", "cactusADM", "fft",   "leslie3d", "libquantum",
        "mcf",     "barnes",    "ocean", "radix"};
    const std::uint32_t assoc = 8;

    const auto make_cfg = [opts, assoc](const std::string &bench,
                                        bool secure) {
        auto cfg = defaultConfig(bench, opts, 400'000, 150'000);
        cfg.secure.cache.sizeBytes = 64_KiB;
        cfg.secure.cache.assoc = assoc;
        cfg.secureEnabled = secure;
        return cfg;
    };

    const auto scheme_row = [make_cfg](const std::string &bench,
                                       PartitionScheme scheme,
                                       std::uint32_t split,
                                       const Cell &cell,
                                       CellOutput &metrics) {
        auto cfg = make_cfg(bench, true);
        cfg.secure.cache.partition = scheme;
        cfg.secure.cache.staticCounterWays = split;
        const auto rep = runBenchmark(cfg);
        addMetricsRows(metrics, cell.id, rep);
        return Row{}
            .add("ed2", rep.ed2, 9)
            .add("mpki", rep.metadataMpki, 6);
    };

    // Phase 1 grid, one cell per (benchmark, variant): the insecure
    // baseline, the unpartitioned cache, every static split, and the
    // set-dueling scheme. The derived columns (best/average split) are
    // computed from the collected grid below.
    struct Variant
    {
        std::string name;
        std::function<Row(const std::string &, const Cell &,
                          CellOutput &)>
            run;
    };
    std::vector<Variant> variants;
    variants.push_back(
        {"baseline", [make_cfg](const std::string &b, const Cell &cell,
                                CellOutput &metrics) {
            const auto rep = runBenchmark(make_cfg(b, false));
            addMetricsRows(metrics, cell.id, rep);
            return Row{}.add("ed2", rep.ed2, 9);
        }});
    variants.push_back(
        {"none", [scheme_row](const std::string &b, const Cell &cell,
                              CellOutput &metrics) {
            return scheme_row(b, PartitionScheme::None, 0, cell,
                              metrics);
        }});
    for (std::uint32_t split = 1; split < assoc; ++split) {
        variants.push_back(
            {"static" + std::to_string(split),
             [scheme_row, split](const std::string &b, const Cell &cell,
                                 CellOutput &metrics) {
                 return scheme_row(b, PartitionScheme::Static, split,
                                   cell, metrics);
             }});
    }
    variants.push_back(
        {"dueling", [scheme_row](const std::string &b, const Cell &cell,
                                 CellOutput &metrics) {
            return scheme_row(b, PartitionScheme::Dueling, 0, cell,
                              metrics);
        }});

    std::vector<Cell> cells;
    for (const auto &bench : benchmarks) {
        for (const auto &variant : variants) {
            cells.push_back(
                {bench + "/" + variant.name, 0,
                 [bench, variant](const Cell &cell) {
                     // Metrics rows ride behind the figure row so the
                     // grid consumers below keep using rows.front().
                     CellOutput out;
                     CellOutput metrics;
                     out.add(variant.run(bench, cell, metrics));
                     for (auto &r : metrics.rows)
                         out.rows.push_back(std::move(r));
                     return out;
                 }});
        }
    }
    const auto outputs = exp.run(cells, "fig7/sweep");
    const auto result = [&](const std::string &bench,
                            const std::string &variant) -> const Row & {
        for (std::size_t i = 0; i < cells.size(); ++i)
            if (cells[i].id == bench + "/" + variant)
                return outputs[i].rows.front().row;
        panic("missing fig7 cell " + bench + "/" + variant);
    };

    // Best static split per benchmark, then the average best split.
    std::unordered_map<std::string, std::uint32_t> best_split;
    double split_acc = 0.0;
    for (const auto &bench : benchmarks) {
        double best = 1e300;
        for (std::uint32_t split = 1; split < assoc; ++split) {
            const double ed2 =
                result(bench, "static" + std::to_string(split))
                    .num("ed2");
            if (ed2 < best) {
                best = ed2;
                best_split[bench] = split;
            }
        }
        split_acc += best_split[bench];
    }
    const auto avg_split = static_cast<std::uint32_t>(
        split_acc / static_cast<double>(benchmarks.size()) + 0.5);

    for (const auto &bench : benchmarks) {
        const auto &none = result(bench, "none");
        const auto &best =
            result(bench, "static" + std::to_string(best_split[bench]));
        const auto &avg =
            result(bench, "static" + std::to_string(avg_split));
        const auto &dyn = result(bench, "dueling");
        const double base = result(bench, "baseline").num("ed2");
        Row row;
        row.add("benchmark", bench)
            .add("no part", none.num("ed2") / base, 3)
            .add("best static", best.num("ed2") / base, 3)
            .add("avg static", avg.num("ed2") / base, 3)
            .add("dynamic", dyn.num("ed2") / base, 3)
            .add("best split",
                 std::to_string(best_split[bench]) + "/" +
                     std::to_string(assoc - best_split[bench]))
            .add("no-part MPKI", none.num("mpki"), 1)
            .add("best-static MPKI", best.num("mpki"), 1)
            .add("dynamic MPKI", dyn.num("mpki"), 1);
        exp.emit(std::move(row));
    }

    exp.note("average best split across applications: " +
             std::to_string(avg_split) + "/" +
             std::to_string(assoc - avg_split));
    exp.note(
        "ED^2 columns are normalized to the insecure baseline (lower\n"
        "is better; 1.0 = no secure-memory overhead).\n"
        "expected shape (paper): the app-specific best static split\n"
        "helps only a few benchmarks (barnes, canneal, libquantum, mcf)\n"
        "and hurts others; the average split and the dynamic set-\n"
        "dueling scheme do not help — set sampling fails because sets\n"
        "are heterogeneous in type mix and miss cost (§V-C).");
    return exp.finish();
}
