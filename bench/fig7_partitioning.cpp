/**
 * @file
 * Figure 7: metadata cache partitioning schemes — (i) no partition,
 * (ii) best static counter/hash split for the application, (iii) the
 * average best split across applications, (iv) dynamic set-dueling —
 * reporting ED^2 overhead over an insecure system and metadata MPKI,
 * with each application's best static split printed (the paper shows it
 * below the x-axis).
 */
#include "common.hpp"

using namespace maps;
using namespace maps::bench;

namespace {

struct SchemeResult
{
    double ed2 = 0.0;
    double mpki = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    banner("Figure 7: cache partitioning schemes",
           "Figure 7 (§V-C, Cache Partitioning)", opts);

    const std::vector<std::string> benchmarks{
        "canneal", "cactusADM", "fft",   "leslie3d", "libquantum",
        "mcf",     "barnes",    "ocean", "radix"};
    const std::uint32_t assoc = 8;

    const auto make_cfg = [&](const std::string &bench, bool secure) {
        auto cfg = defaultConfig(bench, opts, 400'000, 150'000);
        cfg.secure.cache.sizeBytes = 64_KiB;
        cfg.secure.cache.assoc = assoc;
        cfg.secureEnabled = secure;
        return cfg;
    };

    const auto run_scheme = [&](const std::string &bench,
                                PartitionScheme scheme,
                                std::uint32_t split) {
        auto cfg = make_cfg(bench, true);
        cfg.secure.cache.partition = scheme;
        cfg.secure.cache.staticCounterWays = split;
        const auto rep = runBenchmark(cfg);
        return SchemeResult{rep.ed2, rep.metadataMpki};
    };

    // Pass 1: per-benchmark baseline, no-partition, and static sweep.
    std::unordered_map<std::string, double> baseline_ed2;
    std::unordered_map<std::string, SchemeResult> none_result;
    std::unordered_map<std::string, SchemeResult> best_static;
    std::unordered_map<std::string, std::uint32_t> best_split;
    std::unordered_map<std::string,
                       std::vector<SchemeResult>> static_sweep;
    for (const auto &bench : benchmarks) {
        baseline_ed2[bench] = runBenchmark(make_cfg(bench, false)).ed2;
        none_result[bench] =
            run_scheme(bench, PartitionScheme::None, 0);
        std::vector<SchemeResult> sweep(assoc);
        double best = 1e300;
        for (std::uint32_t split = 1; split < assoc; ++split) {
            sweep[split] =
                run_scheme(bench, PartitionScheme::Static, split);
            if (sweep[split].ed2 < best) {
                best = sweep[split].ed2;
                best_split[bench] = split;
                best_static[bench] = sweep[split];
            }
        }
        static_sweep[bench] = std::move(sweep);
        std::printf("swept %s (best split %u/%u)\n", bench.c_str(),
                    best_split[bench], assoc - best_split[bench]);
    }

    // Average best split across applications (rounded mean).
    double split_acc = 0.0;
    for (const auto &bench : benchmarks)
        split_acc += best_split[bench];
    const auto avg_split = static_cast<std::uint32_t>(
        split_acc / static_cast<double>(benchmarks.size()) + 0.5);
    std::printf("\naverage best split across applications: %u/%u\n\n",
                avg_split, assoc - avg_split);

    TextTable table({"benchmark", "no part", "best static",
                     "avg static", "dynamic", "best split",
                     "no-part MPKI", "best-static MPKI",
                     "dynamic MPKI"});
    for (const auto &bench : benchmarks) {
        const auto &none = none_result[bench];
        const auto &best = best_static[bench];
        const auto &avg = static_sweep[bench][avg_split];
        const auto dyn =
            run_scheme(bench, PartitionScheme::Dueling, 0);
        const double base = baseline_ed2[bench];
        table.addRow(
            {bench, TextTable::fmt(none.ed2 / base, 3),
             TextTable::fmt(best.ed2 / base, 3),
             TextTable::fmt(avg.ed2 / base, 3),
             TextTable::fmt(dyn.ed2 / base, 3),
             std::to_string(best_split[bench]) + "/" +
                 std::to_string(assoc - best_split[bench]),
             TextTable::fmt(none.mpki, 1), TextTable::fmt(best.mpki, 1),
             TextTable::fmt(dyn.mpki, 1)});
    }
    table.print(std::cout);

    std::printf(
        "\nED^2 columns are normalized to the insecure baseline (lower\n"
        "is better; 1.0 = no secure-memory overhead).\n"
        "expected shape (paper): the app-specific best static split\n"
        "helps only a few benchmarks (barnes, canneal, libquantum, mcf)\n"
        "and hurts others; the average split and the dynamic set-\n"
        "dueling scheme do not help — set sampling fails because sets\n"
        "are heterogeneous in type mix and miss cost (§V-C).\n");
    return 0;
}
