/**
 * @file
 * Table I: the simulation configuration. Prints the configured system
 * and self-checks that the defaults used across the benches match the
 * paper's table.
 */
#include "common.hpp"

#include "util/logging.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"tab1_configuration",
                    "Table I: Simulation Configuration",
                    "Table I (Simulation Methodologies, §III)"},
                   opts);

    // A single analytic cell: no sweep, but the same harness and sinks
    // as every other driver.
    std::vector<Cell> cells;
    cells.push_back({"defaults", 0, [opts](const Cell &) {
        const SimConfig cfg = defaultConfig("libquantum", opts);

        const auto row = [](const char *param, const char *paper,
                            const std::string &repo) {
            return Row{}
                .add("Parameter", param)
                .add("Paper", paper)
                .add("This repo", repo);
        };
        CellOutput out;
        out.add(row("Processor", "out-of-order core",
                    "trace-driven unit-IPC core + stall model"));
        out.add(row("Clock Frequency", "3GHz",
                    TextTable::fmt(cfg.energy.cpuFreqGhz, 0) + "GHz"));
        out.add(row("L1 I & D Cache", "32KB 8-way",
                    TextTable::fmtSize(cfg.hierarchy.l1Bytes) + " " +
                        std::to_string(cfg.hierarchy.l1Assoc) +
                        "-way"));
        out.add(row("L2 Cache", "256KB 8-way",
                    TextTable::fmtSize(cfg.hierarchy.l2Bytes) + " " +
                        std::to_string(cfg.hierarchy.l2Assoc) +
                        "-way"));
        out.add(row("L3 Cache", "2MB 8-way",
                    TextTable::fmtSize(cfg.hierarchy.llcBytes) + " " +
                        std::to_string(cfg.hierarchy.llcAssoc) +
                        "-way"));
        out.add(row("Memory Size", "4GB",
                    TextTable::fmtSize(
                        cfg.secure.layout.protectedBytes) +
                        " protected (scaled; see DESIGN.md)"));
        out.add(row("Memory Latency", "from DRAMSim2",
                    "banked row-buffer DRAM-lite"));
        out.add(row("Hash Latency", "40 processor cycles",
                    std::to_string(cfg.secure.hashLatency) + " cycles"));
        out.add(row("Hash Throughput", "1 per DRAM cycle",
                    "pipelined (transaction-level)"));

        // Self-checks: the defaults every other bench inherits really
        // are the paper's.
        fatalIf(cfg.hierarchy.l1Bytes != 32_KiB ||
                    cfg.hierarchy.l1Assoc != 8,
                "L1 default drifted from Table I");
        fatalIf(cfg.hierarchy.l2Bytes != 256_KiB ||
                    cfg.hierarchy.l2Assoc != 8,
                "L2 default drifted from Table I");
        fatalIf(cfg.hierarchy.llcBytes != 2_MiB ||
                    cfg.hierarchy.llcAssoc != 8,
                "LLC default drifted from Table I");
        fatalIf(cfg.secure.hashLatency != 40,
                "hash latency drifted from Table I");
        fatalIf(cfg.energy.cpuFreqGhz != 3.0,
                "clock frequency drifted from Table I");
        return out;
    }});
    exp.runAndEmit(cells);

    exp.note("self-check: defaults match Table I");
    return exp.finish();
}
