/**
 * @file
 * Table I: the simulation configuration. Prints the configured system
 * and self-checks that the defaults used across the benches match the
 * paper's table.
 */
#include "common.hpp"

#include "util/logging.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    banner("Table I: Simulation Configuration",
           "Table I (Simulation Methodologies, §III)", opts);

    const SimConfig cfg = defaultConfig("libquantum", opts);

    TextTable table({"Parameter", "Paper", "This repo"});
    table.addRow({"Processor", "out-of-order core",
                  "trace-driven unit-IPC core + stall model"});
    table.addRow({"Clock Frequency", "3GHz",
                  TextTable::fmt(cfg.energy.cpuFreqGhz, 0) + "GHz"});
    table.addRow({"L1 I & D Cache", "32KB 8-way",
                  TextTable::fmtSize(cfg.hierarchy.l1Bytes) + " " +
                      std::to_string(cfg.hierarchy.l1Assoc) + "-way"});
    table.addRow({"L2 Cache", "256KB 8-way",
                  TextTable::fmtSize(cfg.hierarchy.l2Bytes) + " " +
                      std::to_string(cfg.hierarchy.l2Assoc) + "-way"});
    table.addRow({"L3 Cache", "2MB 8-way",
                  TextTable::fmtSize(cfg.hierarchy.llcBytes) + " " +
                      std::to_string(cfg.hierarchy.llcAssoc) + "-way"});
    table.addRow({"Memory Size", "4GB",
                  TextTable::fmtSize(cfg.secure.layout.protectedBytes) +
                      " protected (scaled; see DESIGN.md)"});
    table.addRow({"Memory Latency", "from DRAMSim2",
                  "banked row-buffer DRAM-lite"});
    table.addRow({"Hash Latency", "40 processor cycles",
                  std::to_string(cfg.secure.hashLatency) + " cycles"});
    table.addRow({"Hash Throughput", "1 per DRAM cycle",
                  "pipelined (transaction-level)"});
    table.print(std::cout);

    // Self-checks: the defaults every other bench inherits really are
    // the paper's.
    fatalIf(cfg.hierarchy.l1Bytes != 32_KiB || cfg.hierarchy.l1Assoc != 8,
            "L1 default drifted from Table I");
    fatalIf(cfg.hierarchy.l2Bytes != 256_KiB ||
                cfg.hierarchy.l2Assoc != 8,
            "L2 default drifted from Table I");
    fatalIf(cfg.hierarchy.llcBytes != 2_MiB ||
                cfg.hierarchy.llcAssoc != 8,
            "LLC default drifted from Table I");
    fatalIf(cfg.secure.hashLatency != 40,
            "hash latency drifted from Table I");
    fatalIf(cfg.energy.cpuFreqGhz != 3.0,
            "clock frequency drifted from Table I");
    std::printf("\nself-check: defaults match Table I\n");
    return 0;
}
