/**
 * @file
 * Ablation (§IV-E): partial writes for hash blocks. A hash write that
 * misses inserts a placeholder carrying just the new hash; the fill
 * read is saved iff the block completes before eviction. The paper
 * predicts modest but real savings on write-heavy workloads because
 * WAW reuse distances are short.
 */
#include <algorithm>

#include "common.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"abl_partial_writes",
                    "Ablation: partial writes for hash blocks",
                    "§IV-E (Request Types / partial writes)"},
                   opts);

    std::vector<Cell> cells;
    for (const std::string bench :
         {"fft", "lbm", "leslie3d", "radix", "libquantum", "canneal"}) {
        cells.push_back({bench, 0, [=](const Cell &cell) {
            auto cfg = defaultConfig(bench, opts, 1'200'000, 250'000);
            // Hash writes require dirty LLC evictions; keep enough refs
            // to generate them even at --quick.
            cfg.measureRefs = std::max<std::uint64_t>(cfg.measureRefs,
                                                      1'000'000);
            cfg.secure.cache.partialWrites = false;
            const auto off = runBenchmark(cfg);

            cfg.secure.cache.partialWrites = true;
            const auto on = runBenchmark(cfg);

            const auto hash_reads_off =
                off.controller
                    .memReads[static_cast<int>(MemCategory::Hash)];
            const auto hash_reads_on =
                on.controller
                    .memReads[static_cast<int>(MemCategory::Hash)];
            const double write_frac =
                off.refs
                    ? 100.0 *
                          static_cast<double>(
                              off.hierarchy.llcWritebacks) /
                          static_cast<double>(off.controller.requests())
                    : 0.0;
            const double saved =
                hash_reads_off
                    ? 100.0 *
                          (static_cast<double>(hash_reads_off) -
                           static_cast<double>(hash_reads_on)) /
                          static_cast<double>(hash_reads_off)
                    : 0.0;
            Row row;
            row.add("benchmark", bench)
                .add("writes%", write_frac, 1)
                .add("hash mem reads (off)", hash_reads_off)
                .add("hash mem reads (on)", hash_reads_on)
                .add("saved%", saved, 1)
                .add("placeholders", on.mdCache.placeholderInserts)
                .add("completed", on.mdCache.partialCompletions)
                .add("evicted incomplete",
                     on.mdCache.incompleteEvictions)
                .add("md MPKI off", off.metadataMpki, 1)
                .add("md MPKI on", on.metadataMpki, 1);
            CellOutput out;
            out.add(std::move(row));
            addMetricsRows(out, cell.id + "/off", off);
            addMetricsRows(out, cell.id + "/on", on);
            return out;
        }});
    }
    exp.runAndEmit(cells);

    exp.note(
        "expected shape (paper): write-heavy workloads (fft 20%, lbm)\n"
        "save a modest fraction of hash fill reads; savings require the\n"
        "block to complete before eviction, so read-heavy streams see\n"
        "little change.");
    return exp.finish();
}
