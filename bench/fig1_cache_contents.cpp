/**
 * @file
 * Figure 1: metadata MPKI vs metadata cache size when the cache may hold
 * (i) only counters, (ii) counters + hashes, (iii) all metadata types —
 * for canneal (caching everything wins everywhere) and libquantum
 * (hashes compete with counters at mid sizes; tree caching rescues
 * small sizes).
 */
#include <algorithm>

#include "common.hpp"

using namespace maps;
using namespace maps::bench;

namespace {

enum class Contents { CountersOnly, CountersHashes, All };

MetadataCacheConfig
contentsConfig(Contents c, std::uint64_t size)
{
    switch (c) {
      case Contents::CountersOnly:
        return MetadataCacheConfig::countersOnly(size);
      case Contents::CountersHashes:
        return MetadataCacheConfig::countersAndHashes(size);
      case Contents::All:
        return MetadataCacheConfig::allTypes(size);
    }
    return MetadataCacheConfig::allTypes(size);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    banner("Figure 1: metadata MPKI vs cache contents",
           "Figure 1 (§II-B, Case for Caching All Metadata Types)",
           opts);

    const std::vector<std::uint64_t> sizes{16_KiB,  32_KiB, 64_KiB,
                                           128_KiB, 256_KiB, 512_KiB,
                                           1_MiB,  2_MiB};
    const std::vector<Contents> contents{
        Contents::CountersOnly, Contents::CountersHashes, Contents::All};

    for (const char *benchmark : {"canneal", "libquantum"}) {
        std::printf("benchmark: %s\n", benchmark);
        TextTable table({"md cache", "counters", "counters+hashes",
                         "all types"});
        for (const auto size : sizes) {
            std::vector<std::string> row{TextTable::fmtSize(size)};
            for (const auto c : contents) {
                // libquantum's wrap-around reuse (the 4MB array) only
                // shows after multiple full passes, so run longer.
                auto cfg = defaultConfig(benchmark, opts, 1'800'000,
                                         400'000);
                cfg.measureRefs = std::max<std::uint64_t>(
                    cfg.measureRefs, 1'200'000);
                cfg.secure.cache = contentsConfig(c, size);
                const auto report = runBenchmark(cfg);
                row.push_back(TextTable::fmt(report.metadataMpki, 1));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf(
        "expected shape (paper): canneal needs a much smaller cache for\n"
        "a given MPKI when all types are cacheable; libquantum shows\n"
        "hashes hurting counters at ~1MB but tree caching helping below\n"
        "512KB.\n");
    return 0;
}
