/**
 * @file
 * Figure 1: metadata MPKI vs metadata cache size when the cache may hold
 * (i) only counters, (ii) counters + hashes, (iii) all metadata types —
 * for canneal (caching everything wins everywhere) and libquantum
 * (hashes compete with counters at mid sizes; tree caching rescues
 * small sizes).
 */
#include <algorithm>

#include "common.hpp"

using namespace maps;
using namespace maps::bench;

namespace {

struct ContentsColumn
{
    const char *label;
    MetadataCacheConfig (*make)(std::uint64_t size);
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"fig1_cache_contents",
                    "Figure 1: metadata MPKI vs cache contents",
                    "Figure 1 (§II-B, Case for Caching All Metadata "
                    "Types)"},
                   opts);

    const std::vector<std::uint64_t> sizes{16_KiB,  32_KiB, 64_KiB,
                                           128_KiB, 256_KiB, 512_KiB,
                                           1_MiB,  2_MiB};
    const std::vector<ContentsColumn> contents{
        {"counters", MetadataCacheConfig::countersOnly},
        {"counters+hashes", MetadataCacheConfig::countersAndHashes},
        {"all types", MetadataCacheConfig::allTypes}};

    // One cell per (benchmark, size) point; the three contents variants
    // stay inside the cell so each table row is produced whole.
    std::vector<Cell> cells;
    for (const std::string benchmark : {"canneal", "libquantum"}) {
        for (const auto size : sizes) {
            const std::string id =
                benchmark + "/" + TextTable::fmtSize(size);
            cells.push_back({id, 0, [=](const Cell &cell) {
                CellOutput out;
                Row row;
                row.add("md cache", Value::size(size));
                std::vector<std::pair<std::string, RunReport>> reports;
                for (const auto &c : contents) {
                    // libquantum's wrap-around reuse (the 4MB array)
                    // only shows after multiple full passes, so run
                    // longer.
                    auto cfg = defaultConfig(benchmark, opts, 1'800'000,
                                             400'000);
                    cfg.measureRefs = std::max<std::uint64_t>(
                        cfg.measureRefs, 1'200'000);
                    cfg.secure.cache = c.make(size);
                    auto report = runBenchmark(cfg);
                    row.add(c.label, report.metadataMpki, 1);
                    reports.emplace_back(cell.id + "/" + c.label,
                                         std::move(report));
                }
                out.add("benchmark: " + benchmark, std::move(row));
                for (const auto &[label, report] : reports)
                    addMetricsRows(out, label, report);
                return out;
            }});
        }
    }
    exp.runAndEmit(cells);

    exp.note(
        "expected shape (paper): canneal needs a much smaller cache for\n"
        "a given MPKI when all types are cacheable; libquantum shows\n"
        "hashes hurting counters at ~1MB but tree caching helping below\n"
        "512KB.");
    return exp.finish();
}
