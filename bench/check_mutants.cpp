/**
 * @file
 * Mutation self-test for the maps::check differential-verification
 * subsystem: each seeded mutation in check::Mutations plants one
 * realistic bug in the simulator, and this driver asserts that the
 * oracles/invariants catch every one of them — and, just as important,
 * that they stay silent on the unmutated code.
 *
 * A verification layer that has never caught a bug is untested code;
 * this is its regression suite. Runs under ctest (label: quick).
 */
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cache/partition.hpp"
#include "check/check.hpp"
#include "check/secmem_shadow.hpp"
#include "check/shadow_cache.hpp"
#include "core/simulator.hpp"
#include "hierarchy/hierarchy.hpp"
#include "mem/fixed_latency.hpp"
#include "secmem/controller.hpp"
#include "secmem/counter_store.hpp"
#include "util/rng.hpp"

namespace {

using namespace maps;

int g_failures = 0;

/** Run one scenario under Record mode and compare the verdict. */
void
scenario(const std::string &name, const check::Mutations &mutations,
         bool expect_caught, const std::function<void()> &body)
{
    check::setEnabled(true);
    check::setFailureMode(check::FailureMode::Record);
    check::resetStats();
    check::setMutations(mutations);

    body();

    const std::uint64_t caught = check::failureCount();
    const std::uint64_t checks = check::checkCount();
    check::clearMutations();

    const bool ok = expect_caught ? caught > 0 : caught == 0;
    std::printf("%-28s %-12s checks=%-10llu divergences=%llu\n",
                name.c_str(), ok ? "ok" : "FAILED",
                static_cast<unsigned long long>(checks),
                static_cast<unsigned long long>(caught));
    if (!ok) {
        ++g_failures;
        for (const auto &f : check::failures())
            std::printf("    [%s] %s\n", f.domain.c_str(),
                        f.message.c_str());
    }
    if (expect_caught && ok) {
        // Show the first divergence so the catch is auditable.
        const auto sample = check::failures();
        if (!sample.empty())
            std::printf("    caught: [%s] %s\n", sample[0].domain.c_str(),
                        sample[0].message.c_str());
    }
}

/** Random mixed read/write trace over a small footprint. */
void
driveCache(SetAssociativeCache &cache, check::CacheShadow &shadow,
           std::uint64_t seed, std::uint64_t steps, std::uint64_t blocks)
{
    Rng rng(seed);
    for (std::uint64_t i = 0; i < steps; ++i) {
        const Addr addr = rng.nextBounded(blocks) * kBlockSize;
        cache.access(addr, rng.nextBool(0.3));
    }
    shadow.finalAudit();
}

/** Cache+shadow scenario body for the policy mutations. */
std::function<void()>
cacheBody(const std::string &policy)
{
    return [policy] {
        CacheGeometry geom;
        geom.sizeBytes = 4_KiB; // 16 sets x 4 ways
        geom.assoc = 4;
        SetAssociativeCache cache(geom, makeReplacementPolicy(policy, 7));
        auto shadow = check::CacheShadow::attach(cache, policy, 7);
        driveCache(cache, *shadow, 11, 20'000, 256);
    };
}

/** Partitioned-cache scenario body (mirror shadow + residency audit). */
std::function<void()>
partitionBody()
{
    return [] {
        CacheGeometry geom;
        geom.sizeBytes = 4_KiB;
        geom.assoc = 4;
        SetAssociativeCache cache(geom, makeReplacementPolicy("lru", 7),
                                  std::make_unique<StaticPartition>(2));
        auto shadow = check::CacheShadow::attach(cache, "partitioned", 7);
        Rng rng(13);
        for (std::uint64_t i = 0; i < 20'000; ++i) {
            const Addr addr = rng.nextBounded(256) * kBlockSize;
            const auto type = static_cast<std::uint8_t>(
                rng.nextBounded(2) == 0
                    ? static_cast<unsigned>(MetadataType::Counter)
                    : static_cast<unsigned>(MetadataType::Hash));
            cache.access(addr, rng.nextBool(0.3), type);
        }
        shadow->finalAudit();
    };
}

/** Hierarchy scenario body: writes force dirty LLC evictions. */
std::function<void()>
hierarchyBody()
{
    return [] {
        HierarchyConfig cfg;
        cfg.l1Bytes = 2_KiB;
        cfg.l1Assoc = 2;
        cfg.l2Bytes = 4_KiB;
        cfg.l2Assoc = 4;
        cfg.llcBytes = 8_KiB;
        cfg.llcAssoc = 4;
        CacheHierarchy hierarchy(cfg);
        Rng rng(17);
        for (std::uint64_t i = 0; i < 50'000; ++i) {
            MemRef ref;
            ref.addr = rng.nextBounded(2048) * kBlockSize;
            ref.type = rng.nextBool(0.5) ? AccessType::Write
                                         : AccessType::Read;
            hierarchy.access(ref);
        }
    };
}

/** Controller scenario body: reads/writes through a tiny metadata
 * cache, with the flat SecmemShadow attached. */
std::function<void()>
controllerBody()
{
    return [] {
        FixedLatencyMemory memory(100);
        SecureMemoryConfig cfg;
        cfg.layout.protectedBytes = 16_MiB;
        cfg.cache.sizeBytes = 4_KiB;
        cfg.cache.assoc = 4;
        SecureMemoryController controller(cfg, memory);
        check::SecmemShadow shadow(controller);
        controller.setMetadataTap(
            [&shadow](const MetadataAccess &acc) { shadow.onTap(acc); });
        Rng rng(23);
        for (std::uint64_t i = 0; i < 5'000; ++i) {
            MemoryRequest req;
            req.addr = rng.nextBounded(4096) * kBlockSize;
            req.kind = rng.nextBool(0.5) ? RequestKind::Writeback
                                         : RequestKind::Read;
            req.icount = i;
            shadow.beginRequest(req);
            controller.handleRequest(req);
            shadow.endRequest();
        }
    };
}

/** Bare counter-store scenario body (monotonicity invariant). */
std::function<void()>
counterBody()
{
    return [] {
        MetadataLayout layout({16_MiB, CounterMode::SplitPi, 8});
        CounterStore store(layout);
        for (int i = 0; i < 300; ++i)
            store.onBlockWrite(0x1000);
    };
}

/** Full-simulator clean run: every oracle active at once. */
std::function<void()>
simulatorBody()
{
    return [] {
        SimConfig cfg;
        cfg.benchmark = "canneal";
        cfg.warmupRefs = 5'000;
        cfg.measureRefs = 30'000;
        runBenchmark(cfg);
    };
}

} // namespace

int
main()
{
    std::printf("maps::check mutation self-test\n\n");

    check::Mutations m;

    // -- Clean baselines: the layer must stay silent on correct code. --
    scenario("clean/lru", {}, false, cacheBody("lru"));
    scenario("clean/plru", {}, false, cacheBody("plru"));
    scenario("clean/partitioned", {}, false, partitionBody());
    scenario("clean/hierarchy", {}, false, hierarchyBody());
    scenario("clean/controller", {}, false, controllerBody());
    scenario("clean/counter-overflow", {}, false, counterBody());
    scenario("clean/simulator", {}, false, simulatorBody());

    // -- Each seeded mutant must be detected. --
    m = {};
    m.lruOffByOneVictim = true;
    scenario("mutant/lru-off-by-one", m, true, cacheBody("lru"));

    m = {};
    m.plruSkipTouch = true;
    scenario("mutant/plru-skip-touch", m, true, cacheBody("plru"));

    m = {};
    m.ignorePartition = true;
    scenario("mutant/ignore-partition", m, true, partitionBody());

    m = {};
    m.dropLlcWriteback = true;
    scenario("mutant/drop-llc-writeback", m, true, hierarchyBody());

    m = {};
    m.skipTreeVerify = true;
    scenario("mutant/skip-tree-verify", m, true, controllerBody());

    m = {};
    m.stuckCounter = true;
    scenario("mutant/stuck-counter", m, true, counterBody());

    std::printf("\n%s\n", g_failures == 0
                              ? "all scenarios behaved as expected"
                              : "SELF-TEST FAILURES");
    return g_failures == 0 ? 0 : 1;
}
