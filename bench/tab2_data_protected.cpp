/**
 * @file
 * Table II: metadata organization and the amount of data protected by
 * one 64B block of each metadata type, for the PoisonIvy (PI) and Intel
 * SGX counter organizations. Values are *computed from the layout
 * geometry* and checked against the paper's closed forms.
 */
#include "common.hpp"

#include "secmem/layout.hpp"
#include "util/logging.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    banner("Table II: Metadata organization / data protected",
           "Table II (§IV-B, Amount of Data Protected)", opts);

    LayoutConfig pi_cfg;
    pi_cfg.protectedBytes = 4_GiB;
    pi_cfg.counterMode = CounterMode::SplitPi;
    MetadataLayout pi(pi_cfg);

    LayoutConfig sgx_cfg = pi_cfg;
    sgx_cfg.counterMode = CounterMode::MonolithicSgx;
    MetadataLayout sgx(sgx_cfg);

    TextTable table({"Metadata Type", "Organization (PI)",
                     "Organization (SGX)", "Protected (PI)",
                     "Protected (SGX)"});
    table.addRow({"Counters", "1x8B/page + 64x7b/blk", "8x8B/blk",
                  TextTable::fmtSize(pi.counterBlockCoverage()),
                  TextTable::fmtSize(sgx.counterBlockCoverage())});
    for (std::uint32_t lev = 0; lev < 3; ++lev) {
        table.addRow({"Integrity Tree L" + std::to_string(lev),
                      "8x8B hashes", "8x8B hashes",
                      TextTable::fmtSize(pi.treeBlockCoverage(lev)),
                      TextTable::fmtSize(sgx.treeBlockCoverage(lev))});
    }
    table.addRow({"Data Hashes", "8x8B hashes", "8x8B hashes",
                  TextTable::fmtSize(pi.hashBlockCoverage()),
                  TextTable::fmtSize(sgx.hashBlockCoverage())});
    table.print(std::cout);

    // Paper's closed forms: PI counter block covers 4KB, SGX 512B;
    // tree level lev covers 4*8^(lev+1) KB (PI) / 512*8^(lev+1) B (SGX)
    // with our 0-based stored levels; hashes cover 512B.
    fatalIf(pi.counterBlockCoverage() != 4_KiB, "PI counter coverage");
    fatalIf(sgx.counterBlockCoverage() != 512, "SGX counter coverage");
    fatalIf(pi.treeBlockCoverage(0) != 32_KiB, "PI leaf coverage");
    fatalIf(sgx.treeBlockCoverage(0) != 4_KiB, "SGX leaf coverage");
    std::uint64_t expect_pi = 32_KiB, expect_sgx = 4_KiB;
    for (std::uint32_t lev = 0; lev < 4; ++lev) {
        fatalIf(pi.treeBlockCoverage(lev) != expect_pi,
                "PI tree coverage at level " + std::to_string(lev));
        fatalIf(sgx.treeBlockCoverage(lev) != expect_sgx,
                "SGX tree coverage at level " + std::to_string(lev));
        expect_pi *= 8;
        expect_sgx *= 8;
    }
    fatalIf(pi.hashBlockCoverage() != 512, "hash coverage");

    std::printf("\nStorage for 4GB protected memory:\n");
    TextTable storage({"Layout", "Counter blocks", "Counter bytes",
                       "Hash bytes", "Tree levels", "Tree bytes"});
    for (const auto *layout : {&pi, &sgx}) {
        std::uint64_t tree_blocks = 0;
        for (std::uint32_t l = 0; l < layout->numTreeLevels(); ++l)
            tree_blocks += layout->treeLevelBlockCount(l);
        storage.addRow(
            {counterModeName(layout->config().counterMode),
             TextTable::fmt(layout->numCounterBlocks()),
             TextTable::fmtSize(layout->numCounterBlocks() * kBlockSize),
             TextTable::fmtSize(layout->numHashBlocks() * kBlockSize),
             TextTable::fmt(
                 static_cast<std::uint64_t>(layout->numTreeLevels())),
             TextTable::fmtSize(tree_blocks * kBlockSize)});
    }
    storage.print(std::cout);

    // §II-A claim: split counters shrink 512MB of counters to 64MB.
    fatalIf(pi.numCounterBlocks() * kBlockSize != 64_MiB,
            "PI counter storage claim");
    fatalIf(sgx.numCounterBlocks() * kBlockSize != 512_MiB,
            "SGX counter storage claim");
    std::printf("\nself-check: geometry matches Table II and the SS II-A "
                "512MB->64MB claim\n");
    return 0;
}
