/**
 * @file
 * Table II: metadata organization and the amount of data protected by
 * one 64B block of each metadata type, for the PoisonIvy (PI) and Intel
 * SGX counter organizations. Values are *computed from the layout
 * geometry* and checked against the paper's closed forms.
 */
#include "common.hpp"

#include "secmem/layout.hpp"
#include "util/logging.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"tab2_data_protected",
                    "Table II: Metadata organization / data protected",
                    "Table II (§IV-B, Amount of Data Protected)"},
                   opts);

    std::vector<Cell> cells;
    cells.push_back({"geometry", 0, [](const Cell &) {
        LayoutConfig pi_cfg;
        pi_cfg.protectedBytes = 4_GiB;
        pi_cfg.counterMode = CounterMode::SplitPi;
        MetadataLayout pi(pi_cfg);

        LayoutConfig sgx_cfg = pi_cfg;
        sgx_cfg.counterMode = CounterMode::MonolithicSgx;
        MetadataLayout sgx(sgx_cfg);

        CellOutput out;
        const auto coverage =
            [](const std::string &type, const std::string &org_pi,
               const std::string &org_sgx, std::uint64_t prot_pi,
               std::uint64_t prot_sgx) {
                return Row{}
                    .add("Metadata Type", type)
                    .add("Organization (PI)", org_pi)
                    .add("Organization (SGX)", org_sgx)
                    .add("Protected (PI)", Value::size(prot_pi))
                    .add("Protected (SGX)", Value::size(prot_sgx));
            };
        out.add(coverage("Counters", "1x8B/page + 64x7b/blk", "8x8B/blk",
                         pi.counterBlockCoverage(),
                         sgx.counterBlockCoverage()));
        for (std::uint32_t lev = 0; lev < 3; ++lev) {
            out.add(coverage("Integrity Tree L" + std::to_string(lev),
                             "8x8B hashes", "8x8B hashes",
                             pi.treeBlockCoverage(lev),
                             sgx.treeBlockCoverage(lev)));
        }
        out.add(coverage("Data Hashes", "8x8B hashes", "8x8B hashes",
                         pi.hashBlockCoverage(),
                         sgx.hashBlockCoverage()));

        // Paper's closed forms: PI counter block covers 4KB, SGX 512B;
        // tree level lev covers 4*8^(lev+1) KB (PI) / 512*8^(lev+1) B
        // (SGX) with our 0-based stored levels; hashes cover 512B.
        fatalIf(pi.counterBlockCoverage() != 4_KiB,
                "PI counter coverage");
        fatalIf(sgx.counterBlockCoverage() != 512,
                "SGX counter coverage");
        fatalIf(pi.treeBlockCoverage(0) != 32_KiB, "PI leaf coverage");
        fatalIf(sgx.treeBlockCoverage(0) != 4_KiB, "SGX leaf coverage");
        std::uint64_t expect_pi = 32_KiB, expect_sgx = 4_KiB;
        for (std::uint32_t lev = 0; lev < 4; ++lev) {
            fatalIf(pi.treeBlockCoverage(lev) != expect_pi,
                    "PI tree coverage at level " + std::to_string(lev));
            fatalIf(sgx.treeBlockCoverage(lev) != expect_sgx,
                    "SGX tree coverage at level " + std::to_string(lev));
            expect_pi *= 8;
            expect_sgx *= 8;
        }
        fatalIf(pi.hashBlockCoverage() != 512, "hash coverage");

        const char *storage_section =
            "Storage for 4GB protected memory:";
        for (const auto *layout : {&pi, &sgx}) {
            std::uint64_t tree_blocks = 0;
            for (std::uint32_t l = 0; l < layout->numTreeLevels(); ++l)
                tree_blocks += layout->treeLevelBlockCount(l);
            out.add(storage_section,
                    Row{}
                        .add("Layout",
                             counterModeName(
                                 layout->config().counterMode))
                        .add("Counter blocks",
                             layout->numCounterBlocks())
                        .add("Counter bytes",
                             Value::size(layout->numCounterBlocks() *
                                         kBlockSize))
                        .add("Hash bytes",
                             Value::size(layout->numHashBlocks() *
                                         kBlockSize))
                        .add("Tree levels",
                             static_cast<std::uint64_t>(
                                 layout->numTreeLevels()))
                        .add("Tree bytes",
                             Value::size(tree_blocks * kBlockSize)));
        }

        // §II-A claim: split counters shrink 512MB of counters to 64MB.
        fatalIf(pi.numCounterBlocks() * kBlockSize != 64_MiB,
                "PI counter storage claim");
        fatalIf(sgx.numCounterBlocks() * kBlockSize != 512_MiB,
                "SGX counter storage claim");
        return out;
    }});
    exp.runAndEmit(cells);

    exp.note("self-check: geometry matches Table II and the SS II-A "
             "512MB->64MB claim");
    return exp.finish();
}
