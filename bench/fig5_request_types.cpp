/**
 * @file
 * Figure 5: reuse-distance CDFs split by request transition (RAR, RAW,
 * WAR, WAW) and metadata type, for the two memory-intensive benchmarks
 * with the most writes: fft (20%) and leslie3d (5%).
 */
#include "common.hpp"

#include <algorithm>

#include "analysis/reuse.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    banner("Figure 5: reuse CDF by request transition x metadata type",
           "Figure 5 (§IV-E, Request Types)", opts);

    const std::vector<std::uint64_t> points{512,    4_KiB,  16_KiB,
                                            64_KiB, 256_KiB, 1_MiB,
                                            4_MiB,  16_MiB};
    const std::vector<ReuseTransition> transitions{
        ReuseTransition::ReadAfterRead, ReuseTransition::ReadAfterWrite,
        ReuseTransition::WriteAfterRead,
        ReuseTransition::WriteAfterWrite};

    for (const char *benchmark : {"fft", "leslie3d"}) {
        auto cfg = defaultConfig(benchmark, opts, 1'500'000, 300'000);
        // Metadata *writes* only exist once dirty lines leave the LLC;
        // keep enough references to evict even at --quick.
        cfg.measureRefs = std::max<std::uint64_t>(cfg.measureRefs,
                                                  1'200'000);
        cfg.secure.cacheEnabled = false;
        SecureMemorySim sim(cfg);
        ReuseDistanceAnalyzer analyzer;
        sim.setMetadataTap(
            [&analyzer](const MetadataAccess &a) { analyzer.observe(a); });
        sim.run();

        std::printf("benchmark: %s\n", benchmark);
        for (const auto type :
             {MetadataType::Counter, MetadataType::Hash,
              MetadataType::TreeNode}) {
            std::vector<std::string> header{
                std::string(metadataTypeName(type)) + " \\ <="};
            for (const auto p : points)
                header.push_back(TextTable::fmtSize(p));
            header.push_back("samples");
            TextTable table(header);
            for (const auto t : transitions) {
                const auto &hist = analyzer.transitionHistogram(type, t);
                std::vector<std::string> row{reuseTransitionName(t)};
                for (const auto p : points) {
                    row.push_back(
                        hist.totalCount()
                            ? TextTable::fmt(100.0 *
                                                 hist.cumulativeAtOrBelow(
                                                     p / kBlockSize),
                                             1)
                            : "-");
                }
                row.push_back(TextTable::fmt(hist.totalCount()));
                table.addRow(row);
            }
            table.print(std::cout);
        }
        std::printf("\n");
    }

    std::printf(
        "expected shape (paper): same-direction transitions (RAR, WAW)\n"
        "show shorter reuse than cross-direction ones; WAW shortest for\n"
        "hashes (the §IV-E motivation for partial writes).\n");
    return 0;
}
