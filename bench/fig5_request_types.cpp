/**
 * @file
 * Figure 5: reuse-distance CDFs split by request transition (RAR, RAW,
 * WAR, WAW) and metadata type, for the two memory-intensive benchmarks
 * with the most writes: fft (20%) and leslie3d (5%).
 */
#include "common.hpp"

#include <algorithm>

#include "analysis/reuse.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"fig5_request_types",
                    "Figure 5: reuse CDF by request transition x "
                    "metadata type",
                    "Figure 5 (§IV-E, Request Types)"},
                   opts);

    const std::vector<std::uint64_t> points{512,    4_KiB,  16_KiB,
                                            64_KiB, 256_KiB, 1_MiB,
                                            4_MiB,  16_MiB};
    const std::vector<ReuseTransition> transitions{
        ReuseTransition::ReadAfterRead, ReuseTransition::ReadAfterWrite,
        ReuseTransition::WriteAfterRead,
        ReuseTransition::WriteAfterWrite};

    std::vector<Cell> cells;
    for (const std::string benchmark : {"fft", "leslie3d"}) {
        cells.push_back({benchmark, 0, [=](const Cell &cell) {
            auto cfg = defaultConfig(benchmark, opts, 1'500'000,
                                     300'000);
            // Metadata *writes* only exist once dirty lines leave the
            // LLC; keep enough references to evict even at --quick.
            cfg.measureRefs = std::max<std::uint64_t>(cfg.measureRefs,
                                                      1'200'000);
            cfg.secure.cacheEnabled = false;
            SecureMemorySim sim(cfg);
            ReuseDistanceAnalyzer analyzer;
            sim.setMetadataTap(
                [&analyzer](const MetadataAccess &a) {
                    analyzer.observe(a);
                });
            const auto report = sim.run();

            CellOutput out;
            for (const auto type :
                 {MetadataType::Counter, MetadataType::Hash,
                  MetadataType::TreeNode}) {
                const std::string section =
                    "benchmark: " + benchmark + ", " +
                    metadataTypeName(type);
                for (const auto t : transitions) {
                    const auto &hist =
                        analyzer.transitionHistogram(type, t);
                    Row row;
                    row.add(std::string(metadataTypeName(type)) +
                                " \\ <=",
                            reuseTransitionName(t));
                    for (const auto p : points) {
                        if (hist.totalCount())
                            row.add(TextTable::fmtSize(p),
                                    100.0 * hist.cumulativeAtOrBelow(
                                                p / kBlockSize),
                                    1);
                        else
                            row.add(TextTable::fmtSize(p), "-");
                    }
                    row.add("samples", hist.totalCount());
                    out.add(section, std::move(row));
                }
            }
            addMetricsRows(out, cell.id, report);
            return out;
        }});
    }
    exp.runAndEmit(cells);

    exp.note(
        "expected shape (paper): same-direction transitions (RAR, WAW)\n"
        "show shorter reuse than cross-direction ones; WAW shortest for\n"
        "hashes (the §IV-E motivation for partial writes).");
    return exp.finish();
}
