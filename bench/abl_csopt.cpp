/**
 * @file
 * Ablation (§V-B): CSOPT — cost-sensitive optimal replacement — on
 * captured metadata traces. Reproduces the paper's two findings:
 *  1. accounting for non-uniform miss costs beats Belady's MIN in
 *     realized cost;
 *  2. the search explodes with footprint (the paper reports 32 minutes
 *     for perl and >6 days for canneal; we show state counts growing
 *     and cap the work with a beam).
 */
#include "common.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "offline/capture.hpp"
#include "offline/csopt.hpp"
#include "offline/min_sim.hpp"

using namespace maps;
using namespace maps::bench;

namespace {

/** Static miss cost per metadata type: a counter miss may cost a full
 * tree traversal; hashes and tree nodes cost one access. */
std::uint64_t
missCostOf(const MetadataAccess &acc, std::uint32_t tree_levels)
{
    return acc.type == MetadataType::Counter ? 1 + tree_levels : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    banner("Ablation: CSOPT cost-sensitive optimal replacement",
           "§V-B (The Optimal Eviction Policy / CSOPT [10])", opts);

    // Tiny 4-way cache (the paper also runs CSOPT at 4 ways) over a
    // truncated trace so the exact search is feasible.
    const std::uint32_t sets = 16, ways = 4;
    const std::size_t trace_cap = static_cast<std::size_t>(
        10'000 * opts.scale < 2'000 ? 2'000 : 10'000 * opts.scale);

    TextTable table({"benchmark", "trace len", "LRU cost", "MIN cost",
                     "CSOPT cost", "CSOPT vs MIN", "peak states",
                     "expansions", "exact", "solve ms"});

    for (const char *bench : {"perl", "gcc", "libquantum", "canneal"}) {
        auto cfg = defaultConfig(bench, opts, 300'000, 100'000);
        cfg.secure.cacheEnabled = false; // capture the raw stream
        SecureMemorySim sim(cfg);
        std::vector<MetadataAccess> stream;
        sim.setMetadataTap([&stream](const MetadataAccess &a) {
            stream.push_back(a);
        });
        sim.run();
        if (stream.size() > trace_cap)
            stream.resize(trace_cap);

        const auto tree_levels =
            MetadataLayout(cfg.secure.layout).numTreeLevels();
        std::vector<CsOptAccess> trace;
        for (const auto &acc : stream)
            trace.push_back({acc.addr, missCostOf(acc, tree_levels)});

        // Realized costs of LRU and MIN on the same fixed trace.
        const auto cost_of = [&](bool use_min) {
            // Re-simulate and charge each miss its cost.
            std::vector<std::vector<CsOptAccess>> per_set(sets);
            for (const auto &acc : trace)
                per_set[blockIndex(acc.block) % sets].push_back(acc);
            std::uint64_t total = 0;
            for (const auto &set_trace : per_set) {
                // Direct per-set simulation charging each miss its
                // cost (min_sim reports counts, not positions).
                const std::vector<CsOptAccess> &t = set_trace;
                std::uint64_t cost = 0;
                if (use_min) {
                    // next-use MIN with cost charging
                    std::vector<std::uint64_t> next_use(t.size());
                    std::unordered_map<Addr, std::uint64_t> upcoming;
                    for (std::size_t i = t.size(); i-- > 0;) {
                        const auto it = upcoming.find(t[i].block);
                        next_use[i] = it == upcoming.end()
                                          ? ~std::uint64_t{0}
                                          : it->second;
                        upcoming[t[i].block] = i;
                    }
                    std::unordered_map<Addr, std::uint64_t> resident;
                    for (std::size_t i = 0; i < t.size(); ++i) {
                        const auto it = resident.find(t[i].block);
                        if (it != resident.end()) {
                            it->second = next_use[i];
                            continue;
                        }
                        cost += t[i].missCost;
                        if (resident.size() >= ways) {
                            auto victim = resident.begin();
                            for (auto c = resident.begin();
                                 c != resident.end(); ++c)
                                if (c->second > victim->second)
                                    victim = c;
                            resident.erase(victim);
                        }
                        resident.emplace(t[i].block, next_use[i]);
                    }
                } else {
                    // true LRU with cost charging
                    std::vector<Addr> order; // MRU at back
                    for (const auto &acc : t) {
                        auto pos = std::find(order.begin(), order.end(),
                                             acc.block);
                        if (pos != order.end()) {
                            order.erase(pos);
                            order.push_back(acc.block);
                            continue;
                        }
                        cost += acc.missCost;
                        if (order.size() >= ways)
                            order.erase(order.begin());
                        order.push_back(acc.block);
                    }
                }
                total += cost;
            }
            return total;
        };

        const auto lru_cost = cost_of(false);
        const auto min_cost = cost_of(true);

        const auto start = std::chrono::steady_clock::now();
        const auto csopt =
            solveCsOptSetAssociative(trace, sets, ways, 1u << 12);
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count();

        table.addRow(
            {bench, TextTable::fmt(trace.size()),
             TextTable::fmt(lru_cost), TextTable::fmt(min_cost),
             TextTable::fmt(csopt.minCost),
             TextTable::fmt(100.0 *
                                (static_cast<double>(min_cost) -
                                 static_cast<double>(csopt.minCost)) /
                                static_cast<double>(min_cost),
                            1) +
                 "%",
             TextTable::fmt(csopt.peakStates),
             TextTable::fmt(csopt.expansions),
             csopt.exact ? "yes" : "no (beam)",
             TextTable::fmt(static_cast<std::uint64_t>(ms))});
    }
    table.print(std::cout);

    std::printf(
        "\nexpected shape (paper): CSOPT's realized cost <= MIN's on\n"
        "every trace (often strictly better: it keeps expensive counter\n"
        "blocks); state counts (and hence runtime) grow with footprint\n"
        "— the paper's perl-in-32-minutes vs canneal->6-days effect.\n"
        "Fully optimal handling of the *varying* access stream remains\n"
        "open (iterating CSOPT did not finish for the paper either).\n");
    return 0;
}
