/**
 * @file
 * Ablation (§V-B): CSOPT — cost-sensitive optimal replacement — on
 * captured metadata traces. Reproduces the paper's two findings:
 *  1. accounting for non-uniform miss costs beats Belady's MIN in
 *     realized cost;
 *  2. the search explodes with footprint (the paper reports 32 minutes
 *     for perl and >6 days for canneal; we show state counts growing
 *     and cap the work with a beam).
 *
 * Search effort is reported as deterministic state/expansion counts
 * (wall-clock timing would vary run to run and with --jobs).
 */
#include "common.hpp"

#include <algorithm>
#include <unordered_map>

#include "offline/capture.hpp"
#include "offline/csopt.hpp"
#include "offline/min_sim.hpp"

using namespace maps;
using namespace maps::bench;

namespace {

/** Static miss cost per metadata type: a counter miss may cost a full
 * tree traversal; hashes and tree nodes cost one access. */
std::uint64_t
missCostOf(const MetadataAccess &acc, std::uint32_t tree_levels)
{
    return acc.type == MetadataType::Counter ? 1 + tree_levels : 1;
}

/** Realized cost of LRU or MIN on the fixed captured trace. */
std::uint64_t
costOf(const std::vector<CsOptAccess> &trace, std::uint32_t sets,
       std::uint32_t ways, bool use_min)
{
    std::vector<std::vector<CsOptAccess>> per_set(sets);
    for (const auto &acc : trace)
        per_set[blockIndex(acc.block) % sets].push_back(acc);
    std::uint64_t total = 0;
    for (const auto &set_trace : per_set) {
        // Direct per-set simulation charging each miss its cost
        // (min_sim reports counts, not positions).
        const std::vector<CsOptAccess> &t = set_trace;
        std::uint64_t cost = 0;
        if (use_min) {
            // next-use MIN with cost charging
            std::vector<std::uint64_t> next_use(t.size());
            std::unordered_map<Addr, std::uint64_t> upcoming;
            for (std::size_t i = t.size(); i-- > 0;) {
                const auto it = upcoming.find(t[i].block);
                next_use[i] = it == upcoming.end() ? ~std::uint64_t{0}
                                                   : it->second;
                upcoming[t[i].block] = i;
            }
            std::unordered_map<Addr, std::uint64_t> resident;
            for (std::size_t i = 0; i < t.size(); ++i) {
                const auto it = resident.find(t[i].block);
                if (it != resident.end()) {
                    it->second = next_use[i];
                    continue;
                }
                cost += t[i].missCost;
                if (resident.size() >= ways) {
                    auto victim = resident.begin();
                    for (auto c = resident.begin(); c != resident.end();
                         ++c)
                        if (c->second > victim->second)
                            victim = c;
                    resident.erase(victim);
                }
                resident.emplace(t[i].block, next_use[i]);
            }
        } else {
            // true LRU with cost charging
            std::vector<Addr> order; // MRU at back
            for (const auto &acc : t) {
                auto pos =
                    std::find(order.begin(), order.end(), acc.block);
                if (pos != order.end()) {
                    order.erase(pos);
                    order.push_back(acc.block);
                    continue;
                }
                cost += acc.missCost;
                if (order.size() >= ways)
                    order.erase(order.begin());
                order.push_back(acc.block);
            }
        }
        total += cost;
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"abl_csopt",
                    "Ablation: CSOPT cost-sensitive optimal replacement",
                    "§V-B (The Optimal Eviction Policy / CSOPT [10])"},
                   opts);

    // Tiny 4-way cache (the paper also runs CSOPT at 4 ways) over a
    // truncated trace so the exact search is feasible.
    const std::uint32_t sets = 16, ways = 4;
    const std::size_t trace_cap = static_cast<std::size_t>(
        10'000 * opts.scale < 2'000 ? 2'000 : 10'000 * opts.scale);

    std::vector<Cell> cells;
    for (const std::string bench :
         {"perl", "gcc", "libquantum", "canneal"}) {
        cells.push_back({bench, 0, [=](const Cell &cell) {
            auto cfg = defaultConfig(bench, opts, 300'000, 100'000);
            cfg.secure.cacheEnabled = false; // capture the raw stream
            SecureMemorySim sim(cfg);
            std::vector<MetadataAccess> stream;
            sim.setMetadataTap([&stream](const MetadataAccess &a) {
                stream.push_back(a);
            });
            const auto report = sim.run();
            if (stream.size() > trace_cap)
                stream.resize(trace_cap);

            const auto tree_levels =
                MetadataLayout(cfg.secure.layout).numTreeLevels();
            std::vector<CsOptAccess> trace;
            for (const auto &acc : stream)
                trace.push_back(
                    {acc.addr, missCostOf(acc, tree_levels)});

            const auto lru_cost = costOf(trace, sets, ways, false);
            const auto min_cost = costOf(trace, sets, ways, true);
            const auto csopt =
                solveCsOptSetAssociative(trace, sets, ways, 1u << 12);

            Row row;
            row.add("benchmark", bench)
                .add("trace len",
                     static_cast<std::uint64_t>(trace.size()))
                .add("LRU cost", lru_cost)
                .add("MIN cost", min_cost)
                .add("CSOPT cost", csopt.minCost)
                .add("CSOPT vs MIN",
                     TextTable::fmt(
                         100.0 *
                             (static_cast<double>(min_cost) -
                              static_cast<double>(csopt.minCost)) /
                             static_cast<double>(min_cost),
                         1) +
                         "%")
                .add("peak states", csopt.peakStates)
                .add("expansions", csopt.expansions)
                .add("exact", csopt.exact ? "yes" : "no (beam)");
            CellOutput out;
            out.add(std::move(row));
            addMetricsRows(out, cell.id, report);
            return out;
        }});
    }
    exp.runAndEmit(cells);

    exp.note(
        "expected shape (paper): CSOPT's realized cost <= MIN's on\n"
        "every trace (often strictly better: it keeps expensive counter\n"
        "blocks); state counts (and hence runtime) grow with footprint\n"
        "— the paper's perl-in-32-minutes vs canneal->6-days effect.\n"
        "Fully optimal handling of the *varying* access stream remains\n"
        "open (iterating CSOPT did not finish for the paper either).");
    return exp.finish();
}
