/**
 * @file
 * Fault-injection coverage campaign: the end-to-end proof that the
 * modeled protection detects tampering.
 *
 * For every workload x campaign cell, a FaultInjector is attached to
 * the secure memory controller and a seeded plan of bit-flips and
 * stale replays is driven into each metadata surface; the resulting
 * per-class coverage matrix (injected / detected / silent / masked /
 * dormant + detection latency) is reported, and the bench *fails* if a
 * tree- or MAC-covered class shows any silent or undetected corruption.
 * Two deliberately uncovered classes are part of the matrix: data
 * tampering with the MAC check disabled, and metadata-cache (trusted
 * on-chip SRAM) corruption — both must show zero detections, proving
 * the campaign measures the protection rather than assuming it.
 *
 * With --check, a live-tamper campaign additionally corrupts the
 * controller's real CounterStore and asserts the maps::check shadow
 * diverges (tallied as expected divergences), giving a second,
 * independent detector for the same injections.
 *
 * Runs under ctest (label: quick) at --scale=0.05; deterministic per
 * seed. Set MAPS_FAULT_POISON_CELL=1 to add a deliberately failing
 * cell (exercises the runner's per-cell failure isolation in CI).
 */
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "core/runner.hpp"
#include "core/simulator.hpp"
#include "fault/fault.hpp"
#include "util/logging.hpp"

namespace {

using namespace maps;
using runner::Cell;
using runner::CellOutput;
using runner::Row;

/** One named fault campaign: a plan template applied per workload. */
struct Campaign
{
    std::string name;
    std::vector<std::string> specs;
    bool macCheck = true;
    bool tamperLive = false;
};

std::vector<Campaign>
campaigns(bool with_live_tamper)
{
    std::vector<Campaign> out;
    // Every covered surface, both fault kinds: staggered one-shot
    // triggers plus low-probability repeats for volume.
    out.push_back({"covered",
                   {
                       "flip:counter-minor@req=5",
                       "replay:counter-minor@p=0.01",
                       "flip:counter-major@req=9",
                       "replay:counter-major@p=0.01",
                       "flip:tree@req=13",
                       "replay:tree@p=0.01",
                       "flip:mac@req=17",
                       "replay:mac@p=0.01",
                       "flip:data@req=21",
                       "replay:data@p=0.01",
                   },
                   true,
                   false});
    // Trusted on-chip SRAM: tree+MAC verification cannot see it.
    out.push_back({"mdcache",
                   {"flip:mdcache@req=7", "flip:mdcache@p=0.02"},
                   true,
                   false});
    // The demonstrably uncovered configuration: data tampering with the
    // MAC check turned off must sail through undetected.
    out.push_back({"data-noverify",
                   {"flip:data@req=7", "flip:data@p=0.01"},
                   false,
                   false});
    if (with_live_tamper) {
        out.push_back({"live-tamper",
                       {"flip:counter-minor@req=11",
                        "flip:counter-major@req=23"},
                       true,
                       true});
    }
    return out;
}

/** Surface of a campaign class ("flip:counter-minor" -> CounterMinor). */
fault::FaultSurface
surfaceOf(const std::string &class_id)
{
    // Reuse the public spec parser on a synthesized spec string.
    fault::FaultSpec spec;
    const auto err =
        fault::FaultPlan::parseSpec(class_id + "@req=0", spec);
    panicIf(!err.empty(), "unparseable class id '" + class_id + "'");
    return spec.surface;
}

/**
 * Per-class verdict. Covered classes must detect everything that was
 * not masked; uncovered classes must detect nothing.
 */
std::string
verdictFor(const fault::FaultClassStats &s, bool covered)
{
    if (s.injected == 0)
        return "NO-INJECTION";
    if (!covered)
        return s.detected == 0 ? "uncovered" : "UNEXPECTED-DETECT";
    if (s.silent != 0)
        return "SILENT";
    if (s.dormant != 0)
        return "DORMANT";
    if (s.detected != s.injected - s.masked)
        return "MISSED";
    return "ok";
}

CellOutput
runCampaign(const Cell &cell, const std::string &workload,
            const Campaign &campaign, const runner::Options &opts)
{
    SimConfig cfg;
    cfg.benchmark = workload;
    cfg.seed = cell.seed;
    // Small caches force traffic to the controller so a tiny trace
    // still exercises fetch/verify on every metadata surface.
    cfg.hierarchy.l1Bytes = 2_KiB;
    cfg.hierarchy.l2Bytes = 4_KiB;
    cfg.hierarchy.llcBytes = 8_KiB;
    cfg.warmupRefs = 2'000;
    cfg.measureRefs = opts.refs(20'000);

    fault::FaultPlan plan;
    plan.seed = cell.seed;
    plan.macCheckEnabled = campaign.macCheck;
    plan.tamperLiveCounters = campaign.tamperLive;
    for (const auto &spec : campaign.specs) {
        const auto err = plan.add(spec);
        panicIf(!err.empty(), "bad spec '" + spec + "': " + err);
    }

    SecureMemorySim sim(cfg);
    fault::FaultInjector injector(sim.controller(), plan);
    sim.controller().setFaultObserver(&injector);
    sim.run();
    injector.finalScrub();
    const fault::FaultReport report = injector.report();

    CellOutput out;
    for (const auto &[class_id, stats] : report.classes) {
        const bool covered =
            fault::surfaceCovered(surfaceOf(class_id), campaign.macCheck);
        Row row;
        row.add("workload", workload);
        row.add("campaign", campaign.name);
        row.add("class", class_id);
        row.add("covered", covered ? "yes" : "no");
        row.add("injected", stats.injected);
        row.add("detected", stats.detected);
        row.add("silent", stats.silent);
        row.add("masked", stats.masked);
        row.add("dormant", stats.dormant);
        row.add("coverage", stats.coverage(), 3);
        row.add("avg lat", stats.avgLatency(), 1);
        row.add("max lat", stats.latencyMax);
        row.add("verdict", verdictFor(stats, covered));
        out.add(std::move(row));
    }

    if (!campaign.tamperLive) {
        // Self-audit: the clean mirror must agree with the controller's
        // functional counters when nothing tampered with them.
        std::vector<Addr> probes;
        for (Addr a = 0; a < 64; ++a)
            probes.push_back(a * kBlockSize);
        const auto mismatch = injector.auditMirror(probes);
        if (!mismatch.empty()) {
            Row row;
            row.add("workload", workload);
            row.add("campaign", campaign.name);
            row.add("class", "(mirror-audit)");
            row.add("verdict", "AUDIT: " + mismatch);
            out.add(std::move(row));
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    auto opts = runner::Options::parse(argc, argv);
    runner::Experiment exp(
        {"fault_coverage",
         "Fault injection: tamper-detection coverage by class",
         "robustness campaign (not a paper figure)"},
        opts);

    const std::vector<std::string> workloads{"libquantum", "canneal"};
    const auto plans = campaigns(opts.check);

    std::vector<Cell> cells;
    for (const auto &workload : workloads) {
        for (const auto &campaign : plans) {
            cells.push_back(Cell{
                workload + "/" + campaign.name, 0,
                [workload, campaign, &opts](const Cell &cell) {
                    return runCampaign(cell, workload, campaign, opts);
                }});
        }
    }
    if (std::getenv("MAPS_FAULT_POISON_CELL")) {
        cells.push_back(Cell{"poison", 0, [](const Cell &) -> CellOutput {
            throw std::runtime_error(
                "deliberate poison-cell failure "
                "(MAPS_FAULT_POISON_CELL)");
        }});
    }

    const auto outputs = exp.runAndEmit(cells);

    // The campaign *is* the assertion: any covered class with a silent
    // or undetected corruption fails the bench.
    int bad = 0;
    std::uint64_t uncovered_classes = 0;
    for (const auto &output : outputs) {
        for (const auto &sr : output.rows) {
            const auto *verdict = sr.row.find("verdict");
            if (!verdict)
                continue;
            const auto text = verdict->text();
            if (text == "uncovered") {
                ++uncovered_classes;
            } else if (text != "ok") {
                ++bad;
                exp.note("FAIL [" + sr.row.find("workload")->text() +
                         "/" + sr.row.find("campaign")->text() + " " +
                         sr.row.find("class")->text() + "] verdict: " +
                         text);
            }
        }
    }
    if (uncovered_classes == 0) {
        ++bad;
        exp.note("FAIL: no demonstrably uncovered class in the matrix "
                 "(expected mdcache + data-noverify)");
    }
    if (opts.check && check::expectedCount() == 0) {
        ++bad;
        exp.note("FAIL: live-tamper campaign produced no expected "
                 "shadow divergences under --check");
    }
    if (bad == 0) {
        exp.note("tamper-detection coverage: all tree/MAC-covered "
                 "classes fully detected; uncovered classes (" +
                 std::to_string(uncovered_classes) +
                 ") undetected as designed.");
    }

    const int rc = exp.finish();
    return bad ? 1 : rc;
}
