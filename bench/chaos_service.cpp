/**
 * @file
 * Chaos acceptance harness for mapsd (see docs/SERVICE.md).
 *
 * Reproduces the service's headline robustness claim end to end, with
 * every disturbance injected deterministically:
 *
 *   1. run the fig3 sweep directly to get the reference byte stream;
 *   2. start mapsd with a chaos spec (mirroring the maps::fault
 *      `kind:surface@trigger` grammar) that SIGKILLs five cell children
 *      and SIGSTOPs two more, by spawn ordinal;
 *   3. submit the same sweep through the client retry loop;
 *   4. once the journal shows the kills and hangs have landed, SIGKILL
 *      the whole daemon process group mid-run and start a fresh daemon
 *      on the same state dir;
 *   5. assert the client still gets a result byte-identical to the
 *      reference — no cell lost, none duplicated — and that the job's
 *      resilience counters honestly record every disturbance.
 *
 * Byte-identity is the strong form of "zero lost / zero duplicated
 * cells": a lost cell drops rows, a duplicated one repeats them, and
 * either changes the bytes.
 *
 * Usage:
 *   chaos_service --mapsd=PATH --drivers-dir=DIR [--work-dir=DIR]
 *                 [--cell-timeout=SECS] [--keep]
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "service/child.hpp"
#include "service/client.hpp"
#include "service/journal.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"

namespace {

namespace fs = std::filesystem;
using namespace maps::service;

int g_failures = 0;

void
expect(bool ok, const std::string &what)
{
    if (ok) {
        std::printf("ok      %s\n", what.c_str());
    } else {
        std::printf("FAILED  %s\n", what.c_str());
        ++g_failures;
    }
}

/** Spawn mapsd as its own process group so chaos cleanup can nuke the
 *  daemon and any orphaned cell children in one kill(-pgid). */
pid_t
spawnDaemon(const std::string &mapsd, const std::string &socket,
            const std::string &stateDir, const std::string &driversDir,
            const std::string &chaos, const std::string &logPath)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    ::setpgid(0, 0);
    const int logFd =
        ::open(logPath.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (logFd >= 0) {
        ::dup2(logFd, STDOUT_FILENO);
        ::dup2(logFd, STDERR_FILENO);
    }
    std::vector<std::string> args = {
        mapsd,
        "--socket=" + socket,
        "--state-dir=" + stateDir,
        "--drivers-dir=" + driversDir,
        "--workers=2",
    };
    if (!chaos.empty())
        args.push_back("--chaos=" + chaos);
    std::vector<char *> argv;
    for (auto &a : args)
        argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(mapsd.c_str(), argv.data());
    ::_exit(127);
}

bool
waitForPing(Client &client, int budgetMs)
{
    for (int waited = 0; waited < budgetMs; waited += 100) {
        Json req = Json::object();
        req.set("v", kProtocolVersion);
        req.set("op", "ping");
        std::string err;
        auto resp = client.rpc(req, err, 2000);
        if (resp && resp->boolean("ok"))
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return false;
}

/** Read the job's journaled resilience counters; zeros when unreadable. */
JobCounters
journaledCounters(const std::string &stateDir, const std::string &jobId,
                  std::string &state)
{
    JobCounters counters;
    state.clear();
    std::string text, err;
    if (!readWholeFile(stateDir + "/jobs/" + jobId + ".json", text, err))
        return counters;
    auto doc = Json::parse(text, err);
    if (!doc)
        return counters;
    state = doc->str("state");
    if (const Json *res = doc->get("resilience"))
        counters.fromJson(*res);
    return counters;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mapsd, driversDir, workDir;
    double cellTimeoutSec = 5.0;
    bool keep = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--mapsd=", 0) == 0)
            mapsd = arg.substr(8);
        else if (arg.rfind("--drivers-dir=", 0) == 0)
            driversDir = arg.substr(14);
        else if (arg.rfind("--work-dir=", 0) == 0)
            workDir = arg.substr(11);
        else if (arg.rfind("--cell-timeout=", 0) == 0)
            cellTimeoutSec = std::atof(arg.substr(15).c_str());
        else if (arg == "--keep")
            keep = true;
        else {
            std::fprintf(stderr, "chaos_service: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        }
    }
    if (mapsd.empty() || driversDir.empty()) {
        std::fprintf(stderr, "usage: chaos_service --mapsd=PATH "
                             "--drivers-dir=DIR [--work-dir=DIR] "
                             "[--cell-timeout=SECS] [--keep]\n");
        return 2;
    }
    if (workDir.empty()) {
        char tmpl[] = "/tmp/maps-chaos-XXXXXX";
        const char *made = ::mkdtemp(tmpl);
        if (made == nullptr) {
            std::fprintf(stderr, "chaos_service: mkdtemp failed\n");
            return 1;
        }
        workDir = made;
    }
    const std::string socket = workDir + "/mapsd.sock";
    const std::string stateDir = workDir + "/state";
    const std::string daemonLog = workDir + "/mapsd.log";

    // 1. Reference bytes from an undisturbed direct run.
    const std::string refPath = workDir + "/reference.out";
    {
        ChildSpec ref;
        ref.exe = driversDir + "/fig3_reuse_cdf";
        ref.argv = {"--quick", "--jobs=4"};
        ref.stdoutPath = refPath;
        ref.stderrPath = workDir + "/reference.err";
        ref.deadlineMs = 600000;
        const ChildOutcome outcome = runChild(ref);
        if (outcome.kind != ChildOutcome::Kind::Exited ||
            outcome.exitCode != 0) {
            std::fprintf(stderr,
                         "chaos_service: reference run failed (%s)\n",
                         outcome.error.c_str());
            return 1;
        }
    }
    std::string refBytes, err;
    readWholeFile(refPath, refBytes, err);

    // 2. Daemon A with deterministic chaos: the first three cell
    // spawns are SIGKILLed, the next two SIGSTOPped (the hard deadline
    // reaps them), and the two spawns after that SIGKILLed again —
    // five killed workers and two hung cells before any cell of the
    // sweep has managed a clean first attempt.
    const std::string chaos =
        "kill:worker@n=1,kill:worker@n=2,kill:worker@n=3,"
        "hang:worker@n=4,hang:worker@n=5,"
        "kill:worker@n=6,kill:worker@n=7";
    const pid_t daemonA = spawnDaemon(mapsd, socket, stateDir,
                                      driversDir, chaos, daemonLog);
    Client client(socket);
    if (!waitForPing(client, 10000)) {
        std::fprintf(stderr, "chaos_service: daemon A never pinged\n");
        ::kill(-daemonA, SIGKILL);
        return 1;
    }

    RequestSpec spec;
    spec.driver = "fig3_reuse_cdf";
    spec.args = {"--quick"};
    spec.metrics = "off";
    spec.cellTimeoutSec = cellTimeoutSec;
    const std::string jobId = spec.jobId();

    RetryPolicy policy;
    policy.budget = 12;
    policy.baseMs = 200;
    policy.capMs = 2000;

    std::optional<Json> final;
    std::string clientErr;
    std::thread ctl([&] {
        final = client.submitAndWait(spec, policy, clientErr, stderr);
    });

    // 3. Wait for the journal to show every injected disturbance has
    // landed, then SIGKILL the daemon's whole process group mid-sweep.
    bool disturbed = false;
    for (int waited = 0; waited < 180000; waited += 100) {
        std::string state;
        const JobCounters c = journaledCounters(stateDir, jobId, state);
        if (c.workersKilled >= 5 && c.hungCells >= 2) {
            disturbed = true;
            break;
        }
        if (state == "done")
            break; // Too late — the asserts below will say so.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    expect(disturbed, "journal recorded >=5 kills and >=2 hangs before "
                      "the daemon SIGKILL");
    ::kill(-daemonA, SIGKILL);
    int status = 0;
    ::waitpid(daemonA, &status, 0);
    std::printf("info    daemon A SIGKILLed mid-sweep\n");

    // 4. Fresh daemon, same state dir: journal recovery re-queues the
    // job; the client's retry loop reconnects on its own.
    const pid_t daemonB = spawnDaemon(mapsd, socket, stateDir,
                                      driversDir, "", daemonLog);
    ctl.join();

    // 5. The final stream must be byte-identical to the reference.
    expect(final.has_value(),
           "client completed through retries (" + clientErr + ")");
    std::string state, result;
    JobCounters counters;
    if (final) {
        state = final->str("state");
        if (const Json *res = final->get("resilience"))
            counters.fromJson(*res);
        if (const Json *r = final->get("result"); r && r->isString())
            result = r->asString();
    }
    expect(state == "done", "job finished done (state=" + state + ")");
    expect(!refBytes.empty() && result == refBytes,
           "result is byte-identical to the undisturbed run (" +
               std::to_string(result.size()) + " vs " +
               std::to_string(refBytes.size()) + " bytes)");
    expect(counters.workersKilled >= 5,
           "counters: workers_killed >= 5 (got " +
               std::to_string(counters.workersKilled) + ")");
    expect(counters.hungCells >= 2,
           "counters: hung_cells >= 2 (got " +
               std::to_string(counters.hungCells) + ")");
    expect(counters.daemonRestarts >= 1,
           "counters: daemon_restarts >= 1 (got " +
               std::to_string(counters.daemonRestarts) + ")");
    expect(counters.requeuedCells >= 1,
           "counters: transiently failed cells were re-queued");

    // Drain daemon B politely; escalate if it lingers.
    ::kill(daemonB, SIGTERM);
    for (int waited = 0; waited < 30000; waited += 100) {
        const pid_t r = ::waitpid(daemonB, &status, WNOHANG);
        if (r == daemonB)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (waited + 100 >= 30000) {
            ::kill(-daemonB, SIGKILL);
            ::waitpid(daemonB, &status, 0);
        }
    }

    if (!keep && g_failures == 0) {
        std::error_code ec;
        fs::remove_all(workDir, ec);
    } else {
        std::printf("info    artifacts kept in %s\n", workDir.c_str());
    }
    std::printf("%s (%d failure%s)\n",
                g_failures == 0 ? "chaos_service: PASS"
                                : "chaos_service: FAIL",
                g_failures, g_failures == 1 ? "" : "s");
    return g_failures == 0 ? 0 : 1;
}
