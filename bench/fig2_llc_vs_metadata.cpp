/**
 * @file
 * Figure 2: how to split the on-chip SRAM budget between the LLC and
 * the metadata cache. Sweeps four LLC sizes x six metadata cache sizes
 * and reports ED^2 normalized to a 2MB-LLC system *without* secure
 * memory — for the suite average (geomean) and for canneal, whose poor
 * locality flips the conclusion (§IV-A).
 */
#include <memory>
#include <unordered_map>

#include "common.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"fig2_llc_vs_metadata",
                    "Figure 2: LLC vs metadata cache sizing (ED^2)",
                    "Figure 2 (§IV-A, Metadata Cache Size)"},
                   opts);

    const std::vector<std::uint64_t> llc_sizes{512_KiB, 1_MiB, 2_MiB,
                                               4_MiB};
    const std::vector<std::uint64_t> md_sizes{16_KiB,  64_KiB, 256_KiB,
                                              512_KiB, 1_MiB,  2_MiB};
    // Suite subset for the "average" series (runtime-bounded; see
    // EXPERIMENTS.md). Mixes memory-intensive and cache-friendly
    // benchmarks like the paper's full-suite geomean does — the
    // cache-friendly ones are what pull the average toward "spend the
    // budget on the LLC".
    const std::vector<std::string> avg_set{
        "libquantum", "fft", "leslie3d", "perl", "gcc",
        "streamcluster"};

    const auto make_cfg = [opts](const std::string &bench,
                                 std::uint64_t llc, std::uint64_t md,
                                 bool secure) {
        auto cfg = defaultConfig(bench, opts, 350'000, 140'000);
        cfg.hierarchy.llcBytes = llc;
        cfg.secure.cache.sizeBytes = md;
        cfg.secureEnabled = secure;
        return cfg;
    };

    // Phase 1: insecure 2MB-LLC baselines, one cell per benchmark.
    std::vector<std::string> baseline_set = avg_set;
    baseline_set.push_back("canneal");
    std::vector<Cell> baseline_cells;
    for (const auto &bench : baseline_set) {
        baseline_cells.push_back(
            {"baseline/" + bench, 0, [=](const Cell &cell) {
                const auto rep =
                    runBenchmark(make_cfg(bench, 2_MiB, 16_KiB, false));
                CellOutput out;
                out.add(Row{}.add("ed2", rep.ed2, 9));
                addMetricsRows(out, cell.id, rep);
                return out;
            }});
    }
    const auto baseline_outputs =
        exp.run(baseline_cells, "fig2/baselines");
    auto baseline_ed2 = std::make_shared<
        std::unordered_map<std::string, double>>();
    for (std::size_t i = 0; i < baseline_set.size(); ++i)
        (*baseline_ed2)[baseline_set[i]] =
            baseline_outputs[i].rows.front().row.num("ed2");

    // Phase 2: the (LLC, md) grid; each cell runs the whole average set
    // plus canneal and produces one normalized row.
    std::vector<Cell> grid;
    for (const auto llc : llc_sizes) {
        for (const auto md : md_sizes) {
            const std::string id = TextTable::fmtSize(llc) + "+" +
                                   TextTable::fmtSize(md);
            grid.push_back({id, 0, [=](const Cell &cell) {
                CellOutput out;
                std::vector<double> ratios;
                std::vector<std::pair<std::string, RunReport>> reports;
                for (const auto &bench : avg_set) {
                    auto rep =
                        runBenchmark(make_cfg(bench, llc, md, true));
                    ratios.push_back(rep.ed2 / baseline_ed2->at(bench));
                    reports.emplace_back(cell.id + "/" + bench,
                                         std::move(rep));
                }
                const double avg = geometricMean(ratios);
                auto canneal_rep = runBenchmark(
                    make_cfg("canneal", llc, md, true));
                const double canneal =
                    canneal_rep.ed2 / baseline_ed2->at("canneal");
                reports.emplace_back(cell.id + "/canneal",
                                     std::move(canneal_rep));

                Row row;
                row.add("LLC", Value::size(llc))
                    .add("md cache", Value::size(md))
                    .add("total SRAM", Value::size(llc + md))
                    .add("avg ED^2 (norm)", avg, 3)
                    .add("canneal ED^2 (norm)", canneal, 3);
                out.add(std::move(row));
                for (const auto &[label, report] : reports)
                    addMetricsRows(out, label, report);
                return out;
            }});
        }
    }
    const auto outputs = exp.runAndEmit(grid, "fig2/grid");

    double best_avg = 1e300, best_canneal = 1e300;
    std::string best_avg_cfg, best_canneal_cfg;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto &row = outputs[i].rows.front().row;
        if (row.num("avg ED^2 (norm)") < best_avg) {
            best_avg = row.num("avg ED^2 (norm)");
            best_avg_cfg = grid[i].id;
        }
        if (row.num("canneal ED^2 (norm)") < best_canneal) {
            best_canneal = row.num("canneal ED^2 (norm)");
            best_canneal_cfg = grid[i].id;
        }
    }

    exp.note("best average config: " + best_avg_cfg + " (" +
             TextTable::fmt(best_avg, 3) + "); best canneal config: " +
             best_canneal_cfg + " (" + TextTable::fmt(best_canneal, 3) +
             ")");
    exp.note(
        "expected shape (paper): for the average workload, spending the\n"
        "budget on LLC wins (big LLC + small metadata cache); canneal\n"
        "prefers trading LLC for metadata cache (512KB+512KB beats\n"
        "1MB+16KB at similar budgets).");
    return exp.finish();
}
