/**
 * @file
 * Figure 2: how to split the on-chip SRAM budget between the LLC and
 * the metadata cache. Sweeps four LLC sizes x six metadata cache sizes
 * and reports ED^2 normalized to a 2MB-LLC system *without* secure
 * memory — for the suite average (geomean) and for canneal, whose poor
 * locality flips the conclusion (§IV-A).
 */
#include "common.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    banner("Figure 2: LLC vs metadata cache sizing (ED^2)",
           "Figure 2 (§IV-A, Metadata Cache Size)", opts);

    const std::vector<std::uint64_t> llc_sizes{512_KiB, 1_MiB, 2_MiB,
                                               4_MiB};
    const std::vector<std::uint64_t> md_sizes{16_KiB,  64_KiB, 256_KiB,
                                              512_KiB, 1_MiB,  2_MiB};
    // Suite subset for the "average" series (runtime-bounded; see
    // EXPERIMENTS.md). Mixes memory-intensive and cache-friendly
    // benchmarks like the paper's full-suite geomean does — the
    // cache-friendly ones are what pull the average toward "spend the
    // budget on the LLC".
    const std::vector<std::string> avg_set{
        "libquantum", "fft", "leslie3d", "perl", "gcc",
        "streamcluster"};

    const auto make_cfg = [&](const std::string &bench,
                              std::uint64_t llc, std::uint64_t md,
                              bool secure) {
        auto cfg = defaultConfig(bench, opts, 350'000, 140'000);
        cfg.hierarchy.llcBytes = llc;
        cfg.secure.cache.sizeBytes = md;
        cfg.secureEnabled = secure;
        return cfg;
    };

    // Baselines: 2MB LLC, no secure memory.
    std::printf("computing insecure 2MB-LLC baselines...\n");
    std::unordered_map<std::string, double> baseline_ed2;
    for (const auto &bench : avg_set) {
        baseline_ed2[bench] =
            runBenchmark(make_cfg(bench, 2_MiB, 16_KiB, false)).ed2;
    }
    baseline_ed2["canneal"] =
        runBenchmark(make_cfg("canneal", 2_MiB, 16_KiB, false)).ed2;

    TextTable table({"LLC", "md cache", "total SRAM",
                     "avg ED^2 (norm)", "canneal ED^2 (norm)"});
    double best_avg = 1e300, best_canneal = 1e300;
    std::string best_avg_cfg, best_canneal_cfg;
    for (const auto llc : llc_sizes) {
        for (const auto md : md_sizes) {
            std::vector<double> ratios;
            for (const auto &bench : avg_set) {
                const auto rep = runBenchmark(
                    make_cfg(bench, llc, md, true));
                ratios.push_back(rep.ed2 / baseline_ed2[bench]);
            }
            const double avg = geometricMean(ratios);
            const auto canneal_rep =
                runBenchmark(make_cfg("canneal", llc, md, true));
            const double canneal =
                canneal_rep.ed2 / baseline_ed2["canneal"];

            const std::string cfg_name =
                TextTable::fmtSize(llc) + "+" + TextTable::fmtSize(md);
            if (avg < best_avg) {
                best_avg = avg;
                best_avg_cfg = cfg_name;
            }
            if (canneal < best_canneal) {
                best_canneal = canneal;
                best_canneal_cfg = cfg_name;
            }
            table.addRow({TextTable::fmtSize(llc),
                          TextTable::fmtSize(md),
                          TextTable::fmtSize(llc + md),
                          TextTable::fmt(avg, 3),
                          TextTable::fmt(canneal, 3)});
        }
        table.addRule();
    }
    table.print(std::cout);

    std::printf("\nbest average config: %s (%.3f); best canneal config: "
                "%s (%.3f)\n",
                best_avg_cfg.c_str(), best_avg, best_canneal_cfg.c_str(),
                best_canneal);
    std::printf(
        "expected shape (paper): for the average workload, spending the\n"
        "budget on LLC wins (big LLC + small metadata cache); canneal\n"
        "prefers trading LLC for metadata cache (512KB+512KB beats\n"
        "1MB+16KB at similar budgets).\n");
    return 0;
}
