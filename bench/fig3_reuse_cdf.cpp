/**
 * @file
 * Figure 3: cumulative distribution of metadata reuse distance, split by
 * metadata type, for the six representative benchmarks, under a 2MB LLC
 * with no metadata cache. Distances are reported in bytes (distinct
 * 64B metadata blocks x 64), with the paper's 288KB marker (nine
 * metadata blocks per page x 2MB/4KB pages).
 */
#include "common.hpp"

#include "analysis/reuse.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"fig3_reuse_cdf",
                    "Figure 3: reuse distance CDF per metadata type",
                    "Figure 3 (§IV-C, Reuse Distance)"},
                   opts);

    // CDF sample points in bytes.
    const std::vector<std::uint64_t> points{
        512,     1_KiB,   4_KiB,  16_KiB, 64_KiB,
        288_KiB, 1_MiB,   4_MiB,  16_MiB, 64_MiB};

    std::vector<Cell> cells;
    for (const std::string &benchmark : figure3Benchmarks()) {
        cells.push_back({benchmark, 0, [=](const Cell &cell) {
            auto cfg = defaultConfig(benchmark, opts, 1'500'000,
                                     300'000);
            cfg.secure.cacheEnabled = false; // paper: no metadata cache
            SecureMemorySim sim(cfg);
            ReuseDistanceAnalyzer analyzer;
            sim.setMetadataTap(
                [&analyzer](const MetadataAccess &a) {
                    analyzer.observe(a);
                });
            const auto report = sim.run();

            const std::string section =
                "benchmark: " + benchmark + " (LLC MPKI " +
                TextTable::fmt(report.llcMpki, 1) + ")";
            CellOutput out;
            for (const auto type :
                 {MetadataType::Counter, MetadataType::TreeNode,
                  MetadataType::Hash}) {
                const auto &hist = analyzer.typeHistogram(type);
                Row row;
                row.add("type \\ dist<=", metadataTypeName(type));
                for (const auto p : points) {
                    row.add(TextTable::fmtSize(p),
                            100.0 * hist.cumulativeAtOrBelow(
                                        p / kBlockSize),
                            1);
                }
                out.add(section, std::move(row));
            }
            addMetricsRows(out, cell.id, report);
            return out;
        }});
    }
    exp.runAndEmit(cells);

    exp.note(
        "expected shape (paper): tree nodes shortest (~90% <= 4KB);\n"
        "canneal counters ~50% beyond 1MB; libquantum counters >90%\n"
        "<= 4KB; libquantum hashes ~87.5% short with the rest at the\n"
        "4MB array size; slight rises near the 288KB marker.");
    return exp.finish();
}
