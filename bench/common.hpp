/**
 * @file
 * Shared plumbing for the figure/table benches, now a thin veneer over
 * the maps::runner experiment harness (src/core/runner.hpp): every
 * driver parses the common CLI (--quick/--full/--scale, --seed, --jobs,
 * --format, --out), declares its sweep as a grid of cells, and lets
 * ExperimentRunner execute them in parallel and render the rows through
 * the selected ResultSink.
 *
 * Scaling: the paper simulates 500M instructions per benchmark on a
 * cluster; these harnesses default to a few million references per run
 * so the whole suite finishes in minutes. Pass --quick for a fast
 * sanity sweep or --full for a larger one; shapes are stable across
 * scales (EXPERIMENTS.md records the defaults used).
 */
#ifndef MAPS_BENCH_COMMON_HPP
#define MAPS_BENCH_COMMON_HPP

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "core/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace maps::bench {

using runner::Cell;
using runner::CellOutput;
using runner::Experiment;
using runner::ExperimentMeta;
using runner::ExperimentRunner;
using runner::Options;
using runner::Row;
using runner::SectionRow;
using runner::Value;

/** Baseline configuration shared by the experiments (Table I shapes). */
inline SimConfig
defaultConfig(const std::string &benchmark, const Options &opts,
              std::uint64_t measure_base = 800'000,
              std::uint64_t warmup_base = 250'000)
{
    SimConfig cfg;
    cfg.benchmark = benchmark;
    cfg.seed = opts.seed;
    cfg.warmupRefs = opts.refs(warmup_base);
    cfg.measureRefs = opts.refs(measure_base);
    cfg.secure.layout.protectedBytes = 256_MiB;
    cfg.useDram = true;
    return cfg;
}

/**
 * Append the run's metrics-registry export to a cell's output, honoring
 * the process --metrics level (runner::metricsLevel()):
 *
 *   off      nothing — the default bench output (and every golden) is
 *            byte-identical to a build without the registry;
 *   summary  one "maps::metrics" row per derived metric;
 *   full     summary plus one "maps::metrics counters" row per raw
 *            counter (warmup/measure/total windows) and one
 *            "maps::metrics histograms" row per distribution.
 *
 * The rows ride the normal CellOutput, so ordering, --resume
 * checkpoints and --jobs independence all hold for them automatically.
 * Call once per simulation run, from the cell's work function.
 */
inline void
addMetricsRows(CellOutput &out, const std::string &cell,
               const RunReport &report)
{
    const auto level = runner::metricsLevel();
    if (level == runner::MetricsLevel::Off)
        return;
    const auto &ex = report.metricsExport;
    for (const auto &d : ex.derived) {
        Row row;
        row.add("schema", ex.schema)
            .add("cell", cell)
            .add("name", d.name)
            .add("value", d.value, d.precision);
        out.add("maps::metrics", std::move(row));
    }
    if (level != runner::MetricsLevel::Full)
        return;
    for (const auto &c : ex.counters) {
        Row row;
        row.add("schema", ex.schema)
            .add("cell", cell)
            .add("name", c.name)
            .add("warmup", c.warmup)
            .add("measure", c.measure)
            .add("total", c.total);
        out.add("maps::metrics counters", std::move(row));
    }
    const auto bucketText = [](const std::vector<std::uint64_t> &buckets) {
        // Sparse "bucket_index:count" pairs; buckets are log2 latency
        // bins (see util/histogram.hpp).
        std::string text;
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            if (!buckets[i])
                continue;
            if (!text.empty())
                text += ' ';
            text += std::to_string(i) + ":" + std::to_string(buckets[i]);
        }
        return text.empty() ? std::string("-") : text;
    };
    for (const auto &h : ex.histograms) {
        Row row;
        row.add("schema", ex.schema)
            .add("cell", cell)
            .add("name", h.name)
            .add("total_count", h.totalCount)
            .add("warmup_buckets", bucketText(h.warmupBuckets))
            .add("measure_buckets", bucketText(h.measureBuckets));
        out.add("maps::metrics histograms", std::move(row));
    }
}

} // namespace maps::bench

#endif // MAPS_BENCH_COMMON_HPP
