/**
 * @file
 * Shared plumbing for the figure/table benches, now a thin veneer over
 * the maps::runner experiment harness (src/core/runner.hpp): every
 * driver parses the common CLI (--quick/--full/--scale, --seed, --jobs,
 * --format, --out), declares its sweep as a grid of cells, and lets
 * ExperimentRunner execute them in parallel and render the rows through
 * the selected ResultSink.
 *
 * Scaling: the paper simulates 500M instructions per benchmark on a
 * cluster; these harnesses default to a few million references per run
 * so the whole suite finishes in minutes. Pass --quick for a fast
 * sanity sweep or --full for a larger one; shapes are stable across
 * scales (EXPERIMENTS.md records the defaults used).
 */
#ifndef MAPS_BENCH_COMMON_HPP
#define MAPS_BENCH_COMMON_HPP

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "core/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace maps::bench {

using runner::Cell;
using runner::CellOutput;
using runner::Experiment;
using runner::ExperimentMeta;
using runner::ExperimentRunner;
using runner::Options;
using runner::Row;
using runner::SectionRow;
using runner::Value;

/** Baseline configuration shared by the experiments (Table I shapes). */
inline SimConfig
defaultConfig(const std::string &benchmark, const Options &opts,
              std::uint64_t measure_base = 800'000,
              std::uint64_t warmup_base = 250'000)
{
    SimConfig cfg;
    cfg.benchmark = benchmark;
    cfg.seed = opts.seed;
    cfg.warmupRefs = opts.refs(warmup_base);
    cfg.measureRefs = opts.refs(measure_base);
    cfg.secure.layout.protectedBytes = 256_MiB;
    cfg.useDram = true;
    return cfg;
}

} // namespace maps::bench

#endif // MAPS_BENCH_COMMON_HPP
