/**
 * @file
 * Shared plumbing for the figure/table benches: option parsing, default
 * configurations, and reporting helpers. Every bench prints the rows or
 * series the corresponding paper figure plots.
 *
 * Scaling: the paper simulates 500M instructions per benchmark on a
 * cluster; these harnesses default to a few million references per run
 * so the whole suite finishes in minutes on one core. Pass --quick for
 * a fast sanity sweep or --full for a larger one; shapes are stable
 * across scales (EXPERIMENTS.md records the defaults used).
 */
#ifndef MAPS_BENCH_COMMON_HPP
#define MAPS_BENCH_COMMON_HPP

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace maps::bench {

struct Options
{
    double scale = 1.0;
    std::uint64_t seed = 1;

    static Options
    parse(int argc, char **argv)
    {
        Options opts;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--quick") == 0)
                opts.scale = 0.25;
            else if (std::strcmp(argv[i], "--full") == 0)
                opts.scale = 4.0;
            else if (std::strncmp(argv[i], "--scale=", 8) == 0)
                opts.scale = std::atof(argv[i] + 8);
            else if (std::strncmp(argv[i], "--seed=", 7) == 0)
                opts.seed = std::strtoull(argv[i] + 7, nullptr, 10);
            else
                std::fprintf(stderr, "unknown option: %s\n", argv[i]);
        }
        return opts;
    }

    std::uint64_t
    refs(std::uint64_t base) const
    {
        const auto scaled = static_cast<std::uint64_t>(
            static_cast<double>(base) * scale);
        return scaled < 10'000 ? 10'000 : scaled;
    }
};

/** Baseline configuration shared by the experiments (Table I shapes). */
inline SimConfig
defaultConfig(const std::string &benchmark, const Options &opts,
              std::uint64_t measure_base = 800'000,
              std::uint64_t warmup_base = 250'000)
{
    SimConfig cfg;
    cfg.benchmark = benchmark;
    cfg.seed = opts.seed;
    cfg.warmupRefs = opts.refs(warmup_base);
    cfg.measureRefs = opts.refs(measure_base);
    cfg.secure.layout.protectedBytes = 256_MiB;
    cfg.useDram = true;
    return cfg;
}

/** Print the standard bench banner. */
inline void
banner(const std::string &title, const std::string &paper_ref,
       const Options &opts)
{
    std::printf("================================================="
                "=====================\n");
    std::printf("MAPS reproduction | %s\n", title.c_str());
    std::printf("paper reference   | %s\n", paper_ref.c_str());
    std::printf("scale             | %.2fx (use --quick / --full / "
                "--scale=X)\n",
                opts.scale);
    std::printf("================================================="
                "=====================\n\n");
}

} // namespace maps::bench

#endif // MAPS_BENCH_COMMON_HPP
