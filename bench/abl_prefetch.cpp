/**
 * @file
 * Ablation (extension): next-block metadata prefetching. Spatial data
 * locality translates into *sequential* metadata block access (§IV-B),
 * so a trivially simple next-block prefetcher should capture streaming
 * benchmarks' metadata misses — and waste traffic on scattered ones.
 */
#include "common.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"abl_prefetch",
                    "Ablation: next-block metadata prefetching "
                    "(extension)",
                    "§IV-B (Amount of Data Protected) + §VI directions"},
                   opts);

    std::vector<Cell> cells;
    for (const std::string bench :
         {"libquantum", "streamcluster", "fft", "leslie3d", "canneal",
          "mcf"}) {
        cells.push_back({bench, 0, [=](const Cell &cell) {
            auto cfg = defaultConfig(bench, opts, 600'000, 200'000);
            cfg.secure.prefetchNextMetadata = false;
            const auto off = runBenchmark(cfg);
            cfg.secure.prefetchNextMetadata = true;
            const auto on = runBenchmark(cfg);

            const auto pct = [](double a, double b) {
                return b > 0.0 ? TextTable::fmt(100.0 * (a - b) / b, 1) +
                                     "%"
                               : std::string("-");
            };
            Row row;
            row.add("benchmark", bench)
                .add("md misses (off)", off.mdCache.totalMisses())
                .add("md misses (on)", on.mdCache.totalMisses())
                .add("miss delta",
                     pct(static_cast<double>(on.mdCache.totalMisses()),
                         static_cast<double>(
                             off.mdCache.totalMisses())))
                .add("prefetches", on.controller.prefetchesIssued)
                .add("md traffic (off)",
                     off.controller.metadataMemAccesses())
                .add("md traffic (on)",
                     on.controller.metadataMemAccesses())
                .add("traffic delta",
                     pct(static_cast<double>(
                             on.controller.metadataMemAccesses()),
                         static_cast<double>(
                             off.controller.metadataMemAccesses())));
            CellOutput out;
            out.add(std::move(row));
            addMetricsRows(out, cell.id + "/off", off);
            addMetricsRows(out, cell.id + "/on", on);
            return out;
        }});
    }
    exp.runAndEmit(cells);

    exp.note(
        "expected shape: streaming workloads (libquantum,\n"
        "streamcluster, fft) see large demand-miss drops at roughly\n"
        "traffic-neutral cost (the prefetch was going to be fetched\n"
        "anyway); scattered workloads (canneal, mcf) waste traffic.");
    return exp.finish();
}
