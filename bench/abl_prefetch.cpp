/**
 * @file
 * Ablation (extension): next-block metadata prefetching. Spatial data
 * locality translates into *sequential* metadata block access (§IV-B),
 * so a trivially simple next-block prefetcher should capture streaming
 * benchmarks' metadata misses — and waste traffic on scattered ones.
 */
#include "common.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    banner("Ablation: next-block metadata prefetching (extension)",
           "§IV-B (Amount of Data Protected) + §VI directions", opts);

    TextTable table({"benchmark", "md misses (off)", "md misses (on)",
                     "miss delta", "prefetches", "md traffic (off)",
                     "md traffic (on)", "traffic delta"});
    for (const char *bench :
         {"libquantum", "streamcluster", "fft", "leslie3d", "canneal",
          "mcf"}) {
        auto cfg = defaultConfig(bench, opts, 600'000, 200'000);
        cfg.secure.prefetchNextMetadata = false;
        const auto off = runBenchmark(cfg);
        cfg.secure.prefetchNextMetadata = true;
        const auto on = runBenchmark(cfg);

        const auto pct = [](double a, double b) {
            return b > 0.0
                       ? TextTable::fmt(100.0 * (a - b) / b, 1) + "%"
                       : "-";
        };
        table.addRow(
            {bench, TextTable::fmt(off.mdCache.totalMisses()),
             TextTable::fmt(on.mdCache.totalMisses()),
             pct(static_cast<double>(on.mdCache.totalMisses()),
                 static_cast<double>(off.mdCache.totalMisses())),
             TextTable::fmt(on.controller.prefetchesIssued),
             TextTable::fmt(off.controller.metadataMemAccesses()),
             TextTable::fmt(on.controller.metadataMemAccesses()),
             pct(static_cast<double>(
                     on.controller.metadataMemAccesses()),
                 static_cast<double>(
                     off.controller.metadataMemAccesses()))});
    }
    table.print(std::cout);

    std::printf(
        "\nexpected shape: streaming workloads (libquantum,\n"
        "streamcluster, fft) see large demand-miss drops at roughly\n"
        "traffic-neutral cost (the prefetch was going to be fetched\n"
        "anyway); scattered workloads (canneal, mcf) waste traffic.\n");
    return 0;
}
