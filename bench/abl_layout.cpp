/**
 * @file
 * Ablation (§IV, Table II): PoisonIvy split counters vs Intel SGX
 * monolithic counters. SGX's 8B per-block counters shrink a counter
 * block's coverage from 4KB to 512B, making counter blocks behave like
 * hash blocks (the paper notes this explicitly) — more counter blocks,
 * longer reuse distances, more metadata traffic.
 */
#include "common.hpp"

#include <algorithm>

#include "analysis/reuse.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"abl_layout",
                    "Ablation: PI split counters vs SGX monolithic "
                    "counters",
                    "§IV / Table II (counter organization)"},
                   opts);

    std::vector<Cell> cells;
    for (const std::string bench : {"canneal", "libquantum", "fft"}) {
        for (const auto mode :
             {CounterMode::SplitPi, CounterMode::MonolithicSgx}) {
            const std::string id =
                bench + "/" + counterModeName(mode);
            cells.push_back({id, 0, [=](const Cell &cell) {
                auto cfg = defaultConfig(bench, opts, 1'200'000,
                                         250'000);
                cfg.measureRefs = std::max<std::uint64_t>(
                    cfg.measureRefs, 1'000'000);
                cfg.secure.layout.counterMode = mode;

                // Reuse shape measured with the cache disabled (as in
                // Fig. 3), traffic with the default 64KB cache.
                auto nocache_cfg = cfg;
                nocache_cfg.secure.cacheEnabled = false;
                SecureMemorySim probe(nocache_cfg);
                ReuseDistanceAnalyzer analyzer;
                probe.setMetadataTap(
                    [&analyzer](const MetadataAccess &a) {
                        analyzer.observe(a);
                    });
                probe.run();

                const auto report = runBenchmark(cfg);
                const auto &ctr_hist =
                    analyzer.typeHistogram(MetadataType::Counter);
                const auto &hash_hist =
                    analyzer.typeHistogram(MetadataType::Hash);
                Row row;
                row.add("benchmark", bench)
                    .add("layout", counterModeName(mode))
                    .add("ctr blocks touched",
                         analyzer.accesses(MetadataType::Counter) -
                             ctr_hist.totalCount())
                    .add("ctr reuse<=4KB %",
                         100.0 * ctr_hist.cumulativeAtOrBelow(64), 1)
                    .add("hash reuse<=4KB %",
                         100.0 * hash_hist.cumulativeAtOrBelow(64), 1)
                    .add("md MPKI", report.metadataMpki, 1)
                    .add("mem accesses / request",
                         report.memAccessesPerRequest, 2);
                CellOutput out;
                out.add(std::move(row));
                addMetricsRows(out, cell.id, report);
                return out;
            }});
        }
    }
    exp.runAndEmit(cells);

    exp.note(
        "'ctr blocks touched' = cold (first-touch) counter blocks: 8x\n"
        "more under SGX (512B vs 4KB coverage).\n"
        "expected shape (paper): SGX counter reuse CDFs track the hash\n"
        "CDFs, and metadata traffic rises versus the split-counter\n"
        "organization.");
    return exp.finish();
}
