/**
 * @file
 * Ablation (§VI research directions): the extension policies this repo
 * adds on top of the paper's four —
 *
 *  - cost-lru: eviction accounts for non-uniform miss costs ("the
 *    metadata cache should have an eviction policy that accounts for
 *    multiple miss costs"),
 *  - drrip / drrip-typed: reuse prediction with metadata-type
 *    information ("metadata type and access type should figure into
 *    those replacement policies"),
 *
 * compared against pseudo-LRU across metadata cache sizes, in both the
 * miss-count and the cost-weighted (memory traffic) views.
 */
#include "common.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"abl_policies",
                    "Ablation: cost-aware and type-aware policies "
                    "(extensions)",
                    "§VI (Designing a Metadata Cache — research "
                    "directions)"},
                   opts);

    const std::vector<std::string> policies{"plru", "cost-lru", "drrip",
                                            "drrip-typed", "eva-typed"};
    const std::vector<std::uint64_t> sizes{32_KiB, 64_KiB, 128_KiB};

    std::vector<Cell> cells;
    for (const std::string bench :
         {"canneal", "cactusADM", "mcf", "libquantum"}) {
        for (const auto size : sizes) {
            const std::string id =
                bench + "/" + TextTable::fmtSize(size);
            cells.push_back({id, 0, [=](const Cell &) {
                Row row;
                row.add("md cache", Value::size(size));
                for (const auto &policy : policies) {
                    auto cfg = defaultConfig(bench, opts, 600'000,
                                             200'000);
                    cfg.secure.cache.sizeBytes = size;
                    cfg.secure.cache.policy = policy;
                    const auto report = runBenchmark(cfg);
                    row.add(policy,
                            1000.0 *
                                static_cast<double>(
                                    report.controller
                                        .metadataMemAccesses()) /
                                static_cast<double>(
                                    report.instructions),
                            1);
                }
                CellOutput out;
                out.add("benchmark: " + bench +
                            " (metadata *memory traffic* per "
                            "kilo-instruction)",
                        std::move(row));
                return out;
            }});
        }
    }
    exp.runAndEmit(cells);

    exp.note(
        "expected shape: cost-lru trades extra (cheap) hash misses for\n"
        "fewer (expensive) counter misses, lowering memory traffic on\n"
        "tree-traversal-heavy workloads; typed DRRIP helps when one\n"
        "type thrashes while another has cacheable reuse.");
    return exp.finish();
}
