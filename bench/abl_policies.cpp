/**
 * @file
 * Ablation (§VI research directions): the extension policies this repo
 * adds on top of the paper's four —
 *
 *  - cost-lru: eviction accounts for non-uniform miss costs ("the
 *    metadata cache should have an eviction policy that accounts for
 *    multiple miss costs"),
 *  - drrip / drrip-typed: reuse prediction with metadata-type
 *    information ("metadata type and access type should figure into
 *    those replacement policies"),
 *
 * compared against pseudo-LRU across metadata cache sizes, in both the
 * miss-count and the cost-weighted (memory traffic) views.
 */
#include "common.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    Experiment exp({"abl_policies",
                    "Ablation: cost-aware and type-aware policies "
                    "(extensions)",
                    "§VI (Designing a Metadata Cache — research "
                    "directions)"},
                   opts);

    const std::vector<std::string> policies{"plru", "cost-lru", "drrip",
                                            "drrip-typed", "eva-typed"};
    const std::vector<std::uint64_t> sizes{32_KiB, 64_KiB, 128_KiB};

    std::vector<Cell> cells;
    for (const std::string bench :
         {"canneal", "cactusADM", "mcf", "libquantum"}) {
        for (const auto size : sizes) {
            const std::string id =
                bench + "/" + TextTable::fmtSize(size);
            cells.push_back({id, 0, [=](const Cell &cell) {
                Row row;
                row.add("md cache", Value::size(size));
                std::vector<std::pair<std::string, RunReport>> reports;
                for (const auto &policy : policies) {
                    auto cfg = defaultConfig(bench, opts, 600'000,
                                             200'000);
                    cfg.secure.cache.sizeBytes = size;
                    cfg.secure.cache.policy = policy;
                    auto report = runBenchmark(cfg);
                    row.add(policy,
                            metrics::perKiloInstructions(
                                report.controller
                                    .metadataMemAccesses(),
                                report.instructions),
                            1);
                    reports.emplace_back(cell.id + "/" + policy,
                                         std::move(report));
                }
                CellOutput out;
                out.add("benchmark: " + bench +
                            " (metadata *memory traffic* per "
                            "kilo-instruction)",
                        std::move(row));
                for (const auto &[label, report] : reports)
                    addMetricsRows(out, label, report);
                return out;
            }});
        }
    }
    exp.runAndEmit(cells);

    exp.note(
        "expected shape: cost-lru trades extra (cheap) hash misses for\n"
        "fewer (expensive) counter misses, lowering memory traffic on\n"
        "tree-traversal-heavy workloads; typed DRRIP helps when one\n"
        "type thrashes while another has cacheable reuse.");
    return exp.finish();
}
