/**
 * @file
 * Ablation (§VI research directions): the extension policies this repo
 * adds on top of the paper's four —
 *
 *  - cost-lru: eviction accounts for non-uniform miss costs ("the
 *    metadata cache should have an eviction policy that accounts for
 *    multiple miss costs"),
 *  - drrip / drrip-typed: reuse prediction with metadata-type
 *    information ("metadata type and access type should figure into
 *    those replacement policies"),
 *
 * compared against pseudo-LRU across metadata cache sizes, in both the
 * miss-count and the cost-weighted (memory traffic) views.
 */
#include "common.hpp"

using namespace maps;
using namespace maps::bench;

int
main(int argc, char **argv)
{
    const auto opts = Options::parse(argc, argv);
    banner("Ablation: cost-aware and type-aware policies (extensions)",
           "§VI (Designing a Metadata Cache — research directions)",
           opts);

    const std::vector<std::string> policies{"plru", "cost-lru", "drrip",
                                            "drrip-typed", "eva-typed"};
    const std::vector<std::uint64_t> sizes{32_KiB, 64_KiB, 128_KiB};

    for (const char *bench :
         {"canneal", "cactusADM", "mcf", "libquantum"}) {
        std::printf("benchmark: %s (metadata *memory traffic* per "
                    "kilo-instruction)\n",
                    bench);
        std::vector<std::string> header{"md cache"};
        for (const auto &p : policies)
            header.push_back(p);
        TextTable table(header);
        for (const auto size : sizes) {
            std::vector<std::string> row{TextTable::fmtSize(size)};
            for (const auto &policy : policies) {
                auto cfg = defaultConfig(bench, opts, 600'000, 200'000);
                cfg.secure.cache.sizeBytes = size;
                cfg.secure.cache.policy = policy;
                const auto report = runBenchmark(cfg);
                row.push_back(TextTable::fmt(
                    1000.0 *
                        static_cast<double>(
                            report.controller.metadataMemAccesses()) /
                        static_cast<double>(report.instructions),
                    1));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf(
        "expected shape: cost-lru trades extra (cheap) hash misses for\n"
        "fewer (expensive) counter misses, lowering memory traffic on\n"
        "tree-traversal-heavy workloads; typed DRRIP helps when one\n"
        "type thrashes while another has cacheable reuse.\n");
    return 0;
}
