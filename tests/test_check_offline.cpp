/**
 * @file
 * Cross-checks between the two MIN implementations (PR 2 satellite):
 * the standalone offline simulator (simulateMinFixedTrace) and the
 * oracle-driven BeladyPolicy running inside the production cache must
 * report identical miss counts on any fixed trace — they differ only in
 * tie-breaking among never-reused blocks, which cannot change the miss
 * count. MIN must also lower-bound every online policy on the same
 * trace (the textbook optimality the paper's §V-B setting violates).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "cache/policy_belady.hpp"
#include "cache/replacement.hpp"
#include "mem/fixed_latency.hpp"
#include "offline/capture.hpp"
#include "offline/min_sim.hpp"
#include "offline/oracle.hpp"
#include "secmem/controller.hpp"
#include "util/rng.hpp"

namespace maps {
namespace {

std::uint64_t
missesUnderPolicy(const std::vector<Addr> &trace,
                  const CacheGeometry &geom,
                  std::unique_ptr<ReplacementPolicy> policy)
{
    SetAssociativeCache cache(geom, std::move(policy));
    for (const Addr addr : trace)
        cache.access(addr, false);
    return cache.stats().misses;
}

std::vector<Addr>
randomTrace(std::uint64_t refs, std::uint64_t blocks, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Addr> trace;
    trace.reserve(refs);
    for (std::uint64_t i = 0; i < refs; ++i)
        trace.push_back(rng.nextBounded(blocks) * kBlockSize);
    return trace;
}

/** A trace with genuine reuse structure: strided scans over a working
 * set plus random pointer-chase noise. */
std::vector<Addr>
mixedTrace(std::uint64_t refs, std::uint64_t blocks, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Addr> trace;
    trace.reserve(refs);
    std::uint64_t cursor = 0;
    for (std::uint64_t i = 0; i < refs; ++i) {
        if (rng.nextBool(0.7)) {
            cursor = (cursor + 1) % blocks; // sequential scan
            trace.push_back(cursor * kBlockSize);
        } else {
            trace.push_back(rng.nextBounded(blocks) * kBlockSize);
        }
    }
    return trace;
}

void
expectMinEqualsBelady(const std::vector<Addr> &trace,
                      const CacheGeometry &geom)
{
    const FixedTraceResult offline = simulateMinFixedTrace(trace, geom);

    TraceOracle oracle(trace);
    const std::uint64_t online = missesUnderPolicy(
        trace, geom, std::make_unique<BeladyPolicy>(oracle));

    EXPECT_EQ(offline.misses, online)
        << "offline MIN and BeladyPolicy disagree on the same trace";
    EXPECT_EQ(oracle.divergences(), 0u)
        << "perfect oracle saw live/recorded divergences on a fixed trace";
}

TEST(CheckOffline, MinMatchesBeladyOnSyntheticTraces)
{
    CacheGeometry geom;
    geom.sizeBytes = 4_KiB;
    geom.assoc = 4;
    for (std::uint64_t seed : {1u, 7u, 19u}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        expectMinEqualsBelady(randomTrace(20'000, 256, seed), geom);
        expectMinEqualsBelady(mixedTrace(20'000, 192, seed), geom);
    }
}

TEST(CheckOffline, MinMatchesBeladyAcrossGeometries)
{
    const auto trace = mixedTrace(20'000, 512, 23);
    for (std::uint32_t assoc : {2u, 4u, 8u, 16u}) {
        CacheGeometry geom;
        geom.sizeBytes = 8_KiB;
        geom.assoc = assoc;
        SCOPED_TRACE("assoc=" + std::to_string(assoc));
        expectMinEqualsBelady(trace, geom);
    }
}

// The paper's actual input: a metadata access stream captured from a
// secure-memory profiling run, replayed through both MIN
// implementations at the metadata cache's own geometry.
TEST(CheckOffline, MinMatchesBeladyOnCapturedMetadataTrace)
{
    FixedLatencyMemory memory(100);
    SecureMemoryConfig cfg;
    cfg.layout.protectedBytes = 16_MiB;
    cfg.cache.sizeBytes = 4_KiB;
    cfg.cache.assoc = 4;
    SecureMemoryController controller(cfg, memory);
    TraceCapture capture;
    capture.attach(controller);

    Rng rng(41);
    for (std::uint64_t i = 0; i < 4'000; ++i) {
        MemoryRequest req;
        req.addr = rng.nextBounded(2048) * kBlockSize;
        req.kind = rng.nextBool(0.4) ? RequestKind::Writeback
                                     : RequestKind::Read;
        req.icount = i;
        controller.handleRequest(req);
    }

    const std::vector<Addr> trace = capture.addresses();
    ASSERT_GT(trace.size(), 1'000u);

    CacheGeometry geom;
    geom.sizeBytes = cfg.cache.sizeBytes;
    geom.assoc = cfg.cache.assoc;
    expectMinEqualsBelady(trace, geom);
}

// MIN is a true lower bound for every online policy on a fixed trace.
TEST(CheckOffline, MinLowerBoundsOnlinePolicies)
{
    CacheGeometry geom;
    geom.sizeBytes = 4_KiB;
    geom.assoc = 4;
    const auto trace = mixedTrace(20'000, 256, 47);
    const FixedTraceResult min = simulateMinFixedTrace(trace, geom);

    for (const char *policy : {"lru", "plru", "srrip", "random", "drrip"}) {
        SCOPED_TRACE(policy);
        const std::uint64_t online = missesUnderPolicy(
            trace, geom, makeReplacementPolicy(policy, 13));
        EXPECT_LE(min.misses, online)
            << "MIN reported more misses than online policy " << policy;
    }

    // And the dedicated offline LRU agrees with the production cache's
    // LRU policy exactly.
    const FixedTraceResult lru = simulateLruFixedTrace(trace, geom);
    EXPECT_EQ(lru.misses, missesUnderPolicy(trace, geom,
                                            makeReplacementPolicy("lru")));
}

} // namespace
} // namespace maps
