/**
 * @file
 * Tests for maps::runner — option parsing, deterministic parallel
 * execution, and result-sink round-tripping.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/runner.hpp"
#include "core/simulator.hpp"

namespace maps {
namespace {

using runner::Cell;
using runner::CellOutput;
using runner::CsvSink;
using runner::ExperimentMeta;
using runner::ExperimentRunner;
using runner::JsonlSink;
using runner::Options;
using runner::OutputFormat;
using runner::Row;
using runner::SectionRow;
using runner::TableSink;
using runner::Value;

// ---------------------------------------------------------------------------
// Options parsing.
// ---------------------------------------------------------------------------

TEST(RunnerOptions, Defaults)
{
    Options opts;
    EXPECT_EQ(Options::tryParse({}, opts), "");
    EXPECT_DOUBLE_EQ(opts.scale, 1.0);
    EXPECT_EQ(opts.seed, 1u);
    EXPECT_EQ(opts.jobs, 0u);
    EXPECT_GE(opts.effectiveJobs(), 1u);
    EXPECT_EQ(opts.format, OutputFormat::Table);
    EXPECT_TRUE(opts.outPath.empty());
}

TEST(RunnerOptions, ParsesEveryFlag)
{
    Options opts;
    EXPECT_EQ(Options::tryParse({"--scale=2.5", "--seed=42", "--jobs=3",
                                 "--format=csv", "--out=/tmp/x.csv",
                                 "--no-progress"},
                                opts),
              "");
    EXPECT_DOUBLE_EQ(opts.scale, 2.5);
    EXPECT_EQ(opts.seed, 42u);
    EXPECT_EQ(opts.jobs, 3u);
    EXPECT_EQ(opts.effectiveJobs(), 3u);
    EXPECT_EQ(opts.format, OutputFormat::Csv);
    EXPECT_EQ(opts.outPath, "/tmp/x.csv");
    EXPECT_FALSE(opts.progress);

    EXPECT_EQ(Options::tryParse({"--quick"}, opts), "");
    EXPECT_DOUBLE_EQ(opts.scale, 0.25);
    EXPECT_EQ(Options::tryParse({"--full"}, opts), "");
    EXPECT_DOUBLE_EQ(opts.scale, 4.0);
    EXPECT_EQ(Options::tryParse({"--format=json"}, opts), "");
    EXPECT_EQ(opts.format, OutputFormat::Jsonl);
}

TEST(RunnerOptions, RejectsUnknownFlags)
{
    Options opts;
    EXPECT_NE(Options::tryParse({"--bogus"}, opts), "");
    EXPECT_NE(Options::tryParse({"-q"}, opts), "");
    // Positional operands are errors unless the driver opts in.
    EXPECT_NE(Options::tryParse({"canneal"}, opts), "");
    std::vector<std::string> positionals;
    EXPECT_EQ(Options::tryParse({"canneal", "64"}, opts, &positionals),
              "");
    EXPECT_EQ(positionals, (std::vector<std::string>{"canneal", "64"}));
}

TEST(RunnerOptions, RejectsBadValues)
{
    Options opts;
    EXPECT_NE(Options::tryParse({"--scale=abc"}, opts), "");
    EXPECT_NE(Options::tryParse({"--scale=-1"}, opts), "");
    EXPECT_NE(Options::tryParse({"--scale=0"}, opts), "");
    EXPECT_NE(Options::tryParse({"--scale="}, opts), "");
    EXPECT_NE(Options::tryParse({"--scale=1x"}, opts), "");
    EXPECT_NE(Options::tryParse({"--seed=ten"}, opts), "");
    EXPECT_NE(Options::tryParse({"--jobs=0"}, opts), "");
    EXPECT_NE(Options::tryParse({"--jobs=many"}, opts), "");
    EXPECT_NE(Options::tryParse({"--format=xml"}, opts), "");
    EXPECT_EQ(Options::tryParse({"--help"}, opts), "help");
}

TEST(RunnerOptions, ScaledRefsKeepFloor)
{
    Options opts;
    opts.scale = 0.25;
    EXPECT_EQ(opts.refs(800'000), 200'000u);
    EXPECT_EQ(opts.refs(8'000), 10'000u) << "10k floor";
}

TEST(Runner, DeriveCellSeedIsStableAndDistinct)
{
    const auto a = runner::deriveCellSeed(1, "canneal/64KB");
    EXPECT_EQ(a, runner::deriveCellSeed(1, "canneal/64KB"));
    EXPECT_NE(a, runner::deriveCellSeed(1, "canneal/128KB"));
    EXPECT_NE(a, runner::deriveCellSeed(2, "canneal/64KB"));
    EXPECT_NE(a, 0u);
}

// ---------------------------------------------------------------------------
// Parallel == serial.
// ---------------------------------------------------------------------------

std::vector<Cell>
simCells()
{
    std::vector<Cell> cells;
    for (const std::string bench :
         {"libquantum", "canneal", "fft", "mcf"}) {
        cells.push_back({bench, 0, [bench](const Cell &cell) {
            SimConfig cfg;
            cfg.benchmark = bench;
            cfg.warmupRefs = 10'000;
            cfg.measureRefs = 60'000;
            cfg.seed = cell.seed;
            cfg.secure.layout.protectedBytes = 256_MiB;
            cfg.useDram = false;
            const auto rep = runBenchmark(cfg);
            Row row;
            row.add("benchmark", bench)
                .add("cycles", rep.cycles)
                .add("md MPKI", rep.metadataMpki, 6)
                .add("ed2", rep.ed2, 9);
            return CellOutput{}.add(std::move(row));
        }});
    }
    return cells;
}

std::vector<CellOutput>
runWithJobs(unsigned jobs)
{
    Options opts;
    opts.jobs = jobs;
    opts.progress = false;
    return ExperimentRunner(opts).run(simCells());
}

TEST(Runner, ParallelSweepMatchesSerial)
{
    const auto serial = runWithJobs(1);
    const auto parallel = runWithJobs(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].rows.size(), parallel[i].rows.size());
        const auto &s = serial[i].rows.front().row;
        const auto &p = parallel[i].rows.front().row;
        ASSERT_EQ(s.cols.size(), p.cols.size());
        for (std::size_t c = 0; c < s.cols.size(); ++c) {
            EXPECT_EQ(s.cols[c].first, p.cols[c].first);
            EXPECT_EQ(s.cols[c].second.text(), p.cols[c].second.text())
                << "cell " << i << " column " << s.cols[c].first;
        }
    }
}

TEST(Runner, FillsPerCellSeedsDeterministically)
{
    std::vector<std::uint64_t> seen;
    std::vector<Cell> cells;
    for (const std::string id : {"a", "b"}) {
        cells.push_back({id, 0, [&seen](const Cell &cell) {
            seen.push_back(cell.seed); // jobs=1: runs on this thread
            return CellOutput{};
        }});
    }
    Options opts;
    opts.jobs = 1;
    opts.seed = 7;
    opts.progress = false;
    ExperimentRunner(opts).run(cells);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], runner::deriveCellSeed(7, "a"));
    EXPECT_EQ(seen[1], runner::deriveCellSeed(7, "b"));
    EXPECT_NE(seen[0], seen[1]);
}

TEST(Runner, PropagatesWorkerExceptions)
{
    std::vector<Cell> cells;
    cells.push_back({"ok", 0, [](const Cell &) { return CellOutput{}; }});
    cells.push_back({"boom", 0, [](const Cell &) -> CellOutput {
        throw std::runtime_error("cell failed");
    }});
    Options opts;
    opts.jobs = 2;
    opts.progress = false;
    EXPECT_THROW(ExperimentRunner(opts).run(cells), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Sinks render the same values in every format.
// ---------------------------------------------------------------------------

std::vector<SectionRow>
sampleRows()
{
    std::vector<SectionRow> rows;
    rows.push_back({"", Row{}
                            .add("benchmark", "canneal")
                            .add("md MPKI", 239.151234, 1)
                            .add("cycles", std::uint64_t{14593642})
                            .add("size", Value::size(64 * 1024))});
    rows.push_back({"", Row{}
                            .add("benchmark", "fft")
                            .add("md MPKI", 6.04, 1)
                            .add("cycles", std::uint64_t{1694951})
                            .add("size", Value::size(2 * 1024 * 1024))});
    return rows;
}

template <typename Sink>
std::string
render(const std::vector<SectionRow> &rows)
{
    std::ostringstream os;
    Options opts;
    Sink sink(os);
    sink.begin({"exp", "title", "ref"}, opts);
    for (const auto &r : rows)
        sink.row(r);
    sink.end();
    return os.str();
}

TEST(Sinks, JsonAndCsvRoundTripTableValues)
{
    const auto rows = sampleRows();
    const auto table = render<TableSink>(rows);
    const auto jsonl = render<JsonlSink>(rows);
    const auto csv = render<CsvSink>(rows);

    // Every value the table prints appears verbatim in JSON and CSV:
    // numbers keep their display precision across formats.
    for (const auto &[section, row] : rows) {
        for (const auto &[key, value] : row.cols) {
            const auto text = value.text();
            EXPECT_NE(table.find(text), std::string::npos)
                << key << "=" << text << " missing from table";
            const auto json_frag = value.isNumeric()
                                       ? "\"" + key + "\":" + text
                                       : "\"" + key + "\":\"" + text +
                                             "\"";
            EXPECT_NE(jsonl.find(json_frag), std::string::npos)
                << json_frag << " missing from jsonl:\n"
                << jsonl;
            EXPECT_NE(csv.find(text), std::string::npos)
                << key << "=" << text << " missing from csv";
        }
    }

    EXPECT_EQ(csv.substr(0, csv.find('\n')),
              "experiment,section,benchmark,md MPKI,cycles,size");
    // Two rows per format (+ the CSV header line).
    EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Sinks, TableGroupsRowsBySection)
{
    std::vector<SectionRow> rows;
    rows.push_back({"benchmark: a", Row{}.add("x", "1")});
    rows.push_back({"benchmark: b", Row{}.add("x", "2")});
    rows.push_back({"benchmark: a", Row{}.add("x", "3")});
    const auto table = render<TableSink>(rows);

    const auto a = table.find("benchmark: a");
    const auto b = table.find("benchmark: b");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    EXPECT_LT(a, b) << "sections appear in first-seen order";
    EXPECT_EQ(table.find("benchmark: a", a + 1), std::string::npos)
        << "reappearing section is appended, not duplicated";
}

TEST(Sinks, ValueFormatting)
{
    EXPECT_EQ(Value::num(3.14159, 2).text(), "3.14");
    EXPECT_EQ(Value::num(3.14159, 2).json(), "3.14");
    EXPECT_EQ(Value::integer(12345).text(), "12345");
    EXPECT_EQ(Value::integer(12345).json(), "12345");
    EXPECT_EQ(Value::size(64 * 1024).text(), "64KB");
    EXPECT_EQ(Value("a \"quoted\" name").json(),
              "\"a \\\"quoted\\\" name\"");
    EXPECT_TRUE(Value::num(1.0, 3).isNumeric());
    EXPECT_FALSE(Value("text").isNumeric());
    EXPECT_DOUBLE_EQ(Value::num(2.5, 3).asDouble(), 2.5);
}

} // namespace
} // namespace maps
