/**
 * @file
 * Tests for maps::runner — option parsing, deterministic parallel
 * execution, and result-sink round-tripping.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/dirlock.hpp"
#include "core/runner.hpp"
#include "core/simulator.hpp"

namespace maps {
namespace {

using runner::Cell;
using runner::CellOutput;
using runner::CsvSink;
using runner::ExperimentMeta;
using runner::ExperimentRunner;
using runner::JsonlSink;
using runner::Options;
using runner::OutputFormat;
using runner::Row;
using runner::SectionRow;
using runner::TableSink;
using runner::Value;

// ---------------------------------------------------------------------------
// Options parsing.
// ---------------------------------------------------------------------------

TEST(RunnerOptions, Defaults)
{
    Options opts;
    EXPECT_EQ(Options::tryParse({}, opts), "");
    EXPECT_DOUBLE_EQ(opts.scale, 1.0);
    EXPECT_EQ(opts.seed, 1u);
    EXPECT_EQ(opts.jobs, 0u);
    EXPECT_GE(opts.effectiveJobs(), 1u);
    EXPECT_EQ(opts.format, OutputFormat::Table);
    EXPECT_TRUE(opts.outPath.empty());
}

TEST(RunnerOptions, ParsesEveryFlag)
{
    Options opts;
    EXPECT_EQ(Options::tryParse({"--scale=2.5", "--seed=42", "--jobs=3",
                                 "--format=csv", "--out=/tmp/x.csv",
                                 "--no-progress"},
                                opts),
              "");
    EXPECT_DOUBLE_EQ(opts.scale, 2.5);
    EXPECT_EQ(opts.seed, 42u);
    EXPECT_EQ(opts.jobs, 3u);
    EXPECT_EQ(opts.effectiveJobs(), 3u);
    EXPECT_EQ(opts.format, OutputFormat::Csv);
    EXPECT_EQ(opts.outPath, "/tmp/x.csv");
    EXPECT_FALSE(opts.progress);

    EXPECT_EQ(Options::tryParse({"--quick"}, opts), "");
    EXPECT_DOUBLE_EQ(opts.scale, 0.25);
    EXPECT_EQ(Options::tryParse({"--full"}, opts), "");
    EXPECT_DOUBLE_EQ(opts.scale, 4.0);
    EXPECT_EQ(Options::tryParse({"--format=json"}, opts), "");
    EXPECT_EQ(opts.format, OutputFormat::Jsonl);

    EXPECT_EQ(Options::tryParse({"--cell-timeout=2.5", "--resume=/tmp/ck"},
                                opts),
              "");
    EXPECT_DOUBLE_EQ(opts.cellTimeoutSec, 2.5);
    EXPECT_EQ(opts.resumeDir, "/tmp/ck");
}

TEST(RunnerOptions, RejectsUnknownFlags)
{
    Options opts;
    EXPECT_NE(Options::tryParse({"--bogus"}, opts), "");
    EXPECT_NE(Options::tryParse({"-q"}, opts), "");
    // Positional operands are errors unless the driver opts in.
    EXPECT_NE(Options::tryParse({"canneal"}, opts), "");
    std::vector<std::string> positionals;
    EXPECT_EQ(Options::tryParse({"canneal", "64"}, opts, &positionals),
              "");
    EXPECT_EQ(positionals, (std::vector<std::string>{"canneal", "64"}));
}

TEST(RunnerOptions, RejectsBadValues)
{
    Options opts;
    EXPECT_NE(Options::tryParse({"--scale=abc"}, opts), "");
    EXPECT_NE(Options::tryParse({"--scale=-1"}, opts), "");
    EXPECT_NE(Options::tryParse({"--scale=0"}, opts), "");
    EXPECT_NE(Options::tryParse({"--scale="}, opts), "");
    EXPECT_NE(Options::tryParse({"--scale=1x"}, opts), "");
    EXPECT_NE(Options::tryParse({"--seed=ten"}, opts), "");
    EXPECT_NE(Options::tryParse({"--jobs=0"}, opts), "");
    EXPECT_NE(Options::tryParse({"--jobs=many"}, opts), "");
    EXPECT_NE(Options::tryParse({"--format=xml"}, opts), "");
    EXPECT_NE(Options::tryParse({"--cell-timeout=0"}, opts), "");
    EXPECT_NE(Options::tryParse({"--cell-timeout=abc"}, opts), "");
    EXPECT_NE(Options::tryParse({"--resume="}, opts), "");
    EXPECT_EQ(Options::tryParse({"--help"}, opts), "help");
}

TEST(RunnerOptions, RejectsRepeatedFlags)
{
    // Conflicting repeats were previously last-wins, which let a typo'd
    // command line (or a service composing flags) silently run the
    // wrong sweep; now every repeat is a hard usage error.
    Options opts;
    EXPECT_NE(Options::tryParse({"--jobs=2", "--jobs=4"}, opts), "");
    EXPECT_NE(Options::tryParse({"--seed=1", "--seed=1"}, opts), "")
        << "even an identical repeat is an error";
    EXPECT_NE(Options::tryParse({"--no-progress", "--no-progress"},
                                opts),
              "");
    EXPECT_NE(Options::tryParse({"--out=a", "--out=b"}, opts), "");
    EXPECT_NE(Options::tryParse({"--resume=a", "--resume=b"}, opts), "");
    // The sweep-size spellings are one option with three names.
    EXPECT_NE(Options::tryParse({"--quick", "--quick"}, opts), "");
    EXPECT_NE(Options::tryParse({"--quick", "--full"}, opts), "");
    EXPECT_NE(Options::tryParse({"--scale=2", "--quick"}, opts), "");
    EXPECT_NE(Options::tryParse({"--full", "--scale=0.5"}, opts), "");
    // Distinct options still combine freely.
    EXPECT_EQ(Options::tryParse({"--quick", "--seed=2", "--jobs=2"},
                                opts),
              "");
}

TEST(RunnerOptions, ParsesServiceShardingFlags)
{
    Options opts;
    EXPECT_EQ(Options::tryParse({"--list-cells"}, opts), "");
    EXPECT_TRUE(opts.listCells);

    Options shard;
    EXPECT_EQ(Options::tryParse({"--only-cells=a,b/64KB"}, shard), "");
    EXPECT_EQ(shard.onlyCells,
              (std::vector<std::string>{"a", "b/64KB"}));
    EXPECT_NE(Options::tryParse({"--only-cells="}, shard), "");
    EXPECT_NE(Options::tryParse({"--only-cells=a,,b"}, shard), "")
        << "empty cell id inside the list";
    EXPECT_NE(Options::tryParse({"--only-cells=a,"}, shard), "");
    EXPECT_NE(Options::tryParse({"--only-cells=a", "--only-cells=b"},
                                shard),
              "");
    EXPECT_NE(Options::tryParse({"--list-cells", "--list-cells"}, shard),
              "");
}

TEST(RunnerOptions, ScaledRefsKeepFloor)
{
    Options opts;
    opts.scale = 0.25;
    EXPECT_EQ(opts.refs(800'000), 200'000u);
    EXPECT_EQ(opts.refs(8'000), 10'000u) << "10k floor";
}

TEST(Runner, DeriveCellSeedIsStableAndDistinct)
{
    const auto a = runner::deriveCellSeed(1, "canneal/64KB");
    EXPECT_EQ(a, runner::deriveCellSeed(1, "canneal/64KB"));
    EXPECT_NE(a, runner::deriveCellSeed(1, "canneal/128KB"));
    EXPECT_NE(a, runner::deriveCellSeed(2, "canneal/64KB"));
    EXPECT_NE(a, 0u);
}

// ---------------------------------------------------------------------------
// Parallel == serial.
// ---------------------------------------------------------------------------

std::vector<Cell>
simCells()
{
    std::vector<Cell> cells;
    for (const std::string bench :
         {"libquantum", "canneal", "fft", "mcf"}) {
        cells.push_back({bench, 0, [bench](const Cell &cell) {
            SimConfig cfg;
            cfg.benchmark = bench;
            cfg.warmupRefs = 10'000;
            cfg.measureRefs = 60'000;
            cfg.seed = cell.seed;
            cfg.secure.layout.protectedBytes = 256_MiB;
            cfg.useDram = false;
            const auto rep = runBenchmark(cfg);
            Row row;
            row.add("benchmark", bench)
                .add("cycles", rep.cycles)
                .add("md MPKI", rep.metadataMpki, 6)
                .add("ed2", rep.ed2, 9);
            return CellOutput{}.add(std::move(row));
        }});
    }
    return cells;
}

std::vector<CellOutput>
runWithJobs(unsigned jobs)
{
    Options opts;
    opts.jobs = jobs;
    opts.progress = false;
    return ExperimentRunner(opts).run(simCells());
}

TEST(Runner, ParallelSweepMatchesSerial)
{
    const auto serial = runWithJobs(1);
    const auto parallel = runWithJobs(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].rows.size(), parallel[i].rows.size());
        const auto &s = serial[i].rows.front().row;
        const auto &p = parallel[i].rows.front().row;
        ASSERT_EQ(s.cols.size(), p.cols.size());
        for (std::size_t c = 0; c < s.cols.size(); ++c) {
            EXPECT_EQ(s.cols[c].first, p.cols[c].first);
            EXPECT_EQ(s.cols[c].second.text(), p.cols[c].second.text())
                << "cell " << i << " column " << s.cols[c].first;
        }
    }
}

TEST(Runner, FillsPerCellSeedsDeterministically)
{
    std::vector<std::uint64_t> seen;
    std::vector<Cell> cells;
    for (const std::string id : {"a", "b"}) {
        cells.push_back({id, 0, [&seen](const Cell &cell) {
            seen.push_back(cell.seed); // jobs=1: runs on this thread
            return CellOutput{};
        }});
    }
    Options opts;
    opts.jobs = 1;
    opts.seed = 7;
    opts.progress = false;
    ExperimentRunner(opts).run(cells);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], runner::deriveCellSeed(7, "a"));
    EXPECT_EQ(seen[1], runner::deriveCellSeed(7, "b"));
    EXPECT_NE(seen[0], seen[1]);
}

// ---------------------------------------------------------------------------
// Failure isolation, watchdog, resume.
// ---------------------------------------------------------------------------

TEST(Runner, IsolatesWorkerFailures)
{
    // One poisoned cell in a grid of eight: the other seven must still
    // produce their rows, the failure is recorded with the cell's id
    // and seed, and nothing throws out of run().
    std::vector<Cell> cells;
    for (int i = 0; i < 8; ++i) {
        const std::string id = "cell" + std::to_string(i);
        if (i == 3) {
            cells.push_back({id, 0, [](const Cell &) -> CellOutput {
                throw std::runtime_error("poisoned");
            }});
        } else {
            cells.push_back({id, 0, [id](const Cell &) {
                return CellOutput{}.add(Row{}.add("id", id));
            }});
        }
    }
    Options opts;
    opts.jobs = 4;
    opts.progress = false;
    ExperimentRunner r(opts);
    const auto out = r.run(cells, "grid");

    ASSERT_EQ(out.size(), 8u);
    for (int i = 0; i < 8; ++i) {
        if (i == 3) {
            EXPECT_TRUE(out[i].rows.empty());
        } else {
            ASSERT_EQ(out[i].rows.size(), 1u);
            EXPECT_EQ(out[i].rows[0].row.find("id")->text(),
                      "cell" + std::to_string(i));
        }
    }
    ASSERT_EQ(r.failures().size(), 1u);
    EXPECT_EQ(r.failures()[0].id, "cell3");
    EXPECT_EQ(r.failures()[0].index, 3u);
    EXPECT_EQ(r.failures()[0].phase, "grid");
    EXPECT_EQ(r.failures()[0].error, "poisoned");
    EXPECT_EQ(r.failures()[0].seed,
              runner::deriveCellSeed(opts.seed, "cell3"));
}

TEST(Runner, RecordsNonStdExceptionsToo)
{
    std::vector<Cell> cells;
    cells.push_back({"weird", 0, [](const Cell &) -> CellOutput {
        throw 42; // not derived from std::exception
    }});
    Options opts;
    opts.jobs = 1;
    opts.progress = false;
    ExperimentRunner r(opts);
    r.run(cells);
    ASSERT_EQ(r.failures().size(), 1u);
    EXPECT_EQ(r.failures()[0].error, "unknown exception");
}

TEST(Runner, HeartbeatIsNoOpOutsideWorkers)
{
    EXPECT_NO_THROW(runner::heartbeat());
}

TEST(Runner, CellTimeoutCancelsCooperatively)
{
    std::vector<Cell> cells;
    cells.push_back({"slow", 0, [](const Cell &) -> CellOutput {
        const auto start = std::chrono::steady_clock::now();
        for (;;) {
            runner::heartbeat();
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            if (std::chrono::steady_clock::now() - start >
                std::chrono::seconds(30)) {
                return CellOutput{}; // watchdog failed: finish anyway
            }
        }
    }});
    cells.push_back({"fast", 0, [](const Cell &) {
        return CellOutput{}.add(Row{}.add("ok", "yes"));
    }});
    Options opts;
    opts.jobs = 2;
    opts.progress = false;
    opts.cellTimeoutSec = 0.1;
    ExperimentRunner r(opts);
    const auto out = r.run(cells);
    ASSERT_EQ(r.failures().size(), 1u);
    EXPECT_EQ(r.failures()[0].id, "slow");
    EXPECT_NE(r.failures()[0].error.find("--cell-timeout"),
              std::string::npos);
    ASSERT_EQ(out[1].rows.size(), 1u) << "fast cell unaffected";
}

CellOutput
sampleOutput()
{
    CellOutput out;
    out.add("sec one", Row{}
                           .add("name", "weird \"chars\"\n\t:,{}")
                           .add("pi", 3.14159265358979, 7)
                           .add("count", std::uint64_t{0xFFFFFFFFFFFFFFFFull}));
    out.add(Row{}.add("empty", "").add("neg", -0.0, 3));
    return out;
}

TEST(RunnerCheckpoint, SerializationRoundTripsExactly)
{
    const auto original = sampleOutput();
    const auto text = runner::detail::serializeCellOutput(original);
    CellOutput parsed;
    ASSERT_TRUE(runner::detail::parseCellOutput(text, parsed));
    ASSERT_EQ(parsed.rows.size(), original.rows.size());
    for (std::size_t r = 0; r < original.rows.size(); ++r) {
        EXPECT_EQ(parsed.rows[r].section, original.rows[r].section);
        const auto &a = original.rows[r].row.cols;
        const auto &b = parsed.rows[r].row.cols;
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t c = 0; c < a.size(); ++c) {
            EXPECT_EQ(a[c].first, b[c].first);
            EXPECT_EQ(a[c].second.kind(), b[c].second.kind());
            // Byte-exact rendering in every sink format.
            EXPECT_EQ(a[c].second.text(), b[c].second.text());
            EXPECT_EQ(a[c].second.json(), b[c].second.json());
        }
    }
    // Re-serializing the parse is the identity.
    EXPECT_EQ(runner::detail::serializeCellOutput(parsed), text);
}

TEST(RunnerCheckpoint, ParserRejectsCorruptInput)
{
    const auto text = runner::detail::serializeCellOutput(sampleOutput());
    CellOutput out;
    EXPECT_FALSE(runner::detail::parseCellOutput("", out));
    EXPECT_FALSE(runner::detail::parseCellOutput("garbage", out));
    // Truncation at every prefix length must be rejected, never crash.
    for (std::size_t n = 0; n < text.size(); n += 7)
        EXPECT_FALSE(runner::detail::parseCellOutput(
            text.substr(0, n), out))
            << "accepted a " << n << "-byte truncation";
    std::string flipped = text;
    flipped[flipped.size() / 2] ^= 0x20;
    CellOutput dummy;
    // A flipped byte either fails parse or changes content; it must
    // never be silently accepted as the original.
    if (runner::detail::parseCellOutput(flipped, dummy)) {
        EXPECT_NE(runner::detail::serializeCellOutput(dummy), text);
    }
}

TEST(RunnerCheckpoint, FileNameKeyedOnConfiguration)
{
    Cell cell{"canneal/64KB", 7, nullptr};
    const auto base = runner::detail::checkpointFileName("p", cell, 1.0);
    EXPECT_EQ(base, runner::detail::checkpointFileName("p", cell, 1.0));
    EXPECT_NE(base, runner::detail::checkpointFileName("q", cell, 1.0));
    EXPECT_NE(base, runner::detail::checkpointFileName("p", cell, 2.0));
    Cell other = cell;
    other.seed = 8;
    EXPECT_NE(base, runner::detail::checkpointFileName("p", other, 1.0));
    // The id is sanitized into a portable file name.
    EXPECT_EQ(base.find('/'), std::string::npos);
}

TEST(RunnerResume, SkipsCheckpointedCellsAndMatchesUninterrupted)
{
    namespace fs = std::filesystem;
    const auto dir = fs::temp_directory_path() /
                     ("maps_resume_test_" +
                      std::to_string(::getpid()));
    fs::remove_all(dir);

    std::atomic<int> executions{0};
    const auto make_cells = [&executions] {
        std::vector<Cell> cells;
        for (int i = 0; i < 6; ++i) {
            const std::string id = "cell" + std::to_string(i);
            cells.push_back({id, 0, [id, &executions](const Cell &cell) {
                ++executions;
                return CellOutput{}.add(
                    Row{}.add("id", id).add("seed", cell.seed).add(
                        "x", 0.1 * static_cast<double>(cell.seed % 97),
                        6));
            }});
        }
        return cells;
    };

    Options opts;
    opts.jobs = 2;
    opts.progress = false;
    opts.resumeDir = dir.string();

    // First (uninterrupted) run writes one checkpoint per cell.
    ExperimentRunner first(opts);
    const auto baseline = first.run(make_cells(), "phase");
    EXPECT_EQ(executions.load(), 6);
    EXPECT_EQ(first.resumedCells(), 0u);

    // Simulate a crash that lost some checkpoints: delete two files
    // (the dir also holds the runner's .maps-lock, which is not one).
    std::vector<fs::path> files;
    for (const auto &e : fs::directory_iterator(dir)) {
        if (e.path().filename().string().front() != '.')
            files.push_back(e.path());
    }
    ASSERT_EQ(files.size(), 6u);
    std::sort(files.begin(), files.end());
    fs::remove(files[1]);
    fs::remove(files[4]);

    executions = 0;
    ExperimentRunner second(opts);
    const auto resumed = second.run(make_cells(), "phase");
    EXPECT_EQ(executions.load(), 2) << "only the lost cells re-ran";
    EXPECT_EQ(second.resumedCells(), 4u);

    // The resumed outputs must be byte-identical to the uninterrupted
    // run in every rendered format.
    ASSERT_EQ(resumed.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(runner::detail::serializeCellOutput(resumed[i]),
                  runner::detail::serializeCellOutput(baseline[i]));
    }

    // A torn checkpoint (partial write) is re-run, not trusted.
    {
        std::ifstream in(files[0], std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        const auto full = ss.str();
        std::ofstream torn(files[0],
                           std::ios::binary | std::ios::trunc);
        torn << full.substr(0, full.size() / 2);
    }
    executions = 0;
    ExperimentRunner third(opts);
    third.run(make_cells(), "phase");
    EXPECT_EQ(executions.load(), 1) << "torn checkpoint re-executed";

    fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Checkpoint-directory locking.
// ---------------------------------------------------------------------------

namespace fs_lock_test {

std::filesystem::path
lockTestDir(const std::string &tag)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     ("maps_dirlock_test_" + tag + "_" +
                      std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** A pid that is guaranteed dead: fork a child and reap it. */
pid_t
deadPid()
{
    const pid_t pid = ::fork();
    if (pid == 0)
        ::_exit(0);
    int status = 0;
    ::waitpid(pid, &status, 0);
    return pid;
}

} // namespace fs_lock_test

TEST(RunnerDirLock, AcquireWriteReleaseCycle)
{
    namespace fs = std::filesystem;
    const auto dir = fs_lock_test::lockTestDir("cycle");
    runner::DirLock lock;
    EXPECT_EQ(lock.acquire(dir.string()), "");
    EXPECT_TRUE(lock.held());
    EXPECT_FALSE(lock.adopted());
    const auto path = fs::path(lock.path());
    ASSERT_TRUE(fs::exists(path));
    {
        std::ifstream in(path);
        std::string line;
        std::getline(in, line);
        EXPECT_EQ(line, "maps-lock-v1 pid " +
                            std::to_string(::getpid()));
    }
    lock.release();
    EXPECT_FALSE(lock.held());
    EXPECT_FALSE(fs::exists(path)) << "release removes the lock file";
    fs::remove_all(dir);
}

TEST(RunnerDirLock, SelfOwnedLockIsAdoptedNotReleased)
{
    // A second runner in the same process (e.g. phase two of a driver)
    // must coexist with the first, and its release must not steal the
    // owner's lock file.
    namespace fs = std::filesystem;
    const auto dir = fs_lock_test::lockTestDir("adopt");
    runner::DirLock owner;
    ASSERT_EQ(owner.acquire(dir.string()), "");
    runner::DirLock again;
    EXPECT_EQ(again.acquire(dir.string()), "");
    EXPECT_TRUE(again.held());
    EXPECT_TRUE(again.adopted());
    again.release();
    EXPECT_TRUE(fs::exists(owner.path()))
        << "adopter's release left the owner's file alone";
    owner.release();
    fs::remove_all(dir);
}

TEST(RunnerDirLock, ParentOwnedLockIsAdoptedByChild)
{
    // mapsd holds the job lock while its fork/exec'ed cell children
    // acquire the same checkpoint dir: they must adopt, not fail.
    const auto dir = fs_lock_test::lockTestDir("parent");
    runner::DirLock owner;
    ASSERT_EQ(owner.acquire(dir.string()), "");
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        runner::DirLock child;
        const auto err = child.acquire(dir.string());
        const bool ok = err.empty() && child.held() && child.adopted();
        ::_exit(ok ? 0 : 1);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    owner.release();
    std::filesystem::remove_all(dir);
}

TEST(RunnerDirLock, StaleLockFromDeadOwnerIsTakenOver)
{
    namespace fs = std::filesystem;
    const auto dir = fs_lock_test::lockTestDir("stale");
    {
        std::ofstream out(dir / ".maps-lock");
        out << "maps-lock-v1 pid " << fs_lock_test::deadPid() << "\n";
    }
    runner::DirLock lock;
    EXPECT_EQ(lock.acquire(dir.string()), "")
        << "dead owner's lock must be taken over, not respected";
    EXPECT_TRUE(lock.held());
    EXPECT_FALSE(lock.adopted());
    lock.release();

    // A torn/garbage lock file is equally stale.
    {
        std::ofstream out(dir / ".maps-lock");
        out << "not a lock file";
    }
    EXPECT_EQ(lock.acquire(dir.string()), "");
    lock.release();
    fs::remove_all(dir);
}

TEST(RunnerDirLock, LiveForeignOwnerFailsFast)
{
    // pid 1 is alive and is neither us nor our parent; the probe's
    // EPERM (signalling another user's process) must count as alive.
    namespace fs = std::filesystem;
    const auto dir = fs_lock_test::lockTestDir("live");
    {
        std::ofstream out(dir / ".maps-lock");
        out << "maps-lock-v1 pid 1\n";
    }
    runner::DirLock lock;
    const auto err = lock.acquire(dir.string());
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("locked by running process 1"),
              std::string::npos)
        << err;
    EXPECT_FALSE(lock.held());
    EXPECT_TRUE(fs::exists(dir / ".maps-lock"))
        << "the live owner's lock file must survive";
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Graceful interruption: kill a real run and inspect what it left.
// ---------------------------------------------------------------------------

TEST(RunnerInterrupt, SigintCheckpointsAndReportsHonestly)
{
    namespace fs = std::filesystem;
    const auto dir = fs::temp_directory_path() /
                     ("maps_sigint_test_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    const auto ckDir = dir / "ck";
    const auto outFile = dir / "out.txt";

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: a slow 10-cell sweep with checkpoints, writing its
        // report to a file. The Experiment constructor installs the
        // graceful SIGINT handler.
        Options opts;
        opts.jobs = 1;
        opts.progress = false;
        opts.resumeDir = ckDir.string();
        opts.outPath = outFile.string();
        runner::Experiment exp({"sigint_probe", "probe", "probe"},
                               opts);
        std::vector<Cell> cells;
        for (int i = 0; i < 10; ++i) {
            const std::string id = "cell" + std::to_string(i);
            cells.push_back({id, 0, [id](const Cell &) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(300));
                return CellOutput{}.add(Row{}.add("id", id));
            }});
        }
        exp.runAndEmit(cells);
        std::exit(exp.finish());
    }

    // Parent: wait until at least one checkpoint proves the sweep is
    // underway, then request a graceful stop.
    bool started = false;
    for (int waited = 0; waited < 20000; waited += 50) {
        std::error_code ec;
        if (fs::exists(ckDir, ec) &&
            !fs::is_empty(ckDir, ec)) {
            started = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ASSERT_TRUE(started) << "child never checkpointed a cell";
    ASSERT_EQ(::kill(pid, SIGINT), 0);

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status))
        << "graceful stop must exit, not die of the signal";
    EXPECT_EQ(WEXITSTATUS(status), 128 + SIGINT);

    // The work done so far is checkpointed (resumable), the rest is
    // not: strictly between zero and all cells.
    std::size_t checkpoints = 0;
    for (const auto &e : fs::directory_iterator(ckDir)) {
        if (e.path().filename().string().front() != '.')
            ++checkpoints;
    }
    EXPECT_GE(checkpoints, 1u);
    EXPECT_LT(checkpoints, 10u)
        << "SIGINT landed too late to observe an interruption";

    // The report must say so out loud.
    std::ifstream in(outFile);
    std::stringstream ss;
    ss << in.rdbuf();
    const auto report = ss.str();
    EXPECT_NE(report.find("interrupted"), std::string::npos) << report;
    EXPECT_NE(report.find("re-run with the same --resume dir"),
              std::string::npos)
        << report;
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Sinks render the same values in every format.
// ---------------------------------------------------------------------------

std::vector<SectionRow>
sampleRows()
{
    std::vector<SectionRow> rows;
    rows.push_back({"", Row{}
                            .add("benchmark", "canneal")
                            .add("md MPKI", 239.151234, 1)
                            .add("cycles", std::uint64_t{14593642})
                            .add("size", Value::size(64 * 1024))});
    rows.push_back({"", Row{}
                            .add("benchmark", "fft")
                            .add("md MPKI", 6.04, 1)
                            .add("cycles", std::uint64_t{1694951})
                            .add("size", Value::size(2 * 1024 * 1024))});
    return rows;
}

template <typename Sink>
std::string
render(const std::vector<SectionRow> &rows)
{
    std::ostringstream os;
    Options opts;
    Sink sink(os);
    sink.begin({"exp", "title", "ref"}, opts);
    for (const auto &r : rows)
        sink.row(r);
    sink.end();
    return os.str();
}

TEST(Sinks, JsonAndCsvRoundTripTableValues)
{
    const auto rows = sampleRows();
    const auto table = render<TableSink>(rows);
    const auto jsonl = render<JsonlSink>(rows);
    const auto csv = render<CsvSink>(rows);

    // Every value the table prints appears verbatim in JSON and CSV:
    // numbers keep their display precision across formats.
    for (const auto &[section, row] : rows) {
        for (const auto &[key, value] : row.cols) {
            const auto text = value.text();
            EXPECT_NE(table.find(text), std::string::npos)
                << key << "=" << text << " missing from table";
            const auto json_frag = value.isNumeric()
                                       ? "\"" + key + "\":" + text
                                       : "\"" + key + "\":\"" + text +
                                             "\"";
            EXPECT_NE(jsonl.find(json_frag), std::string::npos)
                << json_frag << " missing from jsonl:\n"
                << jsonl;
            EXPECT_NE(csv.find(text), std::string::npos)
                << key << "=" << text << " missing from csv";
        }
    }

    EXPECT_EQ(csv.substr(0, csv.find('\n')),
              "experiment,section,benchmark,md MPKI,cycles,size");
    // Two rows per format (+ the CSV header line).
    EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Sinks, TableGroupsRowsBySection)
{
    std::vector<SectionRow> rows;
    rows.push_back({"benchmark: a", Row{}.add("x", "1")});
    rows.push_back({"benchmark: b", Row{}.add("x", "2")});
    rows.push_back({"benchmark: a", Row{}.add("x", "3")});
    const auto table = render<TableSink>(rows);

    const auto a = table.find("benchmark: a");
    const auto b = table.find("benchmark: b");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    EXPECT_LT(a, b) << "sections appear in first-seen order";
    EXPECT_EQ(table.find("benchmark: a", a + 1), std::string::npos)
        << "reappearing section is appended, not duplicated";
}

TEST(Sinks, ValueFormatting)
{
    EXPECT_EQ(Value::num(3.14159, 2).text(), "3.14");
    EXPECT_EQ(Value::num(3.14159, 2).json(), "3.14");
    EXPECT_EQ(Value::integer(12345).text(), "12345");
    EXPECT_EQ(Value::integer(12345).json(), "12345");
    EXPECT_EQ(Value::size(64 * 1024).text(), "64KB");
    EXPECT_EQ(Value("a \"quoted\" name").json(),
              "\"a \\\"quoted\\\" name\"");
    EXPECT_TRUE(Value::num(1.0, 3).isNumeric());
    EXPECT_FALSE(Value("text").isNumeric());
    EXPECT_DOUBLE_EQ(Value::num(2.5, 3).asDouble(), 2.5);
}

} // namespace
} // namespace maps
