/**
 * @file
 * Workload determinism (PR 2 satellite): every registered benchmark
 * generator must be a pure function of its seed. Same seed => identical
 * reference stream; distinct seeds => distinct streams; reset() =>
 * byte-identical replay. The parallel ExperimentRunner and the golden
 * regressions both stand on this property.
 */
#include <gtest/gtest.h>

#include <cstdint>

#include "trace/record.hpp"
#include "workloads/suite.hpp"

namespace maps {
namespace {

constexpr int kRefs = 50'000;

bool
sameRef(const MemRef &a, const MemRef &b)
{
    return a.addr == b.addr && a.type == b.type && a.instGap == b.instGap;
}

TEST(CheckWorkloads, SameSeedSameStream)
{
    for (const auto &name : benchmarkNames()) {
        SCOPED_TRACE(name);
        auto a = makeBenchmark(name, 42);
        auto b = makeBenchmark(name, 42);
        for (int i = 0; i < kRefs; ++i) {
            const MemRef ra = a->next();
            const MemRef rb = b->next();
            ASSERT_TRUE(sameRef(ra, rb))
                << name << " diverges at ref " << i << ": 0x" << std::hex
                << ra.addr << " vs 0x" << rb.addr;
        }
    }
}

TEST(CheckWorkloads, DistinctSeedsDistinctStreams)
{
    for (const auto &name : benchmarkNames()) {
        SCOPED_TRACE(name);
        auto a = makeBenchmark(name, 1);
        auto b = makeBenchmark(name, 2);
        bool differs = false;
        for (int i = 0; i < kRefs && !differs; ++i)
            differs = !sameRef(a->next(), b->next());
        EXPECT_TRUE(differs)
            << name << ": seeds 1 and 2 generate identical streams";
    }
}

TEST(CheckWorkloads, ResetReplaysIdentically)
{
    for (const auto &name : benchmarkNames()) {
        SCOPED_TRACE(name);
        auto gen = makeBenchmark(name, 9);
        std::vector<MemRef> first;
        first.reserve(1'000);
        for (int i = 0; i < 1'000; ++i)
            first.push_back(gen->next());
        gen->reset();
        for (int i = 0; i < 1'000; ++i) {
            const MemRef r = gen->next();
            ASSERT_TRUE(sameRef(first[static_cast<std::size_t>(i)], r))
                << name << " reset() replay diverges at ref " << i;
        }
    }
}

} // namespace
} // namespace maps
