/**
 * @file
 * Tests for the metadata layout: Table II coverage values, address
 * encoding, tree geometry, and both counter organizations.
 */
#include <gtest/gtest.h>

#include "secmem/layout.hpp"
#include "util/bitops.hpp"

namespace maps {
namespace {

LayoutConfig
piConfig(std::uint64_t bytes)
{
    LayoutConfig cfg;
    cfg.protectedBytes = bytes;
    cfg.counterMode = CounterMode::SplitPi;
    return cfg;
}

LayoutConfig
sgxConfig(std::uint64_t bytes)
{
    LayoutConfig cfg;
    cfg.protectedBytes = bytes;
    cfg.counterMode = CounterMode::MonolithicSgx;
    return cfg;
}

TEST(Layout, TableTwoCoveragePi)
{
    // Table II (PI): counter block covers 4KB, hash block covers 512B,
    // tree leaf covers 4KB * 8 = 32KB, each level x8.
    MetadataLayout layout(piConfig(4_GiB));
    EXPECT_EQ(layout.counterBlockCoverage(), 4_KiB);
    EXPECT_EQ(layout.hashBlockCoverage(), 512u);
    EXPECT_EQ(layout.treeBlockCoverage(0), 32_KiB);
    EXPECT_EQ(layout.treeBlockCoverage(1), 256_KiB);
    EXPECT_EQ(layout.treeBlockCoverage(2), 2_MiB);
}

TEST(Layout, TableTwoCoverageSgx)
{
    // Table II (SGX): counter block covers 512B, tree leaf covers
    // 512B * 8 = 4KB.
    MetadataLayout layout(sgxConfig(4_GiB));
    EXPECT_EQ(layout.counterBlockCoverage(), 512u);
    EXPECT_EQ(layout.hashBlockCoverage(), 512u);
    EXPECT_EQ(layout.treeBlockCoverage(0), 4_KiB);
    EXPECT_EQ(layout.treeBlockCoverage(1), 32_KiB);
}

TEST(Layout, BlockCountsPi4GB)
{
    MetadataLayout layout(piConfig(4_GiB));
    EXPECT_EQ(layout.numDataBlocks(), 4_GiB / 64);
    EXPECT_EQ(layout.numCounterBlocks(), 4_GiB / 4_KiB); // 1M blocks
    EXPECT_EQ(layout.numHashBlocks(), 4_GiB / 512);
    // 2^20 counter blocks, arity 8: levels of 2^17, 2^14, 2^11, 2^8,
    // 2^5, 2^2, 1.
    EXPECT_EQ(layout.numTreeLevels(), 7u);
    EXPECT_EQ(layout.treeLevelBlockCount(0), 1u << 17);
    EXPECT_EQ(layout.treeLevelBlockCount(6), 1u);
}

TEST(Layout, CounterSpaceReductionClaim)
{
    // §II-A: per-page + per-block counters shrink counter storage from
    // 512MB (8B per 64B block) to 64MB for 4GB protected memory.
    MetadataLayout pi(piConfig(4_GiB));
    EXPECT_EQ(pi.numCounterBlocks() * kBlockSize, 64_MiB);
    MetadataLayout sgx(sgxConfig(4_GiB));
    EXPECT_EQ(sgx.numCounterBlocks() * kBlockSize, 512_MiB);
}

TEST(Layout, AddressEncodingRoundTrip)
{
    for (const auto type : {MetadataType::Counter, MetadataType::TreeNode,
                            MetadataType::Hash}) {
        for (const std::uint32_t level : {0u, 3u, 10u}) {
            for (const std::uint64_t index :
                 {std::uint64_t{0}, std::uint64_t{12345},
                  (std::uint64_t{1} << 40)}) {
                const Addr addr =
                    MetadataLayout::encode(type, level, index);
                EXPECT_EQ(MetadataLayout::typeOf(addr), type);
                EXPECT_EQ(MetadataLayout::levelOf(addr), level);
                EXPECT_EQ(MetadataLayout::indexOf(addr), index);
                EXPECT_TRUE(MetadataLayout::isMetadataAddr(addr));
            }
        }
    }
}

TEST(Layout, DataAddressesAreNotMetadata)
{
    EXPECT_FALSE(MetadataLayout::isMetadataAddr(0));
    EXPECT_FALSE(MetadataLayout::isMetadataAddr(4_GiB - 64));
    EXPECT_EQ(MetadataLayout::typeOf(0x1234), MetadataType::Data);
}

TEST(Layout, CounterMappingPi)
{
    MetadataLayout layout(piConfig(1_GiB));
    // Every block of a 4KB page maps to the same counter block.
    const Addr page = 37 * kPageSize;
    const Addr first = layout.counterBlockAddr(page);
    for (Addr off = 0; off < kPageSize; off += kBlockSize)
        EXPECT_EQ(layout.counterBlockAddr(page + off), first);
    // Next page: next counter block.
    EXPECT_EQ(MetadataLayout::indexOf(
                  layout.counterBlockAddr(page + kPageSize)),
              MetadataLayout::indexOf(first) + 1);
}

TEST(Layout, CounterMappingSgx)
{
    MetadataLayout layout(sgxConfig(1_GiB));
    // Eight 64B blocks share a counter block (512B coverage).
    const Addr base = 0;
    const Addr first = layout.counterBlockAddr(base);
    for (Addr off = 0; off < 512; off += kBlockSize)
        EXPECT_EQ(layout.counterBlockAddr(base + off), first);
    EXPECT_NE(layout.counterBlockAddr(512), first);
}

TEST(Layout, HashMapping)
{
    MetadataLayout layout(piConfig(1_GiB));
    // Eight data blocks share a hash block.
    const Addr first = layout.hashBlockAddr(0);
    for (Addr off = 0; off < 512; off += kBlockSize)
        EXPECT_EQ(layout.hashBlockAddr(off), first);
    EXPECT_NE(layout.hashBlockAddr(512), first);
}

TEST(Layout, TreeParentChain)
{
    MetadataLayout layout(piConfig(1_GiB));
    const Addr ctr = layout.counterBlockAddr(123 * kPageSize);
    const auto path = layout.treePathForCounter(ctr);
    ASSERT_EQ(path.size(), layout.numTreeLevels());
    for (std::size_t i = 0; i < path.size(); ++i) {
        EXPECT_EQ(MetadataLayout::levelOf(path[i]), i);
        if (i + 1 < path.size())
            EXPECT_EQ(layout.treeParent(path[i]), path[i + 1]);
    }
    EXPECT_EQ(layout.treeParent(path.back()), kInvalidAddr)
        << "top stored level's parent is the on-chip root";
}

TEST(Layout, TreeLeafGroupsArityCounters)
{
    MetadataLayout layout(piConfig(1_GiB));
    const Addr leaf0 = layout.treeLeafForCounter(
        MetadataLayout::encode(MetadataType::Counter, 0, 0));
    for (std::uint64_t i = 0; i < 8; ++i) {
        EXPECT_EQ(layout.treeLeafForCounter(MetadataLayout::encode(
                      MetadataType::Counter, 0, i)),
                  leaf0);
    }
    EXPECT_NE(layout.treeLeafForCounter(MetadataLayout::encode(
                  MetadataType::Counter, 0, 8)),
              leaf0);
}

TEST(Layout, TreeLevelCountsShrinkByArity)
{
    MetadataLayout layout(piConfig(4_GiB));
    for (std::uint32_t l = 1; l < layout.numTreeLevels(); ++l) {
        EXPECT_EQ(layout.treeLevelBlockCount(l),
                  ceilDiv(layout.treeLevelBlockCount(l - 1), 8));
    }
}

TEST(Layout, TotalMetadataBlocks)
{
    MetadataLayout layout(piConfig(128_MiB));
    std::uint64_t expected =
        layout.numCounterBlocks() + layout.numHashBlocks();
    for (std::uint32_t l = 0; l < layout.numTreeLevels(); ++l)
        expected += layout.treeLevelBlockCount(l);
    EXPECT_EQ(layout.totalMetadataBlocks(), expected);
}

TEST(Layout, NinePerPageRule)
{
    // §IV-C: nine metadata blocks per 4KB page (1 counter + 8 hash),
    // excluding tree nodes. Check it falls out of the geometry.
    MetadataLayout layout(piConfig(1_GiB));
    const std::uint64_t pages = 1_GiB / kPageSize;
    EXPECT_EQ(layout.numCounterBlocks() + layout.numHashBlocks(),
              9 * pages);
    // And the paper's 288KB-to-cover-2MB-LLC figure.
    const std::uint64_t llc_pages = 2_MiB / kPageSize;
    EXPECT_EQ(9 * kBlockSize * llc_pages, 288_KiB);
}

TEST(Layout, TinyMemoryDegenerates)
{
    MetadataLayout layout(piConfig(kPageSize));
    EXPECT_EQ(layout.numCounterBlocks(), 1u);
    EXPECT_EQ(layout.numTreeLevels(), 1u);
    const auto path = layout.treePathForCounter(
        layout.counterBlockAddr(0));
    EXPECT_EQ(path.size(), 1u);
}

TEST(Layout, RejectsBadConfigs)
{
    LayoutConfig bad;
    bad.protectedBytes = 1000; // not a power of two
    EXPECT_DEATH({ MetadataLayout layout(bad); }, "");
    LayoutConfig bad2;
    bad2.treeArity = 3;
    EXPECT_DEATH({ MetadataLayout layout(bad2); }, "");
}

TEST(Layout, CounterModeNames)
{
    EXPECT_STREQ(counterModeName(CounterMode::SplitPi), "PI");
    EXPECT_STREQ(counterModeName(CounterMode::MonolithicSgx), "SGX");
}

} // namespace
} // namespace maps
