/**
 * @file
 * Tests for the system-level extensions: metadata prefetching and
 * multiprogrammed workload mixes.
 */
#include <gtest/gtest.h>

#include <set>

#include "core/simulator.hpp"
#include "mem/fixed_latency.hpp"
#include "secmem/controller.hpp"
#include "workloads/generators.hpp"
#include "workloads/suite.hpp"

namespace maps {
namespace {

SecureMemoryConfig
prefetchConfig(bool enable)
{
    SecureMemoryConfig cfg;
    cfg.layout.protectedBytes = 16_MiB;
    cfg.cache = MetadataCacheConfig::allTypes(16_KiB);
    cfg.prefetchNextMetadata = enable;
    return cfg;
}

TEST(Prefetch, IssuesNeighborFetchOnCounterMiss)
{
    FixedLatencyMemory mem(100);
    SecureMemoryController ctrl(prefetchConfig(true), mem);
    ctrl.handleRequest({0, RequestKind::Read, 0});
    EXPECT_GE(ctrl.stats().prefetchesIssued, 1u);
    EXPECT_GE(ctrl.metadataCache().stats().prefetchInserts, 1u);

    // The next page's counter block is now resident: reading it hits.
    const auto out = ctrl.handleRequest({kPageSize, RequestKind::Read, 0});
    EXPECT_TRUE(out.counterHit) << "prefetched counter block hit";
}

TEST(Prefetch, HashNeighborPrefetched)
{
    FixedLatencyMemory mem(100);
    SecureMemoryController ctrl(prefetchConfig(true), mem);
    ctrl.handleRequest({0, RequestKind::Read, 0});
    // Blocks 8..15 share the *next* hash block: it was prefetched.
    const auto out =
        ctrl.handleRequest({8 * kBlockSize, RequestKind::Read, 0});
    EXPECT_TRUE(out.hashHit) << "prefetched hash block hit";
}

TEST(Prefetch, DisabledByDefault)
{
    FixedLatencyMemory mem(100);
    SecureMemoryController ctrl(prefetchConfig(false), mem);
    ctrl.handleRequest({0, RequestKind::Read, 0});
    EXPECT_EQ(ctrl.stats().prefetchesIssued, 0u);
    EXPECT_EQ(ctrl.metadataCache().stats().prefetchInserts, 0u);
}

TEST(Prefetch, PrefetchedCountersAreVerified)
{
    FixedLatencyMemory mem(100);
    SecureMemoryController ctrl(prefetchConfig(true), mem);

    std::vector<MetadataAccess> taps;
    ctrl.setMetadataTap(
        [&taps](const MetadataAccess &a) { taps.push_back(a); });
    ctrl.handleRequest({0, RequestKind::Read, 0});
    // Beyond the demand counter's traversal, the prefetched counter's
    // (possibly cached) tree path is also consulted.
    unsigned tree_reads = 0;
    for (const auto &acc : taps)
        tree_reads += acc.type == MetadataType::TreeNode && !acc.isWrite();
    EXPECT_GE(tree_reads, ctrl.layout().numTreeLevels())
        << "prefetch must not bypass verification";
}

TEST(Prefetch, HelpsSequentialStreams)
{
    auto make_cfg = [](bool prefetch) {
        SimConfig cfg;
        cfg.benchmark = "libquantum";
        cfg.warmupRefs = 100'000;
        cfg.measureRefs = 600'000;
        cfg.useDram = false;
        cfg.secure.layout.protectedBytes = 256_MiB;
        cfg.secure.prefetchNextMetadata = prefetch;
        return cfg;
    };
    const auto off = runBenchmark(make_cfg(false));
    const auto on = runBenchmark(make_cfg(true));
    // Streaming metadata is perfectly next-block predictable: demand
    // misses must drop.
    EXPECT_LT(on.mdCache.totalMisses(), off.mdCache.totalMisses());
    EXPECT_GT(on.controller.prefetchesIssued, 0u);
}

TEST(MultiProgrammed, RegionsIsolatePrograms)
{
    std::vector<std::unique_ptr<AccessGenerator>> programs;
    programs.push_back(std::make_unique<StreamGenerator>(
        1_MiB, 0.0, kBlockSize, 1));
    programs.push_back(std::make_unique<StreamGenerator>(
        1_MiB, 0.0, kBlockSize, 2));
    MultiProgrammedGenerator gen(std::move(programs), 64_MiB, 4);

    bool saw_low = false, saw_high = false;
    for (int i = 0; i < 1000; ++i) {
        const auto ref = gen.next();
        const auto region = ref.addr / 64_MiB;
        ASSERT_LT(region, 2u);
        saw_low |= region == 0;
        saw_high |= region == 1;
    }
    EXPECT_TRUE(saw_low);
    EXPECT_TRUE(saw_high);
}

TEST(MultiProgrammed, BurstsAlternate)
{
    std::vector<std::unique_ptr<AccessGenerator>> programs;
    for (int p = 0; p < 3; ++p) {
        programs.push_back(std::make_unique<StreamGenerator>(
            1_MiB, 0.0, kBlockSize, p + 1));
    }
    MultiProgrammedGenerator gen(std::move(programs), 64_MiB, 8);
    // Within a burst, the region must not change.
    Addr prev_region = gen.next().addr / 64_MiB;
    int switches = 0;
    for (int i = 1; i < 240; ++i) {
        const Addr region = gen.next().addr / 64_MiB;
        switches += region != prev_region;
        prev_region = region;
    }
    EXPECT_EQ(switches, 240 / 8 - 1 + (240 % 8 ? 1 : 0) - 0)
        << "one switch per burst boundary";
}

TEST(MultiProgrammed, MixSyntaxParses)
{
    auto gen = makeBenchmark("mix:libquantum+perl", 7);
    ASSERT_NE(gen, nullptr);
    std::set<Addr> regions;
    for (int i = 0; i < 10000; ++i)
        regions.insert(gen->next().addr / 64_MiB);
    EXPECT_EQ(regions.size(), 2u);
}

TEST(MultiProgrammed, MixRunsEndToEnd)
{
    SimConfig cfg;
    cfg.benchmark = "mix:libquantum+fft";
    cfg.warmupRefs = 20'000;
    cfg.measureRefs = 100'000;
    cfg.useDram = false;
    cfg.secure.layout.protectedBytes = 256_MiB;
    const auto report = runBenchmark(cfg);
    EXPECT_EQ(report.refs, 100'000u);
    EXPECT_GT(report.metadataMpki, 0.0);
}

TEST(MultiProgrammed, MixIsDeterministic)
{
    auto a = makeBenchmark("mix:canneal+libquantum", 5);
    auto b = makeBenchmark("mix:canneal+libquantum", 5);
    for (int i = 0; i < 2000; ++i)
        EXPECT_EQ(a->next().addr, b->next().addr);
}

TEST(MultiProgrammed, ResetRestoresStream)
{
    auto gen = makeBenchmark("mix:fft+perl", 3);
    std::vector<Addr> first;
    for (int i = 0; i < 500; ++i)
        first.push_back(gen->next().addr);
    gen->reset();
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(gen->next().addr, first[i]);
}

} // namespace
} // namespace maps
