/**
 * @file
 * Tests for the three-level cache hierarchy.
 */
#include <gtest/gtest.h>

#include <vector>

#include "hierarchy/hierarchy.hpp"
#include "util/rng.hpp"

namespace maps {
namespace {

HierarchyConfig
tinyConfig()
{
    HierarchyConfig cfg;
    cfg.l1Bytes = 1_KiB;
    cfg.l2Bytes = 4_KiB;
    cfg.llcBytes = 16_KiB;
    return cfg;
}

MemRef
ref(Addr addr, bool write = false, std::uint32_t gap = 1)
{
    MemRef r;
    r.addr = addr;
    r.type = write ? AccessType::Write : AccessType::Read;
    r.instGap = gap;
    return r;
}

TEST(Hierarchy, ColdMissPropagatesToMemory)
{
    CacheHierarchy h(tinyConfig());
    std::vector<MemoryRequest> reqs;
    h.setRequestSink(
        [&reqs](const MemoryRequest &r) { reqs.push_back(r); });

    h.access(ref(0x1000));
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].kind, RequestKind::Read);
    EXPECT_EQ(reqs[0].addr, 0x1000u);
    EXPECT_EQ(h.stats().l1Misses, 1u);
    EXPECT_EQ(h.stats().l2Misses, 1u);
    EXPECT_EQ(h.stats().llcMisses, 1u);
}

TEST(Hierarchy, HitInL1DoesNotEscalate)
{
    CacheHierarchy h(tinyConfig());
    std::vector<MemoryRequest> reqs;
    h.setRequestSink(
        [&reqs](const MemoryRequest &r) { reqs.push_back(r); });
    h.access(ref(0x40));
    h.access(ref(0x40));
    h.access(ref(0x50)); // same block
    EXPECT_EQ(reqs.size(), 1u);
    EXPECT_EQ(h.stats().refs, 3u);
    EXPECT_EQ(h.stats().l1Misses, 1u);
}

TEST(Hierarchy, InstructionsAccumulateFromGaps)
{
    CacheHierarchy h(tinyConfig());
    h.access(ref(0, false, 5));
    h.access(ref(64, false, 7));
    EXPECT_EQ(h.stats().instructions, 12u);
}

TEST(Hierarchy, DirtyLineEventuallyWrittenBack)
{
    CacheHierarchy h(tinyConfig());
    std::vector<MemoryRequest> reqs;
    h.setRequestSink(
        [&reqs](const MemoryRequest &r) { reqs.push_back(r); });

    h.access(ref(0, true)); // dirty in L1
    // Thrash every level with a large scan so the dirty block spills
    // all the way out.
    for (Addr a = 1_MiB; a < 1_MiB + 64_KiB; a += kBlockSize)
        h.access(ref(a));

    bool saw_writeback = false;
    for (const auto &r : reqs) {
        if (r.kind == RequestKind::Writeback && r.addr == 0)
            saw_writeback = true;
    }
    EXPECT_TRUE(saw_writeback);
    EXPECT_GT(h.stats().llcWritebacks, 0u);
}

TEST(Hierarchy, CleanEvictionsSilent)
{
    CacheHierarchy h(tinyConfig());
    std::vector<MemoryRequest> reqs;
    h.setRequestSink(
        [&reqs](const MemoryRequest &r) { reqs.push_back(r); });
    // Read-only scan: every downstream request must be a Read.
    for (Addr a = 0; a < 128_KiB; a += kBlockSize)
        h.access(ref(a));
    for (const auto &r : reqs)
        EXPECT_EQ(r.kind, RequestKind::Read);
}

TEST(Hierarchy, LlcMpkiComputed)
{
    CacheHierarchy h(tinyConfig());
    // 100 misses over 100 refs with gap 10 => 1000 instructions,
    // MPKI 100.
    for (int i = 0; i < 100; ++i)
        h.access(ref(1_MiB + static_cast<Addr>(i) * 4_KiB, false, 10));
    EXPECT_NEAR(h.stats().llcMpki(), 100.0, 1e-9);
}

TEST(Hierarchy, RequestIcountMatchesInstructionCount)
{
    CacheHierarchy h(tinyConfig());
    std::vector<MemoryRequest> reqs;
    h.setRequestSink(
        [&reqs](const MemoryRequest &r) { reqs.push_back(r); });
    h.access(ref(0, false, 100));
    h.access(ref(1_MiB, false, 100));
    ASSERT_EQ(reqs.size(), 2u);
    EXPECT_EQ(reqs[0].icount, 100u);
    EXPECT_EQ(reqs[1].icount, 200u);
}

TEST(Hierarchy, SmallerLlcMissesMore)
{
    HierarchyConfig small = tinyConfig();
    HierarchyConfig big = tinyConfig();
    big.llcBytes = 256_KiB;
    CacheHierarchy hs(small), hb(big);

    Rng rng(9);
    for (int i = 0; i < 50000; ++i) {
        const Addr a = rng.nextBounded(128_KiB / kBlockSize) * kBlockSize;
        hs.access(ref(a));
        hb.access(ref(a));
    }
    EXPECT_GT(hs.stats().llcMisses, hb.stats().llcMisses);
}

TEST(Hierarchy, WritebackAllocatesInLowerLevel)
{
    // A dirty L1 eviction must land in L2 (write-allocate), not bypass
    // to memory.
    CacheHierarchy h(tinyConfig());
    std::vector<MemoryRequest> reqs;
    h.setRequestSink(
        [&reqs](const MemoryRequest &r) { reqs.push_back(r); });

    h.access(ref(0, true));
    // Evict block 0 from the (1KB, 8-way => 2 sets) L1 with same-set
    // fills: set stride is 2 blocks.
    for (int i = 1; i <= 8; ++i)
        h.access(ref(static_cast<Addr>(i) * 2 * kBlockSize, false));
    // Re-read block 0: it must hit in L2, producing no new Read of 0.
    const auto before = reqs.size();
    h.access(ref(0));
    std::uint64_t new_reads_of_zero = 0;
    for (auto i = before; i < reqs.size(); ++i)
        new_reads_of_zero += reqs[i].addr == 0;
    EXPECT_EQ(new_reads_of_zero, 0u);
}

} // namespace
} // namespace maps
