/**
 * @file
 * Tests for the trace module: record vocabulary, binary IO, statistics.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/record.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"

namespace maps {
namespace {

std::string
tempPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Record, MetadataTypeNames)
{
    EXPECT_STREQ(metadataTypeName(MetadataType::Counter), "counter");
    EXPECT_STREQ(metadataTypeName(MetadataType::TreeNode), "tree");
    EXPECT_STREQ(metadataTypeName(MetadataType::Hash), "hash");
    EXPECT_STREQ(metadataTypeName(MetadataType::Data), "data");
}

TEST(Record, MetadataTypeRoundTrip)
{
    for (auto t : {MetadataType::Counter, MetadataType::TreeNode,
                   MetadataType::Hash}) {
        EXPECT_EQ(metadataTypeFromName(metadataTypeName(t)), t);
    }
    EXPECT_EQ(metadataTypeFromName("bogus"), MetadataType::Data);
}

TEST(Record, TransitionClassification)
{
    EXPECT_EQ(classifyTransition(AccessType::Read, AccessType::Read),
              ReuseTransition::ReadAfterRead);
    EXPECT_EQ(classifyTransition(AccessType::Write, AccessType::Read),
              ReuseTransition::ReadAfterWrite);
    EXPECT_EQ(classifyTransition(AccessType::Read, AccessType::Write),
              ReuseTransition::WriteAfterRead);
    EXPECT_EQ(classifyTransition(AccessType::Write, AccessType::Write),
              ReuseTransition::WriteAfterWrite);
}

TEST(Record, TransitionNames)
{
    EXPECT_STREQ(reuseTransitionName(ReuseTransition::ReadAfterRead),
                 "RAR");
    EXPECT_STREQ(reuseTransitionName(ReuseTransition::WriteAfterWrite),
                 "WAW");
}

TEST(TraceIo, MemRefRoundTrip)
{
    std::vector<MemRef> refs;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        MemRef ref;
        ref.addr = i * 64 + (i % 3);
        ref.type = i % 4 == 0 ? AccessType::Write : AccessType::Read;
        ref.instGap = static_cast<std::uint32_t>(i % 17 + 1);
        refs.push_back(ref);
    }
    const std::string path = tempPath("refs.maps");
    ASSERT_TRUE(saveTrace(path, refs));
    std::vector<MemRef> loaded;
    ASSERT_TRUE(loadTrace(path, loaded));
    ASSERT_EQ(loaded.size(), refs.size());
    for (std::size_t i = 0; i < refs.size(); ++i) {
        EXPECT_EQ(loaded[i].addr, refs[i].addr);
        EXPECT_EQ(loaded[i].type, refs[i].type);
        EXPECT_EQ(loaded[i].instGap, refs[i].instGap);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, MemoryRequestRoundTrip)
{
    std::vector<MemoryRequest> reqs;
    for (std::uint64_t i = 0; i < 500; ++i) {
        MemoryRequest req;
        req.addr = i << 6;
        req.kind = i % 5 == 0 ? RequestKind::Writeback : RequestKind::Read;
        req.icount = i * 1000;
        reqs.push_back(req);
    }
    const std::string path = tempPath("reqs.maps");
    ASSERT_TRUE(saveTrace(path, reqs));
    std::vector<MemoryRequest> loaded;
    ASSERT_TRUE(loadTrace(path, loaded));
    ASSERT_EQ(loaded.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(loaded[i].addr, reqs[i].addr);
        EXPECT_EQ(loaded[i].kind, reqs[i].kind);
        EXPECT_EQ(loaded[i].icount, reqs[i].icount);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, MetadataAccessRoundTrip)
{
    std::vector<MetadataAccess> accs;
    for (std::uint64_t i = 0; i < 500; ++i) {
        MetadataAccess acc;
        acc.addr = (i << 6) | (1ull << 60);
        acc.type = static_cast<MetadataType>(i % 3);
        acc.access = i % 2 ? AccessType::Write : AccessType::Read;
        acc.level = static_cast<std::uint8_t>(i % 7);
        acc.icount = i * 31;
        accs.push_back(acc);
    }
    const std::string path = tempPath("md.maps");
    ASSERT_TRUE(saveTrace(path, accs));
    std::vector<MetadataAccess> loaded;
    ASSERT_TRUE(loadTrace(path, loaded));
    ASSERT_EQ(loaded.size(), accs.size());
    for (std::size_t i = 0; i < accs.size(); ++i) {
        EXPECT_EQ(loaded[i].addr, accs[i].addr);
        EXPECT_EQ(loaded[i].type, accs[i].type);
        EXPECT_EQ(loaded[i].access, accs[i].access);
        EXPECT_EQ(loaded[i].level, accs[i].level);
        EXPECT_EQ(loaded[i].icount, accs[i].icount);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, KindMismatchRejected)
{
    const std::string path = tempPath("kind.maps");
    std::vector<MemRef> refs(3);
    ASSERT_TRUE(saveTrace(path, refs));
    std::vector<MemoryRequest> reqs;
    EXPECT_FALSE(loadTrace(path, reqs));
    EXPECT_EQ(traceFileKind(path),
              static_cast<std::uint16_t>(TraceKind::MemRefs));
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFails)
{
    std::vector<MemRef> refs;
    EXPECT_FALSE(loadTrace(tempPath("does-not-exist.maps"), refs));
    EXPECT_EQ(traceFileKind(tempPath("does-not-exist.maps")), 0u);
}

TEST(TraceIo, CorruptMagicRejected)
{
    const std::string path = tempPath("corrupt.maps");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTMAPS!", f);
    std::fclose(f);
    std::vector<MemRef> refs;
    EXPECT_FALSE(loadTrace(path, refs));
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrip)
{
    const std::string path = tempPath("empty.maps");
    ASSERT_TRUE(saveTrace(path, std::vector<MemRef>{}));
    std::vector<MemRef> loaded{MemRef{}};
    ASSERT_TRUE(loadTrace(path, loaded));
    EXPECT_TRUE(loaded.empty());
    std::remove(path.c_str());
}

TEST(TraceStats, MemRefAggregates)
{
    std::vector<MemRef> refs;
    for (int i = 0; i < 10; ++i) {
        MemRef ref;
        ref.addr = static_cast<Addr>(i % 4) * 64;
        ref.type = i < 3 ? AccessType::Write : AccessType::Read;
        ref.instGap = 2;
        refs.push_back(ref);
    }
    const auto stats = computeStats(refs);
    EXPECT_EQ(stats.refs, 10u);
    EXPECT_EQ(stats.writes, 3u);
    EXPECT_EQ(stats.instructions, 20u);
    EXPECT_EQ(stats.uniqueBlocks, 4u);
    EXPECT_EQ(stats.uniquePages, 1u);
    EXPECT_DOUBLE_EQ(stats.writeFraction(), 0.3);
    EXPECT_EQ(stats.footprintBytes(), 4 * kBlockSize);
}

TEST(TraceStats, MetadataAggregates)
{
    std::vector<MetadataAccess> accs;
    for (int i = 0; i < 12; ++i) {
        MetadataAccess acc;
        acc.type = static_cast<MetadataType>(i % 3);
        acc.addr = static_cast<Addr>(i % 6) * 64;
        acc.access = i % 4 == 0 ? AccessType::Write : AccessType::Read;
        accs.push_back(acc);
    }
    const auto stats = computeStats(accs);
    EXPECT_EQ(stats.accesses, 12u);
    EXPECT_EQ(stats.byType[0], 4u);
    EXPECT_EQ(stats.byType[1], 4u);
    EXPECT_EQ(stats.byType[2], 4u);
    EXPECT_EQ(stats.totalWrites(), 3u);
}

TEST(TraceStats, RequestCollector)
{
    RequestStatsCollector collector;
    for (int i = 0; i < 8; ++i) {
        MemoryRequest req;
        req.addr = static_cast<Addr>(i % 3) * 64;
        req.kind = i % 2 ? RequestKind::Writeback : RequestKind::Read;
        collector.observe(req);
    }
    EXPECT_EQ(collector.reads(), 4u);
    EXPECT_EQ(collector.writebacks(), 4u);
    EXPECT_EQ(collector.uniqueBlocks(), 3u);
}

} // namespace
} // namespace maps
