/**
 * @file
 * Tests for the memory models: fixed latency and banked DRAM-lite.
 */
#include <gtest/gtest.h>

#include "mem/dram.hpp"
#include "mem/fixed_latency.hpp"
#include "metrics/metrics.hpp"

namespace maps {
namespace {

TEST(FixedLatency, ConstantAndCounted)
{
    FixedLatencyMemory mem(123);
    EXPECT_EQ(mem.access(0x1000, false, 0).latency, 123u);
    EXPECT_EQ(mem.access(0x2000, true, 50).latency, 123u);
    EXPECT_EQ(mem.stats().reads, 1u);
    EXPECT_EQ(mem.stats().writes, 1u);
    EXPECT_EQ(mem.stats().totalLatency, 246u);
    // Counters are monotonic; a fresh measurement window comes from a
    // registry phase snapshot, not a reset.
    metrics::Registry reg;
    reg.attach(mem.name(), mem.statsMut());
    reg.beginPhase(metrics::Phase::Measure);
    EXPECT_EQ(reg.measureView(mem.name(), mem.stats()).accesses(), 0u);
    EXPECT_EQ(mem.stats().accesses(), 2u) << "totals keep accumulating";
}

TEST(Dram, SequentialBlocksHitOpenRow)
{
    DramModel dram;
    // First access opens the row (miss), subsequent blocks in the same
    // row hit.
    dram.access(0, false, 0);
    const auto cfg = dram.config();
    Cycles t = 1000;
    for (Addr a = kBlockSize; a < cfg.rowBytes; a += kBlockSize) {
        const auto r = dram.access(a, false, t);
        EXPECT_TRUE(r.rowHit) << a;
        t += 1000;
    }
    EXPECT_EQ(dram.stats().rowMisses, 1u);
    EXPECT_EQ(dram.stats().rowHits, cfg.rowBytes / kBlockSize - 1);
}

TEST(Dram, RowConflictCostsMore)
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.banksPerChannel = 1; // force conflicts
    DramModel dram(cfg);

    dram.access(0, false, 0);
    // Same bank, different row: conflict (precharge + activate).
    const auto conflict =
        dram.access(cfg.rowBytes, false, 1'000'000);
    // Same row again: hit.
    const auto hit = dram.access(cfg.rowBytes + kBlockSize, false,
                                 2'000'000);
    EXPECT_GT(conflict.latency, hit.latency);
    EXPECT_EQ(conflict.latency, cfg.tRp + cfg.tRcd + cfg.tCl + cfg.tBurst);
    EXPECT_EQ(hit.latency, cfg.tCl + cfg.tBurst);
    EXPECT_EQ(dram.stats().rowConflicts, 1u);
}

TEST(Dram, BankQueueingDelaysBackToBack)
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.banksPerChannel = 1;
    DramModel dram(cfg);

    const auto first = dram.access(0, false, 0);
    // Immediately issue another access to the same bank: it waits.
    const auto second = dram.access(kBlockSize, false, 0);
    EXPECT_GT(second.latency, first.latency - cfg.tRcd)
        << "second access must absorb the bank busy time";
    EXPECT_GE(second.latency, cfg.tCl + cfg.tBurst);
}

TEST(Dram, DifferentBanksDoNotQueue)
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.banksPerChannel = 8;
    DramModel dram(cfg);

    // Blocks one row apart land in different... rows of the same bank;
    // use the bank stride instead: banks interleave above the row's
    // column bits.
    const Addr bank_stride = cfg.rowBytes; // next bank
    const auto a = dram.access(0, false, 0);
    const auto b = dram.access(bank_stride, false, 0);
    EXPECT_EQ(a.latency, b.latency) << "independent banks, no queueing";
}

TEST(Dram, WriteRecoveryExtendsBusy)
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.banksPerChannel = 1;
    DramModel dram(cfg);

    dram.access(0, true, 0); // write: busy includes tWr
    const auto after_write = dram.access(kBlockSize, false, 0);

    DramModel dram2(cfg);
    dram2.access(0, false, 0); // read
    const auto after_read = dram2.access(kBlockSize, false, 0);

    EXPECT_GT(after_write.latency, after_read.latency);
}

TEST(Dram, StatsAccumulate)
{
    DramModel dram;
    for (int i = 0; i < 10; ++i)
        dram.access(static_cast<Addr>(i) * kBlockSize, i % 2, 0);
    EXPECT_EQ(dram.stats().reads, 5u);
    EXPECT_EQ(dram.stats().writes, 5u);
    EXPECT_GT(dram.stats().avgLatency(), 0.0);
    // Phase snapshot separates the windows without touching the totals.
    metrics::Registry reg;
    reg.attach(dram.name(), dram.statsMut());
    reg.beginPhase(metrics::Phase::Measure);
    dram.access(11 * kBlockSize, false, 0);
    const MemoryStats measured = reg.measureView(dram.name(), dram.stats());
    EXPECT_EQ(measured.accesses(), 1u);
    EXPECT_EQ(measured.reads, 1u);
    EXPECT_EQ(dram.stats().accesses(), 11u);
    EXPECT_EQ(reg.warmup(dram.name() + std::string(".reads")), 5u);
}

TEST(Dram, RejectsBadConfig)
{
    DramConfig cfg;
    cfg.rowBytes = 100; // not a power of two
    EXPECT_DEATH({ DramModel dram(cfg); }, "");
}

} // namespace
} // namespace maps
