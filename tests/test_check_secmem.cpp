/**
 * @file
 * Flat-model verification of the secure-memory pipeline (PR 2
 * satellite): SecmemShadow independently recomputes counter values and
 * tree digests for every request the controller serves, across both
 * counter modes and the optional-feature matrix (partial writes,
 * prefetch, no-cache). All clean configurations must report zero
 * divergences; a deliberately broken tap wiring must be flagged.
 */
#include <gtest/gtest.h>

#include <cstdint>

#include "check/check.hpp"
#include "check/secmem_shadow.hpp"
#include "mem/fixed_latency.hpp"
#include "secmem/controller.hpp"
#include "trace/record.hpp"
#include "util/rng.hpp"

namespace maps {
namespace {

class CheckGuard
{
  public:
    CheckGuard()
    {
        check::setEnabled(true);
        check::setFailureMode(check::FailureMode::Record);
        check::clearMutations();
        check::resetStats();
    }
    ~CheckGuard()
    {
        check::setEnabled(false);
        check::resetStats();
    }
};

void
expectNoDivergence()
{
    EXPECT_GT(check::checkCount(), 0u) << "shadow never checked anything";
    EXPECT_EQ(check::failureCount(), 0u);
    for (const auto &f : check::failures())
        ADD_FAILURE() << "[" << f.domain << "] " << f.message;
}

/** Shadowed random read/write drive of one controller configuration. */
void
driveShadowed(SecureMemoryConfig cfg, std::uint64_t steps,
              std::uint64_t blocks, std::uint64_t seed)
{
    CheckGuard guard;

    FixedLatencyMemory memory(100);
    SecureMemoryController controller(cfg, memory);
    check::SecmemShadow shadow(controller);
    controller.setMetadataTap(
        [&shadow](const MetadataAccess &acc) { shadow.onTap(acc); });

    Rng rng(seed);
    for (std::uint64_t i = 0; i < steps; ++i) {
        MemoryRequest req;
        req.addr = rng.nextBounded(blocks) * kBlockSize;
        req.kind = rng.nextBool(0.5) ? RequestKind::Writeback
                                     : RequestKind::Read;
        req.icount = i;
        shadow.beginRequest(req);
        controller.handleRequest(req);
        shadow.endRequest();
    }
    EXPECT_TRUE(shadow.alive());
    expectNoDivergence();
}

SecureMemoryConfig
smallConfig()
{
    SecureMemoryConfig cfg;
    cfg.layout.protectedBytes = 16_MiB;
    cfg.cache.sizeBytes = 4_KiB;
    cfg.cache.assoc = 4;
    return cfg;
}

TEST(CheckSecmem, SplitPiCleanRun)
{
    driveShadowed(smallConfig(), 5'000, 4096, 101);
}

TEST(CheckSecmem, MonolithicSgxCleanRun)
{
    SecureMemoryConfig cfg = smallConfig();
    cfg.layout.counterMode = CounterMode::MonolithicSgx;
    driveShadowed(cfg, 5'000, 4096, 103);
}

// Hammering one page past 128 writes forces split-PI minor-counter
// overflows; the shadow recomputes the (major, minor) pair and the
// page-overflow tally through every re-encryption.
TEST(CheckSecmem, SplitPiMinorOverflow)
{
    CheckGuard guard;

    FixedLatencyMemory memory(100);
    SecureMemoryConfig cfg = smallConfig();
    SecureMemoryController controller(cfg, memory);
    check::SecmemShadow shadow(controller);
    controller.setMetadataTap(
        [&shadow](const MetadataAccess &acc) { shadow.onTap(acc); });

    for (std::uint64_t i = 0; i < 300; ++i) {
        MemoryRequest req;
        req.addr = 0x4000; // one block: 300 writes > 2 minor wraps
        req.kind = RequestKind::Writeback;
        req.icount = i;
        shadow.beginRequest(req);
        controller.handleRequest(req);
        shadow.endRequest();
    }
    EXPECT_GT(controller.stats().pageOverflows, 0u)
        << "test never hit a minor-counter overflow";
    expectNoDivergence();
}

TEST(CheckSecmem, PartialWritesCleanRun)
{
    SecureMemoryConfig cfg = smallConfig();
    cfg.cache.partialWrites = true;
    driveShadowed(cfg, 5'000, 4096, 107);
}

TEST(CheckSecmem, PrefetchCleanRun)
{
    SecureMemoryConfig cfg = smallConfig();
    cfg.prefetchNextMetadata = true;
    driveShadowed(cfg, 5'000, 4096, 109);
}

TEST(CheckSecmem, UncachedControllerCleanRun)
{
    SecureMemoryConfig cfg = smallConfig();
    cfg.cacheEnabled = false;
    driveShadowed(cfg, 2'000, 1024, 113);
}

TEST(CheckSecmem, EagerTreeUpdateCleanRun)
{
    SecureMemoryConfig cfg = smallConfig();
    cfg.lazyTreeUpdate = false;
    driveShadowed(cfg, 5'000, 4096, 127);
}

// Negative control: if the tap wiring is broken the shadow sees no
// metadata stream at all — that must be reported, not silently passed.
TEST(CheckSecmem, MissingTapIsFlagged)
{
    CheckGuard guard;

    FixedLatencyMemory memory(100);
    SecureMemoryController controller(smallConfig(), memory);
    check::SecmemShadow shadow(controller); // tap deliberately not set

    MemoryRequest req;
    req.addr = 0x1000;
    req.kind = RequestKind::Read;
    shadow.beginRequest(req);
    controller.handleRequest(req);
    shadow.endRequest();

    EXPECT_GT(check::failureCount(), 0u)
        << "shadow accepted a request with no metadata taps";
}

} // namespace
} // namespace maps
