/**
 * @file
 * Unit tests for the util module: bit ops, RNG, histograms, CDFs,
 * statistics, and table formatting.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>

#include "util/bitops.hpp"
#include "util/cdf.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/types.hpp"

namespace maps {
namespace {

TEST(BitOps, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(BitOps, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(BitOps, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
}

TEST(BitOps, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 8), 0u);
    EXPECT_EQ(ceilDiv(1, 8), 1u);
    EXPECT_EQ(ceilDiv(8, 8), 1u);
    EXPECT_EQ(ceilDiv(9, 8), 2u);
}

TEST(BitOps, Bits)
{
    EXPECT_EQ(bits(0xFF00, 8, 8), 0xFFu);
    EXPECT_EQ(bits(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(bits(~std::uint64_t{0}, 60, 4), 0xFu);
}

TEST(Types, SizeLiterals)
{
    EXPECT_EQ(4_KiB, 4096u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(4_GiB, 4ull << 30);
}

TEST(Types, BlockHelpers)
{
    EXPECT_EQ(blockAlign(0x12345), 0x12340u);
    EXPECT_EQ(blockIndex(0x12345), 0x12345u >> 6);
    EXPECT_EQ(pageIndex(0x12345), 0x12u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.nextRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(13);
    int heads = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        heads += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, GeometricMean)
{
    Rng rng(17);
    const double p = 0.25;
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(p));
    EXPECT_NEAR(sum / n, 1.0 / p, 0.2);
}

TEST(Zipf, UniformWhenThetaZero)
{
    Rng rng(19);
    ZipfSampler zipf(10, 0.0);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i)
        counts[zipf.sample(rng)]++;
    for (const auto &[rank, count] : counts)
        EXPECT_NEAR(count / 50000.0, 0.1, 0.02);
}

TEST(Zipf, SkewFavorsLowRanks)
{
    Rng rng(23);
    ZipfSampler zipf(1000, 0.99);
    std::uint64_t low = 0, total = 0;
    for (int i = 0; i < 50000; ++i) {
        const auto rank = zipf.sample(rng);
        EXPECT_LT(rank, 1000u);
        low += rank < 10;
        ++total;
    }
    // With theta=0.99 the top-10 ranks get a large share.
    EXPECT_GT(static_cast<double>(low) / static_cast<double>(total), 0.25);
}

TEST(Zipf, SingleItem)
{
    Rng rng(29);
    ZipfSampler zipf(1, 0.9);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(Log2Histogram, BucketBoundaries)
{
    EXPECT_EQ(Log2Histogram::bucketLo(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketHi(0), 1u);
    EXPECT_EQ(Log2Histogram::bucketLo(4), 8u);
    EXPECT_EQ(Log2Histogram::bucketHi(4), 16u);
}

TEST(Log2Histogram, CumulativeMonotone)
{
    Log2Histogram hist;
    for (std::uint64_t v : {0, 1, 1, 3, 9, 100, 5000})
        hist.add(v);
    double prev = -1.0;
    for (std::uint64_t x = 0; x <= 8192; x = x ? x * 2 : 1) {
        const double c = hist.cumulativeAtOrBelow(x);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(hist.cumulativeAtOrBelow(1u << 20), 1.0);
}

TEST(Log2Histogram, Merge)
{
    Log2Histogram a, b;
    a.add(5);
    b.add(500);
    a.merge(b);
    EXPECT_EQ(a.totalCount(), 2u);
}

TEST(ExactHistogram, CumulativeAndQuantile)
{
    ExactHistogram hist;
    hist.add(10, 5);
    hist.add(20, 3);
    hist.add(30, 2);
    EXPECT_DOUBLE_EQ(hist.cumulativeAtOrBelow(9), 0.0);
    EXPECT_DOUBLE_EQ(hist.cumulativeAtOrBelow(10), 0.5);
    EXPECT_DOUBLE_EQ(hist.cumulativeAtOrBelow(20), 0.8);
    EXPECT_DOUBLE_EQ(hist.cumulativeAtOrBelow(30), 1.0);
    EXPECT_EQ(hist.quantile(0.5), 10u);
    EXPECT_EQ(hist.quantile(0.79), 20u);
    EXPECT_EQ(hist.quantile(1.0), 30u);
}

TEST(ExactHistogram, Mean)
{
    ExactHistogram hist;
    hist.add(2, 1);
    hist.add(4, 1);
    EXPECT_DOUBLE_EQ(hist.mean(), 3.0);
    ExactHistogram empty;
    EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

TEST(CdfCurve, FromHistogramEndsAtOne)
{
    ExactHistogram hist;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        hist.add(v);
    const auto curve = CdfCurve::fromHistogram("t", hist, 1000);
    ASSERT_FALSE(curve.empty());
    EXPECT_NEAR(curve.points().back().y, 1.0, 1e-9);
    EXPECT_NEAR(curve.evaluate(500), 0.5, 0.05);
}

TEST(CdfCurve, EvaluateClamps)
{
    CdfCurve curve("c");
    curve.addPoint(10, 0.25);
    curve.addPoint(100, 0.75);
    EXPECT_DOUBLE_EQ(curve.evaluate(1), 0.25);
    EXPECT_DOUBLE_EQ(curve.evaluate(1000), 0.75);
    EXPECT_NEAR(curve.evaluate(55), 0.5, 1e-9);
}

TEST(RunningStats, MeanVarianceMinMax)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-9);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, GeometricMean)
{
    EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-9);
    EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
}

TEST(Stats, ArithmeticMean)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
}

TEST(TextTable, FormatHelpers)
{
    EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::fmt(std::uint64_t{42}), "42");
    EXPECT_EQ(TextTable::fmtSize(64_KiB), "64KB");
    EXPECT_EQ(TextTable::fmtSize(2_MiB), "2MB");
    EXPECT_EQ(TextTable::fmtSize(4_GiB), "4GB");
    EXPECT_EQ(TextTable::fmtSize(100), "100B");
}

TEST(TextTable, PrintsAlignedRows)
{
    TextTable table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "22"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("| longer"), std::string::npos);
    EXPECT_EQ(table.rows(), 2u);
}

TEST(CsvWriter, EscapesSpecials)
{
    std::ostringstream os;
    CsvWriter csv(os);
    csv.writeRow({"a", "b,c", "d\"e"});
    EXPECT_EQ(os.str(), "a,\"b,c\",\"d\"\"e\"\n");
}

} // namespace
} // namespace maps
