/**
 * @file
 * Tests for the unified metadata cache: contents masks (Figure 1's
 * configurations), partial writes (§IV-E), and partitioning plumbing.
 */
#include <gtest/gtest.h>

#include "secmem/metadata_cache.hpp"

namespace maps {
namespace {

Addr
mdAddr(MetadataType type, std::uint64_t index, std::uint32_t level = 0)
{
    return MetadataLayout::encode(type, level, index);
}

TEST(MetadataCacheConfig, ContentsPresets)
{
    const auto counters = MetadataCacheConfig::countersOnly(64_KiB);
    EXPECT_TRUE(counters.cacheCounters);
    EXPECT_FALSE(counters.cacheHashes);
    EXPECT_FALSE(counters.cacheTree);

    const auto ch = MetadataCacheConfig::countersAndHashes(64_KiB);
    EXPECT_TRUE(ch.cacheCounters);
    EXPECT_TRUE(ch.cacheHashes);
    EXPECT_FALSE(ch.cacheTree);

    const auto all = MetadataCacheConfig::allTypes(64_KiB);
    EXPECT_TRUE(all.cacheCounters && all.cacheHashes && all.cacheTree);
}

TEST(MetadataCache, BypassedTypesNeverHit)
{
    MetadataCache cache(MetadataCacheConfig::countersOnly(16_KiB));
    const Addr hash = mdAddr(MetadataType::Hash, 1);
    for (int i = 0; i < 5; ++i) {
        const auto out = cache.access(hash, MetadataType::Hash, false);
        EXPECT_TRUE(out.bypassed);
        EXPECT_FALSE(out.hit);
    }
    EXPECT_EQ(
        cache.stats().bypasses[static_cast<int>(MetadataType::Hash)], 5u);
    EXPECT_FALSE(cache.probe(hash, MetadataType::Hash));
}

TEST(MetadataCache, CacheableTypesHitAfterFill)
{
    MetadataCache cache(MetadataCacheConfig::allTypes(16_KiB));
    const Addr ctr = mdAddr(MetadataType::Counter, 7);
    EXPECT_FALSE(cache.access(ctr, MetadataType::Counter, false).hit);
    EXPECT_TRUE(cache.access(ctr, MetadataType::Counter, false).hit);
    EXPECT_TRUE(cache.probe(ctr, MetadataType::Counter));

    const Addr tree = mdAddr(MetadataType::TreeNode, 3, 2);
    EXPECT_FALSE(cache.access(tree, MetadataType::TreeNode, true).hit);
    EXPECT_TRUE(cache.access(tree, MetadataType::TreeNode, false).hit);
}

TEST(MetadataCache, TypesDoNotAlias)
{
    // Same index, different type tags: distinct blocks.
    MetadataCache cache(MetadataCacheConfig::allTypes(16_KiB));
    cache.access(mdAddr(MetadataType::Counter, 5), MetadataType::Counter,
                 false);
    EXPECT_FALSE(
        cache.access(mdAddr(MetadataType::Hash, 5), MetadataType::Hash,
                     false)
            .hit);
}

TEST(MetadataCache, EvictionReportsTypeAndDirty)
{
    MetadataCacheConfig cfg = MetadataCacheConfig::allTypes(
        2 * kBlockSize);
    cfg.assoc = 2; // one set, two ways
    MetadataCache cache(cfg);
    cache.access(mdAddr(MetadataType::Counter, 0), MetadataType::Counter,
                 true);
    cache.access(mdAddr(MetadataType::Hash, 0), MetadataType::Hash, false);
    const auto out = cache.access(mdAddr(MetadataType::TreeNode, 0),
                                  MetadataType::TreeNode, false);
    ASSERT_TRUE(out.evictedValid);
    EXPECT_EQ(out.evictedType, MetadataType::Counter);
    EXPECT_TRUE(out.evictedDirty);
}

TEST(MetadataCache, PartialWriteInsertsPlaceholder)
{
    MetadataCacheConfig cfg = MetadataCacheConfig::allTypes(16_KiB);
    cfg.partialWrites = true;
    MetadataCache cache(cfg);

    const Addr hash = mdAddr(MetadataType::Hash, 9);
    const auto out = cache.access(hash, MetadataType::Hash, true, 3);
    EXPECT_TRUE(out.placeholderInserted);
    EXPECT_FALSE(out.hit);
    EXPECT_EQ(cache.stats().placeholderInserts, 1u);

    // Reading the written hash hits without completion traffic.
    const auto rd = cache.access(hash, MetadataType::Hash, false, 3);
    EXPECT_TRUE(rd.hit);
    EXPECT_EQ(rd.completionReads, 0u);
}

TEST(MetadataCache, PartialReadOfMissingHashCostsOneRead)
{
    MetadataCacheConfig cfg = MetadataCacheConfig::allTypes(16_KiB);
    cfg.partialWrites = true;
    MetadataCache cache(cfg);

    const Addr hash = mdAddr(MetadataType::Hash, 10);
    cache.access(hash, MetadataType::Hash, true, 0);
    const auto rd = cache.access(hash, MetadataType::Hash, false, 5);
    EXPECT_TRUE(rd.hit);
    EXPECT_EQ(rd.completionReads, 1u) << "missing hash must be fetched";
    EXPECT_EQ(cache.stats().partialCompletions, 1u);

    // After completion, all hashes are valid.
    const auto rd2 = cache.access(hash, MetadataType::Hash, false, 6);
    EXPECT_EQ(rd2.completionReads, 0u);
}

TEST(MetadataCache, PartialBlockCompletesAfterAllWrites)
{
    MetadataCacheConfig cfg = MetadataCacheConfig::allTypes(16_KiB);
    cfg.partialWrites = true;
    MetadataCache cache(cfg);

    const Addr hash = mdAddr(MetadataType::Hash, 11);
    for (std::uint32_t sub = 0; sub < 8; ++sub)
        cache.access(hash, MetadataType::Hash, true, sub);
    EXPECT_EQ(cache.stats().partialCompletions, 1u);
    const auto rd = cache.access(hash, MetadataType::Hash, false, 7);
    EXPECT_EQ(rd.completionReads, 0u);
}

TEST(MetadataCache, IncompletePlaceholderEvictionFlagged)
{
    MetadataCacheConfig cfg = MetadataCacheConfig::allTypes(
        2 * kBlockSize);
    cfg.assoc = 2;
    cfg.partialWrites = true;
    MetadataCache cache(cfg);

    cache.access(mdAddr(MetadataType::Hash, 0), MetadataType::Hash, true,
                 0); // partial
    cache.access(mdAddr(MetadataType::Hash, 1), MetadataType::Hash, true,
                 1); // partial
    // Third fill evicts the LRU placeholder, still incomplete.
    const auto out = cache.access(mdAddr(MetadataType::Counter, 0),
                                  MetadataType::Counter, false);
    ASSERT_TRUE(out.evictedValid);
    EXPECT_TRUE(out.evictedIncomplete);
    EXPECT_EQ(cache.stats().incompleteEvictions, 1u);
}

TEST(MetadataCache, NoPlaceholderWithoutFeature)
{
    MetadataCache cache(MetadataCacheConfig::allTypes(16_KiB));
    const auto out = cache.access(mdAddr(MetadataType::Hash, 9),
                                  MetadataType::Hash, true, 3);
    EXPECT_FALSE(out.placeholderInserted);
    EXPECT_EQ(cache.stats().placeholderInserts, 0u);
}

TEST(MetadataCache, MpkiCountsBypassesAsMisses)
{
    MetadataCache cache(MetadataCacheConfig::countersOnly(16_KiB));
    // 10 counter accesses to one block: 1 miss + 9 hits. 5 hash
    // accesses: all bypassed.
    const Addr ctr = mdAddr(MetadataType::Counter, 0);
    for (int i = 0; i < 10; ++i)
        cache.access(ctr, MetadataType::Counter, false);
    const Addr hash = mdAddr(MetadataType::Hash, 0);
    for (int i = 0; i < 5; ++i)
        cache.access(hash, MetadataType::Hash, false);
    // (1 miss + 5 bypasses) per 1000 instructions at 1000 instructions.
    EXPECT_DOUBLE_EQ(cache.mpki(1000), 6.0);
    EXPECT_DOUBLE_EQ(cache.mpki(0), 0.0);
}

TEST(MetadataCache, StaticPartitionRestrictsWays)
{
    MetadataCacheConfig cfg = MetadataCacheConfig::allTypes(
        8 * kBlockSize);
    cfg.assoc = 8; // one set
    cfg.partition = PartitionScheme::Static;
    cfg.staticCounterWays = 2;
    MetadataCache cache(cfg);

    // Fill 4 counter blocks into a 2-way counter partition: at most 2
    // survive.
    for (std::uint64_t i = 0; i < 4; ++i)
        cache.access(mdAddr(MetadataType::Counter, i),
                     MetadataType::Counter, false);
    int resident = 0;
    for (std::uint64_t i = 0; i < 4; ++i)
        resident += cache.probe(mdAddr(MetadataType::Counter, i),
                                MetadataType::Counter);
    EXPECT_EQ(resident, 2);
}

TEST(MetadataCache, DuelingPartitionReportsSplit)
{
    MetadataCacheConfig cfg = MetadataCacheConfig::allTypes(64_KiB);
    cfg.partition = PartitionScheme::Dueling;
    cfg.duelingSplitA = 2;
    cfg.duelingSplitB = 6;
    MetadataCache cache(cfg);
    const auto split = cache.activeDuelingSplit();
    EXPECT_TRUE(split == 2 || split == 6);

    MetadataCache plain(MetadataCacheConfig::allTypes(64_KiB));
    EXPECT_EQ(plain.activeDuelingSplit(), 0u);
}

TEST(MetadataCache, MeasureWindowStartsAtPhaseSnapshot)
{
    MetadataCache cache(MetadataCacheConfig::allTypes(16_KiB));
    metrics::Registry reg;
    cache.attachMetrics(reg, "secmem");

    cache.access(mdAddr(MetadataType::Counter, 0), MetadataType::Counter,
                 false);
    EXPECT_GT(cache.stats().totalAccesses(), 0u);

    // Counters are monotonic; the phase snapshot zeroes the measure
    // *window* while the totals keep accumulating.
    reg.beginPhase(metrics::Phase::Measure);
    const auto measured =
        reg.measureView("secmem.mdcache", cache.stats());
    EXPECT_EQ(measured.totalAccesses(), 0u);
    EXPECT_EQ(reg.measure("secmem.mdcache.array.hits") +
                  reg.measure("secmem.mdcache.array.misses"),
              0u);
    EXPECT_GT(cache.stats().totalAccesses(), 0u)
        << "totals survive the phase boundary";
}

} // namespace
} // namespace maps
