/**
 * @file
 * Cross-cutting integration tests: whole-system invariants that tie
 * the workload, hierarchy, controller, and analysis layers together.
 */
#include <gtest/gtest.h>

#include "analysis/reuse.hpp"
#include "core/simulator.hpp"
#include "util/table.hpp"

namespace maps {
namespace {

SimConfig
smallConfig(const std::string &bench)
{
    SimConfig cfg;
    cfg.benchmark = bench;
    cfg.warmupRefs = 50'000;
    cfg.measureRefs = 250'000;
    cfg.useDram = false;
    cfg.secure.layout.protectedBytes = 128_MiB;
    return cfg;
}

TEST(Integration, SpeculationChangesLatencyNotTraffic)
{
    auto cfg = smallConfig("fft");
    cfg.secure.speculation = true;
    const auto spec = runBenchmark(cfg);
    cfg.secure.speculation = false;
    const auto nospec = runBenchmark(cfg);

    // Speculation hides latency; it must not alter a single access.
    EXPECT_EQ(spec.memory.accesses(), nospec.memory.accesses());
    EXPECT_EQ(spec.mdCache.totalMisses(), nospec.mdCache.totalMisses());
    EXPECT_LT(spec.cycles, nospec.cycles);
}

TEST(Integration, LazyTreeUpdatesCoalesceWrites)
{
    auto cfg = smallConfig("lbm"); // write-heavy
    cfg.secure.lazyTreeUpdate = true;
    const auto lazy = runBenchmark(cfg);
    cfg.secure.lazyTreeUpdate = false;
    const auto eager = runBenchmark(cfg);

    const auto tree_writes = [](const RunReport &r) {
        return r.controller
            .memWrites[static_cast<int>(MemCategory::Tree)];
    };
    const auto tree_touches = [](const RunReport &r) {
        return r.mdCache.accesses[static_cast<int>(
            MetadataType::TreeNode)];
    };
    // Deferring to dirty-counter eviction coalesces repeated updates
    // of the same path (§IV-E note).
    EXPECT_LE(tree_writes(lazy), tree_writes(eager));
    EXPECT_LT(tree_touches(lazy), tree_touches(eager));
}

TEST(Integration, SgxCountersBehaveLikeHashes)
{
    // Table II consequence: with 512B coverage, counter blocks see the
    // same reuse distribution as hash blocks.
    auto cfg = smallConfig("libquantum");
    cfg.measureRefs = 700'000;
    cfg.secure.layout.counterMode = CounterMode::MonolithicSgx;
    cfg.secure.cacheEnabled = false;
    SecureMemorySim sim(cfg);
    ReuseDistanceAnalyzer analyzer;
    sim.setMetadataTap(
        [&analyzer](const MetadataAccess &a) { analyzer.observe(a); });
    sim.run();

    const auto &ctr = analyzer.typeHistogram(MetadataType::Counter);
    const auto &hash = analyzer.typeHistogram(MetadataType::Hash);
    ASSERT_GT(ctr.totalCount(), 0u);
    for (const std::uint64_t x : {8u, 64u, 512u, 4096u}) {
        EXPECT_NEAR(ctr.cumulativeAtOrBelow(x),
                    hash.cumulativeAtOrBelow(x), 0.05)
            << "at distance " << x;
    }
}

TEST(Integration, BiggerMetadataCacheMonotoneForLru)
{
    std::uint64_t prev = ~std::uint64_t{0};
    for (const std::uint64_t size : {16_KiB, 64_KiB, 256_KiB}) {
        auto cfg = smallConfig("fft");
        cfg.secure.cache.sizeBytes = size;
        cfg.secure.cache.policy = "lru";
        const auto report = runBenchmark(cfg);
        EXPECT_LE(report.mdCache.totalMisses(), prev)
            << TextTable::fmtSize(size);
        prev = report.mdCache.totalMisses();
    }
}

TEST(Integration, SeedsChangeOutcomes)
{
    auto cfg = smallConfig("canneal");
    const auto a = runBenchmark(cfg);
    cfg.seed = 42;
    const auto b = runBenchmark(cfg);
    EXPECT_NE(a.cycles, b.cycles)
        << "different seeds must yield different streams";
    // But the rough magnitude is stable.
    EXPECT_NEAR(static_cast<double>(a.llcMpki), b.llcMpki,
                0.3 * a.llcMpki);
}

TEST(Integration, NoMetadataCacheIsStrictlyWorse)
{
    auto cfg = smallConfig("leslie3d");
    const auto with = runBenchmark(cfg);
    cfg.secure.cacheEnabled = false;
    const auto without = runBenchmark(cfg);
    EXPECT_LT(with.controller.metadataMemAccesses(),
              without.controller.metadataMemAccesses());
    EXPECT_LT(with.memAccessesPerRequest,
              without.memAccessesPerRequest);
    // The no-cache factor: each request needs counter + hash + full
    // tree walk (reads); with a 256MB layout that is substantial.
    EXPECT_GT(without.memAccessesPerRequest, 3.0);
}

TEST(Integration, WarmupDoesNotLeakIntoStats)
{
    auto cfg = smallConfig("libquantum");
    cfg.warmupRefs = 300'000;
    cfg.measureRefs = 100'000;
    const auto report = runBenchmark(cfg);
    EXPECT_EQ(report.refs, 100'000u);
    // Measured instruction count reflects only the measured phase.
    EXPECT_LT(report.instructions, 100'000u * 10);
}

TEST(Integration, EnergyBreakdownConsistent)
{
    const auto report = runBenchmark(smallConfig("mcf"));
    const auto &e = report.energy;
    EXPECT_GT(e.l1Pj, 0.0);
    EXPECT_GT(e.l2Pj, 0.0);
    EXPECT_GT(e.llcPj, 0.0);
    EXPECT_GT(e.mdCachePj, 0.0);
    EXPECT_GT(e.dramPj, 0.0);
    EXPECT_GT(e.leakagePj, 0.0);
    EXPECT_NEAR(e.totalPj(),
                e.l1Pj + e.l2Pj + e.llcPj + e.mdCachePj + e.dramPj +
                    e.leakagePj,
                1e-6);
    // L1 is touched far more often than DRAM, but DRAM dominates
    // energy — the paper's §II-B motivation.
    EXPECT_GT(e.dramPj, e.l1Pj);
}

} // namespace
} // namespace maps
