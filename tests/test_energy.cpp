/**
 * @file
 * Tests for the energy/delay model.
 */
#include <gtest/gtest.h>

#include "energy/energy.hpp"

namespace maps {
namespace {

TEST(Energy, DramTransferUsesPaperConstant)
{
    EnergyModel model;
    // 64B = 512 bits at 150 pJ/bit [14].
    EXPECT_DOUBLE_EQ(model.dramAccessPj(), 512 * 150.0);
}

TEST(Energy, SramReferencePoint)
{
    EnergyModel model;
    // At the reference capacity, 0.3 pJ/bit [26].
    EXPECT_DOUBLE_EQ(model.sramAccessPj(1_MiB), 512 * 0.3);
}

TEST(Energy, SramScalesWithSqrtCapacity)
{
    EnergyModel model;
    EXPECT_DOUBLE_EQ(model.sramAccessPj(4_MiB),
                     2.0 * model.sramAccessPj(1_MiB));
    EXPECT_DOUBLE_EQ(model.sramAccessPj(256_KiB),
                     0.5 * model.sramAccessPj(1_MiB));
}

TEST(Energy, DramFarExceedsSram)
{
    // The §II-B motivation: DRAM access energy dwarfs SRAM.
    EnergyModel model;
    EXPECT_GT(model.dramAccessPj(), 100 * model.sramAccessPj(2_MiB));
}

TEST(Energy, CacheDynamicLinearInAccesses)
{
    EnergyModel model;
    EXPECT_DOUBLE_EQ(model.cacheDynamicPj(1_MiB, 1000),
                     1000 * model.sramAccessPj(1_MiB));
}

TEST(Energy, LeakageProportionalToSizeAndTime)
{
    EnergyModel model;
    const double e1 = model.leakagePj(1_MiB, 1.0);
    EXPECT_DOUBLE_EQ(model.leakagePj(2_MiB, 1.0), 2 * e1);
    EXPECT_DOUBLE_EQ(model.leakagePj(1_MiB, 3.0), 3 * e1);
    // 20 mW/MB for one second = 20 mJ = 2e10 pJ.
    EXPECT_DOUBLE_EQ(e1, 20e-3 * 1e12);
}

TEST(Energy, SecondsAtThreeGigahertz)
{
    EnergyModel model;
    EXPECT_DOUBLE_EQ(model.secondsOf(3'000'000'000ull), 1.0);
}

TEST(Energy, Ed2Definition)
{
    // 1 J for 2 s -> 1 * 2^2 = 4.
    EXPECT_DOUBLE_EQ(energyDelaySquared(1e12, 2.0), 4.0);
}

TEST(Energy, BreakdownTotals)
{
    EnergyBreakdown b;
    b.l1Pj = 1;
    b.l2Pj = 2;
    b.llcPj = 3;
    b.mdCachePj = 4;
    b.dramPj = 5;
    b.leakagePj = 6;
    EXPECT_DOUBLE_EQ(b.totalPj(), 21.0);
}

} // namespace
} // namespace maps
