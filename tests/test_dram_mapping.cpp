/**
 * @file
 * Deeper DRAM-model tests: address-mapping structure, latency bounds,
 * and row-buffer locality of realistic access patterns.
 */
#include <gtest/gtest.h>

#include "mem/dram.hpp"
#include "util/rng.hpp"

namespace maps {
namespace {

TEST(DramMapping, SequentialStreamIsRowFriendly)
{
    DramModel dram;
    const auto cfg = dram.config();
    Cycles now = 0;
    for (Addr a = 0; a < 64 * cfg.rowBytes; a += kBlockSize) {
        dram.access(a, false, now);
        now += 1000; // no queueing: isolate row behaviour
    }
    const auto &s = dram.stats();
    const double hit_rate =
        static_cast<double>(s.rowHits) /
        static_cast<double>(s.accesses());
    // One activate per row: (blocks/row - 1) hits per row.
    EXPECT_GT(hit_rate, 0.95);
}

TEST(DramMapping, RandomStreamIsRowHostile)
{
    DramModel dram;
    Rng rng(5);
    Cycles now = 0;
    for (int i = 0; i < 20000; ++i) {
        dram.access(rng.nextBounded(1 << 22) * kBlockSize, false, now);
        now += 1000;
    }
    const auto &s = dram.stats();
    const double hit_rate =
        static_cast<double>(s.rowHits) /
        static_cast<double>(s.accesses());
    EXPECT_LT(hit_rate, 0.1);
}

TEST(DramMapping, LatencyBounds)
{
    DramModel dram;
    const auto cfg = dram.config();
    const Cycles best = cfg.tCl + cfg.tBurst;
    const Cycles worst_service = cfg.tRp + cfg.tRcd + cfg.tCl +
                                 cfg.tBurst;
    Rng rng(7);
    Cycles now = 0;
    for (int i = 0; i < 5000; ++i) {
        now += 500; // generous spacing bounds queueing delay
        const auto r = dram.access(
            rng.nextBounded(1 << 20) * kBlockSize, rng.nextBool(0.3),
            now);
        EXPECT_GE(r.latency, best);
        EXPECT_LE(r.latency, worst_service + cfg.tWr);
    }
}

TEST(DramMapping, AdjacentBlocksOnDifferentChannelsDoNotQueue)
{
    DramConfig cfg;
    cfg.channels = 2;
    cfg.banksPerChannel = 1;
    DramModel dram(cfg);

    // Blocks 0 and 1 alternate channels: simultaneous issue sees no
    // queueing on either.
    const auto a = dram.access(0, false, 0);
    const auto b = dram.access(kBlockSize, false, 0);
    const Cycles unqueued = cfg.tRcd + cfg.tCl + cfg.tBurst;
    EXPECT_EQ(a.latency, unqueued);
    EXPECT_EQ(b.latency, unqueued);

    // Same stream into a single-channel, single-bank part queues.
    DramConfig narrow = cfg;
    narrow.channels = 1;
    DramModel serial(narrow);
    serial.access(0, false, 0);
    EXPECT_GT(serial.access(kBlockSize, false, 0).latency, unqueued)
        << "single channel must serialize what two channels overlap";
}

TEST(DramMapping, HitRateImprovesLatency)
{
    DramModel dram;
    Cycles now = 0;
    const auto first = dram.access(0, false, now);      // activate
    const auto second = dram.access(64, false, 1'000'000); // row hit
    EXPECT_LT(second.latency, first.latency);
}

} // namespace
} // namespace maps
