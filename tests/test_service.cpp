/**
 * @file
 * Unit tests for the maps::service layer: the JSON codec and wire
 * framing on the protocol boundary, the failure-classification and
 * retry-policy tables that define mapsd's robustness contract, chaos
 * spec parsing, request canonicalization (job identity), and the
 * crash-safe job journal.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include "service/child.hpp"
#include "service/client.hpp"
#include "service/journal.hpp"
#include "service/json.hpp"
#include "service/service.hpp"
#include "service/wire.hpp"

namespace fs = std::filesystem;
using namespace maps::service;

namespace {

fs::path
tempDir(const std::string &tag)
{
    const auto dir = fs::temp_directory_path() /
                     ("maps_service_test_" + tag + "_" +
                      std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

Json
parseOk(const std::string &text)
{
    std::string err;
    auto doc = Json::parse(text, err);
    EXPECT_TRUE(doc.has_value()) << text << ": " << err;
    return doc ? *doc : Json();
}

} // namespace

// ---------------------------------------------------------------------------
// JSON codec.
// ---------------------------------------------------------------------------

TEST(ServiceJson, RoundTripsDocuments)
{
    const char *docs[] = {
        "null",
        "true",
        "false",
        "0",
        "-17",
        "123456789",
        "\"hello\"",
        "[]",
        "{}",
        "[1,2,[3,{\"k\":\"v\"}],null]",
        "{\"a\":1,\"b\":\"two\",\"c\":[true,false],\"d\":{\"e\":null}}",
    };
    for (const char *text : docs)
        EXPECT_EQ(parseOk(text).dump(), text) << text;
}

TEST(ServiceJson, PreservesObjectInsertionOrder)
{
    // Deterministic serialization is what makes responses diff-able and
    // the journal stable across rewrites.
    Json doc = Json::object();
    doc.set("zebra", 1).set("alpha", 2).set("middle", 3);
    EXPECT_EQ(doc.dump(), "{\"zebra\":1,\"alpha\":2,\"middle\":3}");
    doc.set("zebra", 9); // Replacement keeps the original slot.
    EXPECT_EQ(doc.dump(), "{\"zebra\":9,\"alpha\":2,\"middle\":3}");
}

TEST(ServiceJson, EscapesAndUnescapesStrings)
{
    Json s(std::string("line\nquote\"tab\tback\\slash"));
    const std::string dumped = s.dump();
    EXPECT_EQ(parseOk(dumped).asString(), s.asString());
    EXPECT_EQ(parseOk("\"\\u0041\\u00e9\"").asString(), "A\xc3\xa9");
}

TEST(ServiceJson, RejectsMalformedInput)
{
    const char *bad[] = {
        "",
        "{",
        "}",
        "[1,",
        "{\"a\":}",
        "{\"a\" 1}",
        "{\"a\":1} trailing",
        "\"unterminated",
        "\"bad \\x escape\"",
        "\"trunc \\u00\"",
        "nul",
        "01a",
        "1e999", // Non-finite after strtod.
        "{'single':1}",
    };
    for (const char *text : bad) {
        std::string err;
        EXPECT_FALSE(Json::parse(text, err).has_value())
            << "accepted: " << text;
        EXPECT_FALSE(err.empty()) << text;
    }
}

TEST(ServiceJson, RejectsAbsurdNesting)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    std::string err;
    EXPECT_FALSE(Json::parse(deep, err).has_value());
}

TEST(ServiceJson, FormatsIntegersWithoutExponent)
{
    // Pids, counters and byte counts must survive a round trip through
    // jq without turning into 1.2e+06.
    EXPECT_EQ(Json(static_cast<std::uint64_t>(1200000)).dump(),
              "1200000");
    EXPECT_EQ(Json(0.5).dump(), "0.5");
    EXPECT_EQ(parseOk(Json(0.1).dump()).asNumber(), 0.1);
}

TEST(ServiceJson, TypedAccessorsFallBack)
{
    const Json doc =
        parseOk("{\"s\":\"x\",\"n\":7,\"b\":true,\"a\":[1]}");
    EXPECT_EQ(doc.str("s"), "x");
    EXPECT_EQ(doc.str("missing", "fb"), "fb");
    EXPECT_EQ(doc.num("n"), 7.0);
    EXPECT_EQ(doc.num("s", -1.0), -1.0) << "wrong type falls back";
    EXPECT_TRUE(doc.boolean("b"));
    EXPECT_EQ(doc.get("a")->size(), 1u);
    EXPECT_EQ(doc.get("nope"), nullptr);
}

// ---------------------------------------------------------------------------
// Wire framing.
// ---------------------------------------------------------------------------

class ServiceWire : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
    }
    void TearDown() override
    {
        ::close(fds_[0]);
        ::close(fds_[1]);
    }
    int fds_[2] = {-1, -1};
};

TEST_F(ServiceWire, RoundTripsFrames)
{
    std::string err, got;
    ASSERT_TRUE(writeFrame(fds_[0], "{\"op\":\"ping\"}", err)) << err;
    ASSERT_TRUE(writeFrame(fds_[0], "", err)) << "empty frame is legal";
    ASSERT_TRUE(readFrame(fds_[1], got, err, 1000)) << err;
    EXPECT_EQ(got, "{\"op\":\"ping\"}");
    ASSERT_TRUE(readFrame(fds_[1], got, err, 1000)) << err;
    EXPECT_EQ(got, "");
}

TEST_F(ServiceWire, RoundTripsLargePayloads)
{
    // Bigger than the reader's internal chunk, with binary-ish content.
    std::string big(300000, 'x');
    for (std::size_t i = 0; i < big.size(); i += 7)
        big[i] = static_cast<char>('A' + i % 26);
    std::string err, got;
    std::thread writer(
        [&] { ASSERT_TRUE(writeFrame(fds_[0], big, err)) << err; });
    std::string rerr;
    ASSERT_TRUE(readFrame(fds_[1], got, rerr, 5000)) << rerr;
    writer.join();
    EXPECT_EQ(got, big);
}

TEST_F(ServiceWire, RejectsMalformedLengthPrefix)
{
    const char *frames[] = {"\n", "12a\n3", "999999999999\nx", "-3\nxyz"};
    for (const char *frame : frames) {
        int pair[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
        ASSERT_GT(::send(pair[0], frame, std::strlen(frame), 0), 0);
        std::string got, err;
        EXPECT_FALSE(readFrame(pair[1], got, err, 500))
            << "accepted: " << frame;
        ::close(pair[0]);
        ::close(pair[1]);
    }
}

TEST_F(ServiceWire, ReportsEofAndTimeoutDistinctly)
{
    std::string got, err;
    ::close(fds_[0]);
    EXPECT_FALSE(readFrame(fds_[1], got, err, 500));
    EXPECT_NE(err.find("closed"), std::string::npos) << err;
    int pair[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
    EXPECT_FALSE(readFrame(pair[1], got, err, 50));
    EXPECT_NE(err.find("timed out"), std::string::npos) << err;
    ::close(pair[0]);
    ::close(pair[1]);
}

TEST_F(ServiceWire, RejectsOversizedWrites)
{
    std::string err;
    std::string huge;
    huge.resize(kMaxFrameBytes + 1);
    EXPECT_FALSE(writeFrame(fds_[0], huge, err));
    EXPECT_NE(err.find("too large"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Failure classification: the table mapsd's honesty rests on.
// ---------------------------------------------------------------------------

TEST(ServiceClassify, TableDriven)
{
    using Kind = ChildOutcome::Kind;
    struct Case
    {
        Kind kind;
        int exitCode;
        int signal;
        const char *stderrText;
        FailureClass want;
        const char *why;
    };
    const Case cases[] = {
        {Kind::Exited, 0, 0, "", FailureClass::None, "clean exit"},
        {Kind::Exited, 1, 0, "cell exceeded --cell-timeout=2s",
         FailureClass::Transient, "cooperative timeout is transient"},
        {Kind::Exited, 1, 0, "assertion failed: tree depth",
         FailureClass::Deterministic,
         "a failing simulation replays identically"},
        {Kind::Exited, 2, 0, "unknown option: --frobnicate",
         FailureClass::Deterministic, "usage errors never heal"},
        {Kind::Exited, 4, 0, "--only-cells named unknown cells",
         FailureClass::Deterministic, "bad cell ids never heal"},
        {Kind::Signaled, -1, SIGKILL, "", FailureClass::Transient,
         "an external kill (OOM, chaos) deserves a retry"},
        {Kind::Signaled, -1, SIGSEGV, "", FailureClass::Transient,
         "crash of one attempt; checkpoints make retry cheap"},
        {Kind::Signaled, -1, SIGABRT, "", FailureClass::Deterministic,
         "assert() in the driver replays identically"},
        {Kind::TimedOut, -1, 0, "", FailureClass::Transient,
         "hard-deadline kill (hung or stopped cell)"},
        {Kind::SpawnFailed, -1, 0, "", FailureClass::Deterministic,
         "missing binary cannot appear by retrying"},
    };
    for (const auto &c : cases) {
        ChildOutcome outcome;
        outcome.kind = c.kind;
        outcome.exitCode = c.exitCode;
        outcome.termSignal = c.signal;
        EXPECT_EQ(classifyOutcome(outcome, c.stderrText), c.want)
            << c.why;
    }
}

// ---------------------------------------------------------------------------
// Retry policy: transient-only, exponential, budgeted.
// ---------------------------------------------------------------------------

TEST(ServiceRetry, TableDriven)
{
    RetryPolicy policy;
    policy.budget = 3;
    policy.baseMs = 100;
    policy.capMs = 350;
    struct Case
    {
        FailureClass cls;
        int attempt;
        double want; // Negative: no retry allowed.
        const char *why;
    };
    const Case cases[] = {
        {FailureClass::Transient, 0, 100, "first retry at base"},
        {FailureClass::Transient, 1, 200, "doubles"},
        {FailureClass::Transient, 2, 350, "clamped at the cap"},
        {FailureClass::Transient, 3, -1, "budget of 3 exhausted"},
        {FailureClass::Transient, 99, -1, "way past budget"},
        {FailureClass::Shed, 0, 100, "shed admissions back off too"},
        {FailureClass::Shed, 2, 350, "shed shares the schedule"},
        {FailureClass::Deterministic, 0, -1,
         "deterministic failures are never retried"},
        {FailureClass::Deterministic, 1, -1, "not even later"},
        {FailureClass::None, 0, -1, "success is not retried"},
    };
    for (const auto &c : cases) {
        const double got = policy.nextDelayMs(c.cls, c.attempt);
        if (c.want < 0)
            EXPECT_LT(got, 0.0) << c.why;
        else
            EXPECT_DOUBLE_EQ(got, c.want) << c.why;
    }
}

TEST(ServiceRetry, ZeroBudgetNeverRetries)
{
    RetryPolicy policy;
    policy.budget = 0;
    EXPECT_LT(policy.nextDelayMs(FailureClass::Transient, 0), 0.0);
    EXPECT_LT(policy.nextDelayMs(FailureClass::Shed, 0), 0.0);
}

// ---------------------------------------------------------------------------
// Chaos spec parsing (mirrors the maps::fault grammar).
// ---------------------------------------------------------------------------

TEST(ServiceChaos, ParsesWellFormedSpecs)
{
    std::vector<ChaosEvent> events;
    EXPECT_EQ(parseChaosSpec("", events), "");
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(parseChaosSpec(
                  "kill:worker@n=3,hang:worker@n=5,kill:worker@n=7",
                  events),
              "");
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, ChaosEvent::Kind::KillWorker);
    EXPECT_EQ(events[0].nth, 3u);
    EXPECT_EQ(events[1].kind, ChaosEvent::Kind::HangWorker);
    EXPECT_EQ(events[1].nth, 5u);
    EXPECT_FALSE(events[2].fired);
}

TEST(ServiceChaos, RejectsMalformedSpecs)
{
    const char *bad[] = {
        "explode:worker@n=1", "kill:worker@when=later", "kill:worker@n=",
        "kill:worker@n=x",    "kill:worker@n=0",        "kill:worker",
    };
    std::vector<ChaosEvent> events;
    for (const char *spec : bad)
        EXPECT_FALSE(parseChaosSpec(spec, events).empty())
            << "accepted: " << spec;
}

// ---------------------------------------------------------------------------
// Request canonicalization: job identity is what makes retries safe.
// ---------------------------------------------------------------------------

TEST(ServiceRequest, JobIdIgnoresFlagOrderOnly)
{
    RequestSpec a;
    a.driver = "fig3_reuse_cdf";
    a.args = {"--quick", "--seed=7"};
    RequestSpec b = a;
    b.args = {"--seed=7", "--quick"};
    EXPECT_EQ(a.jobId(), b.jobId()) << "flag order is irrelevant";
    EXPECT_EQ(a.jobId().size(), 16u);

    RequestSpec c = a;
    c.args = {"--quick", "--seed=8"};
    EXPECT_NE(a.jobId(), c.jobId()) << "different seed, different job";
    RequestSpec d = a;
    d.metrics = "full";
    EXPECT_NE(a.jobId(), d.jobId()) << "metrics level changes the job";
    RequestSpec e = a;
    e.cellTimeoutSec = 2.5;
    EXPECT_NE(a.jobId(), e.jobId()) << "deadline changes the job";
}

TEST(ServiceRequest, ValidateRejectsDaemonOwnedFlags)
{
    RequestSpec spec;
    spec.driver = "fig3_reuse_cdf";
    EXPECT_EQ(spec.validate(), "");
    const char *owned[] = {
        "--resume=/tmp/x",   "--only-cells=a", "--list-cells",
        "--jobs=8",          "--metrics=full", "--cell-timeout=3",
    };
    for (const char *flag : owned) {
        RequestSpec bad = spec;
        bad.args = {flag};
        EXPECT_FALSE(bad.validate().empty()) << "accepted: " << flag;
    }
    RequestSpec traversal = spec;
    traversal.driver = "../evil";
    EXPECT_FALSE(traversal.validate().empty());
    RequestSpec metrics = spec;
    metrics.metrics = "verbose";
    EXPECT_FALSE(metrics.validate().empty());
    RequestSpec positional = spec;
    positional.args = {"quick"};
    EXPECT_FALSE(positional.validate().empty());
}

TEST(ServiceRequest, SurvivesJsonRoundTrip)
{
    RequestSpec spec;
    spec.driver = "fig7_partitioning";
    spec.args = {"--quick", "--seed=9"};
    spec.metrics = "summary";
    spec.cellTimeoutSec = 1.5;
    RequestSpec back;
    ASSERT_EQ(RequestSpec::fromJson(spec.toJson(), back), "");
    EXPECT_EQ(back.jobId(), spec.jobId());
    EXPECT_EQ(back.args, spec.args);
    EXPECT_EQ(back.metrics, "summary");
}

// ---------------------------------------------------------------------------
// Journal: atomic publish, recovery scan, torn-file tolerance.
// ---------------------------------------------------------------------------

TEST(ServiceJournal, SavesLoadsAndRemoves)
{
    const auto dir = tempDir("journal");
    Journal journal;
    ASSERT_EQ(journal.open(dir.string()), "");

    Json state = Json::object();
    state.set("state", "queued");
    state.set("n", 7);
    std::string err;
    ASSERT_TRUE(journal.save("job-b", state, err)) << err;
    state.set("state", "running");
    ASSERT_TRUE(journal.save("job-b", state, err)) << "rewrite: " << err;
    ASSERT_TRUE(journal.save("job-a", state, err)) << err;

    std::vector<std::string> skipped;
    auto jobs = journal.loadAll(skipped);
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_TRUE(skipped.empty());
    EXPECT_EQ(jobs[0].first, "job-a") << "deterministic recovery order";
    EXPECT_EQ(jobs[1].first, "job-b");
    EXPECT_EQ(jobs[1].second.str("state"), "running")
        << "rewrite replaced the document";

    journal.remove("job-a");
    jobs = journal.loadAll(skipped);
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].first, "job-b");
    fs::remove_all(dir);
}

TEST(ServiceJournal, SkipsTornAndForeignFiles)
{
    const auto dir = tempDir("journal_torn");
    Journal journal;
    ASSERT_EQ(journal.open(dir.string()), "");
    std::string err;
    ASSERT_TRUE(journal.save("good", parseOk("{\"state\":\"done\"}"),
                             err));
    // A crash mid-publish leaves a .tmp; a torn rename target would be
    // unparsable. Neither may break recovery of the good entry.
    std::ofstream(dir / "jobs" / "torn.json") << "{\"state\":";
    std::ofstream(dir / "jobs" / "leftover.json.tmp.123") << "x";
    std::vector<std::string> skipped;
    const auto jobs = journal.loadAll(skipped);
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].first, "good");
    EXPECT_EQ(skipped.size(), 2u);
    fs::remove_all(dir);
}

TEST(ServiceJournal, AtomicWritePublishesAllOrNothing)
{
    const auto dir = tempDir("atomic");
    const auto path = (dir / "doc.json").string();
    std::string err;
    ASSERT_TRUE(atomicWriteFile(path, "first", err)) << err;
    ASSERT_TRUE(atomicWriteFile(path, "second", err)) << err;
    std::string got;
    ASSERT_TRUE(readWholeFile(path, got, err));
    EXPECT_EQ(got, "second");
    // No tmp droppings under the final name's directory.
    std::size_t entries = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
    fs::remove_all(dir);
}

TEST(ServiceJournal, CountersRoundTrip)
{
    JobCounters counters;
    counters.cellsRun = 11;
    counters.workersKilled = 5;
    counters.hungCells = 2;
    counters.requeuedCells = 7;
    counters.downgradedCells = 3;
    counters.daemonRestarts = 1;
    counters.rounds = 4;
    JobCounters back;
    back.fromJson(counters.toJson());
    EXPECT_EQ(back.cellsRun, 11u);
    EXPECT_EQ(back.workersKilled, 5u);
    EXPECT_EQ(back.hungCells, 2u);
    EXPECT_EQ(back.requeuedCells, 7u);
    EXPECT_EQ(back.downgradedCells, 3u);
    EXPECT_EQ(back.daemonRestarts, 1u);
    EXPECT_EQ(back.rounds, 4u);
}

// ---------------------------------------------------------------------------
// Out-of-process execution: outcomes and the hard deadline.
// ---------------------------------------------------------------------------

TEST(ServiceChild, ReportsExitCodesAndSignals)
{
    const auto dir = tempDir("child");
    ChildSpec spec;
    spec.exe = "/bin/sh";
    spec.argv = {"-c", "exit 3"};
    spec.stdoutPath = (dir / "out").string();
    spec.stderrPath = (dir / "err").string();
    auto outcome = runChild(spec);
    EXPECT_EQ(outcome.kind, ChildOutcome::Kind::Exited);
    EXPECT_EQ(outcome.exitCode, 3);

    spec.argv = {"-c", "kill -KILL $$"};
    outcome = runChild(spec);
    EXPECT_EQ(outcome.kind, ChildOutcome::Kind::Signaled);
    EXPECT_EQ(outcome.termSignal, SIGKILL);

    spec.exe = (dir / "definitely-not-here").string();
    spec.argv = {};
    outcome = runChild(spec);
    EXPECT_EQ(outcome.kind, ChildOutcome::Kind::SpawnFailed);
    EXPECT_NE(outcome.error.find("exec"), std::string::npos);
    fs::remove_all(dir);
}

TEST(ServiceChild, HardDeadlineReapsHungChildren)
{
    const auto dir = tempDir("child_deadline");
    ChildSpec spec;
    spec.exe = "/bin/sh";
    spec.argv = {"-c", "sleep 30"};
    spec.stdoutPath = (dir / "out").string();
    spec.stderrPath = (dir / "err").string();
    spec.deadlineMs = 300;
    const auto outcome = runChild(spec);
    EXPECT_EQ(outcome.kind, ChildOutcome::Kind::TimedOut);
    EXPECT_LT(outcome.elapsedMs, 10000.0) << "did not wait for sleep 30";
    fs::remove_all(dir);
}

TEST(ServiceChild, HardDeadlineReapsStoppedChildren)
{
    // The chaos harness SIGSTOPs children immediately after fork — the
    // deadline must still reap them (a stopped child never execs, never
    // writes the exec pipe, and never exits on its own).
    const auto dir = tempDir("child_stopped");
    ChildSpec spec;
    spec.exe = "/bin/sh";
    spec.argv = {"-c", "sleep 30"};
    spec.stdoutPath = (dir / "out").string();
    spec.stderrPath = (dir / "err").string();
    spec.deadlineMs = 300;
    const auto stopIt = [](pid_t pid, void *) { ::kill(pid, SIGSTOP); };
    const auto outcome = runChild(spec, +stopIt, nullptr);
    EXPECT_EQ(outcome.kind, ChildOutcome::Kind::TimedOut);
    EXPECT_LT(outcome.elapsedMs, 10000.0);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Name tables stay in sync with the enums.
// ---------------------------------------------------------------------------

TEST(ServiceNames, ClassAndStateNames)
{
    EXPECT_STREQ(failureClassName(FailureClass::None), "none");
    EXPECT_STREQ(failureClassName(FailureClass::Transient), "transient");
    EXPECT_STREQ(failureClassName(FailureClass::Deterministic),
                 "deterministic");
    EXPECT_STREQ(failureClassName(FailureClass::Shed), "shed");
    EXPECT_STREQ(jobStateName(JobState::Queued), "queued");
    EXPECT_STREQ(jobStateName(JobState::Running), "running");
    EXPECT_STREQ(jobStateName(JobState::Done), "done");
    EXPECT_STREQ(jobStateName(JobState::Failed), "failed");
}
