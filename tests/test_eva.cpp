/**
 * @file
 * Tests for the EVA replacement policy (Beckmann & Sanchez).
 */
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/policy_eva.hpp"
#include "util/rng.hpp"

namespace maps {
namespace {

SetAssociativeCache
makeEvaCache(std::uint64_t size, std::uint32_t assoc, EvaConfig cfg = {})
{
    CacheGeometry geom;
    geom.sizeBytes = size;
    geom.assoc = assoc;
    return SetAssociativeCache(geom, std::make_unique<EvaPolicy>(cfg));
}

TEST(Eva, Name)
{
    EvaPolicy plain;
    EXPECT_EQ(plain.name(), "eva");
    EvaConfig cfg;
    cfg.classifyByType = true;
    EvaPolicy typed(cfg);
    EXPECT_EQ(typed.name(), "eva-typed");
}

TEST(Eva, InitialRanksFavourOldLines)
{
    EvaPolicy policy;
    policy.init(4, 4);
    const auto &ranks = policy.ranks();
    for (std::size_t a = 1; a < ranks.size(); ++a)
        EXPECT_LT(ranks[a], ranks[a - 1]);
}

TEST(Eva, RetainsHotBlocksUnderChurn)
{
    // 1 set, 8 ways; 4 hot blocks re-referenced constantly plus a cold
    // scan. After warmup, EVA should keep the hot blocks resident.
    auto cache = makeEvaCache(8 * kBlockSize, 8);
    Rng rng(3);
    const std::vector<Addr> hot{0, 64, 128, 192};

    std::uint64_t hot_misses_late = 0;
    for (int i = 0; i < 60000; ++i) {
        for (const Addr h : hot) {
            const bool hit = cache.access(h, false).hit;
            if (i > 40000 && !hit)
                ++hot_misses_late;
        }
        // One cold, never-reused block per round.
        cache.access((1000 + i) * kBlockSize, false);
    }
    // Hot blocks are re-referenced 4x as often as cold ones arrive; a
    // reuse-aware policy keeps them nearly always.
    EXPECT_LT(hot_misses_late, 2000u);
}

TEST(Eva, BeatsChurnBetterThanLruOnMixedReuse)
{
    // Classic LRU-adversarial mix: a loop slightly larger than the
    // cache plus scanning traffic. EVA should not do dramatically worse
    // than LRU (smoke-level ranking check on a seeded stream).
    const std::uint64_t size = 64 * kBlockSize;
    auto eva = makeEvaCache(size, 8);

    CacheGeometry geom;
    geom.sizeBytes = size;
    geom.assoc = 8;
    SetAssociativeCache lru(geom, makeReplacementPolicy("lru"));

    Rng rng(7);
    for (int i = 0; i < 200000; ++i) {
        Addr addr;
        if (rng.nextBool(0.7)) {
            addr = rng.nextBounded(48) * kBlockSize; // fits: reused
        } else {
            addr = (100 + rng.nextBounded(4096)) * kBlockSize; // scan
        }
        eva.access(addr, false);
        lru.access(addr, false);
    }
    EXPECT_LT(static_cast<double>(eva.stats().misses),
              1.25 * static_cast<double>(lru.stats().misses));
}

TEST(Eva, TypedVariantKeepsSeparateHistograms)
{
    EvaConfig cfg;
    cfg.classifyByType = true;
    cfg.numClasses = 2;
    cfg.updatePeriod = 256;
    EvaPolicy policy(cfg);
    policy.init(1, 4);

    ReplContext cls0;
    cls0.typeClass = 0;
    ReplContext cls1;
    cls1.typeClass = 1;

    // Insert and hit class 0 at young ages, class 1 never hits; after
    // an update the rank tables must differ.
    for (int i = 0; i < 2000; ++i) {
        policy.insert(0, 0, cls0);
        policy.touch(0, 0, cls0);
        policy.insert(0, 1, cls1);
    }
    EXPECT_NE(policy.ranks(0), policy.ranks(1));
}

TEST(Eva, RejectsDegenerateConfig)
{
    EvaConfig cfg;
    cfg.maxAge = 1;
    EXPECT_DEATH({ EvaPolicy policy(cfg); }, "");
}

} // namespace
} // namespace maps
