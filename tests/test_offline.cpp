/**
 * @file
 * Tests for the offline toolkit: the trace oracle, Belady's MIN (policy
 * and fixed-trace simulator), iterMIN, and CSOPT.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "cache/cache.hpp"
#include "cache/policy_belady.hpp"
#include "offline/csopt.hpp"
#include "offline/itermin.hpp"
#include "offline/min_sim.hpp"
#include "offline/oracle.hpp"
#include "util/rng.hpp"

namespace maps {
namespace {

std::vector<Addr>
randomTrace(std::uint64_t blocks, std::size_t length, std::uint64_t seed,
            double locality = 0.0)
{
    Rng rng(seed);
    std::vector<Addr> trace;
    trace.reserve(length);
    Addr prev = 0;
    for (std::size_t i = 0; i < length; ++i) {
        Addr a;
        if (locality > 0.0 && i > 0 && rng.nextBool(locality))
            a = prev; // re-reference
        else
            a = rng.nextBounded(blocks) * kBlockSize;
        trace.push_back(a);
        prev = a;
    }
    return trace;
}

TEST(TraceOracle, NextUsePositions)
{
    // trace positions: a=0, b=1, a=2, c=3, b=4
    TraceOracle oracle({0, 64, 0, 128, 64});
    EXPECT_EQ(oracle.nextUse(0), 2u) << "cursor 0: next a strictly after 0";
    EXPECT_EQ(oracle.nextUse(64), 1u);
    EXPECT_EQ(oracle.nextUse(128), 3u);
    EXPECT_EQ(oracle.nextUse(999), FutureOracle::kNeverUsed);

    oracle.onAccess(0);
    EXPECT_EQ(oracle.cursor(), 1u);
    EXPECT_EQ(oracle.nextUse(0), 2u);
    oracle.onAccess(64);
    oracle.onAccess(0);
    EXPECT_EQ(oracle.nextUse(0), FutureOracle::kNeverUsed);
    EXPECT_EQ(oracle.nextUse(64), 4u);
}

TEST(TraceOracle, CountsDivergences)
{
    TraceOracle oracle({0, 64, 128});
    oracle.onAccess(0);   // matches
    oracle.onAccess(999); // diverges
    oracle.onAccess(128); // matches
    oracle.onAccess(7);   // past the end: not counted as divergence
    EXPECT_EQ(oracle.divergences(), 1u);
    EXPECT_EQ(oracle.cursor(), 4u);
}

TEST(MinSim, NeverWorseThanLruOnFixedTraces)
{
    CacheGeometry geom;
    geom.sizeBytes = 2_KiB;
    geom.assoc = 4;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const auto trace = randomTrace(256, 20000, seed, 0.3);
        const auto min = simulateMinFixedTrace(trace, geom);
        const auto lru = simulateLruFixedTrace(trace, geom);
        EXPECT_LE(min.misses, lru.misses) << "seed " << seed;
        EXPECT_EQ(min.accesses, trace.size());
        EXPECT_EQ(min.hits + min.misses, min.accesses);
    }
}

TEST(MinSim, PerfectOnCacheFittingWorkingSet)
{
    CacheGeometry geom;
    geom.sizeBytes = 4_KiB; // 64 blocks
    geom.assoc = 64;        // fully associative
    std::vector<Addr> trace;
    for (int round = 0; round < 10; ++round) {
        for (Addr a = 0; a < 32 * kBlockSize; a += kBlockSize)
            trace.push_back(a);
    }
    const auto result = simulateMinFixedTrace(trace, geom);
    EXPECT_EQ(result.misses, 32u);
}

TEST(MinSim, BeladyAnomalyExample)
{
    // The classic sequence where LRU thrashes but MIN does not: cyclic
    // scan of W+1 blocks through a W-way set.
    CacheGeometry geom;
    geom.sizeBytes = 4 * kBlockSize;
    geom.assoc = 4;
    std::vector<Addr> trace;
    for (int round = 0; round < 100; ++round) {
        for (Addr a = 0; a < 5 * kBlockSize; a += kBlockSize)
            trace.push_back(a);
    }
    const auto min = simulateMinFixedTrace(trace, geom);
    const auto lru = simulateLruFixedTrace(trace, geom);
    EXPECT_EQ(lru.misses, trace.size()) << "LRU thrashes completely";
    // MIN keeps 3 of 5 blocks resident: roughly 2 misses per round.
    EXPECT_LT(min.misses, trace.size() / 2);
}

TEST(BeladyPolicy, MatchesOfflineMinWithPerfectOracle)
{
    // When the oracle's trace is exactly the live access stream, the
    // BeladyPolicy-driven cache must reproduce offline MIN's misses.
    CacheGeometry geom;
    geom.sizeBytes = 1_KiB;
    geom.assoc = 4;
    for (std::uint64_t seed = 11; seed <= 14; ++seed) {
        const auto trace = randomTrace(64, 8000, seed, 0.2);

        TraceOracle oracle(trace);
        SetAssociativeCache cache(
            geom, std::make_unique<BeladyPolicy>(oracle));
        for (const Addr a : trace)
            cache.access(a, false);

        const auto offline = simulateMinFixedTrace(trace, geom);
        EXPECT_EQ(cache.stats().misses, offline.misses)
            << "seed " << seed;
        EXPECT_EQ(oracle.divergences(), 0u);
    }
}

TEST(BeladyPolicy, StaleOracleDegrades)
{
    // Feed the policy an oracle built from a *different* stream: MIN
    // with wrong future knowledge should miss more than with the right
    // one (the paper's §V-B effect, distilled).
    CacheGeometry geom;
    geom.sizeBytes = 1_KiB;
    geom.assoc = 4;
    const auto live = randomTrace(64, 8000, 21, 0.3);
    const auto stale = randomTrace(64, 8000, 99, 0.3);

    TraceOracle right(live);
    SetAssociativeCache good(geom, std::make_unique<BeladyPolicy>(right));
    for (const Addr a : live)
        good.access(a, false);

    TraceOracle wrong(stale);
    SetAssociativeCache bad(geom, std::make_unique<BeladyPolicy>(wrong));
    for (const Addr a : live)
        bad.access(a, false);

    EXPECT_GT(wrong.divergences(), 0u);
    EXPECT_GT(bad.stats().misses, good.stats().misses);
}

TEST(CsOpt, UniformCostsMatchMin)
{
    // With all miss costs equal, CSOPT degenerates to Belady's MIN.
    CacheGeometry geom;
    geom.sizeBytes = 4 * kBlockSize;
    geom.assoc = 4;
    for (std::uint64_t seed = 31; seed <= 34; ++seed) {
        const auto addrs = randomTrace(12, 300, seed, 0.2);
        std::vector<CsOptAccess> trace;
        for (const Addr a : addrs)
            trace.push_back({a, 1});

        CsOptConfig cfg;
        cfg.ways = 4;
        const auto csopt = solveCsOpt(trace, cfg);
        const auto min = simulateMinFixedTrace(addrs, geom);
        EXPECT_TRUE(csopt.exact);
        EXPECT_EQ(csopt.minCost, min.misses) << "seed " << seed;
        EXPECT_EQ(csopt.misses, min.misses);
    }
}

TEST(CsOpt, NonUniformCostsBeatMinsChoice)
{
    // Two-way cache. Block E(xpensive) has miss cost 10, blocks A/B
    // cost 1. Stream: E A B E — evicting E at the third access (MIN's
    // choice: E is reused furthest) pays 10+1+1+10 = 22; evicting A
    // instead pays 10+1+1 = 12 because the final E access hits.
    const Addr E = 0, A = 64, B = 128;
    std::vector<CsOptAccess> trace{{E, 10}, {A, 1}, {B, 1}, {E, 10}};
    CsOptConfig cfg;
    cfg.ways = 2;
    const auto result = solveCsOpt(trace, cfg);
    EXPECT_TRUE(result.exact);
    EXPECT_EQ(result.minCost, 12u);
    EXPECT_EQ(result.misses, 3u);

    // Belady on the same trace misses only 3 times too, but pays the
    // expensive re-miss; with uniform costing its decision is "optimal"
    // while cost-wise it is not — quantify both policies by cost.
    CacheGeometry geom;
    geom.sizeBytes = 2 * kBlockSize;
    geom.assoc = 2;
    std::vector<Addr> addrs{E, A, B, E};
    const auto min = simulateMinFixedTrace(addrs, geom);
    EXPECT_EQ(min.misses, 3u);
}

TEST(CsOpt, CostSavingsGrowWithCostSpread)
{
    // Random trace where one hot block is very expensive: CSOPT's cost
    // should be no higher than MIN's realized cost.
    Rng rng(41);
    std::vector<CsOptAccess> trace;
    std::vector<Addr> addrs;
    for (int i = 0; i < 400; ++i) {
        const Addr a = rng.nextBounded(10) * kBlockSize;
        const std::uint64_t cost = (a == 0) ? 8 : 1;
        trace.push_back({a, cost});
        addrs.push_back(a);
    }
    CsOptConfig cfg;
    cfg.ways = 3;

    const auto csopt = solveCsOpt(trace, cfg);

    // Realized cost of MIN: simulate MIN and charge each miss its cost.
    CacheGeometry geom;
    geom.sizeBytes = 3 * 64;
    geom.assoc = 3;
    // simulateMinFixedTrace does not expose per-access misses; recompute
    // with a tiny local MIN (fully associative, 3 ways).
    std::vector<std::uint64_t> next_use(addrs.size());
    {
        std::unordered_map<Addr, std::uint64_t> upcoming;
        for (std::size_t i = addrs.size(); i-- > 0;) {
            const auto it = upcoming.find(addrs[i]);
            next_use[i] = it == upcoming.end()
                              ? ~std::uint64_t{0}
                              : it->second;
            upcoming[addrs[i]] = i;
        }
    }
    std::unordered_map<Addr, std::uint64_t> resident;
    std::uint64_t min_cost = 0;
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        const auto it = resident.find(addrs[i]);
        if (it != resident.end()) {
            it->second = next_use[i];
            continue;
        }
        min_cost += trace[i].missCost;
        if (resident.size() >= 3) {
            auto victim = resident.begin();
            for (auto c = resident.begin(); c != resident.end(); ++c)
                if (c->second > victim->second)
                    victim = c;
            resident.erase(victim);
        }
        resident.emplace(addrs[i], next_use[i]);
    }
    EXPECT_LE(csopt.minCost, min_cost);
}

TEST(CsOpt, BeamPruningReported)
{
    Rng rng(43);
    std::vector<CsOptAccess> trace;
    for (int i = 0; i < 2000; ++i)
        trace.push_back({rng.nextBounded(64) * kBlockSize,
                         1 + rng.nextBounded(5)});
    CsOptConfig cfg;
    cfg.ways = 6;
    cfg.beamWidth = 64; // deliberately tiny
    const auto result = solveCsOpt(trace, cfg);
    EXPECT_FALSE(result.exact);
    EXPECT_LE(result.peakStates, 64u * 6 + 64); // frontier bounded-ish
    EXPECT_GT(result.minCost, 0u);
}

TEST(CsOpt, SetAssociativeDecomposition)
{
    Rng rng(47);
    std::vector<CsOptAccess> trace;
    for (int i = 0; i < 500; ++i)
        trace.push_back({rng.nextBounded(32) * kBlockSize, 1});
    const auto split = solveCsOptSetAssociative(trace, 4, 2);
    // Compare with per-set MIN.
    CacheGeometry geom;
    geom.sizeBytes = 4 * 2 * kBlockSize;
    geom.assoc = 2;
    std::vector<Addr> addrs;
    for (const auto &acc : trace)
        addrs.push_back(acc.block);
    const auto min = simulateMinFixedTrace(addrs, geom);
    EXPECT_EQ(split.minCost, min.misses);
}

TEST(CsOpt, EmptyTrace)
{
    CsOptConfig cfg;
    const auto result = solveCsOpt({}, cfg);
    EXPECT_EQ(result.minCost, 0u);
    EXPECT_EQ(result.misses, 0u);
}

TEST(IterMin, ConvergesOnStableStream)
{
    // A synthetic "simulation" whose access stream does not depend on
    // the policy: iterMIN must converge after one MIN iteration.
    const auto fixed = randomTrace(32, 4000, 51, 0.2);
    CacheGeometry geom;
    geom.sizeBytes = 1_KiB;
    geom.assoc = 4;

    IterMinDriver driver;
    const auto simulate =
        [&](std::unique_ptr<ReplacementPolicy> policy,
            std::vector<Addr> &trace_out) -> std::uint64_t {
        SetAssociativeCache cache(geom, std::move(policy));
        for (const Addr a : fixed) {
            cache.access(a, false);
            trace_out.push_back(blockAlign(a));
        }
        return cache.stats().misses;
    };
    const auto result = driver.run(simulate, "lru", 6);
    EXPECT_TRUE(result.converged);
    ASSERT_GE(result.missesPerIteration.size(), 2u);
    // MIN with a faithful oracle cannot be worse than the LRU profile.
    EXPECT_LE(result.finalMisses(), result.missesPerIteration.front());
    EXPECT_EQ(result.divergencesPerIteration.back(), 0u);
}

TEST(IterMin, PolicyDependentStreamIterates)
{
    // A stream that *depends* on the policy's evictions (a crude stand-
    // in for tree-node traffic): append an extra access after each miss
    // beyond the first N. iterMIN should still terminate.
    CacheGeometry geom;
    geom.sizeBytes = 512;
    geom.assoc = 2;
    const auto base = randomTrace(24, 2000, 57, 0.1);

    IterMinDriver driver;
    const auto simulate =
        [&](std::unique_ptr<ReplacementPolicy> policy,
            std::vector<Addr> &trace_out) -> std::uint64_t {
        SetAssociativeCache cache(geom, std::move(policy));
        for (const Addr a : base) {
            const auto out = cache.access(a, false);
            trace_out.push_back(blockAlign(a));
            if (!out.hit && out.evictedValid) {
                // Policy-dependent side access.
                const Addr side =
                    blockAlign(out.evictedAddr) ^ (1ull << 20);
                cache.access(side, false);
                trace_out.push_back(side);
            }
        }
        return cache.stats().misses;
    };
    const auto result = driver.run(simulate, "lru", 5);
    EXPECT_GE(result.iterations(), 1u);
    EXPECT_LE(result.iterations(), 5u);
}

} // namespace
} // namespace maps
