/**
 * @file
 * Additional CSOPT properties: brute-force cross-check on tiny traces,
 * monotonicity in capacity, and cost-model edge cases.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "offline/csopt.hpp"
#include "util/rng.hpp"

namespace maps {
namespace {

/** Exhaustive optimal cost by trying every eviction choice. */
std::uint64_t
bruteForce(const std::vector<CsOptAccess> &trace, unsigned ways)
{
    std::uint64_t best = ~std::uint64_t{0};
    std::function<void(std::size_t, std::vector<Addr>, std::uint64_t)>
        go = [&](std::size_t i, std::vector<Addr> content,
                 std::uint64_t cost) {
            if (cost >= best)
                return; // prune
            if (i == trace.size()) {
                best = std::min(best, cost);
                return;
            }
            const Addr block = blockAlign(trace[i].block);
            if (std::find(content.begin(), content.end(), block) !=
                content.end()) {
                go(i + 1, content, cost);
                return;
            }
            const std::uint64_t new_cost = cost + trace[i].missCost;
            if (content.size() < ways) {
                content.push_back(block);
                go(i + 1, content, new_cost);
                return;
            }
            for (std::size_t v = 0; v < content.size(); ++v) {
                auto child = content;
                child[v] = block;
                go(i + 1, child, new_cost);
            }
        };
    go(0, {}, 0);
    return best;
}

TEST(CsOptExtra, MatchesBruteForceOnTinyTraces)
{
    Rng rng(61);
    for (int round = 0; round < 20; ++round) {
        std::vector<CsOptAccess> trace;
        const unsigned ways = 2 + rng.nextBounded(2); // 2 or 3
        for (int i = 0; i < 12; ++i) {
            trace.push_back({rng.nextBounded(5) * kBlockSize,
                             1 + rng.nextBounded(9)});
        }
        CsOptConfig cfg;
        cfg.ways = ways;
        cfg.beamWidth = 0; // exact
        const auto solved = solveCsOpt(trace, cfg);
        EXPECT_TRUE(solved.exact);
        EXPECT_EQ(solved.minCost, bruteForce(trace, ways))
            << "round " << round;
    }
}

TEST(CsOptExtra, MoreWaysNeverCostMore)
{
    Rng rng(67);
    std::vector<CsOptAccess> trace;
    for (int i = 0; i < 200; ++i)
        trace.push_back({rng.nextBounded(10) * kBlockSize,
                         1 + rng.nextBounded(4)});
    std::uint64_t prev = ~std::uint64_t{0};
    for (unsigned ways = 1; ways <= 6; ++ways) {
        CsOptConfig cfg;
        cfg.ways = ways;
        const auto r = solveCsOpt(trace, cfg);
        EXPECT_LE(r.minCost, prev) << ways << " ways";
        prev = r.minCost;
    }
}

TEST(CsOptExtra, ScalingCostsScalesOptimum)
{
    Rng rng(71);
    std::vector<CsOptAccess> base;
    for (int i = 0; i < 150; ++i)
        base.push_back({rng.nextBounded(8) * kBlockSize,
                        1 + rng.nextBounded(3)});
    std::vector<CsOptAccess> doubled = base;
    for (auto &acc : doubled)
        acc.missCost *= 2;

    CsOptConfig cfg;
    cfg.ways = 3;
    EXPECT_EQ(2 * solveCsOpt(base, cfg).minCost,
              solveCsOpt(doubled, cfg).minCost);
}

TEST(CsOptExtra, SingleWayDegeneratesToMissCount)
{
    // With one way, every distinct consecutive access misses.
    std::vector<CsOptAccess> trace{{0, 1}, {64, 1}, {0, 1}, {64, 1}};
    CsOptConfig cfg;
    cfg.ways = 1;
    const auto r = solveCsOpt(trace, cfg);
    EXPECT_EQ(r.misses, 4u);
}

TEST(CsOptExtra, HitsAreFree)
{
    std::vector<CsOptAccess> trace{{0, 5}, {0, 5}, {0, 5}};
    CsOptConfig cfg;
    cfg.ways = 2;
    const auto r = solveCsOpt(trace, cfg);
    EXPECT_EQ(r.minCost, 5u);
    EXPECT_EQ(r.misses, 1u);
}

TEST(CsOptExtra, ExpansionCountsReported)
{
    Rng rng(73);
    std::vector<CsOptAccess> trace;
    for (int i = 0; i < 100; ++i)
        trace.push_back({rng.nextBounded(12) * kBlockSize, 1});
    CsOptConfig cfg;
    cfg.ways = 4;
    const auto r = solveCsOpt(trace, cfg);
    EXPECT_GT(r.expansions, 0u);
    EXPECT_GT(r.peakStates, 1u);
}

} // namespace
} // namespace maps
