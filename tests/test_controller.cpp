/**
 * @file
 * Tests for the secure memory controller: read/write metadata traffic,
 * tree traversal termination, lazy tree updates, speculation timing,
 * page re-encryption, and the metadata tap.
 */
#include <gtest/gtest.h>

#include <vector>

#include "mem/fixed_latency.hpp"
#include "secmem/controller.hpp"

namespace maps {
namespace {

constexpr Cycles kMemLat = 100;
constexpr Cycles kHashLat = 40;
constexpr Cycles kAesLat = 40;

SecureMemoryConfig
baseConfig()
{
    SecureMemoryConfig cfg;
    cfg.layout.protectedBytes = 16_MiB; // 4096 counter blocks, 4 levels
    cfg.cache = MetadataCacheConfig::allTypes(16_KiB);
    cfg.hashLatency = kHashLat;
    cfg.aesLatency = kAesLat;
    return cfg;
}

MemoryRequest
read(Addr addr, InstCount icount = 0)
{
    return {addr, RequestKind::Read, icount};
}

MemoryRequest
writeback(Addr addr, InstCount icount = 0)
{
    return {addr, RequestKind::Writeback, icount};
}

std::uint32_t
treeLevels(const SecureMemoryController &c)
{
    return c.layout().numTreeLevels();
}

TEST(Controller, ColdReadFetchesEverything)
{
    FixedLatencyMemory mem(kMemLat);
    SecureMemoryController ctrl(baseConfig(), mem);
    const auto out = ctrl.handleRequest(read(0));

    const auto levels = treeLevels(ctrl);
    EXPECT_EQ(levels, 4u);
    // data + counter + full tree path + hash
    EXPECT_EQ(out.memAccesses, 2u + levels + 1u);
    EXPECT_FALSE(out.counterHit);
    EXPECT_FALSE(out.hashHit);
    EXPECT_EQ(out.treeLevelsFetched, levels);

    const auto &s = ctrl.stats();
    EXPECT_EQ(s.memReads[static_cast<int>(MemCategory::Data)], 1u);
    EXPECT_EQ(s.memReads[static_cast<int>(MemCategory::Counter)], 1u);
    EXPECT_EQ(s.memReads[static_cast<int>(MemCategory::Tree)], levels);
    EXPECT_EQ(s.memReads[static_cast<int>(MemCategory::Hash)], 1u);
}

TEST(Controller, WarmReadHitsMetadataCache)
{
    FixedLatencyMemory mem(kMemLat);
    SecureMemoryController ctrl(baseConfig(), mem);
    ctrl.handleRequest(read(0));
    // Same page and same 512B hash group: counter and hash both hit.
    const auto out = ctrl.handleRequest(read(64));
    EXPECT_TRUE(out.counterHit);
    EXPECT_TRUE(out.hashHit);
    EXPECT_EQ(out.memAccesses, 1u) << "only the data block";
    EXPECT_EQ(out.treeLevelsFetched, 0u);
}

TEST(Controller, CachedTreeAncestorStopsTraversal)
{
    FixedLatencyMemory mem(kMemLat);
    SecureMemoryController ctrl(baseConfig(), mem);
    ctrl.handleRequest(read(0)); // fills tree path of page 0
    // Page 1's counter block shares page 0's tree leaf (arity 8): its
    // miss traversal must stop at the cached leaf without memory traffic.
    const auto out = ctrl.handleRequest(read(kPageSize));
    EXPECT_FALSE(out.counterHit);
    EXPECT_EQ(out.treeLevelsFetched, 0u);
    EXPECT_EQ(out.memAccesses, 3u)
        << "data + counter + (new 512B group's) hash; no tree traffic";
}

TEST(Controller, NoCacheModePaysFullPathEveryTime)
{
    FixedLatencyMemory mem(kMemLat);
    auto cfg = baseConfig();
    cfg.cacheEnabled = false;
    SecureMemoryController ctrl(cfg, mem);
    const auto levels = treeLevels(ctrl);

    for (int i = 0; i < 3; ++i) {
        const auto out = ctrl.handleRequest(read(0));
        EXPECT_EQ(out.memAccesses, 2u + levels + 1u) << "iteration " << i;
        EXPECT_FALSE(out.counterHit);
    }
    EXPECT_EQ(ctrl.stats().memReads[static_cast<int>(MemCategory::Tree)],
              3u * levels);
}

TEST(Controller, ColdWriteFillsMetadataAndPostsData)
{
    FixedLatencyMemory mem(kMemLat);
    SecureMemoryController ctrl(baseConfig(), mem);
    const auto out = ctrl.handleRequest(writeback(0));

    const auto levels = treeLevels(ctrl);
    EXPECT_EQ(out.latency, 0u) << "writebacks are posted";
    const auto &s = ctrl.stats();
    // counter fill + its verification traversal + hash fill + data write
    EXPECT_EQ(s.memReads[static_cast<int>(MemCategory::Counter)], 1u);
    EXPECT_EQ(s.memReads[static_cast<int>(MemCategory::Tree)], levels);
    EXPECT_EQ(s.memReads[static_cast<int>(MemCategory::Hash)], 1u);
    EXPECT_EQ(s.memWrites[static_cast<int>(MemCategory::Data)], 1u);
    // Lazy tree updates: nothing written to the tree yet.
    EXPECT_EQ(s.memWrites[static_cast<int>(MemCategory::Tree)], 0u);
}

TEST(Controller, ImmediateTreeUpdateWhenLazyDisabled)
{
    FixedLatencyMemory mem(kMemLat);
    auto cfg = baseConfig();
    cfg.lazyTreeUpdate = false;
    SecureMemoryController ctrl(cfg, mem);

    std::vector<MetadataAccess> taps;
    ctrl.setMetadataTap(
        [&taps](const MetadataAccess &acc) { taps.push_back(acc); });

    ctrl.handleRequest(writeback(0));
    const auto levels = treeLevels(ctrl);
    unsigned tree_writes = 0;
    for (const auto &acc : taps) {
        if (acc.type == MetadataType::TreeNode && acc.isWrite())
            ++tree_writes;
    }
    EXPECT_EQ(tree_writes, levels)
        << "non-lazy mode writes the whole path";
    EXPECT_EQ(ctrl.stats().rootUpdates, 1u);
}

TEST(Controller, LazyTreeWriteHappensOnCounterEviction)
{
    FixedLatencyMemory mem(kMemLat);
    auto cfg = baseConfig();
    cfg.cache.sizeBytes = 4 * kBlockSize; // tiny: force evictions
    cfg.cache.assoc = 4;
    SecureMemoryController ctrl(cfg, mem);

    std::vector<MetadataAccess> taps;
    ctrl.setMetadataTap(
        [&taps](const MetadataAccess &acc) { taps.push_back(acc); });

    // Dirty counters for many distinct pages churn the tiny cache.
    for (std::uint64_t page = 0; page < 64; ++page)
        ctrl.handleRequest(writeback(page * kPageSize));

    const auto &s = ctrl.stats();
    EXPECT_GT(s.memWrites[static_cast<int>(MemCategory::Counter)], 0u)
        << "dirty counters must be written back";
    unsigned tree_writes = 0;
    for (const auto &acc : taps)
        tree_writes += acc.type == MetadataType::TreeNode && acc.isWrite();
    EXPECT_GT(tree_writes, 0u)
        << "dirty counter eviction must update the tree";
}

TEST(Controller, SpeculationHidesVerificationLatency)
{
    FixedLatencyMemory mem_spec(kMemLat);
    auto cfg = baseConfig();
    cfg.speculation = true;
    SecureMemoryController spec(cfg, mem_spec);
    const auto fast = spec.handleRequest(read(0));
    // max(data, counter + AES) + 1 XOR cycle.
    EXPECT_EQ(fast.latency, kMemLat + kAesLat + 1);

    FixedLatencyMemory mem_nospec(kMemLat);
    cfg.speculation = false;
    SecureMemoryController nospec(cfg, mem_nospec);
    const auto slow = nospec.handleRequest(read(0));
    EXPECT_GT(slow.latency, fast.latency);
    // Verification latency itself is identical; only its visibility
    // changes.
    EXPECT_EQ(slow.verifyLatency, fast.verifyLatency);
}

TEST(Controller, VerifyLatencyCountsTreeDepth)
{
    FixedLatencyMemory mem(kMemLat);
    SecureMemoryController ctrl(baseConfig(), mem);
    const auto out = ctrl.handleRequest(read(0));
    const auto levels = treeLevels(ctrl);
    // Each fetched level: memory + hash; plus the root compare and the
    // data-hash check.
    EXPECT_EQ(out.verifyLatency,
              levels * (kMemLat + kHashLat) + kHashLat + kHashLat);
}

TEST(Controller, PageOverflowReencryptsWholePage)
{
    FixedLatencyMemory mem(kMemLat);
    SecureMemoryController ctrl(baseConfig(), mem);
    for (int i = 0; i < 127; ++i)
        ctrl.handleRequest(writeback(0));
    EXPECT_EQ(ctrl.stats().pageOverflows, 0u);
    ctrl.handleRequest(writeback(0)); // 128th write overflows
    const auto &s = ctrl.stats();
    EXPECT_EQ(s.pageOverflows, 1u);
    EXPECT_EQ(s.memReads[static_cast<int>(MemCategory::Reencrypt)],
              kBlocksPerPage);
    EXPECT_EQ(s.memWrites[static_cast<int>(MemCategory::Reencrypt)],
              kBlocksPerPage);
}

TEST(Controller, SgxModeHasNoOverflow)
{
    FixedLatencyMemory mem(kMemLat);
    auto cfg = baseConfig();
    cfg.layout.counterMode = CounterMode::MonolithicSgx;
    SecureMemoryController ctrl(cfg, mem);
    for (int i = 0; i < 300; ++i)
        ctrl.handleRequest(writeback(0));
    EXPECT_EQ(ctrl.stats().pageOverflows, 0u);
}

TEST(Controller, TapSeesWorkloadDrivenStream)
{
    FixedLatencyMemory mem(kMemLat);
    SecureMemoryController ctrl(baseConfig(), mem);
    std::vector<MetadataAccess> taps;
    ctrl.setMetadataTap(
        [&taps](const MetadataAccess &acc) { taps.push_back(acc); });

    ctrl.handleRequest(read(0, 12345));
    const auto levels = treeLevels(ctrl);
    ASSERT_EQ(taps.size(), 2u + levels);
    EXPECT_EQ(taps.front().type, MetadataType::Counter);
    EXPECT_FALSE(taps.front().isWrite());
    EXPECT_EQ(taps.front().icount, 12345u);
    for (std::uint32_t l = 0; l < levels; ++l) {
        EXPECT_EQ(taps[1 + l].type, MetadataType::TreeNode);
        EXPECT_EQ(taps[1 + l].level, l);
    }
    EXPECT_EQ(taps.back().type, MetadataType::Hash);
}

TEST(Controller, CountersOnlyConfigBypassesHashes)
{
    FixedLatencyMemory mem(kMemLat);
    auto cfg = baseConfig();
    cfg.cache = MetadataCacheConfig::countersOnly(16_KiB);
    SecureMemoryController ctrl(cfg, mem);

    ctrl.handleRequest(read(0));
    ctrl.handleRequest(read(64)); // same counter block, same hash block
    const auto &s = ctrl.stats();
    EXPECT_EQ(s.memReads[static_cast<int>(MemCategory::Hash)], 2u)
        << "uncached hashes refetch every time";
    EXPECT_EQ(s.memReads[static_cast<int>(MemCategory::Counter)], 1u)
        << "cached counter hits on the second read";
}

TEST(Controller, CounterHitSkipsTreeEntirely)
{
    FixedLatencyMemory mem(kMemLat);
    SecureMemoryController ctrl(baseConfig(), mem);
    std::vector<MetadataAccess> taps;
    ctrl.handleRequest(read(0));
    ctrl.setMetadataTap(
        [&taps](const MetadataAccess &acc) { taps.push_back(acc); });
    ctrl.handleRequest(read(0));
    for (const auto &acc : taps)
        EXPECT_NE(acc.type, MetadataType::TreeNode)
            << "cached counters were verified on fill (§II)";
}

TEST(Controller, StatsAggregateAndPhaseWindow)
{
    FixedLatencyMemory mem(kMemLat);
    SecureMemoryController ctrl(baseConfig(), mem);
    metrics::Registry reg;
    ctrl.attachMetrics(reg);

    ctrl.handleRequest(read(0));
    ctrl.handleRequest(writeback(kPageSize));
    const auto &s = ctrl.stats();
    EXPECT_EQ(s.readRequests, 1u);
    EXPECT_EQ(s.writeRequests, 1u);
    EXPECT_GT(s.totalMemAccesses(), 0u);
    EXPECT_GT(s.metadataMemAccesses(), 0u);
    EXPECT_GT(s.avgReadLatency(), 0.0);

    // Monotonic counters: the measure window opens at the phase
    // snapshot and excludes everything before it.
    reg.beginPhase(metrics::Phase::Measure);
    EXPECT_EQ(reg.measureView("secmem", ctrl.stats()).requests(), 0u);
    ctrl.handleRequest(read(0));
    EXPECT_EQ(reg.measureView("secmem", ctrl.stats()).requests(), 1u);
    EXPECT_EQ(ctrl.stats().requests(), 3u)
        << "totals survive the phase boundary";
    EXPECT_EQ(reg.warmup("secmem.requests.read"), 1u);
}

TEST(Controller, RejectsOutOfRangeAddress)
{
    FixedLatencyMemory mem(kMemLat);
    SecureMemoryController ctrl(baseConfig(), mem);
    EXPECT_DEATH({ ctrl.handleRequest(read(32_MiB)); }, "");
}

TEST(Controller, MetadataRegionsDoNotOverlapDram)
{
    // Distinct metadata blocks must map to distinct DRAM addresses:
    // exercise via row-hit behaviour — not directly observable, so
    // check the weaker invariant that traffic counts per category add
    // up and memory sees every access.
    FixedLatencyMemory mem(kMemLat);
    SecureMemoryController ctrl(baseConfig(), mem);
    ctrl.handleRequest(read(0));
    ctrl.handleRequest(writeback(8 * kPageSize));
    EXPECT_EQ(mem.stats().accesses(), ctrl.stats().totalMemAccesses());
}

} // namespace
} // namespace maps
