/**
 * @file
 * Tests for maps::fault: spec-grammar parsing, the coverage matrix of
 * surfaceCovered(), end-to-end detection through the controller's real
 * verify path, the demonstrably uncovered data-without-MAC class, the
 * maps::check expected-divergence contract for live counter tampering,
 * and counter-overflow stress under injection.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/check.hpp"
#include "core/simulator.hpp"
#include "fault/fault.hpp"
#include "mem/fixed_latency.hpp"
#include "secmem/controller.hpp"

namespace maps {
namespace {

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultReport;
using fault::FaultSpec;
using fault::FaultSurface;
using fault::FaultTrigger;

// ---------------------------------------------------------------------
// Spec grammar
// ---------------------------------------------------------------------

TEST(FaultSpecParsing, AcceptsEveryKindSurfaceAndTrigger)
{
    FaultSpec spec;

    EXPECT_EQ(FaultPlan::parseSpec("flip:tree@req=120", spec), "");
    EXPECT_EQ(spec.kind, FaultKind::BitFlip);
    EXPECT_EQ(spec.surface, FaultSurface::TreeNode);
    EXPECT_EQ(spec.trigger.kind, FaultTrigger::Kind::AtRequest);
    EXPECT_EQ(spec.trigger.request, 120u);

    EXPECT_EQ(FaultPlan::parseSpec("replay:counter-minor@p=0.001", spec),
              "");
    EXPECT_EQ(spec.kind, FaultKind::StaleReplay);
    EXPECT_EQ(spec.surface, FaultSurface::CounterMinor);
    EXPECT_EQ(spec.trigger.kind, FaultTrigger::Kind::PerRequest);
    EXPECT_DOUBLE_EQ(spec.trigger.probability, 0.001);

    EXPECT_EQ(FaultPlan::parseSpec("flip:data@addr=0x1000", spec), "");
    EXPECT_EQ(spec.surface, FaultSurface::Data);
    EXPECT_EQ(spec.trigger.kind, FaultTrigger::Kind::AtAddress);
    EXPECT_EQ(spec.trigger.addr, 0x1000u);

    EXPECT_EQ(FaultPlan::parseSpec("flip:counter-major@addr=4096", spec),
              "");
    EXPECT_EQ(spec.surface, FaultSurface::CounterMajor);
    EXPECT_EQ(spec.trigger.addr, 4096u);

    EXPECT_EQ(FaultPlan::parseSpec("replay:mac@req=3", spec), "");
    EXPECT_EQ(spec.surface, FaultSurface::Mac);

    EXPECT_EQ(FaultPlan::parseSpec("flip:mdcache@p=0.5", spec), "");
    EXPECT_EQ(spec.surface, FaultSurface::MdCacheLine);
}

TEST(FaultSpecParsing, RejectsMalformedSpecs)
{
    FaultSpec spec;
    EXPECT_NE(FaultPlan::parseSpec("", spec), "");
    EXPECT_NE(FaultPlan::parseSpec("zap:data@req=1", spec), "");
    EXPECT_NE(FaultPlan::parseSpec("flip:bogus@req=1", spec), "");
    EXPECT_NE(FaultPlan::parseSpec("flip:data", spec), "");
    EXPECT_NE(FaultPlan::parseSpec("flip:data@when=now", spec), "");
    EXPECT_NE(FaultPlan::parseSpec("flip:data@req=abc", spec), "");
    EXPECT_NE(FaultPlan::parseSpec("flip:data@p=1.5", spec), "");
    EXPECT_NE(FaultPlan::parseSpec("flip:data@p=-0.1", spec), "");
}

TEST(FaultSpecParsing, PlanAddCollectsSpecsAndReportsErrors)
{
    FaultPlan plan;
    EXPECT_EQ(plan.add("flip:tree@req=7"), "");
    EXPECT_EQ(plan.add("replay:data@p=0.01"), "");
    EXPECT_NE(plan.add("nonsense"), "");
    ASSERT_EQ(plan.specs.size(), 2u);
    EXPECT_EQ(plan.specs[0].classId(), "flip:tree");
    EXPECT_EQ(plan.specs[1].classId(), "replay:data");
}

TEST(FaultSpec, ClassIdNamesKindAndSurface)
{
    FaultSpec spec;
    spec.kind = FaultKind::BitFlip;
    spec.surface = FaultSurface::CounterMinor;
    EXPECT_EQ(spec.classId(), "flip:counter-minor");
    spec.kind = FaultKind::StaleReplay;
    spec.surface = FaultSurface::TreeNode;
    EXPECT_EQ(spec.classId(), "replay:tree");
}

// ---------------------------------------------------------------------
// Coverage matrix
// ---------------------------------------------------------------------

TEST(FaultSurfaceCovered, TreeCoveredSurfacesAreAlwaysCovered)
{
    for (bool mac : {false, true}) {
        EXPECT_TRUE(
            fault::surfaceCovered(FaultSurface::CounterMinor, mac));
        EXPECT_TRUE(
            fault::surfaceCovered(FaultSurface::CounterMajor, mac));
        EXPECT_TRUE(fault::surfaceCovered(FaultSurface::TreeNode, mac));
    }
}

TEST(FaultSurfaceCovered, MacCoveredSurfacesDependOnMacCheck)
{
    EXPECT_TRUE(fault::surfaceCovered(FaultSurface::Data, true));
    EXPECT_TRUE(fault::surfaceCovered(FaultSurface::Mac, true));
    EXPECT_FALSE(fault::surfaceCovered(FaultSurface::Data, false));
    EXPECT_FALSE(fault::surfaceCovered(FaultSurface::Mac, false));
}

TEST(FaultSurfaceCovered, MdCacheIsNeverCovered)
{
    EXPECT_FALSE(fault::surfaceCovered(FaultSurface::MdCacheLine, true));
    EXPECT_FALSE(
        fault::surfaceCovered(FaultSurface::MdCacheLine, false));
}

// ---------------------------------------------------------------------
// End-to-end campaigns on a tiny simulation
// ---------------------------------------------------------------------

SimConfig
tinySimConfig(std::uint64_t seed)
{
    SimConfig cfg;
    cfg.benchmark = "libquantum";
    cfg.seed = seed;
    // Tiny caches so a short trace produces real metadata traffic.
    cfg.hierarchy.l1Bytes = 2_KiB;
    cfg.hierarchy.l2Bytes = 4_KiB;
    cfg.hierarchy.llcBytes = 8_KiB;
    cfg.warmupRefs = 2'000;
    cfg.measureRefs = 20'000;
    return cfg;
}

FaultReport
runPlan(const FaultPlan &plan, std::uint64_t seed)
{
    SimConfig cfg = tinySimConfig(seed);
    SecureMemorySim sim(cfg);
    FaultInjector injector(sim.controller(), plan);
    sim.controller().setFaultObserver(&injector);
    sim.run();
    injector.finalScrub();
    return injector.report();
}

TEST(FaultCampaign, CoveredSurfacesDetectEverythingNotMasked)
{
    FaultPlan plan;
    plan.seed = 42;
    for (const char *spec : {
             "flip:counter-minor@req=5",
             "replay:counter-minor@p=0.01",
             "flip:counter-major@req=9",
             "flip:tree@req=13",
             "replay:tree@p=0.01",
             "flip:mac@req=17",
             "replay:mac@p=0.01",
             "flip:data@req=21",
             "replay:data@p=0.01",
         }) {
        ASSERT_EQ(plan.add(spec), "") << spec;
    }

    const FaultReport report = runPlan(plan, plan.seed);
    EXPECT_GT(report.requests, 0u);
    EXPECT_GT(report.verifies, 0u);
    EXPECT_GT(report.macChecks, 0u);
    EXPECT_FALSE(report.classes.empty());

    for (const auto &[class_id, stats] : report.classes) {
        EXPECT_GT(stats.injected, 0u) << class_id;
        EXPECT_EQ(stats.silent, 0u) << class_id;
        EXPECT_EQ(stats.dormant, 0u) << class_id;
        EXPECT_EQ(stats.detected, stats.injected - stats.masked)
            << class_id;
        EXPECT_DOUBLE_EQ(stats.coverage(), 1.0) << class_id;
    }
}

TEST(FaultCampaign, DataTamperingUndetectedWithoutMacCheck)
{
    FaultPlan plan;
    plan.seed = 7;
    plan.macCheckEnabled = false;
    ASSERT_EQ(plan.add("flip:data@req=7"), "");
    ASSERT_EQ(plan.add("flip:data@p=0.02"), "");

    const FaultReport report = runPlan(plan, plan.seed);
    const auto *stats = report.find("flip:data");
    ASSERT_NE(stats, nullptr);
    EXPECT_GT(stats->injected, 0u);
    EXPECT_EQ(stats->detected, 0u)
        << "data faults must sail through with the MAC check off";
    EXPECT_EQ(stats->silent + stats->masked + stats->dormant,
              stats->injected);
}

TEST(FaultCampaign, ReportIsDeterministicPerSeed)
{
    FaultPlan plan;
    plan.seed = 99;
    ASSERT_EQ(plan.add("flip:counter-minor@req=5"), "");
    ASSERT_EQ(plan.add("replay:tree@p=0.01"), "");

    const FaultReport a = runPlan(plan, plan.seed);
    const FaultReport b = runPlan(plan, plan.seed);
    ASSERT_EQ(a.classes.size(), b.classes.size());
    for (std::size_t i = 0; i < a.classes.size(); ++i) {
        EXPECT_EQ(a.classes[i].first, b.classes[i].first);
        EXPECT_EQ(a.classes[i].second.injected,
                  b.classes[i].second.injected);
        EXPECT_EQ(a.classes[i].second.detected,
                  b.classes[i].second.detected);
        EXPECT_EQ(a.classes[i].second.latencySum,
                  b.classes[i].second.latencySum);
    }
}

TEST(FaultCampaign, LiveTamperDivergesShadowAsExpectedOnly)
{
    // Satellite of the coverage campaign: with maps::check active and
    // live counter tampering on, the shadow MUST diverge for injected
    // corruptions — and every divergence must be routed to the expected
    // tally (declared by the injector), never to a check failure.
    check::setEnabled(true);
    check::setFailureMode(check::FailureMode::Record);
    check::resetStats();

    {
        FaultPlan plan;
        plan.seed = 11;
        plan.tamperLiveCounters = true;
        ASSERT_EQ(plan.add("flip:counter-minor@req=11"), "");
        ASSERT_EQ(plan.add("flip:counter-major@req=23"), "");

        SimConfig cfg = tinySimConfig(plan.seed);
        SecureMemorySim sim(cfg);
        FaultInjector injector(sim.controller(), plan);
        sim.controller().setFaultObserver(&injector);
        sim.run();
        injector.finalScrub();

        EXPECT_GT(injector.report().totals().injected, 0u);
    }

    EXPECT_GT(check::expectedCount(), 0u)
        << "shadow must diverge for live-tampered counters";
    EXPECT_EQ(check::failureCount(), 0u)
        << "plan-declared divergences must not count as failures";

    check::clearExpectedDomains();
    check::resetStats();
    check::setEnabled(false);
}

// ---------------------------------------------------------------------
// Counter-overflow stress under injection
// ---------------------------------------------------------------------

TEST(FaultCampaign, CounterOverflowStressStaysConsistentUnderInjection)
{
    // Hammer one page with writebacks until the 7-bit split-PI minors
    // wrap (page overflow -> re-encryption) while counter faults fire.
    // The injector's clean mirror must track the controller's functional
    // counters exactly across the overflows, and nothing may be silent.
    SecureMemoryConfig cfg;
    cfg.layout.protectedBytes = 16_MiB;
    cfg.cache = MetadataCacheConfig::allTypes(16_KiB);
    FixedLatencyMemory mem(100);
    SecureMemoryController ctrl(cfg, mem);

    FaultPlan plan;
    plan.seed = 5;
    ASSERT_EQ(plan.add("flip:counter-minor@req=20"), "");
    ASSERT_EQ(plan.add("replay:counter-minor@p=0.005"), "");
    ASSERT_EQ(plan.add("flip:counter-major@req=150"), "");
    FaultInjector injector(ctrl, plan);
    ctrl.setFaultObserver(&injector);

    std::vector<Addr> probes;
    for (Addr a = 0; a < 8; ++a)
        probes.push_back(0x1000 + a * kBlockSize);
    for (int round = 0; round < 200; ++round) {
        for (const Addr addr : probes) {
            ctrl.handleRequest({addr, RequestKind::Writeback, 0});
            ctrl.handleRequest({addr, RequestKind::Read, 0});
        }
    }
    injector.finalScrub();

    EXPECT_GT(ctrl.stats().pageOverflows, 0u)
        << "stress must actually wrap the 7-bit minors";

    const FaultReport report = injector.report();
    EXPECT_GT(report.totals().injected, 0u);
    EXPECT_EQ(report.totals().silent, 0u);
    EXPECT_EQ(report.totals().dormant, 0u);

    // The clean mirror agrees with the live store even across page
    // re-encryptions interleaved with (repaired) injections.
    EXPECT_EQ(injector.auditMirror(probes), "");
}

} // namespace
} // namespace maps
