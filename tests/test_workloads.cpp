/**
 * @file
 * Tests for workload generators and the benchmark registry.
 */
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "trace/trace_stats.hpp"
#include "workloads/generators.hpp"
#include "workloads/suite.hpp"

namespace maps {
namespace {

std::vector<MemRef>
collect(AccessGenerator &gen, std::size_t n)
{
    std::vector<MemRef> refs;
    refs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        refs.push_back(gen.next());
    return refs;
}

TEST(StreamGenerator, SequentialAndWraps)
{
    StreamGenerator gen(4 * kBlockSize, 0.0, kBlockSize, 1);
    const auto refs = collect(gen, 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(refs[i].addr, static_cast<Addr>(i % 4) * kBlockSize);
}

TEST(StreamGenerator, WriteFraction)
{
    StreamGenerator gen(1_MiB, 0.25, kBlockSize, 7);
    const auto stats = computeStats(collect(gen, 50000));
    EXPECT_NEAR(stats.writeFraction(), 0.25, 0.02);
}

TEST(StreamGenerator, BaseOffsetApplied)
{
    StreamGenerator gen(4 * kBlockSize, 0.0, kBlockSize, 1, 4.0, 1_MiB);
    EXPECT_EQ(gen.next().addr, 1_MiB);
}

TEST(StreamGenerator, InstGapMean)
{
    StreamGenerator gen(1_MiB, 0.0, kBlockSize, 3, 5.0);
    const auto stats = computeStats(collect(gen, 50000));
    const double mean = static_cast<double>(stats.instructions) /
                        static_cast<double>(stats.refs);
    EXPECT_NEAR(mean, 5.0, 0.3);
}

TEST(RandomGenerator, StaysWithinFootprint)
{
    RandomGenerator gen(1_MiB, 0.5, 11);
    for (const auto &ref : collect(gen, 10000))
        EXPECT_LT(ref.addr, 1_MiB);
}

TEST(RandomGenerator, CoversFootprint)
{
    RandomGenerator gen(64 * kBlockSize, 0.0, 13);
    std::unordered_set<Addr> blocks;
    for (const auto &ref : collect(gen, 5000))
        blocks.insert(blockIndex(ref.addr));
    EXPECT_EQ(blocks.size(), 64u);
}

TEST(ZipfGenerator, SkewConcentratesAccesses)
{
    ZipfGenerator gen(8_MiB, 0.99, 0.0, 1, 17);
    std::unordered_map<Addr, int> counts;
    const int n = 50000;
    for (const auto &ref : collect(gen, n))
        counts[blockIndex(ref.addr)]++;
    int hot = 0;
    for (const auto &[blk, c] : counts)
        if (c > n / 1000)
            hot += c;
    // A heavily skewed distribution concentrates a large share in a
    // few blocks.
    EXPECT_GT(hot, n / 4);
}

TEST(ZipfGenerator, RunLengthAddsSpatialLocality)
{
    ZipfGenerator gen(8_MiB, 0.5, 0.0, 4, 19);
    const auto refs = collect(gen, 4000);
    int sequential = 0;
    for (std::size_t i = 1; i < refs.size(); ++i) {
        if (blockIndex(refs[i].addr) == blockIndex(refs[i - 1].addr) + 1)
            ++sequential;
    }
    // Three of every four steps inside a run are sequential.
    EXPECT_GT(sequential, 2000);
}

TEST(StencilGenerator, StaysWithinGrid)
{
    StencilGenerator gen(16, 16, 4, 8, 3, 23);
    const std::uint64_t footprint = gen.footprintBytes();
    EXPECT_EQ(footprint, 16u * 16 * 4 * 8);
    for (const auto &ref : collect(gen, 20000))
        EXPECT_LT(ref.addr, footprint);
}

TEST(StencilGenerator, WriteEveryControlsWrites)
{
    StencilGenerator dense(64, 64, 8, 8, 1, 29);
    StencilGenerator sparse(64, 64, 8, 8, 16, 29);
    const auto dense_stats = computeStats(collect(dense, 40000));
    const auto sparse_stats = computeStats(collect(sparse, 40000));
    EXPECT_GT(dense_stats.writeFraction(),
              sparse_stats.writeFraction() * 4);
}

TEST(StencilGenerator, TwoDimensionalSkipsZPhases)
{
    StencilGenerator gen(32, 32, 1, 8, 4, 31);
    // Just exercise it; addresses must stay in the 2D plane.
    for (const auto &ref : collect(gen, 5000))
        EXPECT_LT(ref.addr, 32u * 32 * 8);
}

TEST(PointerChaseGenerator, VisitsEveryBlockOnce)
{
    const std::uint64_t blocks = 128;
    PointerChaseGenerator gen(blocks * kBlockSize, 0.0, 37);
    std::unordered_set<Addr> seen;
    for (const auto &ref : collect(gen, blocks))
        seen.insert(blockIndex(ref.addr));
    // Sattolo cycle: all blocks visited before any repeats.
    EXPECT_EQ(seen.size(), blocks);
}

TEST(PointerChaseGenerator, LowSpatialLocality)
{
    PointerChaseGenerator gen(4_MiB, 0.0, 41);
    const auto refs = collect(gen, 10000);
    int adjacent = 0;
    for (std::size_t i = 1; i < refs.size(); ++i) {
        const auto a = blockIndex(refs[i].addr);
        const auto b = blockIndex(refs[i - 1].addr);
        if (a == b + 1 || b == a + 1)
            ++adjacent;
    }
    EXPECT_LT(adjacent, 50);
}

TEST(TransposeGenerator, PhasesAlternate)
{
    // 4x4 matrix of 64B elements: first pass sequential, second pass
    // column-major.
    TransposeGenerator gen(4, 4, kBlockSize, 0.0, 43);
    const auto refs = collect(gen, 32);
    // Row phase: addresses increase by one block.
    for (int i = 1; i < 16; ++i)
        EXPECT_EQ(refs[i].addr, refs[i - 1].addr + kBlockSize);
    // Column phase: stride is one row (4 blocks), wrapping per column.
    EXPECT_EQ(refs[16].addr, 0u);
    EXPECT_EQ(refs[17].addr, 4 * kBlockSize);
    EXPECT_EQ(refs[18].addr, 8 * kBlockSize);
}

TEST(TransposeGenerator, FootprintMatches)
{
    TransposeGenerator gen(64, 32, 8, 0.2, 47);
    EXPECT_EQ(gen.footprintBytes(), 64u * 32 * 8);
    for (const auto &ref : collect(gen, 20000))
        EXPECT_LT(ref.addr, gen.footprintBytes());
}

TEST(MixtureGenerator, RespectsWeights)
{
    std::vector<std::unique_ptr<AccessGenerator>> parts;
    parts.push_back(
        std::make_unique<StreamGenerator>(1_MiB, 0.0, kBlockSize, 1, 4.0,
                                          0));
    parts.push_back(
        std::make_unique<StreamGenerator>(1_MiB, 0.0, kBlockSize, 2, 4.0,
                                          16_MiB));
    MixtureGenerator gen(std::move(parts), {0.8, 0.2}, 10, 53);
    std::uint64_t low = 0, high = 0;
    for (const auto &ref : collect(gen, 50000)) {
        if (ref.addr < 16_MiB)
            ++low;
        else
            ++high;
    }
    EXPECT_NEAR(static_cast<double>(low) / 50000.0, 0.8, 0.05);
}

TEST(Generators, ResetReproducesStream)
{
    const auto spec = findBenchmark("fft");
    ASSERT_NE(spec, nullptr);
    auto gen = spec->factory(99);
    const auto first = collect(*gen, 1000);
    gen->reset();
    const auto second = collect(*gen, 1000);
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].addr, second[i].addr);
        EXPECT_EQ(first[i].type, second[i].type);
        EXPECT_EQ(first[i].instGap, second[i].instGap);
    }
}

TEST(Suite, RegistryComplete)
{
    const auto &suite = benchmarkSuite();
    EXPECT_GE(suite.size(), 12u);
    std::set<std::string> names;
    for (const auto &spec : suite) {
        EXPECT_FALSE(spec.name.empty());
        EXPECT_FALSE(spec.character.empty());
        EXPECT_GT(spec.footprintBytes, 0u);
        EXPECT_TRUE(spec.factory != nullptr);
        names.insert(spec.name);
    }
    EXPECT_EQ(names.size(), suite.size()) << "duplicate benchmark names";
}

TEST(Suite, PaperBenchmarksPresent)
{
    for (const char *name :
         {"canneal", "libquantum", "fft", "leslie3d", "mcf", "barnes",
          "cactusADM", "perl"}) {
        EXPECT_NE(findBenchmark(name), nullptr) << name;
    }
}

TEST(Suite, Figure3BenchmarksResolve)
{
    for (const auto &name : figure3Benchmarks())
        EXPECT_NE(findBenchmark(name), nullptr) << name;
    EXPECT_EQ(figure3Benchmarks().size(), 6u);
}

TEST(Suite, MemoryIntensiveFilter)
{
    const auto all = benchmarkNames(false);
    const auto intensive = benchmarkNames(true);
    EXPECT_LT(intensive.size(), all.size());
    EXPECT_GE(intensive.size(), 8u);
}

TEST(Suite, GeneratorsAreDeterministicAcrossInstances)
{
    for (const auto &name : {"canneal", "libquantum", "mcf"}) {
        auto a = makeBenchmark(name, 5);
        auto b = makeBenchmark(name, 5);
        for (int i = 0; i < 500; ++i) {
            const auto ra = a->next();
            const auto rb = b->next();
            EXPECT_EQ(ra.addr, rb.addr);
            EXPECT_EQ(ra.type, rb.type);
        }
    }
}

TEST(Suite, LibquantumStreamsFourMegabytes)
{
    auto gen = makeBenchmark("libquantum", 3);
    Addr max_addr = 0;
    for (int i = 0; i < 600000; ++i) // one full pass at 8B granularity
        max_addr = std::max(max_addr, gen->next().addr);
    EXPECT_LT(max_addr, 4_MiB);
    EXPECT_GT(max_addr, 3_MiB);
}

TEST(Suite, FftWriteFractionNearTwentyPercent)
{
    auto gen = makeBenchmark("fft", 3);
    std::uint64_t writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        writes += gen->next().isWrite();
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.20, 0.03);
}

TEST(Suite, Leslie3dWriteFractionNearFivePercent)
{
    auto gen = makeBenchmark("leslie3d", 3);
    std::uint64_t writes = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        writes += gen->next().isWrite();
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.05, 0.02);
}

} // namespace
} // namespace maps
