/**
 * @file
 * End-to-end tests for the SecureMemorySim façade.
 */
#include <gtest/gtest.h>

#include "core/simulator.hpp"

namespace maps {
namespace {

SimConfig
quickConfig(const std::string &bench)
{
    SimConfig cfg;
    cfg.benchmark = bench;
    cfg.warmupRefs = 20'000;
    cfg.measureRefs = 100'000;
    cfg.secure.layout.protectedBytes = 256_MiB;
    cfg.useDram = false; // fixed latency keeps tests fast/deterministic
    return cfg;
}

TEST(Simulator, RunsAndReportsBasics)
{
    const auto report = runBenchmark(quickConfig("libquantum"));
    EXPECT_EQ(report.benchmark, "libquantum");
    EXPECT_EQ(report.refs, 100'000u);
    EXPECT_GT(report.instructions, report.refs);
    EXPECT_GT(report.cycles, report.instructions);
    EXPECT_GT(report.seconds, 0.0);
    EXPECT_GT(report.energy.totalPj(), 0.0);
    EXPECT_GT(report.ed2, 0.0);
}

TEST(Simulator, SecureCostsMoreThanBaseline)
{
    auto secure_cfg = quickConfig("libquantum");
    const auto secure = runBenchmark(secure_cfg);

    auto base_cfg = secure_cfg;
    base_cfg.secureEnabled = false;
    const auto baseline = runBenchmark(base_cfg);

    EXPECT_GT(secure.memory.accesses(), baseline.memory.accesses())
        << "metadata adds memory traffic";
    EXPECT_GE(secure.cycles, baseline.cycles);
    EXPECT_GT(secure.energy.totalPj(), baseline.energy.totalPj());
    EXPECT_GT(secure.ed2, baseline.ed2);
}

TEST(Simulator, MetadataCacheReducesTraffic)
{
    auto with_cfg = quickConfig("libquantum");
    const auto with_cache = runBenchmark(with_cfg);

    auto without_cfg = with_cfg;
    without_cfg.secure.cacheEnabled = false;
    const auto without_cache = runBenchmark(without_cfg);

    EXPECT_LT(with_cache.controller.metadataMemAccesses(),
              without_cache.controller.metadataMemAccesses());
    EXPECT_LT(with_cache.metadataMpki, without_cache.metadataMpki);
}

TEST(Simulator, MemoryIntensiveBenchmarksHaveHighMpki)
{
    // perl's working set needs a long warmup before its (low) steady-
    // state MPKI shows; keep both runs at the same, larger scale.
    auto canneal_cfg = quickConfig("canneal");
    canneal_cfg.warmupRefs = 400'000;
    canneal_cfg.measureRefs = 200'000;
    const auto canneal = runBenchmark(canneal_cfg);
    EXPECT_GT(canneal.llcMpki, 10.0)
        << "canneal is in the paper's memory-intensive set";

    auto perl_cfg = canneal_cfg;
    perl_cfg.benchmark = "perl";
    const auto perl = runBenchmark(perl_cfg);
    EXPECT_LT(perl.llcMpki, 10.0) << "perl's working set fits";
    EXPECT_LT(perl.llcMpki, canneal.llcMpki);
}

TEST(Simulator, LargerMetadataCacheNeverHurtsMisses)
{
    auto small_cfg = quickConfig("fft");
    small_cfg.secure.cache.sizeBytes = 16_KiB;
    const auto small = runBenchmark(small_cfg);

    auto big_cfg = quickConfig("fft");
    big_cfg.secure.cache.sizeBytes = 512_KiB;
    const auto big = runBenchmark(big_cfg);

    EXPECT_LE(big.metadataMpki, small.metadataMpki * 1.02)
        << "within noise, more capacity cannot increase misses for LRU-"
           "like policies on this workload";
}

TEST(Simulator, TapObservesMeasurePhaseOnly)
{
    SecureMemorySim sim(quickConfig("libquantum"));
    std::uint64_t taps = 0;
    sim.setMetadataTap([&taps](const MetadataAccess &) { ++taps; });
    const auto report = sim.run();
    EXPECT_GT(taps, 0u);
    // Every tapped access is workload- or miss-driven; at least one
    // counter + one hash access per LLC-level request.
    EXPECT_GE(taps, 2 * report.controller.requests());
}

TEST(Simulator, DramModeRuns)
{
    auto cfg = quickConfig("libquantum");
    cfg.useDram = true;
    const auto report = runBenchmark(cfg);
    EXPECT_GT(report.memory.rowHits + report.memory.rowMisses +
                  report.memory.rowConflicts,
              0u);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    const auto a = runBenchmark(quickConfig("mcf"));
    const auto b = runBenchmark(quickConfig("mcf"));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.memory.accesses(), b.memory.accesses());
    EXPECT_DOUBLE_EQ(a.ed2, b.ed2);
}

TEST(Simulator, PolicyOverrideIsUsed)
{
    auto cfg = quickConfig("libquantum");
    SecureMemorySim sim(cfg, makeReplacementPolicy("lru"));
    const auto report = sim.run();
    EXPECT_GT(report.mdCache.totalAccesses(), 0u);
}

TEST(Simulator, SpeculationReducesCycles)
{
    auto spec_cfg = quickConfig("canneal");
    spec_cfg.secure.speculation = true;
    const auto spec = runBenchmark(spec_cfg);

    auto nospec_cfg = quickConfig("canneal");
    nospec_cfg.secure.speculation = false;
    const auto nospec = runBenchmark(nospec_cfg);

    EXPECT_LT(spec.cycles, nospec.cycles);
}

} // namespace
} // namespace maps
