#!/bin/sh
# Regenerate the golden-output JSON snapshots at the canonical operating
# point (--scale=0.01 --seed=3 --format=json --no-progress --jobs=1).
#
# Only run this when an intentional change alters simulation results;
# never to paper over nondeterminism. After regenerating, re-run
# `ctest -R golden` and commit the new .jsonl files together with the
# change that motivated them.
#
# Usage: tests/golden/update.sh [build-dir]   (default: ./build)
set -eu

golden_dir=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
build_dir=${1:-"$golden_dir/../../build"}

if [ ! -d "$build_dir/bench" ]; then
    echo "error: '$build_dir/bench' not found; pass the build dir" >&2
    echo "usage: $0 [build-dir]" >&2
    exit 2
fi

for b in fig3_reuse_cdf fig6_eviction_policies tab2_data_protected; do
    bin="$build_dir/bench/$b"
    if [ ! -x "$bin" ]; then
        echo "error: '$bin' missing; build the bench targets first" >&2
        exit 2
    fi
    echo "regenerating $b.jsonl"
    "$bin" --scale=0.01 --seed=3 --format=json --no-progress \
        --jobs=1 --out="$golden_dir/$b.jsonl"
done

echo "done; verify with: ctest --test-dir $build_dir -R golden"
