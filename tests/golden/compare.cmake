# Golden-output comparison, run as a ctest command:
#
#   cmake -DBENCH=<binary> -DJOBS=<n> -DGOLDEN=<file> -DOUT=<file>
#         -P compare.cmake
#
# Runs the bench at the canonical golden operating point
# (--scale=0.01 --seed=3 --format=json --no-progress) with the requested
# job count and byte-compares the JSON against the committed golden.
# Any drift — numeric, ordering, or formatting — fails the test.
foreach(var BENCH JOBS GOLDEN OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "compare.cmake: -D${var}=... is required")
    endif()
endforeach()

execute_process(
    COMMAND ${BENCH} --scale=0.01 --seed=3 --format=json --no-progress
            --jobs=${JOBS} --out=${OUT}
    RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} exited with ${run_rc}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    execute_process(COMMAND diff -u ${GOLDEN} ${OUT})
    message(FATAL_ERROR
        "golden mismatch: ${OUT} differs from ${GOLDEN} (jobs=${JOBS}). "
        "If the change is intentional, regenerate per tests/golden/README.md.")
endif()
