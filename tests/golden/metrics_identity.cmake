# Metrics determinism check, run as a ctest command:
#
#   cmake -DBENCH=<binary> -DOUT=<file-prefix> -P metrics_identity.cmake
#
# Runs the bench twice at the golden operating point with --metrics=full
# — once at --jobs=1 and once at --jobs=4 — and byte-compares the two
# outputs against EACH OTHER (not a committed golden: the full counter
# dump is too volatile to commit, but it must be independent of the job
# count like every other row the runner emits).
foreach(var BENCH OUT)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "metrics_identity.cmake: -D${var}=... is required")
    endif()
endforeach()

foreach(jobs 1 4)
    execute_process(
        COMMAND ${BENCH} --scale=0.01 --seed=3 --format=json --no-progress
                --metrics=full --jobs=${jobs} --out=${OUT}.j${jobs}
        RESULT_VARIABLE run_rc)
    if(NOT run_rc EQUAL 0)
        message(FATAL_ERROR "${BENCH} --jobs=${jobs} exited with ${run_rc}")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT}.j1 ${OUT}.j4
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    execute_process(COMMAND diff -u ${OUT}.j1 ${OUT}.j4)
    message(FATAL_ERROR
        "metrics output depends on --jobs: ${OUT}.j1 differs from "
        "${OUT}.j4 under --metrics=full")
endif()
