/**
 * @file
 * Tests for the cache substrate: geometry, the set-associative array,
 * LRU/PLRU/random/SRRIP policies, and way partitioning.
 */
#include <gtest/gtest.h>

#include <list>
#include <unordered_map>
#include <vector>

#include "cache/cache.hpp"
#include "cache/partition.hpp"
#include "cache/policy_lru.hpp"
#include "util/rng.hpp"

namespace maps {
namespace {

SetAssociativeCache
makeCache(std::uint64_t size, std::uint32_t assoc,
          const std::string &policy = "lru",
          std::unique_ptr<WayPartition> partition = nullptr)
{
    CacheGeometry geom;
    geom.sizeBytes = size;
    geom.assoc = assoc;
    return SetAssociativeCache(geom, makeReplacementPolicy(policy),
                               std::move(partition));
}

TEST(Geometry, DerivedQuantities)
{
    CacheGeometry geom;
    geom.sizeBytes = 64_KiB;
    geom.assoc = 8;
    geom.validate();
    EXPECT_EQ(geom.numSets(), 128u);
    EXPECT_EQ(geom.numLines(), 1024u);
}

TEST(Geometry, SetAndTag)
{
    CacheGeometry geom;
    geom.sizeBytes = 8_KiB;
    geom.assoc = 2;
    geom.validate(); // 64 sets
    const Addr addr = (5ull * 64) + (3ull * 64 * 64); // set 5, tag 3
    EXPECT_EQ(geom.setIndexOf(addr), 5u);
    EXPECT_EQ(geom.tagOf(addr), 3u);
}

TEST(Cache, HitAfterFill)
{
    auto cache = makeCache(4_KiB, 4);
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1020, false).hit) << "same block";
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, WriteMakesDirtyEviction)
{
    auto cache = makeCache(2 * kBlockSize, 2); // 1 set, 2 ways
    cache.access(0, true);
    cache.access(64, false);
    const auto out = cache.access(128, false); // evicts block 0 (LRU)
    ASSERT_TRUE(out.evictedValid);
    EXPECT_EQ(out.evictedAddr, 0u);
    EXPECT_TRUE(out.evictedDirty);
    EXPECT_EQ(cache.stats().dirtyEvictions, 1u);
}

TEST(Cache, CleanEvictionNotDirty)
{
    auto cache = makeCache(2 * kBlockSize, 2);
    cache.access(0, false);
    cache.access(64, false);
    const auto out = cache.access(128, false);
    ASSERT_TRUE(out.evictedValid);
    EXPECT_FALSE(out.evictedDirty);
}

TEST(Cache, LruOrderExact)
{
    auto cache = makeCache(4 * kBlockSize, 4); // 1 set, 4 ways
    for (Addr a : {0, 64, 128, 192})
        cache.access(a, false);
    cache.access(0, false); // 0 becomes MRU; LRU is 64
    const auto out = cache.access(256, false);
    ASSERT_TRUE(out.evictedValid);
    EXPECT_EQ(out.evictedAddr, 64u);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    auto cache = makeCache(2 * kBlockSize, 2);
    cache.access(0, false);
    cache.access(64, false);
    EXPECT_TRUE(cache.probe(0));
    // Probe must not refresh recency: 0 is still LRU.
    const auto out = cache.access(128, false);
    EXPECT_EQ(out.evictedAddr, 0u);
    const auto hits = cache.stats().hits;
    EXPECT_EQ(hits, 0u);
}

TEST(Cache, InvalidateRemovesLine)
{
    auto cache = makeCache(4_KiB, 4);
    cache.access(0x40, true);
    bool dirty = false;
    EXPECT_TRUE(cache.invalidate(0x40, &dirty));
    EXPECT_TRUE(dirty);
    EXPECT_FALSE(cache.probe(0x40));
    EXPECT_FALSE(cache.invalidate(0x40));
    EXPECT_EQ(cache.validLines(), 0u);
}

TEST(Cache, CleanLineClearsDirty)
{
    auto cache = makeCache(2 * kBlockSize, 2);
    cache.access(0, true);
    EXPECT_TRUE(cache.cleanLine(0));
    cache.access(64, false);
    const auto out = cache.access(128, false);
    ASSERT_TRUE(out.evictedValid);
    EXPECT_FALSE(out.evictedDirty);
    EXPECT_FALSE(cache.cleanLine(0x7777));
}

TEST(Cache, PerTypeStats)
{
    auto cache = makeCache(4_KiB, 4);
    cache.access(0, false, 0);
    cache.access(64, false, 1);
    cache.access(64, false, 1);
    EXPECT_EQ(cache.stats().missesByType[0], 1u);
    EXPECT_EQ(cache.stats().missesByType[1], 1u);
    EXPECT_EQ(cache.stats().hitsByType[1], 1u);
}

TEST(Cache, ForEachLineSeesResidents)
{
    auto cache = makeCache(4_KiB, 4);
    cache.access(0x000, true, 2);
    cache.access(0x100, false, 1);
    std::vector<ReplLineInfo> lines;
    cache.forEachLine(
        [&lines](const ReplLineInfo &info) { lines.push_back(info); });
    ASSERT_EQ(lines.size(), 2u);
}

/**
 * Reference LRU model: list-based, exact. The SetAssociativeCache with
 * TrueLruPolicy must agree on every access over random streams.
 */
class ReferenceLru
{
  public:
    ReferenceLru(std::uint32_t sets, std::uint32_t ways)
        : sets_(sets), ways_(ways), state_(sets)
    {
    }

    bool
    access(Addr addr)
    {
        const Addr block = blockAlign(addr);
        auto &set = state_[(block / kBlockSize) % sets_];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == block) {
                set.splice(set.begin(), set, it);
                return true;
            }
        }
        if (set.size() >= ways_)
            set.pop_back();
        set.push_front(block);
        return false;
    }

  private:
    std::uint32_t sets_, ways_;
    std::vector<std::list<Addr>> state_;
};

struct LruEquivParam
{
    std::uint64_t size;
    std::uint32_t assoc;
    std::uint64_t footprint;
};

class LruEquivalence : public ::testing::TestWithParam<LruEquivParam>
{
};

TEST_P(LruEquivalence, MatchesReferenceModel)
{
    const auto param = GetParam();
    auto cache = makeCache(param.size, param.assoc);
    ReferenceLru ref(cache.geometry().numSets(), param.assoc);

    Rng rng(1234);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.nextBounded(param.footprint / kBlockSize) *
                          kBlockSize;
        const bool model_hit = cache.access(addr, false).hit;
        const bool ref_hit = ref.access(addr);
        ASSERT_EQ(model_hit, ref_hit) << "access " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LruEquivalence,
    ::testing::Values(LruEquivParam{1_KiB, 1, 8_KiB},
                      LruEquivParam{1_KiB, 2, 8_KiB},
                      LruEquivParam{2_KiB, 4, 16_KiB},
                      LruEquivParam{4_KiB, 8, 8_KiB},
                      LruEquivParam{8_KiB, 16, 64_KiB},
                      LruEquivParam{64_KiB, 8, 256_KiB}));

struct PolicyParam
{
    const char *name;
};

class EveryPolicy : public ::testing::TestWithParam<PolicyParam>
{
};

TEST_P(EveryPolicy, NeverEvictsWhenInvalidWaysExist)
{
    auto cache = makeCache(4 * kBlockSize, 4, GetParam().name);
    for (Addr a : {0, 64, 128})
        EXPECT_FALSE(cache.access(a, false).evictedValid);
}

TEST_P(EveryPolicy, HitRateOnTinyLoopIsPerfect)
{
    auto cache = makeCache(8 * kBlockSize, 8, GetParam().name);
    // Working set of 4 blocks in an 8-way set: after the cold pass,
    // every policy must hit forever.
    for (int round = 0; round < 10; ++round) {
        for (Addr a : {0, 64, 128, 192}) {
            const bool hit = cache.access(a, false).hit;
            if (round > 0)
                EXPECT_TRUE(hit);
        }
    }
    EXPECT_EQ(cache.stats().misses, 4u);
}

TEST_P(EveryPolicy, EvictionsReportResidentBlocks)
{
    auto cache = makeCache(4 * kBlockSize, 4, GetParam().name);
    Rng rng(5);
    std::uint64_t evictions = 0;
    for (int i = 0; i < 3000; ++i) {
        const Addr addr = rng.nextBounded(64) * kBlockSize;
        const auto out = cache.access(addr, rng.nextBool(0.3));
        if (out.evictedValid) {
            ++evictions;
            EXPECT_NE(out.evictedAddr, kInvalidAddr);
            EXPECT_FALSE(cache.probe(out.evictedAddr));
        }
    }
    EXPECT_GT(evictions, 0u);
    EXPECT_EQ(cache.stats().evictions, evictions);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EveryPolicy,
                         ::testing::Values(PolicyParam{"lru"},
                                           PolicyParam{"plru"},
                                           PolicyParam{"random"},
                                           PolicyParam{"srrip"},
                                           PolicyParam{"eva"},
                                           PolicyParam{"eva-typed"}));

TEST(Plru, ApproximatesLruOnScans)
{
    // PLRU on a repeated scan of set-size+1 blocks thrashes like LRU.
    auto cache = makeCache(4 * kBlockSize, 4, "plru");
    std::uint64_t misses = 0;
    for (int round = 0; round < 50; ++round) {
        for (Addr a = 0; a < 5 * kBlockSize; a += kBlockSize)
            misses += !cache.access(a, false).hit;
    }
    // Far more misses than the 5 cold ones (thrash behaviour).
    EXPECT_GT(misses, 100u);
}

TEST(Partition, StaticMasksByType)
{
    StaticPartition part(3);
    part.init(16, 8);
    ReplContext counter_ctx;
    counter_ctx.typeClass =
        static_cast<std::uint8_t>(MetadataType::Counter);
    ReplContext hash_ctx;
    hash_ctx.typeClass = static_cast<std::uint8_t>(MetadataType::Hash);
    ReplContext tree_ctx;
    tree_ctx.typeClass = static_cast<std::uint8_t>(MetadataType::TreeNode);

    EXPECT_EQ(part.allowedWays(0, counter_ctx), 0b00000111u);
    EXPECT_EQ(part.allowedWays(0, hash_ctx), 0b11111000u);
    EXPECT_EQ(part.allowedWays(0, tree_ctx), 0b11111111u);
}

TEST(Partition, StaticKeepsTypesApart)
{
    auto cache = makeCache(8 * kBlockSize, 8, "lru",
                           std::make_unique<StaticPartition>(4));
    const auto ctr = static_cast<std::uint8_t>(MetadataType::Counter);
    const auto hsh = static_cast<std::uint8_t>(MetadataType::Hash);
    // Fill 6 counter blocks: only 4 ways available, so 2 evictions, and
    // the 4 hash blocks must be untouched by them.
    for (Addr a = 0; a < 4 * kBlockSize; a += kBlockSize)
        cache.access(a | (1ull << 40), false, hsh);
    for (Addr a = 0; a < 6 * kBlockSize; a += kBlockSize)
        cache.access(a, false, ctr);
    for (Addr a = 0; a < 4 * kBlockSize; a += kBlockSize)
        EXPECT_TRUE(cache.probe(a | (1ull << 40)));
}

TEST(Partition, DuelingTracksBetterSplit)
{
    SetDuelingPartition part(2, 6, 8, 10);
    part.init(64, 8);
    ReplContext ctx;
    // Feed misses only to A's leader sets: PSEL should swing toward B.
    for (int i = 0; i < 1000; ++i)
        part.onMiss(0, ctx); // set 0 is an A leader (phase 0)
    EXPECT_EQ(part.activeSplit(), 6u);
    // Now hammer B's leaders harder.
    for (int i = 0; i < 2000; ++i)
        part.onMiss(4, ctx); // set 4 is a B leader (phase == stride/2)
    EXPECT_EQ(part.activeSplit(), 2u);
}

TEST(Partition, FollowerUsesWinningSplit)
{
    SetDuelingPartition part(2, 6, 8, 10);
    part.init(64, 8);
    ReplContext ctr_ctx;
    ctr_ctx.typeClass = static_cast<std::uint8_t>(MetadataType::Counter);
    // Initially PSEL = 0 -> split A (2 counter ways) for followers.
    EXPECT_EQ(part.allowedWays(1, ctr_ctx), 0b00000011u);
    for (int i = 0; i < 100; ++i)
        part.onMiss(0, ctr_ctx); // A leader misses -> B wins
    EXPECT_EQ(part.allowedWays(1, ctr_ctx), 0b00111111u);
}

TEST(Cache, RejectsBadGeometry)
{
    CacheGeometry geom;
    geom.sizeBytes = 100; // not a multiple of assoc * block
    geom.assoc = 2;
    EXPECT_DEATH(
        {
            SetAssociativeCache cache(geom,
                                      makeReplacementPolicy("lru"));
        },
        "");
}

} // namespace
} // namespace maps
