/**
 * @file
 * Tests for the functional Bonsai Merkle Tree: update/verify cycles and
 * tamper detection end to end.
 */
#include <gtest/gtest.h>

#include "secmem/integrity_tree.hpp"

namespace maps {
namespace {

MetadataLayout
smallLayout()
{
    LayoutConfig cfg;
    cfg.protectedBytes = 16_MiB; // 4096 counter blocks, 4 tree levels
    return MetadataLayout(cfg);
}

Addr
counterAddr(std::uint64_t index)
{
    return MetadataLayout::encode(MetadataType::Counter, 0, index);
}

TEST(IntegrityTree, PristineStateVerifies)
{
    const auto layout = smallLayout();
    IntegrityTree tree(layout);
    // Untouched counters have the default digest; the tree must accept
    // a verification against that default.
    EXPECT_TRUE(tree.verifyCounter(counterAddr(5),
                                   IntegrityTree::kDefaultCounterDigest));
}

TEST(IntegrityTree, UpdateThenVerify)
{
    const auto layout = smallLayout();
    IntegrityTree tree(layout);
    const Addr ctr = counterAddr(123);
    tree.updateCounter(ctr, 0x1111);
    EXPECT_TRUE(tree.verifyCounter(ctr, 0x1111));
}

TEST(IntegrityTree, RootChangesOnUpdate)
{
    const auto layout = smallLayout();
    IntegrityTree tree(layout);
    const auto root0 = tree.root();
    tree.updateCounter(counterAddr(7), 0x2222);
    EXPECT_NE(tree.root(), root0);
}

TEST(IntegrityTree, DetectsCounterTampering)
{
    const auto layout = smallLayout();
    IntegrityTree tree(layout);
    const Addr ctr = counterAddr(99);
    tree.updateCounter(ctr, 0x3333);
    // An attacker replays an old counter value.
    EXPECT_FALSE(tree.verifyCounter(ctr, 0x3334));
    EXPECT_FALSE(tree.verifyCounter(ctr, 0));
    EXPECT_TRUE(tree.verifyCounter(ctr, 0x3333));
}

TEST(IntegrityTree, DetectsTreeNodeTampering)
{
    const auto layout = smallLayout();
    IntegrityTree tree(layout);
    const Addr ctr = counterAddr(200);
    tree.updateCounter(ctr, 0x4444);

    // Corrupt the leaf protecting this counter.
    const Addr leaf = layout.treeLeafForCounter(ctr);
    const auto good = tree.nodeDigest(leaf);
    tree.tamperNode(leaf, good ^ 1);
    EXPECT_FALSE(tree.verifyCounter(ctr, 0x4444));
    tree.tamperNode(leaf, good);
    EXPECT_TRUE(tree.verifyCounter(ctr, 0x4444));
}

TEST(IntegrityTree, DetectsUpperLevelTampering)
{
    const auto layout = smallLayout();
    IntegrityTree tree(layout);
    const Addr ctr = counterAddr(300);
    tree.updateCounter(ctr, 0x5555);

    const Addr leaf = layout.treeLeafForCounter(ctr);
    const Addr parent = layout.treeParent(leaf);
    ASSERT_NE(parent, kInvalidAddr);
    const auto good = tree.nodeDigest(parent);
    tree.tamperNode(parent, good ^ 0xFF);
    EXPECT_FALSE(tree.verifyCounter(ctr, 0x5555));
}

TEST(IntegrityTree, ConsistentTamperingStillCaughtByRoot)
{
    // An attacker who rewrites a whole path *consistently* is defeated
    // by the on-chip root: fabricate a consistent subtree by replaying
    // updateCounter into a second tree and copying its nodes.
    const auto layout = smallLayout();
    IntegrityTree victim(layout);
    const Addr ctr = counterAddr(400);
    victim.updateCounter(ctr, 0x6666);

    IntegrityTree attacker(layout);
    attacker.updateCounter(ctr, 0x9999); // forged value

    // Copy the attacker's (internally consistent) path into the victim's
    // memory-resident nodes; the victim's on-chip root is untouched.
    for (const Addr node : layout.treePathForCounter(ctr))
        victim.tamperNode(node, attacker.nodeDigest(node));
    EXPECT_FALSE(victim.verifyCounter(ctr, 0x9999));
}

TEST(IntegrityTree, ManyCountersIndependent)
{
    const auto layout = smallLayout();
    IntegrityTree tree(layout);
    for (std::uint64_t i = 0; i < 64; ++i)
        tree.updateCounter(counterAddr(i * 61 % 4096), 0x1000 + i);
    for (std::uint64_t i = 0; i < 64; ++i) {
        EXPECT_TRUE(
            tree.verifyCounter(counterAddr(i * 61 % 4096), 0x1000 + i))
            << i;
    }
    // Untouched counters still verify with the default digest.
    EXPECT_TRUE(tree.verifyCounter(counterAddr(4000),
                                   IntegrityTree::kDefaultCounterDigest));
}

TEST(IntegrityTree, MixIsOrderSensitive)
{
    EXPECT_NE(IntegrityTree::mix(1, 2), IntegrityTree::mix(2, 1));
    EXPECT_NE(IntegrityTree::mix(0, 0), 0u);
}

} // namespace
} // namespace maps
