/**
 * @file
 * Tests for the counter store: split-counter increments, 7-bit overflow
 * with page re-encryption, and SGX monolithic counters.
 */
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "secmem/counter_store.hpp"

namespace maps {
namespace {

MetadataLayout
piLayout()
{
    LayoutConfig cfg;
    cfg.protectedBytes = 64_MiB;
    return MetadataLayout(cfg);
}

MetadataLayout
sgxLayout()
{
    LayoutConfig cfg;
    cfg.protectedBytes = 64_MiB;
    cfg.counterMode = CounterMode::MonolithicSgx;
    return MetadataLayout(cfg);
}

TEST(CounterStore, FreshCountersAreZero)
{
    const auto layout = piLayout();
    CounterStore store(layout);
    const auto v = store.read(0x1234);
    EXPECT_EQ(v.major, 0u);
    EXPECT_EQ(v.minor, 0u);
    EXPECT_EQ(store.touchedPages(), 0u);
}

TEST(CounterStore, MinorIncrementsPerBlock)
{
    const auto layout = piLayout();
    CounterStore store(layout);
    store.onBlockWrite(0);
    store.onBlockWrite(0);
    store.onBlockWrite(64);
    EXPECT_EQ(store.read(0).minor, 2u);
    EXPECT_EQ(store.read(64).minor, 1u);
    EXPECT_EQ(store.read(128).minor, 0u);
    EXPECT_EQ(store.read(0).major, 0u);
    EXPECT_EQ(store.touchedPages(), 1u);
}

TEST(CounterStore, MinorLimitIs7Bits)
{
    const auto layout = piLayout();
    CounterStore store(layout);
    EXPECT_EQ(store.minorLimit(), 127u);
}

TEST(CounterStore, OverflowBumpsPageCounter)
{
    const auto layout = piLayout();
    CounterStore store(layout);
    const Addr blk = 3 * kPageSize + 5 * kBlockSize;
    // Write another block in the same page a few times first.
    store.onBlockWrite(3 * kPageSize);
    store.onBlockWrite(3 * kPageSize);

    CounterWriteResult last;
    for (int i = 0; i < 127; ++i) {
        last = store.onBlockWrite(blk);
        EXPECT_FALSE(last.pageOverflow) << "write " << i;
    }
    EXPECT_EQ(store.read(blk).minor, 127u);

    // The 128th write overflows the 7-bit minor.
    last = store.onBlockWrite(blk);
    EXPECT_TRUE(last.pageOverflow);
    EXPECT_EQ(last.blocksToReencrypt, kBlocksPerPage);
    EXPECT_EQ(store.pageOverflows(), 1u);

    // Major bumped; every minor in the page reset (ours restarted at 1).
    EXPECT_EQ(store.read(blk).major, 1u);
    EXPECT_EQ(store.read(blk).minor, 1u);
    EXPECT_EQ(store.read(3 * kPageSize).minor, 0u)
        << "sibling minors reset on page re-encryption";
    EXPECT_EQ(store.read(3 * kPageSize).major, 1u);
}

TEST(CounterStore, PagesAreIndependent)
{
    const auto layout = piLayout();
    CounterStore store(layout);
    for (int i = 0; i < 128; ++i)
        store.onBlockWrite(0);
    EXPECT_EQ(store.pageOverflows(), 1u);
    EXPECT_EQ(store.read(kPageSize).major, 0u)
        << "other pages unaffected";
}

TEST(CounterStore, SgxCountersNeverOverflow)
{
    const auto layout = sgxLayout();
    CounterStore store(layout);
    for (int i = 0; i < 1000; ++i) {
        const auto r = store.onBlockWrite(0);
        EXPECT_FALSE(r.pageOverflow);
    }
    EXPECT_EQ(store.read(0).major, 1000u);
    EXPECT_EQ(store.read(64).major, 0u);
    EXPECT_EQ(store.pageOverflows(), 0u);
}

TEST(CounterStore, UniquePadGuarantee)
{
    // The (major, minor) pair must never repeat for a block across an
    // overflow — the one-time-pad property (§II-A).
    const auto layout = piLayout();
    CounterStore store(layout);
    const Addr blk = 0;
    std::set<std::pair<std::uint64_t, std::uint32_t>> seen;
    seen.insert({store.read(blk).major, store.read(blk).minor});
    for (int i = 0; i < 300; ++i) {
        store.onBlockWrite(blk);
        const auto v = store.read(blk);
        const auto inserted = seen.insert({v.major, v.minor}).second;
        EXPECT_TRUE(inserted) << "pad reuse at write " << i;
    }
}

} // namespace
} // namespace maps
