/**
 * @file
 * Differential verification of every replacement policy against the
 * maps::check shadow models (PR 2 satellite).
 *
 * For the five policies with brute-force reference implementations
 * (lru, plru, random, srrip, drrip[-typed]) the shadow runs in predict
 * mode and must agree with the production cache on every hit/miss AND
 * every victim choice; for the adaptive policies (eva[-typed],
 * cost-lru) it mirrors structural state. Either way a 10k-step random
 * trace across four geometries must complete with zero divergences.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "cache/cache.hpp"
#include "cache/partition.hpp"
#include "cache/replacement.hpp"
#include "check/check.hpp"
#include "check/shadow_cache.hpp"
#include "core/runner.hpp"
#include "trace/record.hpp"
#include "util/rng.hpp"

namespace maps {
namespace {

struct Shape
{
    std::uint64_t bytes;
    std::uint32_t assoc;
};

// Power-of-two associativities from direct-mapped-ish to wide.
constexpr Shape kShapes[] = {
    {1_KiB, 2},
    {4_KiB, 4},
    {8_KiB, 8},
    {16_KiB, 16},
};

// Every name the factory accepts.
const char *const kPolicies[] = {"lru",  "plru",        "random",
                                 "srrip", "drrip",      "drrip-typed",
                                 "eva",  "eva-typed",   "cost-lru"};

bool
predictivePolicy(const std::string &name)
{
    return name == "lru" || name == "plru" || name == "random" ||
           name == "srrip" || name == "drrip" || name == "drrip-typed";
}

/** Record-mode maps::check scope for one test body. */
class CheckGuard
{
  public:
    CheckGuard()
    {
        check::setEnabled(true);
        check::setFailureMode(check::FailureMode::Record);
        check::clearMutations();
        check::resetStats();
    }
    ~CheckGuard()
    {
        check::setEnabled(false);
        check::resetStats();
    }
};

void
expectNoDivergence()
{
    EXPECT_GT(check::checkCount(), 0u) << "shadow never checked anything";
    EXPECT_EQ(check::failureCount(), 0u);
    for (const auto &f : check::failures())
        ADD_FAILURE() << "[" << f.domain << "] " << f.message;
}

/**
 * Run one policy/geometry/seed combination with a shadow attached.
 * The trace mixes reads, writes, invalidates and clean-line operations
 * over a footprint 4x the cache so misses and evictions are plentiful.
 */
void
driveShadowed(const std::string &policy, const Shape &shape,
              std::uint64_t seed)
{
    CheckGuard guard;

    CacheGeometry geom;
    geom.sizeBytes = shape.bytes;
    geom.assoc = shape.assoc;
    SetAssociativeCache cache(geom, makeReplacementPolicy(policy, seed));
    auto shadow = check::CacheShadow::attach(cache, policy, seed);
    EXPECT_EQ(shadow->predictive(), predictivePolicy(policy))
        << policy << ": unexpected shadow mode";

    const bool typed = policy == "drrip-typed" || policy == "eva-typed";
    const std::uint64_t blocks = geom.numLines() * 4;
    Rng rng(seed ^ 0x9E3779B97F4A7C15ull);
    for (int i = 0; i < 10'000; ++i) {
        const Addr addr = rng.nextBounded(blocks) * kBlockSize;
        const std::uint64_t op = rng.nextBounded(64);
        if (op == 0) {
            cache.invalidate(addr);
        } else if (op == 1) {
            cache.cleanLine(addr);
        } else {
            const auto type = static_cast<std::uint8_t>(
                typed ? rng.nextBounded(kNumMetadataTypes) : 0);
            cache.access(addr, rng.nextBool(0.3), type);
        }
    }
    shadow->finalAudit();
    EXPECT_TRUE(shadow->alive()) << policy << ": shadow diverged";
    expectNoDivergence();
}

TEST(CheckPolicies, ShadowEquivalenceAcrossGeometries)
{
    for (const char *policy : kPolicies) {
        for (const auto &shape : kShapes) {
            SCOPED_TRACE(std::string(policy) + " " +
                         std::to_string(shape.bytes / 1024) + "KB x" +
                         std::to_string(shape.assoc));
            driveShadowed(policy, shape, 7);
        }
    }
}

// Seed sweep: the seeded policies (random, drrip's BRRIP throws) must
// stay in lock-step with the shadow for *every* seed, not just the one
// the other tests happen to use. Seeds come from the runner's own
// deterministic derivation so this mirrors what --check sees in a
// multi-cell experiment.
TEST(CheckPolicies, SeedSweepViaDeriveCellSeed)
{
    for (const char *policy : {"lru", "random", "srrip", "drrip"}) {
        for (int cell = 0; cell < 4; ++cell) {
            const std::string id =
                std::string(policy) + "/cell" + std::to_string(cell);
            const std::uint64_t seed = runner::deriveCellSeed(3, id);
            SCOPED_TRACE(id + " seed=" + std::to_string(seed));
            driveShadowed(policy, kShapes[1], seed);
        }
    }
}

// A partitioned cache forces the shadow into mirror mode and exercises
// the partition-residency audit on every fill.
TEST(CheckPolicies, PartitionedCacheMirrorsCleanly)
{
    CheckGuard guard;

    CacheGeometry geom;
    geom.sizeBytes = 4_KiB;
    geom.assoc = 4;
    SetAssociativeCache cache(geom, makeReplacementPolicy("lru", 5),
                              std::make_unique<StaticPartition>(2));
    auto shadow = check::CacheShadow::attach(cache, "partitioned", 5);
    EXPECT_FALSE(shadow->predictive());

    Rng rng(29);
    for (int i = 0; i < 20'000; ++i) {
        const Addr addr = rng.nextBounded(256) * kBlockSize;
        const auto type = static_cast<std::uint8_t>(
            rng.nextBounded(2) == 0
                ? static_cast<unsigned>(MetadataType::Counter)
                : static_cast<unsigned>(MetadataType::Hash));
        cache.access(addr, rng.nextBool(0.3), type);
    }
    shadow->finalAudit();
    expectNoDivergence();
}

// Tiny direct-set stress: a one-set cache maximizes eviction pressure,
// the hardest case for victim prediction.
TEST(CheckPolicies, SingleSetEvictionStress)
{
    for (const char *policy : {"lru", "plru", "srrip", "drrip", "random"}) {
        SCOPED_TRACE(policy);
        CheckGuard guard;
        CacheGeometry geom;
        geom.sizeBytes = 4 * kBlockSize; // one set, 4 ways
        geom.assoc = 4;
        SetAssociativeCache cache(geom, makeReplacementPolicy(policy, 11));
        auto shadow = check::CacheShadow::attach(cache, policy, 11);
        Rng rng(31);
        for (int i = 0; i < 5'000; ++i)
            cache.access(rng.nextBounded(12) * kBlockSize,
                         rng.nextBool(0.5));
        shadow->finalAudit();
        expectNoDivergence();
    }
}

} // namespace
} // namespace maps
