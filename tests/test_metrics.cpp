/**
 * @file
 * Tests for the maps::metrics phase-aware registry, the derived-metric
 * definitions, the simulator's single statistics boundary, and the
 * chrome://tracing event emitter.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cache/cache.hpp"
#include "check/check.hpp"
#include "core/runner.hpp"
#include "core/simulator.hpp"
#include "metrics/derived.hpp"
#include "metrics/metrics.hpp"
#include "metrics/trace_events.hpp"

namespace maps {
namespace {

// ---------------------------------------------------------------------------
// Registry fundamentals.
// ---------------------------------------------------------------------------

TEST(Registry, TotalWarmupMeasureWindows)
{
    metrics::Registry reg;
    std::uint64_t hits = 0;
    reg.counter("unit.hits", &hits);

    hits = 7; // warmup activity
    EXPECT_EQ(reg.total("unit.hits"), 7u);
    // Before the snapshot the measure window covers the whole run.
    EXPECT_EQ(reg.warmup("unit.hits"), 0u);
    EXPECT_EQ(reg.measure("unit.hits"), 7u);

    reg.beginPhase(metrics::Phase::Measure);
    EXPECT_EQ(reg.warmup("unit.hits"), 7u);
    EXPECT_EQ(reg.measure("unit.hits"), 0u);

    hits += 5; // measured activity
    EXPECT_EQ(reg.total("unit.hits"), 12u);
    EXPECT_EQ(reg.warmup("unit.hits"), 7u);
    EXPECT_EQ(reg.measure("unit.hits"), 5u);
    // The invariant the whole design hangs on:
    EXPECT_EQ(reg.warmup("unit.hits") + reg.measure("unit.hits"),
              reg.total("unit.hits"));
}

TEST(Registry, AttachEnumeratesStructFields)
{
    metrics::Registry reg;
    CacheStats stats;
    reg.attach("l1", stats);
    // hits, misses, evictions, evictions.dirty + 4 hit + 4 miss classes.
    EXPECT_EQ(reg.counterCount(), 12u);
    stats.hits = 3;
    stats.misses = 2;
    EXPECT_EQ(reg.total("l1.hits"), 3u);
    EXPECT_EQ(reg.total("l1.misses"), 2u);
}

TEST(Registry, MeasureViewSubtractsSnapshotPerField)
{
    metrics::Registry reg;
    CacheStats stats;
    reg.attach("llc", stats);
    stats.hits = 10;
    stats.misses = 4;
    reg.beginPhase(metrics::Phase::Measure);
    stats.hits = 25;
    stats.misses = 5;
    stats.evictions = 2;

    const CacheStats view = reg.measureView("llc", stats);
    EXPECT_EQ(view.hits, 15u);
    EXPECT_EQ(view.misses, 1u);
    EXPECT_EQ(view.evictions, 2u);
    // The view is a copy; the live struct keeps its totals.
    EXPECT_EQ(stats.hits, 25u);
}

TEST(RegistryDeath, SnapshotTakenExactlyOnce)
{
    metrics::Registry reg;
    std::uint64_t c = 0;
    reg.counter("c", &c);
    reg.beginPhase(metrics::Phase::Measure);
    EXPECT_DEATH(reg.beginPhase(metrics::Phase::Measure), "");
}

TEST(RegistryDeath, BeginWarmupPanics)
{
    metrics::Registry reg;
    EXPECT_DEATH(reg.beginPhase(metrics::Phase::Warmup), "");
}

TEST(RegistryDeath, DuplicateCounterNamePanics)
{
    metrics::Registry reg;
    std::uint64_t a = 0, b = 0;
    reg.counter("dup", &a);
    EXPECT_DEATH(reg.counter("dup", &b), "");
}

TEST(RegistryDeath, RegistrationAfterSnapshotPanics)
{
    metrics::Registry reg;
    std::uint64_t a = 0, b = 0;
    reg.counter("early", &a);
    reg.beginPhase(metrics::Phase::Measure);
    EXPECT_DEATH(reg.counter("late", &b), "");
}

TEST(RegistryDeath, UnknownNamePanics)
{
    metrics::Registry reg;
    EXPECT_DEATH(reg.total("no.such.counter"), "");
}

TEST(Registry, PhaseListenerRunsAfterSnapshot)
{
    metrics::Registry reg;
    std::uint64_t c = 0;
    reg.counter("c", &c);
    c = 9;
    std::uint64_t seen_warmup = 0;
    reg.onPhaseBegin([&](metrics::Phase p) {
        EXPECT_EQ(p, metrics::Phase::Measure);
        seen_warmup = reg.warmup("c"); // snapshot already taken
    });
    reg.beginPhase(metrics::Phase::Measure);
    EXPECT_EQ(seen_warmup, 9u);
}

TEST(Registry, HistogramSnapshotsBucketwise)
{
    metrics::Registry reg;
    Log2Histogram hist;
    reg.histogram("lat", &hist);
    hist.add(3); // bucket for small values
    hist.add(100);
    reg.beginPhase(metrics::Phase::Measure);
    hist.add(100);
    hist.add(5000);

    const auto ex = reg.exportAll();
    ASSERT_EQ(ex.histograms.size(), 1u);
    const auto &h = ex.histograms[0];
    EXPECT_EQ(h.name, "lat");
    EXPECT_EQ(h.totalCount, 4u);
    std::uint64_t warm = 0, meas = 0;
    for (const auto v : h.warmupBuckets)
        warm += v;
    for (const auto v : h.measureBuckets)
        meas += v;
    EXPECT_EQ(warm, 2u);
    EXPECT_EQ(meas, 2u);
}

TEST(Registry, ExportCarriesSchemaAndAllRecords)
{
    metrics::Registry reg;
    std::uint64_t c = 0;
    reg.counter("x.events", &c);
    c = 4;
    reg.beginPhase(metrics::Phase::Measure);
    c = 10;
    reg.derived("x.rate", 2.5, 2);

    const auto ex = reg.exportAll();
    EXPECT_EQ(ex.schema, metrics::kSchemaVersion);
    ASSERT_EQ(ex.counters.size(), 1u);
    EXPECT_EQ(ex.counters[0].name, "x.events");
    EXPECT_EQ(ex.counters[0].warmup, 4u);
    EXPECT_EQ(ex.counters[0].measure, 6u);
    EXPECT_EQ(ex.counters[0].total, 10u);
    ASSERT_EQ(ex.derived.size(), 1u);
    EXPECT_EQ(ex.derived[0].name, "x.rate");
    EXPECT_DOUBLE_EQ(ex.derived[0].value, 2.5);
    EXPECT_EQ(ex.derived[0].precision, 2);
}

// ---------------------------------------------------------------------------
// Derived metrics: one definition, exact formulas.
// ---------------------------------------------------------------------------

TEST(Derived, FormulasMatchTheirDefinitions)
{
    EXPECT_DOUBLE_EQ(metrics::perKiloInstructions(50, 10'000), 5.0);
    EXPECT_DOUBLE_EQ(metrics::perKiloInstructions(50, 0), 0.0);
    EXPECT_DOUBLE_EQ(metrics::ratioOrZero(3, 4), 0.75);
    EXPECT_DOUBLE_EQ(metrics::ratioOrZero(3, 0), 0.0);
    // ED² = pJ -> J conversion times seconds².
    EXPECT_DOUBLE_EQ(metrics::energyDelaySquared(2e12, 3.0), 2.0 * 9.0);
}

TEST(Derived, StatsStructsDelegate)
{
    CacheStats stats;
    stats.hits = 3;
    stats.misses = 1;
    EXPECT_DOUBLE_EQ(stats.missRate(), metrics::ratioOrZero(1, 4));
}

// ---------------------------------------------------------------------------
// Simulator integration: one statistics boundary per run.
// ---------------------------------------------------------------------------

SimConfig
tinyConfig()
{
    SimConfig cfg;
    cfg.benchmark = "libquantum";
    cfg.seed = 5;
    cfg.warmupRefs = 2'000;
    cfg.measureRefs = 5'000;
    return cfg;
}

const metrics::Registry::CounterRecord &
findCounter(const metrics::Registry::Export &ex, const std::string &name)
{
    for (const auto &c : ex.counters)
        if (c.name == name)
            return c;
    ADD_FAILURE() << "counter " << name << " not exported";
    static metrics::Registry::CounterRecord none;
    return none;
}

TEST(SimulatorMetrics, CountersResetExactlyOnce)
{
    const auto report = runBenchmark(tinyConfig());
    const auto &refs = findCounter(report.metricsExport,
                                   "hierarchy.refs");
    // The warmup window is exactly the warmup references, the measure
    // window exactly the measured ones, and nothing is ever lost:
    // warmup + measure == total.
    EXPECT_EQ(refs.warmup, 2'000u);
    EXPECT_EQ(refs.measure, 5'000u);
    EXPECT_EQ(refs.total, 7'000u);
    EXPECT_EQ(report.refs, 5'000u) << "report views are measure-window";
}

TEST(SimulatorMetrics, ReportViewsAreMeasureWindows)
{
    const auto cfg = tinyConfig();
    SecureMemorySim sim(cfg);
    const auto report = sim.run();
    auto &reg = sim.metricsRegistry();
    EXPECT_EQ(report.hierarchy.llcMisses, reg.measure("hierarchy.llc.misses"));
    EXPECT_EQ(report.memory.reads, reg.measure("dram.reads"));
    EXPECT_EQ(report.controller.readRequests,
              reg.measure("secmem.requests.read"));
    EXPECT_EQ(report.mdCache.accesses[0],
              reg.measure("secmem.mdcache.counter.accesses"));
}

TEST(SimulatorMetrics, CacheEnergySpansBothPhases)
{
    const auto cfg = tinyConfig();
    SecureMemorySim sim(cfg);
    const auto report = sim.run();
    const auto &ex = report.metricsExport;
    const auto &hits = findCounter(ex, "l1.hits");
    const auto &misses = findCounter(ex, "l1.misses");
    ASSERT_GT(hits.warmup + misses.warmup, 0u)
        << "warmup must generate L1 traffic for this test to bite";

    // Documented window convention: l1/l2/llc dynamic energy charges the
    // WHOLE run (warmup fills are real accesses that cost energy), not
    // just the measure window.
    const EnergyModel energy(cfg.energy);
    const double whole_run = energy.cacheDynamicPj(
        cfg.hierarchy.l1Bytes, hits.total + misses.total);
    const double measure_only = energy.cacheDynamicPj(
        cfg.hierarchy.l1Bytes, hits.measure + misses.measure);
    EXPECT_DOUBLE_EQ(report.energy.l1Pj, whole_run);
    EXPECT_GT(report.energy.l1Pj, measure_only);
}

TEST(SimulatorMetrics, ExportIncludesDerivedFigures)
{
    const auto report = runBenchmark(tinyConfig());
    const auto &ex = report.metricsExport;
    EXPECT_EQ(ex.schema, metrics::kSchemaVersion);
    bool saw_mpki = false, saw_ed2 = false;
    for (const auto &d : ex.derived) {
        if (d.name == "derived.llc.mpki") {
            saw_mpki = true;
            EXPECT_DOUBLE_EQ(d.value, report.llcMpki);
        }
        if (d.name == "derived.ed2") {
            saw_ed2 = true;
            EXPECT_DOUBLE_EQ(d.value, report.ed2);
        }
    }
    EXPECT_TRUE(saw_mpki);
    EXPECT_TRUE(saw_ed2);
}

TEST(SimulatorMetrics, AccountingAuditCleanOnHealthyRun)
{
    check::setEnabled(true);
    check::setFailureMode(check::FailureMode::Record);
    check::resetStats();
    runBenchmark(tinyConfig());
    EXPECT_EQ(check::failureCount(), 0u)
        << "registry cross-component accounting diverged";
    EXPECT_GT(check::checkCount(), 0u);
    check::setEnabled(false);
}

TEST(SimulatorMetrics, InsecureBaselineStillExports)
{
    auto cfg = tinyConfig();
    cfg.secureEnabled = false;
    const auto report = runBenchmark(cfg);
    const auto &refs = findCounter(report.metricsExport,
                                   "hierarchy.refs");
    EXPECT_EQ(refs.total, cfg.warmupRefs + cfg.measureRefs);
    for (const auto &c : report.metricsExport.counters)
        EXPECT_TRUE(c.name.rfind("secmem", 0) != 0)
            << "no controller counters without a controller: " << c.name;
}

// ---------------------------------------------------------------------------
// Trace events.
// ---------------------------------------------------------------------------

TEST(TraceEvents, WriterEmitsValidChromeTraceJson)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "maps_test_trace_events.json";
    std::filesystem::remove(path);
    {
        auto cfg = tinyConfig();
        SecureMemorySim sim(cfg);
        sim.enableTraceEvents(path.string(), 16, "test/cell");
        sim.run();
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open()) << "trace file missing: " << path;
    std::ostringstream text;
    text << in.rdbuf();
    const std::string body = text.str();

    EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(body.find(metrics::kTraceSchemaVersion), std::string::npos);
    EXPECT_NE(body.find("\"cell\":\"test/cell\""), std::string::npos);
    EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(body.find("\"cat\":\"metadata\""), std::string::npos);
    // Crude structural sanity: brackets balance.
    std::int64_t depth = 0;
    for (const char c : body) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    std::filesystem::remove(path);
}

TEST(TraceEvents, SamplingBoundsEventCount)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "maps_test_trace_sampled.json";
    std::filesystem::remove(path);
    auto cfg = tinyConfig();
    SecureMemorySim sim(cfg);
    sim.enableTraceEvents(path.string(), 1'000'000, "sparse");
    sim.run();
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::ostringstream text;
    text << in.rdbuf();
    // Sampling every millionth request over a few thousand refs keeps
    // at most one sampled request.
    EXPECT_NE(text.str().find("\"requests_sampled\":1"),
              std::string::npos)
        << text.str().substr(text.str().size() > 400
                                 ? text.str().size() - 400
                                 : 0);
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Runner plumbing: option parsing and the once-per-process trace claim.
// ---------------------------------------------------------------------------

TEST(RunnerMetrics, OptionsParseMetricsAndTraceFlags)
{
    runner::Options opts;
    const auto err = runner::Options::tryParse(
        {"--metrics=full", "--trace-events=/tmp/t.json",
         "--trace-sample=8", "--trace-cell=canneal"},
        opts);
    EXPECT_EQ(err, "");
    EXPECT_EQ(opts.metrics, runner::MetricsLevel::Full);
    EXPECT_EQ(opts.traceEventsPath, "/tmp/t.json");
    EXPECT_EQ(opts.traceSample, 8u);
    EXPECT_EQ(opts.traceCell, "canneal");

    runner::Options bad;
    EXPECT_NE(runner::Options::tryParse({"--metrics=verbose"}, bad), "");
    EXPECT_NE(runner::Options::tryParse({"--trace-sample=0"}, bad), "");
    EXPECT_NE(runner::Options::tryParse({"--trace-events="}, bad), "");
}

TEST(RunnerMetrics, TraceClaimGrantedOncePerConfiguration)
{
    runner::setTraceEvents("claim_test.json", 32, "");
    const auto first = runner::claimTraceEvents();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->path, "claim_test.json");
    EXPECT_EQ(first->sampleEvery, 32u);
    EXPECT_FALSE(runner::claimTraceEvents().has_value())
        << "second claim must be refused";

    // Re-arming resets the claim; a cell filter that matches nobody
    // (we are not on a worker thread, so currentCellId() is empty)
    // never grants.
    runner::setTraceEvents("claim_test.json", 32, "some/cell");
    EXPECT_EQ(runner::currentCellId(), "");
    EXPECT_FALSE(runner::claimTraceEvents().has_value());

    // Disable again so later tests in this process see no tracing.
    runner::setTraceEvents("", 0, "");
    EXPECT_FALSE(runner::claimTraceEvents().has_value());
}

} // namespace
} // namespace maps
