/**
 * @file
 * Cross-module property tests: invariants that must hold across whole
 * configuration matrices, checked with parameterized sweeps.
 */
#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/reuse.hpp"
#include "cache/cache.hpp"
#include "core/simulator.hpp"
#include "hierarchy/hierarchy.hpp"
#include "offline/min_sim.hpp"
#include "secmem/layout.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace maps {
namespace {

// ---------------------------------------------------------------------
// PLRU == LRU at 2 ways, for any access stream.
// ---------------------------------------------------------------------

class PlruLruEquiv : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PlruLruEquiv, TwoWayIdentical)
{
    CacheGeometry geom;
    geom.sizeBytes = 8_KiB;
    geom.assoc = 2;
    SetAssociativeCache plru(geom, makeReplacementPolicy("plru"));
    SetAssociativeCache lru(geom, makeReplacementPolicy("lru"));
    Rng rng(GetParam());
    for (int i = 0; i < 20000; ++i) {
        const Addr a = rng.nextBounded(512) * kBlockSize;
        ASSERT_EQ(plru.access(a, false).hit, lru.access(a, false).hit)
            << "access " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlruLruEquiv,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------
// Offline MIN lower-bounds every online policy on fixed traces.
// ---------------------------------------------------------------------

struct MinBoundParam
{
    const char *policy;
    std::uint64_t seed;
};

class MinLowerBound : public ::testing::TestWithParam<MinBoundParam>
{
};

TEST_P(MinLowerBound, MinNeverMissesMore)
{
    const auto param = GetParam();
    CacheGeometry geom;
    geom.sizeBytes = 2_KiB;
    geom.assoc = 4;

    Rng rng(param.seed);
    std::vector<Addr> trace;
    Addr prev = 0;
    for (int i = 0; i < 15000; ++i) {
        Addr a;
        if (i > 0 && rng.nextBool(0.35))
            a = prev;
        else
            a = rng.nextBounded(160) * kBlockSize;
        trace.push_back(a);
        prev = a;
    }

    SetAssociativeCache cache(geom,
                              makeReplacementPolicy(param.policy, 7));
    for (const Addr a : trace)
        cache.access(a, false);

    const auto min = simulateMinFixedTrace(trace, geom);
    EXPECT_LE(min.misses, cache.stats().misses) << param.policy;
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MinLowerBound,
    ::testing::Values(MinBoundParam{"lru", 11}, MinBoundParam{"plru", 12},
                      MinBoundParam{"random", 13},
                      MinBoundParam{"srrip", 14}, MinBoundParam{"eva", 15},
                      MinBoundParam{"drrip", 16},
                      MinBoundParam{"cost-lru", 17},
                      MinBoundParam{"eva-typed", 18},
                      MinBoundParam{"drrip-typed", 19}));

// ---------------------------------------------------------------------
// Layout invariants across sizes and counter modes.
// ---------------------------------------------------------------------

struct LayoutParam
{
    std::uint64_t bytes;
    CounterMode mode;
};

class LayoutSweep : public ::testing::TestWithParam<LayoutParam>
{
};

TEST_P(LayoutSweep, GeometryInvariants)
{
    LayoutConfig cfg;
    cfg.protectedBytes = GetParam().bytes;
    cfg.counterMode = GetParam().mode;
    MetadataLayout layout(cfg);

    // Counter blocks exactly cover the protected region.
    EXPECT_EQ(layout.numCounterBlocks() * layout.counterBlockCoverage(),
              cfg.protectedBytes);
    // Hash blocks exactly cover the data blocks.
    EXPECT_EQ(layout.numHashBlocks(),
              ceilDiv(layout.numDataBlocks(), 8));
    // Tree shrinks by arity and ends in one block.
    EXPECT_EQ(layout.treeLevelBlockCount(layout.numTreeLevels() - 1), 1u);
    for (std::uint32_t l = 1; l < layout.numTreeLevels(); ++l) {
        EXPECT_EQ(layout.treeLevelBlockCount(l),
                  ceilDiv(layout.treeLevelBlockCount(l - 1), 8));
    }
    // Every counter maps to a leaf whose ancestors chain to the root.
    for (std::uint64_t i = 0; i < layout.numCounterBlocks();
         i += std::max<std::uint64_t>(1, layout.numCounterBlocks() / 7)) {
        const Addr ctr = MetadataLayout::encode(MetadataType::Counter, 0,
                                                i);
        const auto path = layout.treePathForCounter(ctr);
        EXPECT_EQ(path.size(), layout.numTreeLevels());
        for (std::size_t p = 1; p < path.size(); ++p)
            EXPECT_EQ(layout.treeParent(path[p - 1]), path[p]);
    }
    // Coverage doubles by arity per level.
    for (std::uint32_t l = 1; l < layout.numTreeLevels(); ++l) {
        EXPECT_EQ(layout.treeBlockCoverage(l),
                  8 * layout.treeBlockCoverage(l - 1));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LayoutSweep,
    ::testing::Values(LayoutParam{4_KiB, CounterMode::SplitPi},
                      LayoutParam{1_MiB, CounterMode::SplitPi},
                      LayoutParam{64_MiB, CounterMode::SplitPi},
                      LayoutParam{4_GiB, CounterMode::SplitPi},
                      LayoutParam{1_MiB, CounterMode::MonolithicSgx},
                      LayoutParam{64_MiB, CounterMode::MonolithicSgx},
                      LayoutParam{4_GiB, CounterMode::MonolithicSgx}));

// ---------------------------------------------------------------------
// Controller accounting invariants across the configuration matrix.
// ---------------------------------------------------------------------

struct CtrlParam
{
    bool cacheEnabled;
    bool counters, hashes, tree;
    bool lazy;
    bool speculation;
    bool partialWrites;
    bool prefetch;
    CounterMode mode;
};

class ControllerMatrix : public ::testing::TestWithParam<CtrlParam>
{
};

TEST_P(ControllerMatrix, AccountingConsistent)
{
    const auto p = GetParam();
    SimConfig cfg;
    cfg.benchmark = "fft";
    cfg.warmupRefs = 30'000;
    cfg.measureRefs = 150'000;
    cfg.useDram = false;
    cfg.secure.layout.protectedBytes = 64_MiB;
    cfg.secure.layout.counterMode = p.mode;
    cfg.secure.cacheEnabled = p.cacheEnabled;
    cfg.secure.cache.cacheCounters = p.counters;
    cfg.secure.cache.cacheHashes = p.hashes;
    cfg.secure.cache.cacheTree = p.tree;
    cfg.secure.lazyTreeUpdate = p.lazy;
    cfg.secure.speculation = p.speculation;
    cfg.secure.cache.partialWrites = p.partialWrites;
    cfg.secure.prefetchNextMetadata = p.prefetch;

    const auto report = runBenchmark(cfg);
    const auto &ctl = report.controller;

    // 1. Every DRAM access the controller performed reached memory.
    EXPECT_EQ(report.memory.accesses(), ctl.totalMemAccesses());
    // 2. Each read request reads its data block exactly once.
    EXPECT_EQ(ctl.memReads[static_cast<int>(MemCategory::Data)],
              ctl.readRequests);
    // 3. Each writeback writes its data block exactly once.
    EXPECT_EQ(ctl.memWrites[static_cast<int>(MemCategory::Data)],
              ctl.writeRequests);
    // 4. Metadata cache accounting: hits + misses + bypasses == taps.
    const auto &md = report.mdCache;
    for (unsigned t = 0; t < kNumMetadataTypes; ++t) {
        EXPECT_EQ(md.accesses[t],
                  md.hits[t] + md.misses[t] + md.bypasses[t]);
    }
    // 5. Counters and hashes are touched at least once per request.
    EXPECT_GE(md.accesses[static_cast<int>(MetadataType::Counter)],
              ctl.requests());
    EXPECT_GE(md.accesses[static_cast<int>(MetadataType::Hash)],
              ctl.requests());
    // 6. Latency accounting is sane.
    EXPECT_GT(ctl.avgReadLatency(), 0.0);
    EXPECT_GE(report.cycles, report.instructions);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ControllerMatrix,
    ::testing::Values(
        CtrlParam{true, true, true, true, true, true, false, false,
                  CounterMode::SplitPi},
        CtrlParam{true, true, true, true, true, false, false, false,
                  CounterMode::SplitPi},
        CtrlParam{true, true, false, false, true, true, false, false,
                  CounterMode::SplitPi},
        CtrlParam{true, true, true, false, true, true, true, false,
                  CounterMode::SplitPi},
        CtrlParam{true, false, true, true, true, true, false, false,
                  CounterMode::SplitPi},
        CtrlParam{true, true, true, true, false, true, false, false,
                  CounterMode::SplitPi},
        CtrlParam{false, true, true, true, true, true, false, false,
                  CounterMode::SplitPi},
        CtrlParam{true, true, true, true, true, true, false, true,
                  CounterMode::SplitPi},
        CtrlParam{true, true, true, true, true, true, true, true,
                  CounterMode::MonolithicSgx},
        CtrlParam{false, true, true, true, false, false, false, false,
                  CounterMode::MonolithicSgx}));

// ---------------------------------------------------------------------
// Hierarchy: writebacks only for blocks previously read, all aligned.
// ---------------------------------------------------------------------

class HierarchyProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HierarchyProperty, WritebacksFollowReads)
{
    HierarchyConfig cfg;
    cfg.l1Bytes = 1_KiB;
    cfg.l2Bytes = 4_KiB;
    cfg.llcBytes = 16_KiB;
    CacheHierarchy h(cfg);

    std::unordered_set<Addr> read_blocks;
    bool ok = true;
    h.setRequestSink([&](const MemoryRequest &req) {
        if (req.addr % kBlockSize != 0)
            ok = false;
        if (req.kind == RequestKind::Read)
            read_blocks.insert(req.addr);
        else if (!read_blocks.count(req.addr))
            ok = false; // writeback of a block never fetched
    });

    Rng rng(GetParam());
    for (int i = 0; i < 30000; ++i) {
        MemRef ref;
        ref.addr = rng.nextBounded(4096) * 8;
        ref.type = rng.nextBool(0.4) ? AccessType::Write
                                     : AccessType::Read;
        ref.instGap = 1;
        h.access(ref);
    }
    EXPECT_TRUE(ok);
    EXPECT_GT(h.stats().llcWritebacks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyProperty,
                         ::testing::Values(21, 22, 23));

// ---------------------------------------------------------------------
// Reuse analyzer conservation: recorded + cold == observed.
// ---------------------------------------------------------------------

TEST(ReuseConservation, CountsAddUp)
{
    ReuseDistanceAnalyzer analyzer;
    Rng rng(31);
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        analyzer.observe(rng.nextBounded(300) * kBlockSize,
                         static_cast<MetadataType>(rng.nextBounded(3)),
                         rng.nextBool(0.3) ? AccessType::Write
                                           : AccessType::Read);
    }
    std::uint64_t recorded = 0, cold = 0, accesses = 0;
    for (unsigned t = 0; t < 3; ++t) {
        const auto type = static_cast<MetadataType>(t);
        recorded += analyzer.typeHistogram(type).totalCount();
        cold += analyzer.coldMisses(type);
        accesses += analyzer.accesses(type);
    }
    EXPECT_EQ(recorded + cold, accesses);
    EXPECT_EQ(accesses, static_cast<std::uint64_t>(n));
    EXPECT_EQ(cold, analyzer.uniqueBlocks());
}

} // namespace
} // namespace maps
