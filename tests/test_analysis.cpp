/**
 * @file
 * Tests for reuse-distance analysis: Fenwick tree, analyzer vs a naive
 * O(N^2) reference, transition tagging, and the bimodal classifier.
 */
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/bimodal.hpp"
#include "analysis/fenwick.hpp"
#include "analysis/reuse.hpp"
#include "util/rng.hpp"

namespace maps {
namespace {

TEST(Fenwick, PrefixSums)
{
    FenwickTree tree(16);
    tree.add(3, 5);
    tree.add(7, 2);
    tree.add(16, 1);
    EXPECT_EQ(tree.prefixSum(2), 0);
    EXPECT_EQ(tree.prefixSum(3), 5);
    EXPECT_EQ(tree.prefixSum(7), 7);
    EXPECT_EQ(tree.prefixSum(16), 8);
    EXPECT_EQ(tree.rangeSum(4, 16), 3);
    EXPECT_EQ(tree.rangeSum(8, 6), 0) << "inverted range";
}

TEST(Fenwick, GrowsOnDemand)
{
    FenwickTree tree;
    tree.add(1000, 7);
    EXPECT_EQ(tree.prefixSum(999), 0);
    EXPECT_EQ(tree.prefixSum(1000), 7);
    EXPECT_GE(tree.size(), 1000u);
}

TEST(Fenwick, NegativeDeltas)
{
    FenwickTree tree(8);
    tree.add(4, 1);
    tree.add(4, -1);
    EXPECT_EQ(tree.prefixSum(8), 0);
}

/** Naive reference: distinct blocks strictly between two accesses. */
class NaiveReuse
{
  public:
    /** Returns distance or UINT64_MAX for cold accesses. */
    std::uint64_t
    observe(Addr block)
    {
        std::uint64_t result = ~std::uint64_t{0};
        const auto it = last_.find(block);
        if (it != last_.end()) {
            std::unordered_set<Addr> distinct;
            for (std::size_t i = it->second + 1; i < history_.size(); ++i)
                distinct.insert(history_[i]);
            result = distinct.size();
        }
        history_.push_back(block);
        last_[block] = history_.size() - 1;
        return result;
    }

  private:
    std::vector<Addr> history_;
    std::unordered_map<Addr, std::size_t> last_;
};

TEST(ReuseDistance, MatchesNaiveReferenceOnRandomStreams)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        ReuseDistanceAnalyzer analyzer;
        NaiveReuse naive;
        Rng rng(seed);

        std::unordered_map<std::uint64_t, std::uint64_t> fast_hist;
        std::unordered_map<std::uint64_t, std::uint64_t> slow_hist;
        for (int i = 0; i < 3000; ++i) {
            const Addr block = rng.nextBounded(64) * kBlockSize;
            analyzer.observe(block, MetadataType::Counter,
                             AccessType::Read);
            const auto d = naive.observe(block);
            if (d != ~std::uint64_t{0})
                ++slow_hist[d];
        }
        for (const auto &[dist, count] :
             analyzer.typeHistogram(MetadataType::Counter).cells()) {
            fast_hist[dist] = count;
        }
        EXPECT_EQ(fast_hist, slow_hist) << "seed " << seed;
    }
}

TEST(ReuseDistance, SimpleHandComputedCase)
{
    // Stream: A B C A  -> A's reuse distance is 2 (B and C).
    //         B        -> distance 2 (C and A).
    ReuseDistanceAnalyzer analyzer;
    const Addr A = 0, B = 64, C = 128;
    for (Addr a : {A, B, C, A, B})
        analyzer.observe(a, MetadataType::Hash, AccessType::Read);

    const auto &hist = analyzer.typeHistogram(MetadataType::Hash);
    EXPECT_EQ(hist.totalCount(), 2u);
    EXPECT_EQ(hist.cells().at(2), 2u);
    EXPECT_EQ(analyzer.coldMisses(MetadataType::Hash), 3u);
}

TEST(ReuseDistance, ImmediateReuseIsZero)
{
    ReuseDistanceAnalyzer analyzer;
    analyzer.observe(0, MetadataType::Counter, AccessType::Read);
    analyzer.observe(0, MetadataType::Counter, AccessType::Read);
    EXPECT_EQ(
        analyzer.typeHistogram(MetadataType::Counter).cells().at(0), 1u);
}

TEST(ReuseDistance, TypesShareTheDistanceSpace)
{
    // Distance counts *any* intervening distinct block, regardless of
    // type: C H C -> counter distance 1.
    ReuseDistanceAnalyzer analyzer;
    analyzer.observe(0, MetadataType::Counter, AccessType::Read);
    analyzer.observe(1 << 20, MetadataType::Hash, AccessType::Read);
    analyzer.observe(0, MetadataType::Counter, AccessType::Read);
    EXPECT_EQ(
        analyzer.typeHistogram(MetadataType::Counter).cells().at(1), 1u);
}

TEST(ReuseDistance, TransitionsTagged)
{
    ReuseDistanceAnalyzer analyzer;
    const Addr A = 0;
    analyzer.observe(A, MetadataType::Hash, AccessType::Read);
    analyzer.observe(A, MetadataType::Hash, AccessType::Write); // WAR
    analyzer.observe(A, MetadataType::Hash, AccessType::Write); // WAW
    analyzer.observe(A, MetadataType::Hash, AccessType::Read);  // RAW
    analyzer.observe(A, MetadataType::Hash, AccessType::Read);  // RAR

    using RT = ReuseTransition;
    EXPECT_EQ(analyzer
                  .transitionHistogram(MetadataType::Hash,
                                       RT::WriteAfterRead)
                  .totalCount(),
              1u);
    EXPECT_EQ(analyzer
                  .transitionHistogram(MetadataType::Hash,
                                       RT::WriteAfterWrite)
                  .totalCount(),
              1u);
    EXPECT_EQ(analyzer
                  .transitionHistogram(MetadataType::Hash,
                                       RT::ReadAfterWrite)
                  .totalCount(),
              1u);
    EXPECT_EQ(analyzer
                  .transitionHistogram(MetadataType::Hash,
                                       RT::ReadAfterRead)
                  .totalCount(),
              1u);
}

TEST(ReuseDistance, CombinedHistogramMergesTypes)
{
    ReuseDistanceAnalyzer analyzer;
    analyzer.observe(0, MetadataType::Counter, AccessType::Read);
    analyzer.observe(0, MetadataType::Counter, AccessType::Read);
    analyzer.observe(64, MetadataType::Hash, AccessType::Read);
    analyzer.observe(64, MetadataType::Hash, AccessType::Read);
    EXPECT_EQ(analyzer.combinedHistogram().totalCount(), 2u);
}

TEST(ReuseDistance, AccessorCounts)
{
    ReuseDistanceAnalyzer analyzer;
    for (int i = 0; i < 5; ++i)
        analyzer.observe(static_cast<Addr>(i) * 64, MetadataType::TreeNode,
                         AccessType::Read);
    EXPECT_EQ(analyzer.accesses(MetadataType::TreeNode), 5u);
    EXPECT_EQ(analyzer.totalAccesses(), 5u);
    EXPECT_EQ(analyzer.uniqueBlocks(), 5u);
    EXPECT_EQ(analyzer.coldMisses(MetadataType::TreeNode), 5u);
}

TEST(Bimodal, ClassBoundaries)
{
    EXPECT_EQ(reuseClassOf(0), 0u);
    EXPECT_EQ(reuseClassOf(128), 0u);
    EXPECT_EQ(reuseClassOf(129), 1u);
    EXPECT_EQ(reuseClassOf(256), 1u);
    EXPECT_EQ(reuseClassOf(257), 2u);
    EXPECT_EQ(reuseClassOf(512), 2u);
    EXPECT_EQ(reuseClassOf(513), 3u);
    EXPECT_EQ(reuseClassOf(1u << 20), 3u);
}

TEST(Bimodal, FractionsSumToOne)
{
    ExactHistogram hist;
    hist.add(10, 50);
    hist.add(200, 25);
    hist.add(400, 15);
    hist.add(10000, 10);
    const auto fractions = classifyReuse(hist);
    EXPECT_DOUBLE_EQ(fractions[0], 0.50);
    EXPECT_DOUBLE_EQ(fractions[1], 0.25);
    EXPECT_DOUBLE_EQ(fractions[2], 0.15);
    EXPECT_DOUBLE_EQ(fractions[3], 0.10);
    EXPECT_DOUBLE_EQ(bimodalityScore(hist), 0.60);
}

TEST(Bimodal, EmptyHistogram)
{
    ExactHistogram hist;
    const auto fractions = classifyReuse(hist);
    for (const double f : fractions)
        EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(Bimodal, ClassNames)
{
    for (unsigned c = 0; c < kNumReuseClasses; ++c)
        EXPECT_STRNE(reuseClassName(c), "?");
}

} // namespace
} // namespace maps
