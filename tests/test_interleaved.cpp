/**
 * @file
 * Tests for the interleaved-stream generator (cactusADM's engine) and
 * metadata-cache feature interactions not covered elsewhere.
 */
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "secmem/metadata_cache.hpp"
#include "workloads/generators.hpp"

namespace maps {
namespace {

TEST(InterleavedStream, RoundRobinAcrossRegions)
{
    InterleavedStreamGenerator gen(4, 64_KiB, 8, 0.0, 1);
    // Four consecutive accesses land in four distinct stream regions.
    std::unordered_set<Addr> regions;
    for (int i = 0; i < 4; ++i)
        regions.insert(gen.next().addr / 64_KiB);
    EXPECT_EQ(regions.size(), 4u);
}

TEST(InterleavedStream, EachStreamAdvancesByElement)
{
    InterleavedStreamGenerator gen(2, 64_KiB, 8, 0.0, 1);
    // Track stream 0's offsets over several rounds.
    std::vector<Addr> offsets;
    for (int i = 0; i < 12; ++i) {
        const auto ref = gen.next();
        if (ref.addr / 64_KiB == 0)
            offsets.push_back(ref.addr % 64_KiB);
    }
    ASSERT_GE(offsets.size(), 5u);
    for (std::size_t i = 1; i < offsets.size(); ++i)
        EXPECT_EQ(offsets[i], offsets[i - 1] + 8);
}

TEST(InterleavedStream, StaysWithinFootprint)
{
    InterleavedStreamGenerator gen(8, 32_KiB, 8, 0.2, 3);
    EXPECT_EQ(gen.footprintBytes(), 8u * 32_KiB);
    for (int i = 0; i < 50000; ++i)
        EXPECT_LT(gen.next().addr, gen.footprintBytes());
}

TEST(InterleavedStream, WrapsAroundStreams)
{
    // 1KB streams at 8B elements wrap after 128 rounds.
    InterleavedStreamGenerator gen(2, 1_KiB, 8, 0.0, 5);
    std::unordered_map<Addr, int> counts;
    for (int i = 0; i < 2 * 128 * 3; ++i)
        counts[gen.next().addr]++;
    for (const auto &[addr, count] : counts)
        EXPECT_GE(count, 2) << "address " << addr << " not revisited";
}

TEST(InterleavedStream, PageRevisitDistanceIsStreamCount)
{
    // The property cactusADM's moderate reuse classes rely on: the
    // same block is revisited exactly once per full round.
    const std::uint32_t streams = 32;
    InterleavedStreamGenerator gen(streams, 64_KiB, 8, 0.0, 7);
    std::unordered_map<std::uint64_t, std::uint64_t> last_seen;
    bool first_pass = true;
    for (std::uint64_t t = 0; t < 32 * 400; ++t) {
        const auto block = blockIndex(gen.next().addr);
        const auto it = last_seen.find(block);
        if (it != last_seen.end()) {
            EXPECT_EQ(t - it->second, streams);
            first_pass = false;
        }
        last_seen[block] = t;
    }
    EXPECT_FALSE(first_pass) << "no block was ever revisited";
}

TEST(InterleavedStream, RejectsBadParameters)
{
    EXPECT_DEATH(
        { InterleavedStreamGenerator gen(0, 64_KiB, 8, 0.0); }, "");
    EXPECT_DEATH(
        { InterleavedStreamGenerator gen(4, 8, 64, 0.0); }, "");
}

// ---------------------------------------------------------------------
// Metadata cache feature interactions.
// ---------------------------------------------------------------------

Addr
mdAddr(MetadataType type, std::uint64_t index)
{
    return MetadataLayout::encode(type, 0, index);
}

TEST(MetadataCacheInterop, PrefetchRespectsContentsMask)
{
    MetadataCache cache(MetadataCacheConfig::countersOnly(16_KiB));
    const auto out =
        cache.prefetchInsert(mdAddr(MetadataType::Hash, 3),
                             MetadataType::Hash);
    EXPECT_TRUE(out.bypassed);
    EXPECT_EQ(cache.stats().prefetchInserts, 0u);
}

TEST(MetadataCacheInterop, PrefetchReportsEvictions)
{
    MetadataCacheConfig cfg =
        MetadataCacheConfig::allTypes(2 * kBlockSize);
    cfg.assoc = 2;
    MetadataCache cache(cfg);
    cache.access(mdAddr(MetadataType::Counter, 0), MetadataType::Counter,
                 true);
    cache.access(mdAddr(MetadataType::Counter, 1), MetadataType::Counter,
                 false);
    const auto out = cache.prefetchInsert(
        mdAddr(MetadataType::Counter, 2), MetadataType::Counter);
    ASSERT_TRUE(out.evictedValid);
    EXPECT_TRUE(out.evictedDirty);
}

TEST(MetadataCacheInterop, PrefetchOfResidentBlockIsIdempotent)
{
    MetadataCache cache(MetadataCacheConfig::allTypes(16_KiB));
    const Addr a = mdAddr(MetadataType::Counter, 9);
    cache.access(a, MetadataType::Counter, false);
    const auto out = cache.prefetchInsert(a, MetadataType::Counter);
    EXPECT_TRUE(out.hit);
    EXPECT_EQ(cache.stats().prefetchInserts, 0u);
}

TEST(MetadataCacheInterop, PartialWritesComposeWithPartitioning)
{
    MetadataCacheConfig cfg = MetadataCacheConfig::allTypes(
        8 * kBlockSize);
    cfg.assoc = 8;
    cfg.partialWrites = true;
    cfg.partition = PartitionScheme::Static;
    cfg.staticCounterWays = 4;
    MetadataCache cache(cfg);

    // Placeholder inserts land in the hash partition only.
    for (std::uint64_t i = 0; i < 6; ++i)
        cache.access(mdAddr(MetadataType::Hash, i), MetadataType::Hash,
                     true, 0);
    int resident_hashes = 0;
    for (std::uint64_t i = 0; i < 6; ++i)
        resident_hashes += cache.probe(mdAddr(MetadataType::Hash, i),
                                       MetadataType::Hash);
    EXPECT_EQ(resident_hashes, 4) << "hash partition is 4 ways";
    EXPECT_EQ(cache.stats().placeholderInserts, 6u);
    EXPECT_EQ(cache.stats().incompleteEvictions, 2u);
}

TEST(MetadataCacheInterop, CostLruPolicyViaConfigString)
{
    MetadataCacheConfig cfg = MetadataCacheConfig::allTypes(16_KiB);
    cfg.policy = "cost-lru";
    MetadataCache cache(cfg);
    const Addr a = mdAddr(MetadataType::Counter, 1);
    EXPECT_FALSE(cache.access(a, MetadataType::Counter, false).hit);
    EXPECT_TRUE(cache.access(a, MetadataType::Counter, false).hit);
}

} // namespace
} // namespace maps
