/**
 * @file
 * Tests for the extension policies: cost-aware LRU and DRRIP (plain and
 * per-metadata-type), plus their factory registration.
 */
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/policy_cost.hpp"
#include "cache/policy_drrip.hpp"
#include "util/rng.hpp"

namespace maps {
namespace {

constexpr std::uint8_t kCtr = 0;  // MetadataType::Counter
constexpr std::uint8_t kHash = 2; // MetadataType::Hash

TEST(CostAwareLru, FactoryProvidesIt)
{
    const auto policy = makeReplacementPolicy("cost-lru");
    EXPECT_EQ(policy->name(), "cost-lru");
}

TEST(CostAwareLru, DefaultsChargeCountersMost)
{
    const CostTable t = CostTable::metadataDefaults(6);
    EXPECT_DOUBLE_EQ(t.cost[0], 7.0);
    EXPECT_GT(t.cost[0], t.cost[1]);
    EXPECT_GT(t.cost[1], t.cost[2]);
}

TEST(CostAwareLru, EqualCostsBehaveLikeLru)
{
    CostTable uniform;
    CacheGeometry geom;
    geom.sizeBytes = 4 * kBlockSize;
    geom.assoc = 4;
    SetAssociativeCache cost_cache(
        geom, std::make_unique<CostAwareLruPolicy>(uniform));
    SetAssociativeCache lru_cache(geom, makeReplacementPolicy("lru"));

    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        const Addr a = rng.nextBounded(16) * kBlockSize;
        EXPECT_EQ(cost_cache.access(a, false).hit,
                  lru_cache.access(a, false).hit)
            << "access " << i;
    }
}

TEST(CostAwareLru, PrefersEvictingCheapTypes)
{
    // One set, 4 ways: 2 counters (expensive) + 2 hashes (cheap), all
    // touched equally recently; the next fill must evict a hash.
    CacheGeometry geom;
    geom.sizeBytes = 4 * kBlockSize;
    geom.assoc = 4;
    SetAssociativeCache cache(
        geom, std::make_unique<CostAwareLruPolicy>(
                  CostTable::metadataDefaults(6)));

    cache.access(0 * kBlockSize, false, kCtr);
    cache.access(1 * kBlockSize, false, kHash);
    cache.access(2 * kBlockSize, false, kCtr);
    cache.access(3 * kBlockSize, false, kHash);

    const auto out = cache.access(4 * kBlockSize, false, kHash);
    ASSERT_TRUE(out.evictedValid);
    EXPECT_EQ(out.evictedType, kHash)
        << "a cheap hash must go before the expensive counters";
    // Both counters still resident.
    EXPECT_TRUE(cache.probe(0));
    EXPECT_TRUE(cache.probe(2 * kBlockSize));
}

TEST(CostAwareLru, StaleExpensiveLinesStillEvicted)
{
    // Cost protection is proportional, not absolute: a counter ~10x
    // staler than every hash must still be evicted.
    CacheGeometry geom;
    geom.sizeBytes = 4 * kBlockSize;
    geom.assoc = 4;
    SetAssociativeCache cache(
        geom, std::make_unique<CostAwareLruPolicy>(
                  CostTable::metadataDefaults(6)));

    cache.access(0, false, kCtr); // will become very stale
    for (int round = 0; round < 50; ++round) {
        for (Addr a = 1; a <= 3; ++a)
            cache.access(a * kBlockSize, false, kHash);
    }
    const auto out = cache.access(4 * kBlockSize, false, kHash);
    ASSERT_TRUE(out.evictedValid);
    EXPECT_EQ(out.evictedAddr, 0u);
}

TEST(CostAwareLru, RejectsNonPositiveCosts)
{
    CostTable bad;
    bad.cost[1] = 0.0;
    EXPECT_DEATH({ CostAwareLruPolicy policy(bad); }, "");
}

TEST(Drrip, FactoryNames)
{
    EXPECT_EQ(makeReplacementPolicy("drrip")->name(), "drrip");
    EXPECT_EQ(makeReplacementPolicy("drrip-typed")->name(),
              "drrip-typed");
}

TEST(Drrip, HitsPromoteAndRetain)
{
    CacheGeometry geom;
    geom.sizeBytes = 8 * kBlockSize;
    geom.assoc = 8;
    SetAssociativeCache cache(geom, std::make_unique<DrripPolicy>());

    // 4 hot blocks hit forever after the cold pass, despite churn.
    std::uint64_t hot_misses = 0;
    Rng rng(9);
    for (int i = 0; i < 20000; ++i) {
        for (Addr h = 0; h < 4; ++h)
            hot_misses += !cache.access(h * kBlockSize, false).hit;
        cache.access((100 + rng.nextBounded(100000)) * kBlockSize,
                     false);
    }
    EXPECT_LT(hot_misses, 400u);
}

TEST(Drrip, OutperformsSrripOnThrashingScan)
{
    // Cyclic scan over 2x the cache: SRRIP thrashes; DRRIP's BRRIP
    // mode retains a fraction of the loop.
    CacheGeometry geom;
    geom.sizeBytes = 64 * kBlockSize;
    geom.assoc = 8;
    SetAssociativeCache drrip(geom, std::make_unique<DrripPolicy>());
    SetAssociativeCache srrip(geom, makeReplacementPolicy("srrip"));

    for (int round = 0; round < 300; ++round) {
        for (Addr a = 0; a < 128; ++a) {
            drrip.access(a * kBlockSize, false);
            srrip.access(a * kBlockSize, false);
        }
    }
    EXPECT_LT(drrip.stats().misses, srrip.stats().misses);
}

TEST(Drrip, TypedDuelsPerClass)
{
    DrripConfig cfg;
    cfg.typedInsertion = true;
    cfg.leaderStride = 4;
    DrripPolicy policy(cfg);
    policy.init(64, 4);

    ReplContext ctr_ctx;
    ctr_ctx.typeClass = kCtr;
    ReplContext hash_ctx;
    hash_ctx.typeClass = kHash;

    // Hash misses hammer the SRRIP leaders only: hashes flip to BRRIP
    // while counters keep SRRIP.
    for (int i = 0; i < 2000; ++i)
        policy.insert(0, 0, hash_ctx); // set 0 is an SRRIP leader
    EXPECT_TRUE(policy.brripActive(kHash));
    EXPECT_FALSE(policy.brripActive(kCtr));
}

TEST(Drrip, UntypedSharesOneDuel)
{
    DrripConfig cfg;
    cfg.leaderStride = 4;
    DrripPolicy policy(cfg);
    policy.init(64, 4);
    ReplContext hash_ctx;
    hash_ctx.typeClass = kHash;
    for (int i = 0; i < 2000; ++i)
        policy.insert(0, 0, hash_ctx);
    EXPECT_TRUE(policy.brripActive(kHash));
    EXPECT_TRUE(policy.brripActive(kCtr)) << "single global duel";
}

TEST(Drrip, RejectsBadConfig)
{
    DrripConfig cfg;
    cfg.rrpvBits = 0;
    EXPECT_DEATH({ DrripPolicy policy(cfg); }, "");
    DrripConfig cfg2;
    cfg2.brripEpsilon = 1;
    EXPECT_DEATH({ DrripPolicy policy(cfg2); }, "");
}

} // namespace
} // namespace maps
