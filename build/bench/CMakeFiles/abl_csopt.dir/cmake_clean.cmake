file(REMOVE_RECURSE
  "CMakeFiles/abl_csopt.dir/abl_csopt.cpp.o"
  "CMakeFiles/abl_csopt.dir/abl_csopt.cpp.o.d"
  "abl_csopt"
  "abl_csopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_csopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
