# Empty compiler generated dependencies file for abl_csopt.
# This may be replaced when dependencies are built.
