file(REMOVE_RECURSE
  "CMakeFiles/fig5_request_types.dir/fig5_request_types.cpp.o"
  "CMakeFiles/fig5_request_types.dir/fig5_request_types.cpp.o.d"
  "fig5_request_types"
  "fig5_request_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_request_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
