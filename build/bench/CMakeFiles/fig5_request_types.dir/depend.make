# Empty dependencies file for fig5_request_types.
# This may be replaced when dependencies are built.
