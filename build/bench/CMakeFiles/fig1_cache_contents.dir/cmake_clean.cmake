file(REMOVE_RECURSE
  "CMakeFiles/fig1_cache_contents.dir/fig1_cache_contents.cpp.o"
  "CMakeFiles/fig1_cache_contents.dir/fig1_cache_contents.cpp.o.d"
  "fig1_cache_contents"
  "fig1_cache_contents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_cache_contents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
