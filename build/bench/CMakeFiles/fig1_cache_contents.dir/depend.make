# Empty dependencies file for fig1_cache_contents.
# This may be replaced when dependencies are built.
