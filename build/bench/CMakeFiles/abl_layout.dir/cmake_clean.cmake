file(REMOVE_RECURSE
  "CMakeFiles/abl_layout.dir/abl_layout.cpp.o"
  "CMakeFiles/abl_layout.dir/abl_layout.cpp.o.d"
  "abl_layout"
  "abl_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
