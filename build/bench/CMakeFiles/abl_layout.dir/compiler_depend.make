# Empty compiler generated dependencies file for abl_layout.
# This may be replaced when dependencies are built.
