file(REMOVE_RECURSE
  "CMakeFiles/tab2_data_protected.dir/tab2_data_protected.cpp.o"
  "CMakeFiles/tab2_data_protected.dir/tab2_data_protected.cpp.o.d"
  "tab2_data_protected"
  "tab2_data_protected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_data_protected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
