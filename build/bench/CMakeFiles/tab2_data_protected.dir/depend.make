# Empty dependencies file for tab2_data_protected.
# This may be replaced when dependencies are built.
