# Empty dependencies file for fig2_llc_vs_metadata.
# This may be replaced when dependencies are built.
