file(REMOVE_RECURSE
  "CMakeFiles/fig2_llc_vs_metadata.dir/fig2_llc_vs_metadata.cpp.o"
  "CMakeFiles/fig2_llc_vs_metadata.dir/fig2_llc_vs_metadata.cpp.o.d"
  "fig2_llc_vs_metadata"
  "fig2_llc_vs_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_llc_vs_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
