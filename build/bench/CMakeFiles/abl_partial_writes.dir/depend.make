# Empty dependencies file for abl_partial_writes.
# This may be replaced when dependencies are built.
