file(REMOVE_RECURSE
  "CMakeFiles/abl_partial_writes.dir/abl_partial_writes.cpp.o"
  "CMakeFiles/abl_partial_writes.dir/abl_partial_writes.cpp.o.d"
  "abl_partial_writes"
  "abl_partial_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_partial_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
