file(REMOVE_RECURSE
  "CMakeFiles/abl_speculation.dir/abl_speculation.cpp.o"
  "CMakeFiles/abl_speculation.dir/abl_speculation.cpp.o.d"
  "abl_speculation"
  "abl_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
