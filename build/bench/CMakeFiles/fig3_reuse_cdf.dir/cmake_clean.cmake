file(REMOVE_RECURSE
  "CMakeFiles/fig3_reuse_cdf.dir/fig3_reuse_cdf.cpp.o"
  "CMakeFiles/fig3_reuse_cdf.dir/fig3_reuse_cdf.cpp.o.d"
  "fig3_reuse_cdf"
  "fig3_reuse_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_reuse_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
