# Empty compiler generated dependencies file for abl_policies.
# This may be replaced when dependencies are built.
