# Empty dependencies file for fig4_bimodal.
# This may be replaced when dependencies are built.
