# Empty dependencies file for tab1_configuration.
# This may be replaced when dependencies are built.
