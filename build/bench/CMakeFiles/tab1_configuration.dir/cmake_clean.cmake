file(REMOVE_RECURSE
  "CMakeFiles/tab1_configuration.dir/tab1_configuration.cpp.o"
  "CMakeFiles/tab1_configuration.dir/tab1_configuration.cpp.o.d"
  "tab1_configuration"
  "tab1_configuration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
