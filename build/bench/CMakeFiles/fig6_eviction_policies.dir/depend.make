# Empty dependencies file for fig6_eviction_policies.
# This may be replaced when dependencies are built.
