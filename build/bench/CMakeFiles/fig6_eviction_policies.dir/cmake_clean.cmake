file(REMOVE_RECURSE
  "CMakeFiles/fig6_eviction_policies.dir/fig6_eviction_policies.cpp.o"
  "CMakeFiles/fig6_eviction_policies.dir/fig6_eviction_policies.cpp.o.d"
  "fig6_eviction_policies"
  "fig6_eviction_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_eviction_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
