file(REMOVE_RECURSE
  "libmaps_secmem.a"
)
