
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/secmem/controller.cpp" "src/secmem/CMakeFiles/maps_secmem.dir/controller.cpp.o" "gcc" "src/secmem/CMakeFiles/maps_secmem.dir/controller.cpp.o.d"
  "/root/repo/src/secmem/counter_store.cpp" "src/secmem/CMakeFiles/maps_secmem.dir/counter_store.cpp.o" "gcc" "src/secmem/CMakeFiles/maps_secmem.dir/counter_store.cpp.o.d"
  "/root/repo/src/secmem/integrity_tree.cpp" "src/secmem/CMakeFiles/maps_secmem.dir/integrity_tree.cpp.o" "gcc" "src/secmem/CMakeFiles/maps_secmem.dir/integrity_tree.cpp.o.d"
  "/root/repo/src/secmem/layout.cpp" "src/secmem/CMakeFiles/maps_secmem.dir/layout.cpp.o" "gcc" "src/secmem/CMakeFiles/maps_secmem.dir/layout.cpp.o.d"
  "/root/repo/src/secmem/metadata_cache.cpp" "src/secmem/CMakeFiles/maps_secmem.dir/metadata_cache.cpp.o" "gcc" "src/secmem/CMakeFiles/maps_secmem.dir/metadata_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/maps_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/maps_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/maps_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/maps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
