# Empty compiler generated dependencies file for maps_secmem.
# This may be replaced when dependencies are built.
