file(REMOVE_RECURSE
  "CMakeFiles/maps_secmem.dir/controller.cpp.o"
  "CMakeFiles/maps_secmem.dir/controller.cpp.o.d"
  "CMakeFiles/maps_secmem.dir/counter_store.cpp.o"
  "CMakeFiles/maps_secmem.dir/counter_store.cpp.o.d"
  "CMakeFiles/maps_secmem.dir/integrity_tree.cpp.o"
  "CMakeFiles/maps_secmem.dir/integrity_tree.cpp.o.d"
  "CMakeFiles/maps_secmem.dir/layout.cpp.o"
  "CMakeFiles/maps_secmem.dir/layout.cpp.o.d"
  "CMakeFiles/maps_secmem.dir/metadata_cache.cpp.o"
  "CMakeFiles/maps_secmem.dir/metadata_cache.cpp.o.d"
  "libmaps_secmem.a"
  "libmaps_secmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maps_secmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
