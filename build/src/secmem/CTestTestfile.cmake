# CMake generated Testfile for 
# Source directory: /root/repo/src/secmem
# Build directory: /root/repo/build/src/secmem
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
