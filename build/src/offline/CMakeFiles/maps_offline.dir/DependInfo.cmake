
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/offline/capture.cpp" "src/offline/CMakeFiles/maps_offline.dir/capture.cpp.o" "gcc" "src/offline/CMakeFiles/maps_offline.dir/capture.cpp.o.d"
  "/root/repo/src/offline/csopt.cpp" "src/offline/CMakeFiles/maps_offline.dir/csopt.cpp.o" "gcc" "src/offline/CMakeFiles/maps_offline.dir/csopt.cpp.o.d"
  "/root/repo/src/offline/itermin.cpp" "src/offline/CMakeFiles/maps_offline.dir/itermin.cpp.o" "gcc" "src/offline/CMakeFiles/maps_offline.dir/itermin.cpp.o.d"
  "/root/repo/src/offline/min_sim.cpp" "src/offline/CMakeFiles/maps_offline.dir/min_sim.cpp.o" "gcc" "src/offline/CMakeFiles/maps_offline.dir/min_sim.cpp.o.d"
  "/root/repo/src/offline/oracle.cpp" "src/offline/CMakeFiles/maps_offline.dir/oracle.cpp.o" "gcc" "src/offline/CMakeFiles/maps_offline.dir/oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/maps_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/secmem/CMakeFiles/maps_secmem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/maps_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/maps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/maps_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
