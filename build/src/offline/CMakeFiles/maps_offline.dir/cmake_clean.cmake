file(REMOVE_RECURSE
  "CMakeFiles/maps_offline.dir/capture.cpp.o"
  "CMakeFiles/maps_offline.dir/capture.cpp.o.d"
  "CMakeFiles/maps_offline.dir/csopt.cpp.o"
  "CMakeFiles/maps_offline.dir/csopt.cpp.o.d"
  "CMakeFiles/maps_offline.dir/itermin.cpp.o"
  "CMakeFiles/maps_offline.dir/itermin.cpp.o.d"
  "CMakeFiles/maps_offline.dir/min_sim.cpp.o"
  "CMakeFiles/maps_offline.dir/min_sim.cpp.o.d"
  "CMakeFiles/maps_offline.dir/oracle.cpp.o"
  "CMakeFiles/maps_offline.dir/oracle.cpp.o.d"
  "libmaps_offline.a"
  "libmaps_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maps_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
