file(REMOVE_RECURSE
  "libmaps_offline.a"
)
