# Empty compiler generated dependencies file for maps_offline.
# This may be replaced when dependencies are built.
