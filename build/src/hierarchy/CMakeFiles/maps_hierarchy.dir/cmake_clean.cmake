file(REMOVE_RECURSE
  "CMakeFiles/maps_hierarchy.dir/hierarchy.cpp.o"
  "CMakeFiles/maps_hierarchy.dir/hierarchy.cpp.o.d"
  "libmaps_hierarchy.a"
  "libmaps_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maps_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
