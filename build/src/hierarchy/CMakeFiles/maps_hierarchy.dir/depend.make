# Empty dependencies file for maps_hierarchy.
# This may be replaced when dependencies are built.
