file(REMOVE_RECURSE
  "libmaps_hierarchy.a"
)
