file(REMOVE_RECURSE
  "CMakeFiles/maps_workloads.dir/generators.cpp.o"
  "CMakeFiles/maps_workloads.dir/generators.cpp.o.d"
  "CMakeFiles/maps_workloads.dir/suite.cpp.o"
  "CMakeFiles/maps_workloads.dir/suite.cpp.o.d"
  "libmaps_workloads.a"
  "libmaps_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maps_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
