# Empty dependencies file for maps_workloads.
# This may be replaced when dependencies are built.
