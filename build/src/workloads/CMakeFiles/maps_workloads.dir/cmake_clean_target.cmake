file(REMOVE_RECURSE
  "libmaps_workloads.a"
)
