# Empty dependencies file for maps_trace.
# This may be replaced when dependencies are built.
