file(REMOVE_RECURSE
  "libmaps_trace.a"
)
