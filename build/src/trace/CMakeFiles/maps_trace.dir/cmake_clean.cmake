file(REMOVE_RECURSE
  "CMakeFiles/maps_trace.dir/record.cpp.o"
  "CMakeFiles/maps_trace.dir/record.cpp.o.d"
  "CMakeFiles/maps_trace.dir/trace_io.cpp.o"
  "CMakeFiles/maps_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/maps_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/maps_trace.dir/trace_stats.cpp.o.d"
  "libmaps_trace.a"
  "libmaps_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maps_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
