# Empty dependencies file for maps_cache.
# This may be replaced when dependencies are built.
