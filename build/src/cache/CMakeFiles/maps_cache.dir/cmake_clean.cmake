file(REMOVE_RECURSE
  "CMakeFiles/maps_cache.dir/cache.cpp.o"
  "CMakeFiles/maps_cache.dir/cache.cpp.o.d"
  "CMakeFiles/maps_cache.dir/geometry.cpp.o"
  "CMakeFiles/maps_cache.dir/geometry.cpp.o.d"
  "CMakeFiles/maps_cache.dir/partition.cpp.o"
  "CMakeFiles/maps_cache.dir/partition.cpp.o.d"
  "CMakeFiles/maps_cache.dir/policy_belady.cpp.o"
  "CMakeFiles/maps_cache.dir/policy_belady.cpp.o.d"
  "CMakeFiles/maps_cache.dir/policy_cost.cpp.o"
  "CMakeFiles/maps_cache.dir/policy_cost.cpp.o.d"
  "CMakeFiles/maps_cache.dir/policy_drrip.cpp.o"
  "CMakeFiles/maps_cache.dir/policy_drrip.cpp.o.d"
  "CMakeFiles/maps_cache.dir/policy_eva.cpp.o"
  "CMakeFiles/maps_cache.dir/policy_eva.cpp.o.d"
  "CMakeFiles/maps_cache.dir/policy_lru.cpp.o"
  "CMakeFiles/maps_cache.dir/policy_lru.cpp.o.d"
  "CMakeFiles/maps_cache.dir/policy_plru.cpp.o"
  "CMakeFiles/maps_cache.dir/policy_plru.cpp.o.d"
  "CMakeFiles/maps_cache.dir/policy_random.cpp.o"
  "CMakeFiles/maps_cache.dir/policy_random.cpp.o.d"
  "CMakeFiles/maps_cache.dir/policy_srrip.cpp.o"
  "CMakeFiles/maps_cache.dir/policy_srrip.cpp.o.d"
  "CMakeFiles/maps_cache.dir/replacement.cpp.o"
  "CMakeFiles/maps_cache.dir/replacement.cpp.o.d"
  "libmaps_cache.a"
  "libmaps_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maps_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
