
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cpp" "src/cache/CMakeFiles/maps_cache.dir/cache.cpp.o" "gcc" "src/cache/CMakeFiles/maps_cache.dir/cache.cpp.o.d"
  "/root/repo/src/cache/geometry.cpp" "src/cache/CMakeFiles/maps_cache.dir/geometry.cpp.o" "gcc" "src/cache/CMakeFiles/maps_cache.dir/geometry.cpp.o.d"
  "/root/repo/src/cache/partition.cpp" "src/cache/CMakeFiles/maps_cache.dir/partition.cpp.o" "gcc" "src/cache/CMakeFiles/maps_cache.dir/partition.cpp.o.d"
  "/root/repo/src/cache/policy_belady.cpp" "src/cache/CMakeFiles/maps_cache.dir/policy_belady.cpp.o" "gcc" "src/cache/CMakeFiles/maps_cache.dir/policy_belady.cpp.o.d"
  "/root/repo/src/cache/policy_cost.cpp" "src/cache/CMakeFiles/maps_cache.dir/policy_cost.cpp.o" "gcc" "src/cache/CMakeFiles/maps_cache.dir/policy_cost.cpp.o.d"
  "/root/repo/src/cache/policy_drrip.cpp" "src/cache/CMakeFiles/maps_cache.dir/policy_drrip.cpp.o" "gcc" "src/cache/CMakeFiles/maps_cache.dir/policy_drrip.cpp.o.d"
  "/root/repo/src/cache/policy_eva.cpp" "src/cache/CMakeFiles/maps_cache.dir/policy_eva.cpp.o" "gcc" "src/cache/CMakeFiles/maps_cache.dir/policy_eva.cpp.o.d"
  "/root/repo/src/cache/policy_lru.cpp" "src/cache/CMakeFiles/maps_cache.dir/policy_lru.cpp.o" "gcc" "src/cache/CMakeFiles/maps_cache.dir/policy_lru.cpp.o.d"
  "/root/repo/src/cache/policy_plru.cpp" "src/cache/CMakeFiles/maps_cache.dir/policy_plru.cpp.o" "gcc" "src/cache/CMakeFiles/maps_cache.dir/policy_plru.cpp.o.d"
  "/root/repo/src/cache/policy_random.cpp" "src/cache/CMakeFiles/maps_cache.dir/policy_random.cpp.o" "gcc" "src/cache/CMakeFiles/maps_cache.dir/policy_random.cpp.o.d"
  "/root/repo/src/cache/policy_srrip.cpp" "src/cache/CMakeFiles/maps_cache.dir/policy_srrip.cpp.o" "gcc" "src/cache/CMakeFiles/maps_cache.dir/policy_srrip.cpp.o.d"
  "/root/repo/src/cache/replacement.cpp" "src/cache/CMakeFiles/maps_cache.dir/replacement.cpp.o" "gcc" "src/cache/CMakeFiles/maps_cache.dir/replacement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/maps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/maps_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
