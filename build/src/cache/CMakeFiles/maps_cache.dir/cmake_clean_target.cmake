file(REMOVE_RECURSE
  "libmaps_cache.a"
)
