# Empty dependencies file for maps_analysis.
# This may be replaced when dependencies are built.
