file(REMOVE_RECURSE
  "libmaps_analysis.a"
)
