file(REMOVE_RECURSE
  "CMakeFiles/maps_analysis.dir/bimodal.cpp.o"
  "CMakeFiles/maps_analysis.dir/bimodal.cpp.o.d"
  "CMakeFiles/maps_analysis.dir/reuse.cpp.o"
  "CMakeFiles/maps_analysis.dir/reuse.cpp.o.d"
  "libmaps_analysis.a"
  "libmaps_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maps_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
