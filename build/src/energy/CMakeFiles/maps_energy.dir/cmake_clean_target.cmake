file(REMOVE_RECURSE
  "libmaps_energy.a"
)
