# Empty dependencies file for maps_energy.
# This may be replaced when dependencies are built.
