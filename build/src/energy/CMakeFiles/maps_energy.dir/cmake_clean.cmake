file(REMOVE_RECURSE
  "CMakeFiles/maps_energy.dir/energy.cpp.o"
  "CMakeFiles/maps_energy.dir/energy.cpp.o.d"
  "libmaps_energy.a"
  "libmaps_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maps_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
