# Empty dependencies file for maps_util.
# This may be replaced when dependencies are built.
