file(REMOVE_RECURSE
  "libmaps_util.a"
)
