file(REMOVE_RECURSE
  "CMakeFiles/maps_util.dir/cdf.cpp.o"
  "CMakeFiles/maps_util.dir/cdf.cpp.o.d"
  "CMakeFiles/maps_util.dir/histogram.cpp.o"
  "CMakeFiles/maps_util.dir/histogram.cpp.o.d"
  "CMakeFiles/maps_util.dir/rng.cpp.o"
  "CMakeFiles/maps_util.dir/rng.cpp.o.d"
  "CMakeFiles/maps_util.dir/stats.cpp.o"
  "CMakeFiles/maps_util.dir/stats.cpp.o.d"
  "CMakeFiles/maps_util.dir/table.cpp.o"
  "CMakeFiles/maps_util.dir/table.cpp.o.d"
  "libmaps_util.a"
  "libmaps_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maps_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
