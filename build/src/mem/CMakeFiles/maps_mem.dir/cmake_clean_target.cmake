file(REMOVE_RECURSE
  "libmaps_mem.a"
)
