# Empty compiler generated dependencies file for maps_mem.
# This may be replaced when dependencies are built.
