file(REMOVE_RECURSE
  "CMakeFiles/maps_mem.dir/dram.cpp.o"
  "CMakeFiles/maps_mem.dir/dram.cpp.o.d"
  "CMakeFiles/maps_mem.dir/fixed_latency.cpp.o"
  "CMakeFiles/maps_mem.dir/fixed_latency.cpp.o.d"
  "libmaps_mem.a"
  "libmaps_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maps_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
