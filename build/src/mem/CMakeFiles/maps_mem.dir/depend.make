# Empty dependencies file for maps_mem.
# This may be replaced when dependencies are built.
