file(REMOVE_RECURSE
  "CMakeFiles/maps_core.dir/simulator.cpp.o"
  "CMakeFiles/maps_core.dir/simulator.cpp.o.d"
  "libmaps_core.a"
  "libmaps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
