file(REMOVE_RECURSE
  "libmaps_core.a"
)
