# Empty compiler generated dependencies file for maps_core.
# This may be replaced when dependencies are built.
