file(REMOVE_RECURSE
  "CMakeFiles/maps_sim.dir/maps_sim.cpp.o"
  "CMakeFiles/maps_sim.dir/maps_sim.cpp.o.d"
  "maps_sim"
  "maps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
