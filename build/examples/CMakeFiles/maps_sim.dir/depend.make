# Empty dependencies file for maps_sim.
# This may be replaced when dependencies are built.
