
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/test_trace.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/maps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/offline/CMakeFiles/maps_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/maps_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/maps_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/maps_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/secmem/CMakeFiles/maps_secmem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/maps_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/maps_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/maps_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/maps_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/maps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
