file(REMOVE_RECURSE
  "CMakeFiles/test_eva.dir/test_eva.cpp.o"
  "CMakeFiles/test_eva.dir/test_eva.cpp.o.d"
  "test_eva"
  "test_eva.pdb"
  "test_eva[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
