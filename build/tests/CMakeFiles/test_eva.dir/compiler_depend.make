# Empty compiler generated dependencies file for test_eva.
# This may be replaced when dependencies are built.
