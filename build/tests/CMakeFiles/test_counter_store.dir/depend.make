# Empty dependencies file for test_counter_store.
# This may be replaced when dependencies are built.
