file(REMOVE_RECURSE
  "CMakeFiles/test_counter_store.dir/test_counter_store.cpp.o"
  "CMakeFiles/test_counter_store.dir/test_counter_store.cpp.o.d"
  "test_counter_store"
  "test_counter_store.pdb"
  "test_counter_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counter_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
