file(REMOVE_RECURSE
  "CMakeFiles/test_integrity_tree.dir/test_integrity_tree.cpp.o"
  "CMakeFiles/test_integrity_tree.dir/test_integrity_tree.cpp.o.d"
  "test_integrity_tree"
  "test_integrity_tree.pdb"
  "test_integrity_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integrity_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
