# Empty compiler generated dependencies file for test_integrity_tree.
# This may be replaced when dependencies are built.
