file(REMOVE_RECURSE
  "CMakeFiles/test_policies_ext.dir/test_policies_ext.cpp.o"
  "CMakeFiles/test_policies_ext.dir/test_policies_ext.cpp.o.d"
  "test_policies_ext"
  "test_policies_ext.pdb"
  "test_policies_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policies_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
