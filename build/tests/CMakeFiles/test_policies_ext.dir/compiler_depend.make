# Empty compiler generated dependencies file for test_policies_ext.
# This may be replaced when dependencies are built.
