file(REMOVE_RECURSE
  "CMakeFiles/test_csopt_extra.dir/test_csopt_extra.cpp.o"
  "CMakeFiles/test_csopt_extra.dir/test_csopt_extra.cpp.o.d"
  "test_csopt_extra"
  "test_csopt_extra.pdb"
  "test_csopt_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csopt_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
