# Empty compiler generated dependencies file for test_csopt_extra.
# This may be replaced when dependencies are built.
