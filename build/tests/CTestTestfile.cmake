# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_eva[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_counter_store[1]_include.cmake")
include("/root/repo/build/tests/test_integrity_tree[1]_include.cmake")
include("/root/repo/build/tests/test_metadata_cache[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_offline[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_policies_ext[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_dram_mapping[1]_include.cmake")
include("/root/repo/build/tests/test_csopt_extra[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_interleaved[1]_include.cmake")
