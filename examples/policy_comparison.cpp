/**
 * @file
 * Policy comparison: run one benchmark under every online replacement
 * policy (plus oracle-driven MIN) for a chosen metadata cache size, and
 * see §V's conclusions for yourself. Online policies run in parallel
 * through the shared ExperimentRunner; MIN follows in a second phase
 * because its oracle consumes the true-LRU profiling trace.
 *
 *   ./policy_comparison [benchmark] [md-cache-KB] [runner options]
 *   ./policy_comparison mcf 64 --jobs=4 --format=json
 */
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cache/policy_belady.hpp"
#include "core/runner.hpp"
#include "core/simulator.hpp"
#include "offline/oracle.hpp"
#include "util/table.hpp"

using namespace maps;
using namespace maps::runner;

namespace {

Row
runPolicy(const SimConfig &base, const std::string &label,
          std::unique_ptr<ReplacementPolicy> policy,
          std::vector<Addr> *capture)
{
    SecureMemorySim sim(base, std::move(policy));
    if (capture) {
        sim.setMetadataTap(
            [capture](const MetadataAccess &a) {
                capture->push_back(a.addr);
            },
            /*include_warmup=*/true);
    }
    const auto report = sim.run();
    const double inst = static_cast<double>(report.instructions);
    return Row{}
        .add("policy", label)
        .add("md miss MPKI",
             1000.0 *
                 static_cast<double>(report.mdCache.totalMisses()) /
                 inst,
             2)
        .add("md traffic MPKI",
             1000.0 *
                 static_cast<double>(
                     report.controller.metadataMemAccesses()) /
                 inst,
             2)
        .add("avg read latency (cyc)",
             report.controller.avgReadLatency(), 1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> positionals;
    const auto opts = Options::parse(argc, argv, &positionals);
    if (positionals.size() > 2) {
        std::fprintf(stderr,
                     "usage: %s [options] [benchmark] [md-cache-KB]\n",
                     argv[0]);
        return 2;
    }
    const std::string benchmark =
        !positionals.empty() ? positionals[0] : "mcf";
    std::uint64_t md_kb = 64;
    if (positionals.size() > 1) {
        char *end = nullptr;
        md_kb = std::strtoull(positionals[1].c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || md_kb == 0) {
            std::fprintf(stderr, "invalid md-cache-KB '%s'\n",
                         positionals[1].c_str());
            return 2;
        }
    }

    if (benchmark.rfind("mix:", 0) != 0 && !findBenchmark(benchmark)) {
        std::fprintf(stderr, "unknown benchmark '%s'\n",
                     benchmark.c_str());
        return 1;
    }

    SimConfig cfg;
    cfg.benchmark = benchmark;
    cfg.seed = opts.seed;
    cfg.warmupRefs = opts.refs(200'000);
    cfg.measureRefs = opts.refs(800'000);
    cfg.secure.layout.protectedBytes = 256_MiB;
    cfg.secure.cache.sizeBytes = md_kb * 1024;

    Experiment exp({"policy_comparison",
                    "Policy comparison on " + benchmark + " (" +
                        std::to_string(md_kb) + "KB metadata cache)",
                    "§V (Eviction Policies)"},
                   opts);

    // Phase 1: every online policy, in parallel. The true-LRU run also
    // captures the profiling trace MIN's future knowledge comes from,
    // exactly as the paper gathers it.
    auto profile_trace = std::make_shared<std::vector<Addr>>();
    std::vector<Cell> cells;
    for (const std::string policy :
         {"plru", "lru", "random", "srrip", "eva", "eva-typed"}) {
        cells.push_back({policy, 0, [=](const Cell &) {
            const bool is_lru = policy == "lru";
            CellOutput out;
            out.add(runPolicy(cfg, policy, makeReplacementPolicy(policy),
                              is_lru ? profile_trace.get() : nullptr));
            return out;
        }});
    }
    exp.runAndEmit(cells, "policies");

    // Phase 2: MIN, after the profiling trace exists.
    TraceOracle oracle(std::move(*profile_trace));
    std::vector<Cell> min_cell;
    min_cell.push_back({"min", 0, [&](const Cell &) {
        CellOutput out;
        out.add(runPolicy(cfg, "MIN (stale oracle)",
                          std::make_unique<BeladyPolicy>(oracle),
                          nullptr));
        return out;
    }});
    exp.runAndEmit(min_cell, "min");

    exp.note("oracle divergences: " +
             TextTable::fmt(oracle.divergences()));
    return exp.finish();
}
