/**
 * @file
 * Policy comparison: run one benchmark under every online replacement
 * policy (plus oracle-driven MIN) for a chosen metadata cache size, and
 * see §V's conclusions for yourself.
 *
 *   ./policy_comparison [benchmark] [md-cache-KB]
 *   ./policy_comparison mcf 64
 */
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cache/policy_belady.hpp"
#include "core/simulator.hpp"
#include "offline/oracle.hpp"
#include "util/table.hpp"

using namespace maps;

namespace {

struct Row
{
    std::string name;
    double mpki;
    double traffic_mpki;
    double avg_read_latency;
};

Row
run(const SimConfig &base, const std::string &label,
    std::unique_ptr<ReplacementPolicy> policy,
    std::vector<Addr> *capture)
{
    SecureMemorySim sim(base, std::move(policy));
    if (capture) {
        sim.setMetadataTap(
            [capture](const MetadataAccess &a) {
                capture->push_back(a.addr);
            },
            /*include_warmup=*/true);
    }
    const auto report = sim.run();
    const double inst = static_cast<double>(report.instructions);
    return {label,
            1000.0 * static_cast<double>(report.mdCache.totalMisses()) /
                inst,
            1000.0 *
                static_cast<double>(
                    report.controller.metadataMemAccesses()) /
                inst,
            report.controller.avgReadLatency()};
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "mcf";
    const std::uint64_t md_kb =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;

    if (benchmark.rfind("mix:", 0) != 0 &&
        !findBenchmark(benchmark)) {
        std::fprintf(stderr, "unknown benchmark '%s'\n",
                     benchmark.c_str());
        return 1;
    }

    SimConfig cfg;
    cfg.benchmark = benchmark;
    cfg.warmupRefs = 200'000;
    cfg.measureRefs = 800'000;
    cfg.secure.layout.protectedBytes = 256_MiB;
    cfg.secure.cache.sizeBytes = md_kb * 1024;

    std::printf("comparing policies on %s (%lluKB metadata cache)...\n\n",
                benchmark.c_str(),
                static_cast<unsigned long long>(md_kb));

    std::vector<Row> rows;
    std::vector<Addr> profile_trace;
    for (const char *policy :
         {"plru", "lru", "random", "srrip", "eva", "eva-typed"}) {
        // Capture the profiling trace during the true-LRU run, exactly
        // as the paper gathers MIN's future knowledge.
        const bool is_lru = std::string(policy) == "lru";
        rows.push_back(run(cfg, policy, makeReplacementPolicy(policy),
                           is_lru ? &profile_trace : nullptr));
        std::printf("  %-10s done\n", policy);
    }

    TraceOracle oracle(std::move(profile_trace));
    rows.push_back(run(cfg, "MIN (stale oracle)",
                       std::make_unique<BeladyPolicy>(oracle), nullptr));
    std::printf("  %-10s done (oracle divergences: %llu)\n", "MIN",
                static_cast<unsigned long long>(oracle.divergences()));

    std::printf("\n");
    TextTable table({"policy", "md miss MPKI", "md traffic MPKI",
                     "avg read latency (cyc)"});
    for (const auto &row : rows) {
        table.addRow({row.name, TextTable::fmt(row.mpki, 2),
                      TextTable::fmt(row.traffic_mpki, 2),
                      TextTable::fmt(row.avg_read_latency, 1)});
    }
    table.print(std::cout);
    return 0;
}
