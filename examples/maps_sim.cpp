/**
 * @file
 * maps_sim: the general-purpose command-line driver. Every knob of the
 * secure memory system is a flag; prints a full report.
 *
 *   ./maps_sim --benchmark=canneal --md-size=128K --policy=eva
 *   ./maps_sim --benchmark=mix:canneal+libquantum --layout=sgx --no-spec
 *   ./maps_sim --help
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/simulator.hpp"
#include "util/table.hpp"

using namespace maps;

namespace {

std::uint64_t
parseSize(const std::string &text)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    std::uint64_t mult = 1;
    if (end && *end) {
        switch (*end) {
          case 'K':
          case 'k':
            mult = 1024;
            break;
          case 'M':
          case 'm':
            mult = 1024 * 1024;
            break;
          case 'G':
          case 'g':
            mult = 1024ull * 1024 * 1024;
            break;
          default:
            std::fprintf(stderr, "bad size suffix in '%s'\n",
                         text.c_str());
            std::exit(1);
        }
    }
    return static_cast<std::uint64_t>(v * static_cast<double>(mult));
}

void
usage()
{
    std::puts(
        "maps_sim — secure memory simulator driver\n"
        "\n"
        "  --benchmark=NAME      registry name or mix:a+b+c "
        "(default libquantum)\n"
        "  --list                list registered benchmarks and exit\n"
        "  --refs=N              measured references (default 1000000)\n"
        "  --warmup=N            warmup references (default refs/4)\n"
        "  --seed=N              RNG seed (default 1)\n"
        "  --llc=SIZE            LLC capacity (default 2M)\n"
        "  --md-size=SIZE        metadata cache capacity (default 64K)\n"
        "  --md-assoc=N          metadata cache ways (default 8)\n"
        "  --policy=NAME         lru|plru|random|srrip|drrip|drrip-typed"
        "|eva|eva-typed|cost-lru (default plru)\n"
        "  --contents=MODE       all|counters|counters+hashes "
        "(default all)\n"
        "  --partition=MODE      none|static:K|dueling (default none)\n"
        "  --layout=MODE         pi|sgx (default pi)\n"
        "  --protected=SIZE      protected memory (default 256M)\n"
        "  --partial-writes      enable partial hash writes\n"
        "  --prefetch            enable next-block metadata prefetch\n"
        "  --no-spec             disable speculation\n"
        "  --no-md-cache         disable the metadata cache\n"
        "  --no-lazy-tree        write tree paths immediately\n"
        "  --fixed-latency=N     replace DRAM with N-cycle memory\n");
}

} // namespace

int
main(int argc, char **argv)
{
    SimConfig cfg;
    cfg.benchmark = "libquantum";
    cfg.measureRefs = 1'000'000;
    cfg.warmupRefs = 0; // derived below if unset
    cfg.secure.layout.protectedBytes = 256_MiB;
    bool warmup_set = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&arg]() { return arg.substr(arg.find('=') + 1); };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            for (const auto &spec : benchmarkSuite()) {
                std::printf("%-14s %-8s %-5s %s\n", spec.name.c_str(),
                            suiteName(spec.suite),
                            spec.memoryIntensive ? "hi" : "lo",
                            spec.character.c_str());
            }
            return 0;
        } else if (arg.rfind("--benchmark=", 0) == 0) {
            cfg.benchmark = value();
        } else if (arg.rfind("--refs=", 0) == 0) {
            cfg.measureRefs = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg.rfind("--warmup=", 0) == 0) {
            cfg.warmupRefs = std::strtoull(value().c_str(), nullptr, 10);
            warmup_set = true;
        } else if (arg.rfind("--seed=", 0) == 0) {
            cfg.seed = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg.rfind("--llc=", 0) == 0) {
            cfg.hierarchy.llcBytes = parseSize(value());
        } else if (arg.rfind("--md-size=", 0) == 0) {
            cfg.secure.cache.sizeBytes = parseSize(value());
        } else if (arg.rfind("--md-assoc=", 0) == 0) {
            cfg.secure.cache.assoc = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg.rfind("--policy=", 0) == 0) {
            cfg.secure.cache.policy = value();
        } else if (arg.rfind("--contents=", 0) == 0) {
            const std::string mode = value();
            if (mode == "counters") {
                cfg.secure.cache.cacheHashes = false;
                cfg.secure.cache.cacheTree = false;
            } else if (mode == "counters+hashes") {
                cfg.secure.cache.cacheTree = false;
            } else if (mode != "all") {
                std::fprintf(stderr, "bad --contents mode\n");
                return 1;
            }
        } else if (arg.rfind("--partition=", 0) == 0) {
            const std::string mode = value();
            if (mode == "none") {
                cfg.secure.cache.partition = PartitionScheme::None;
            } else if (mode.rfind("static:", 0) == 0) {
                cfg.secure.cache.partition = PartitionScheme::Static;
                cfg.secure.cache.staticCounterWays =
                    static_cast<std::uint32_t>(std::strtoul(
                        mode.c_str() + 7, nullptr, 10));
            } else if (mode == "dueling") {
                cfg.secure.cache.partition = PartitionScheme::Dueling;
            } else {
                std::fprintf(stderr, "bad --partition mode\n");
                return 1;
            }
        } else if (arg.rfind("--layout=", 0) == 0) {
            cfg.secure.layout.counterMode =
                value() == "sgx" ? CounterMode::MonolithicSgx
                                 : CounterMode::SplitPi;
        } else if (arg.rfind("--protected=", 0) == 0) {
            cfg.secure.layout.protectedBytes = parseSize(value());
        } else if (arg == "--partial-writes") {
            cfg.secure.cache.partialWrites = true;
        } else if (arg == "--prefetch") {
            cfg.secure.prefetchNextMetadata = true;
        } else if (arg == "--no-spec") {
            cfg.secure.speculation = false;
        } else if (arg == "--no-md-cache") {
            cfg.secure.cacheEnabled = false;
        } else if (arg == "--no-lazy-tree") {
            cfg.secure.lazyTreeUpdate = false;
        } else if (arg.rfind("--fixed-latency=", 0) == 0) {
            cfg.useDram = false;
            cfg.fixedLatencyCycles =
                std::strtoull(value().c_str(), nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown flag: %s (try --help)\n",
                         arg.c_str());
            return 1;
        }
    }
    if (!warmup_set)
        cfg.warmupRefs = cfg.measureRefs / 4;

    std::printf("maps_sim: %s | md %s %s | policy %s | layout %s%s%s\n\n",
                cfg.benchmark.c_str(),
                cfg.secure.cacheEnabled
                    ? TextTable::fmtSize(cfg.secure.cache.sizeBytes)
                          .c_str()
                    : "disabled",
                cfg.secure.cache.partialWrites ? "+pw" : "",
                cfg.secure.cache.policy.c_str(),
                counterModeName(cfg.secure.layout.counterMode),
                cfg.secure.speculation ? "" : " no-spec",
                cfg.secure.prefetchNextMetadata ? " prefetch" : "");

    const RunReport report = runBenchmark(cfg);

    TextTable table({"metric", "value"});
    table.addRow({"instructions", TextTable::fmt(report.instructions)});
    table.addRow({"LLC MPKI", TextTable::fmt(report.llcMpki, 2)});
    table.addRow({"metadata MPKI",
                  TextTable::fmt(report.metadataMpki, 2)});
    table.addRow({"memory accesses / request",
                  TextTable::fmt(report.memAccessesPerRequest, 2)});
    table.addRow({"avg read latency (cyc)",
                  TextTable::fmt(report.controller.avgReadLatency(), 1)});
    table.addRow({"DRAM row hit rate",
                  TextTable::fmt(
                      report.memory.accesses()
                          ? static_cast<double>(report.memory.rowHits) /
                                static_cast<double>(
                                    report.memory.accesses())
                          : 0.0,
                      3)});
    table.addRow({"cycles", TextTable::fmt(report.cycles)});
    table.addRow({"energy (uJ)",
                  TextTable::fmt(report.energy.totalPj() * 1e-6, 2)});
    table.addRow({"ED^2", TextTable::fmt(report.ed2, 9)});
    table.addRow({"page overflows",
                  TextTable::fmt(report.controller.pageOverflows)});
    table.addRow({"prefetches issued",
                  TextTable::fmt(report.controller.prefetchesIssued)});
    table.print(std::cout);
    return 0;
}
