/**
 * @file
 * Quickstart: simulate one benchmark through the full secure-memory
 * stack (L1/L2/LLC -> metadata cache -> counters/tree/hashes -> DRAM)
 * and print what secure memory costs.
 *
 *   ./quickstart [benchmark] [metadata-cache-size-KB]
 *   ./quickstart canneal 128
 */
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/simulator.hpp"
#include "util/table.hpp"

using namespace maps;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "libquantum";
    const std::uint64_t md_kb =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;

    if (benchmark.rfind("mix:", 0) != 0 &&
        !findBenchmark(benchmark)) {
        std::fprintf(stderr, "unknown benchmark '%s'; available:\n",
                     benchmark.c_str());
        for (const auto &name : benchmarkNames())
            std::fprintf(stderr, "  %s\n", name.c_str());
        return 1;
    }

    // 1. Configure: Table I hierarchy, 256MB protected memory, a
    //    unified metadata cache of the requested size.
    SimConfig cfg;
    cfg.benchmark = benchmark;
    cfg.warmupRefs = 250'000;
    cfg.measureRefs = 1'000'000;
    cfg.secure.layout.protectedBytes = 256_MiB;
    cfg.secure.cache.sizeBytes = md_kb * 1024;

    // 2. Run the secure system and an insecure baseline.
    std::printf("simulating %s with a %lluKB metadata cache...\n",
                benchmark.c_str(),
                static_cast<unsigned long long>(md_kb));
    const RunReport secure = runBenchmark(cfg);

    SimConfig base_cfg = cfg;
    base_cfg.secureEnabled = false;
    const RunReport baseline = runBenchmark(base_cfg);

    // 3. Report.
    TextTable table({"metric", "insecure", "secure", "overhead"});
    auto ratio = [](double a, double b) {
        return b > 0 ? TextTable::fmt(a / b, 2) + "x" : "-";
    };
    table.addRow({"instructions", TextTable::fmt(baseline.instructions),
                  TextTable::fmt(secure.instructions), "-"});
    table.addRow({"LLC MPKI", TextTable::fmt(baseline.llcMpki, 1),
                  TextTable::fmt(secure.llcMpki, 1), "-"});
    table.addRow({"DRAM accesses",
                  TextTable::fmt(baseline.memory.accesses()),
                  TextTable::fmt(secure.memory.accesses()),
                  ratio(static_cast<double>(secure.memory.accesses()),
                        static_cast<double>(baseline.memory.accesses()))});
    table.addRow({"cycles", TextTable::fmt(baseline.cycles),
                  TextTable::fmt(secure.cycles),
                  ratio(static_cast<double>(secure.cycles),
                        static_cast<double>(baseline.cycles))});
    table.addRow({"energy (uJ)",
                  TextTable::fmt(baseline.energy.totalPj() * 1e-6, 1),
                  TextTable::fmt(secure.energy.totalPj() * 1e-6, 1),
                  ratio(secure.energy.totalPj(),
                        baseline.energy.totalPj())});
    table.addRow({"ED^2", TextTable::fmt(baseline.ed2, 9),
                  TextTable::fmt(secure.ed2, 9),
                  ratio(secure.ed2, baseline.ed2)});
    table.print(std::cout);

    std::printf("\nsecure-memory detail:\n");
    TextTable detail({"metric", "value"});
    detail.addRow({"metadata MPKI",
                   TextTable::fmt(secure.metadataMpki, 2)});
    detail.addRow({"memory accesses per request",
                   TextTable::fmt(secure.memAccessesPerRequest, 2)});
    const auto &ctl = secure.controller;
    for (unsigned c = 0; c < kNumMemCategories; ++c) {
        detail.addRow(
            {std::string("DRAM reads/writes: ") +
                 memCategoryName(static_cast<MemCategory>(c)),
             TextTable::fmt(ctl.memReads[c]) + " / " +
                 TextTable::fmt(ctl.memWrites[c])});
    }
    detail.addRow({"counter page overflows",
                   TextTable::fmt(ctl.pageOverflows)});
    detail.addRow({"tree levels fetched",
                   TextTable::fmt(ctl.treeLevelsFetched)});
    detail.print(std::cout);
    return 0;
}
