/**
 * @file
 * Reuse explorer: measure metadata reuse-distance distributions for any
 * benchmark under any LLC size — the tool behind the paper's §IV
 * characterization, exposed as a CLI.
 *
 *   ./reuse_explorer [benchmark] [llc-KB] [refs]
 *   ./reuse_explorer canneal 2048 1500000
 */
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/bimodal.hpp"
#include "analysis/reuse.hpp"
#include "core/simulator.hpp"
#include "util/table.hpp"

using namespace maps;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "canneal";
    const std::uint64_t llc_kb =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2048;
    const std::uint64_t refs =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1'000'000;

    if (benchmark.rfind("mix:", 0) != 0 &&
        !findBenchmark(benchmark)) {
        std::fprintf(stderr, "unknown benchmark '%s'\n",
                     benchmark.c_str());
        return 1;
    }

    SimConfig cfg;
    cfg.benchmark = benchmark;
    cfg.warmupRefs = refs / 4;
    cfg.measureRefs = refs;
    cfg.hierarchy.llcBytes = llc_kb * 1024;
    cfg.secure.layout.protectedBytes = 256_MiB;
    cfg.secure.cacheEnabled = false; // observe the raw metadata stream

    SecureMemorySim sim(cfg);
    ReuseDistanceAnalyzer analyzer;
    sim.setMetadataTap(
        [&analyzer](const MetadataAccess &a) { analyzer.observe(a); });
    std::printf("running %s with a %lluKB LLC (%llu refs)...\n\n",
                benchmark.c_str(),
                static_cast<unsigned long long>(llc_kb),
                static_cast<unsigned long long>(refs));
    const auto report = sim.run();

    std::printf("LLC MPKI %.1f | metadata accesses %llu | unique "
                "metadata blocks %llu\n\n",
                report.llcMpki,
                static_cast<unsigned long long>(
                    analyzer.totalAccesses()),
                static_cast<unsigned long long>(
                    analyzer.uniqueBlocks()));

    const std::vector<std::uint64_t> points{256,     1_KiB,  4_KiB,
                                            16_KiB,  64_KiB, 288_KiB,
                                            1_MiB,   4_MiB,  16_MiB};
    std::vector<std::string> header{"type: P(dist <= x)"};
    for (const auto p : points)
        header.push_back(TextTable::fmtSize(p));
    header.push_back("cold");
    TextTable table(header);
    for (const auto type : {MetadataType::Counter, MetadataType::TreeNode,
                            MetadataType::Hash}) {
        const auto &hist = analyzer.typeHistogram(type);
        std::vector<std::string> row{metadataTypeName(type)};
        for (const auto p : points) {
            row.push_back(TextTable::fmt(
                100.0 * hist.cumulativeAtOrBelow(p / kBlockSize), 1));
        }
        row.push_back(TextTable::fmt(analyzer.coldMisses(type)));
        table.addRow(row);
    }
    table.print(std::cout);

    std::printf("\nbimodal classes (workload-driven counters+hashes):\n");
    ExactHistogram combined;
    combined.merge(analyzer.typeHistogram(MetadataType::Counter));
    combined.merge(analyzer.typeHistogram(MetadataType::Hash));
    const auto fractions = classifyReuse(combined);
    TextTable classes({"class", "fraction"});
    for (unsigned c = 0; c < kNumReuseClasses; ++c)
        classes.addRow({reuseClassName(c),
                        TextTable::fmt(fractions[c], 3)});
    classes.addRow({"bimodality score",
                    TextTable::fmt(bimodalityScore(combined), 3)});
    classes.print(std::cout);
    return 0;
}
