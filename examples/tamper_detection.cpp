/**
 * @file
 * Tamper detection demo: exercises the *functional* side of the secure
 * memory model — counter-mode encryption counters and the Bonsai Merkle
 * Tree — against three classic physical attacks:
 *
 *   1. replaying a stale counter value (rollback attack),
 *   2. corrupting a stored tree node,
 *   3. consistently rewriting a whole tree path (defeated only by the
 *      on-chip root).
 */
#include <cstdio>

#include "secmem/counter_store.hpp"
#include "secmem/integrity_tree.hpp"
#include "secmem/layout.hpp"

using namespace maps;

namespace {

/** Digest a counter block's content for the tree. */
std::uint64_t
digestOf(const CounterStore &counters, Addr data_addr)
{
    // Fold every (major, minor) pair the block holds; one page per
    // counter block under the PI layout.
    const Addr page = data_addr & ~(kPageSize - 1);
    std::uint64_t digest = IntegrityTree::kDefaultCounterDigest;
    for (Addr off = 0; off < kPageSize; off += kBlockSize) {
        const auto v = counters.read(page + off);
        digest = IntegrityTree::mix(digest,
                                    IntegrityTree::mix(v.major, v.minor));
    }
    return digest;
}

void
check(bool ok, const char *what)
{
    std::printf("  %-58s %s\n", what, ok ? "[OK]" : "[FAILED]");
}

} // namespace

int
main()
{
    LayoutConfig lcfg;
    lcfg.protectedBytes = 64_MiB;
    MetadataLayout layout(lcfg);
    CounterStore counters(layout);
    IntegrityTree tree(layout);

    std::printf("secure memory: %s, %llu counter blocks, %u tree "
                "levels + on-chip root\n\n",
                counterModeName(lcfg.counterMode),
                static_cast<unsigned long long>(
                    layout.numCounterBlocks()),
                layout.numTreeLevels());

    // --- Normal operation: write data, update tree, verify. ---------
    std::printf("normal operation:\n");
    const Addr victim_addr = 5 * kPageSize + 3 * kBlockSize;
    const Addr ctr_block = layout.counterBlockAddr(victim_addr);

    counters.onBlockWrite(victim_addr);
    std::uint64_t digest = digestOf(counters, victim_addr);
    tree.updateCounter(ctr_block, digest);
    check(tree.verifyCounter(ctr_block, digest),
          "freshly written counter verifies");

    // More writes; the tree follows.
    for (int i = 0; i < 100; ++i)
        counters.onBlockWrite(victim_addr);
    digest = digestOf(counters, victim_addr);
    tree.updateCounter(ctr_block, digest);
    check(tree.verifyCounter(ctr_block, digest),
          "counter verifies after 100 more writes");

    // --- Attack 1: counter replay (rollback). -----------------------
    std::printf("\nattack 1: replay a stale counter value\n");
    CounterStore stale(layout);
    stale.onBlockWrite(victim_addr); // the old, first-write state
    const std::uint64_t stale_digest =
        digestOf(stale, victim_addr);
    check(!tree.verifyCounter(ctr_block, stale_digest),
          "rolled-back counter value is rejected");

    // --- Attack 2: corrupt a stored tree node. -----------------------
    std::printf("\nattack 2: flip bits in a stored tree node\n");
    const Addr leaf = layout.treeLeafForCounter(ctr_block);
    const std::uint64_t good_leaf = tree.nodeDigest(leaf);
    tree.tamperNode(leaf, good_leaf ^ 0xDEAD);
    check(!tree.verifyCounter(ctr_block, digest),
          "corrupted leaf detected");
    tree.tamperNode(leaf, good_leaf); // restore
    check(tree.verifyCounter(ctr_block, digest),
          "restored leaf verifies again");

    // --- Attack 3: consistent path rewrite. --------------------------
    std::printf("\nattack 3: rewrite the whole path consistently\n");
    IntegrityTree forged(layout);
    forged.updateCounter(ctr_block, stale_digest);
    for (const Addr node : layout.treePathForCounter(ctr_block))
        tree.tamperNode(node, forged.nodeDigest(node));
    check(!tree.verifyCounter(ctr_block, stale_digest),
          "internally consistent forgery caught by the on-chip root");

    // --- Bonus: counter overflow / page re-encryption. ---------------
    std::printf("\nsplit-counter overflow:\n");
    const Addr other = 9 * kPageSize;
    CounterWriteResult r;
    int writes = 0;
    do {
        r = counters.onBlockWrite(other);
        ++writes;
    } while (!r.pageOverflow && writes < 1000);
    std::printf("  per-block counter overflowed after %d writes; %u "
                "blocks re-encrypted\n",
                writes, r.blocksToReencrypt);
    check(writes == 128, "7-bit minor counter wraps at the 128th write");

    std::printf("\nall demonstrations complete.\n");
    return 0;
}
