/**
 * @file
 * Trace tooling: generate a CPU reference trace and the corresponding
 * metadata access trace from any benchmark, save both to MAPS trace
 * files, reload them, and print statistics — the round trip a user
 * needs to analyze traces offline or feed them to external tools.
 *
 *   ./trace_tools [benchmark] [refs] [output-prefix]
 */
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"
#include "util/table.hpp"

using namespace maps;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "fft";
    const std::uint64_t refs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200'000;
    const std::string prefix = argc > 3 ? argv[3] : "/tmp/maps_trace";

    if (benchmark.rfind("mix:", 0) != 0 &&
        !findBenchmark(benchmark)) {
        std::fprintf(stderr, "unknown benchmark '%s'\n",
                     benchmark.c_str());
        return 1;
    }

    // 1. Generate the CPU-level reference trace.
    auto gen = makeBenchmark(benchmark, 1);
    std::vector<MemRef> cpu_trace;
    cpu_trace.reserve(refs);
    for (std::uint64_t i = 0; i < refs; ++i)
        cpu_trace.push_back(gen->next());

    const std::string cpu_path = prefix + ".refs";
    if (!saveTrace(cpu_path, cpu_trace)) {
        std::fprintf(stderr, "cannot write %s\n", cpu_path.c_str());
        return 1;
    }

    // 2. Run it through the secure stack, capturing metadata accesses.
    SimConfig cfg;
    cfg.benchmark = benchmark;
    cfg.warmupRefs = 0;
    cfg.measureRefs = refs;
    cfg.secure.layout.protectedBytes = 256_MiB;
    SecureMemorySim sim(cfg);
    std::vector<MetadataAccess> md_trace;
    sim.setMetadataTap([&md_trace](const MetadataAccess &a) {
        md_trace.push_back(a);
    });
    sim.run();

    const std::string md_path = prefix + ".md";
    if (!saveTrace(md_path, md_trace)) {
        std::fprintf(stderr, "cannot write %s\n", md_path.c_str());
        return 1;
    }

    // 3. Reload and report.
    std::vector<MemRef> cpu_loaded;
    std::vector<MetadataAccess> md_loaded;
    if (!loadTrace(cpu_path, cpu_loaded) ||
        !loadTrace(md_path, md_loaded)) {
        std::fprintf(stderr, "reload failed\n");
        return 1;
    }
    std::printf("wrote and reloaded:\n  %s (%zu refs)\n  %s (%zu "
                "metadata accesses)\n\n",
                cpu_path.c_str(), cpu_loaded.size(), md_path.c_str(),
                md_loaded.size());

    const auto cpu_stats = computeStats(cpu_loaded);
    TextTable cpu_table({"CPU trace metric", "value"});
    cpu_table.addRow({"references", TextTable::fmt(cpu_stats.refs)});
    cpu_table.addRow({"instructions",
                      TextTable::fmt(cpu_stats.instructions)});
    cpu_table.addRow({"write fraction",
                      TextTable::fmt(cpu_stats.writeFraction(), 3)});
    cpu_table.addRow({"footprint",
                      TextTable::fmtSize(cpu_stats.footprintBytes())});
    cpu_table.addRow({"unique pages",
                      TextTable::fmt(cpu_stats.uniquePages)});
    cpu_table.print(std::cout);

    const auto md_stats = computeStats(md_loaded);
    std::printf("\n");
    TextTable md_table({"metadata type", "accesses", "writes",
                        "unique blocks"});
    for (unsigned t = 0; t < kNumMetadataTypes; ++t) {
        md_table.addRow(
            {metadataTypeName(static_cast<MetadataType>(t)),
             TextTable::fmt(md_stats.byType[t]),
             TextTable::fmt(md_stats.writesByType[t]),
             TextTable::fmt(md_stats.uniqueBlocksByType[t])});
    }
    md_table.print(std::cout);

    std::remove(cpu_path.c_str());
    std::remove(md_path.c_str());
    std::printf("\n(temporary files removed)\n");
    return 0;
}
