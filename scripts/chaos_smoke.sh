#!/usr/bin/env bash
# CI chaos smoke for the mapsd experiment service (docs/SERVICE.md).
#
# Drives the crash-recovery story end to end through the real binaries:
# start mapsd, submit the fig3 sweep through mapsctl, SIGKILL the daemon
# once the journal shows cells in flight, start a fresh daemon on the
# same state dir, and assert that
#   - the client (riding its retry loop) still exits 0,
#   - the maps-svc-v1 response passes a jq schema check,
#   - the journal recorded the restart (daemon_restarts >= 1),
#   - the delivered result is byte-identical to running the driver
#     directly — no cell lost, none duplicated.
#
# usage: scripts/chaos_smoke.sh [build-dir]
set -euo pipefail

BUILD="${1:-build}"
MAPSD="$BUILD/tools/mapsd"
MAPSCTL="$BUILD/tools/mapsctl"
DRIVERS="$BUILD/bench"

command -v jq >/dev/null || { echo "chaos_smoke: jq not found" >&2; exit 1; }
for bin in "$MAPSD" "$MAPSCTL" "$DRIVERS/fig3_reuse_cdf"; do
    [ -x "$bin" ] || { echo "chaos_smoke: $bin not built" >&2; exit 1; }
done

WORK="$(mktemp -d /tmp/maps-chaos-smoke-XXXXXX)"
SOCKET="$WORK/mapsd.sock"
STATE="$WORK/state"
DAEMON_PID=""
CTL_PID=""

cleanup() {
    [ -n "$CTL_PID" ] && kill -9 "$CTL_PID" 2>/dev/null || true
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() {
    "$MAPSD" --socket="$SOCKET" --state-dir="$STATE" \
        --drivers-dir="$DRIVERS" --workers=1 \
        >>"$WORK/mapsd.log" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        if "$MAPSCTL" --socket="$SOCKET" ping >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "chaos_smoke: daemon never answered ping" >&2
    cat "$WORK/mapsd.log" >&2
    exit 1
}

echo "== reference run (direct, undisturbed)"
"$DRIVERS/fig3_reuse_cdf" --quick >"$WORK/reference.out" 2>/dev/null

echo "== daemon A up; schema-checking ping"
start_daemon
"$MAPSCTL" --socket="$SOCKET" ping | tee "$WORK/ping.json" |
    jq -e '.v == "maps-svc-v1" and .ok and .op == "pong"
           and has("pid") and has("workers")' >/dev/null

echo "== submitting fig3 sweep through the retry client"
"$MAPSCTL" --socket="$SOCKET" submit --driver=fig3_reuse_cdf \
    --retries=30 --retry-base-ms=200 --json -- --quick \
    >"$WORK/response.json" 2>"$WORK/mapsctl.log" &
CTL_PID=$!

echo "== waiting for the journal to show cells in flight"
killed=0
for _ in $(seq 1 600); do
    if ls "$STATE"/jobs/*.json >/dev/null 2>&1 &&
        jq -e -s '.[0].state == "running"
                  and .[0].resilience.cells_run >= 1' \
            "$STATE"/jobs/*.json >/dev/null 2>&1; then
        echo "== SIGKILLing daemon A mid-sweep"
        kill -9 "$DAEMON_PID"
        wait "$DAEMON_PID" 2>/dev/null || true
        killed=1
        break
    fi
    sleep 0.05
done
if [ "$killed" -ne 1 ]; then
    echo "chaos_smoke: never caught the sweep mid-run" >&2
    exit 1
fi

echo "== daemon B recovering the same state dir"
start_daemon

wait "$CTL_PID"
rc=$?
CTL_PID=""
if [ "$rc" -ne 0 ]; then
    echo "chaos_smoke: mapsctl exited $rc" >&2
    cat "$WORK/mapsctl.log" >&2
    exit 1
fi

echo "== schema-checking the maps-svc-v1 response"
jq -e '.v == "maps-svc-v1" and .ok and .state == "done"
       and .class == "none"
       and (.resilience | has("workers_killed") and has("hung_cells")
            and has("requeued_cells") and has("downgraded_cells")
            and has("rounds"))
       and .resilience.daemon_restarts >= 1
       and (.result | type == "string" and length > 0)' \
    "$WORK/response.json" >/dev/null

echo "== comparing result bytes against the direct run"
jq -j '.result' "$WORK/response.json" >"$WORK/service.out"
cmp "$WORK/reference.out" "$WORK/service.out"

echo "== draining daemon B"
kill -TERM "$DAEMON_PID"
for _ in $(seq 1 300); do
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        DAEMON_PID=""
        break
    fi
    sleep 0.1
done
[ -z "$DAEMON_PID" ] || { echo "chaos_smoke: daemon B did not drain" >&2; exit 1; }

echo "chaos_smoke: PASS (daemon killed mid-sweep, result byte-identical)"
