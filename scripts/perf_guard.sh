#!/usr/bin/env bash
# Registry-overhead guard for the maps::metrics refactor.
#
# Runs the hot-path microbenchmark pairs (plain vs *Registered — the
# same loop with every counter attached to a metrics::Registry and the
# measure phase open), writes the google-benchmark JSON to
# bench/BENCH_micro.json, and fails if any registered variant's median
# cpu time exceeds its plain counterpart by more than 3%.
#
# The comparison is paired WITHIN one run on one machine, so the guard
# is independent of absolute nanoseconds and safe to run in CI.
#
# usage: scripts/perf_guard.sh [path/to/perf_microbench] [out.json]
#   PERF_GUARD_LIMIT  overhead ratio limit (default 1.03)
set -euo pipefail

BIN="${1:-build/bench/perf_microbench}"
OUT="${2:-bench/BENCH_micro.json}"
LIMIT="${PERF_GUARD_LIMIT:-1.03}"

command -v jq >/dev/null || { echo "perf_guard: jq not found" >&2; exit 1; }
[ -x "$BIN" ] || { echo "perf_guard: $BIN not built" >&2; exit 1; }

"$BIN" \
    --benchmark_filter='BM_(HierarchyAccess|ControllerRead)' \
    --benchmark_repetitions=7 \
    --benchmark_min_time=0.05 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json \
    --benchmark_out="$OUT" >/dev/null

median_of() {
    jq -r --arg n "${1}_median" \
        '.benchmarks[] | select(.name == $n) | .cpu_time' "$OUT"
}

fail=0
for pair in \
    "BM_HierarchyAccess BM_HierarchyAccessRegistered" \
    "BM_ControllerRead BM_ControllerReadRegistered"; do
    set -- $pair
    plain=$(median_of "$1")
    registered=$(median_of "$2")
    if [ -z "$plain" ] || [ -z "$registered" ]; then
        echo "perf_guard: missing results for pair $1 / $2 in $OUT" >&2
        fail=1
        continue
    fi
    ratio=$(jq -n --argjson a "$registered" --argjson b "$plain" \
        '$a / $b')
    ok=$(jq -n --argjson r "$ratio" --argjson l "$LIMIT" '$r <= $l')
    printf '%-20s plain=%.1fns registered=%.1fns ratio=%.4f (limit %s)\n' \
        "$1" "$plain" "$registered" "$ratio" "$LIMIT"
    if [ "$ok" != "true" ]; then
        echo "perf_guard: $2 exceeds the ${LIMIT}x overhead limit" >&2
        fail=1
    fi
done

exit "$fail"
