/**
 * @file
 * mapsctl — client for the mapsd experiment daemon.
 *
 *   mapsctl --socket=PATH ping
 *   mapsctl --socket=PATH submit --driver=fig3_reuse_cdf \
 *           [--metrics=off|summary|full] [--cell-timeout=SECS] \
 *           [--retries=N] [--retry-base-ms=MS] [--json] \
 *           [-- --quick --seed=7 ...]
 *   mapsctl --socket=PATH status --job=ID
 *
 * `submit` blocks until the job is terminal, retrying transient
 * failures and shed admissions with exponential backoff, and prints the
 * job's result stream — byte-identical to running the driver directly —
 * to stdout. With --json the full maps-svc-v1 response document is
 * printed instead (one JSON object, jq-able). Deterministic failures
 * are reported and never retried. Exit codes: 0 done, 1 failed, 2 bad
 * usage, 3 retry budget exhausted.
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "service/client.hpp"
#include "service/wire.hpp"

namespace {

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: mapsctl --socket=PATH ping\n"
        "       mapsctl --socket=PATH submit --driver=NAME\n"
        "               [--metrics=off|summary|full]\n"
        "               [--cell-timeout=SECS] [--retries=N]\n"
        "               [--retry-base-ms=MS] [--json]\n"
        "               [-- DRIVER-FLAGS...]\n"
        "       mapsctl --socket=PATH status --job=ID\n"
        "\n"
        "Each option may be given at most once; repeats are errors.\n");
}

int
fail(const std::string &what)
{
    std::fprintf(stderr, "mapsctl: %s\n", what.c_str());
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using maps::service::Client;
    using maps::service::Json;
    using maps::service::RequestSpec;
    using maps::service::RetryPolicy;

    std::string socket, op, jobId;
    RequestSpec spec;
    RetryPolicy policy;
    bool json = false;
    std::vector<std::string> seen;
    int i = 1;
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--") {
            ++i;
            break;
        }
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        }
        if (arg.rfind("--", 0) != 0) {
            if (!op.empty())
                return fail("unexpected argument '" + arg + "'");
            op = arg;
            continue;
        }
        const std::string key = arg.substr(0, arg.find('='));
        for (const auto &s : seen)
            if (s == key)
                return fail("duplicate option " + arg + " (" + key +
                            " was already given)");
        seen.push_back(key);
        const std::string value =
            arg.find('=') == std::string::npos
                ? ""
                : arg.substr(arg.find('=') + 1);
        if (arg.rfind("--socket=", 0) == 0) {
            socket = value;
        } else if (arg.rfind("--driver=", 0) == 0) {
            spec.driver = value;
        } else if (arg.rfind("--metrics=", 0) == 0) {
            spec.metrics = value;
        } else if (arg.rfind("--cell-timeout=", 0) == 0) {
            char *end = nullptr;
            spec.cellTimeoutSec = std::strtod(value.c_str(), &end);
            if (end != value.c_str() + value.size() ||
                spec.cellTimeoutSec < 0.0)
                return fail("bad --cell-timeout '" + value + "'");
        } else if (arg.rfind("--retries=", 0) == 0) {
            policy.budget = std::atoi(value.c_str());
            if (policy.budget < 0)
                return fail("bad --retries '" + value + "'");
        } else if (arg.rfind("--retry-base-ms=", 0) == 0) {
            policy.baseMs = std::atof(value.c_str());
            if (policy.baseMs <= 0.0)
                return fail("bad --retry-base-ms '" + value + "'");
        } else if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--job=", 0) == 0) {
            jobId = value;
        } else {
            return fail("unknown option '" + arg + "'");
        }
    }
    for (; i < argc; ++i)
        spec.args.push_back(argv[i]);

    if (socket.empty())
        return fail("--socket is required");
    Client client(socket);

    if (op == "ping") {
        Json req = Json::object();
        req.set("v", maps::service::kProtocolVersion);
        req.set("op", "ping");
        std::string err;
        auto resp = client.rpc(req, err, 10000);
        if (!resp)
            return fail("ping failed: " + err);
        std::printf("%s\n", resp->dump().c_str());
        return resp->boolean("ok") ? 0 : 1;
    }
    if (op == "status") {
        if (jobId.empty())
            return fail("status needs --job=ID");
        Json req = Json::object();
        req.set("v", maps::service::kProtocolVersion);
        req.set("op", "status");
        req.set("job", jobId);
        std::string err;
        auto resp = client.rpc(req, err, 10000);
        if (!resp)
            return fail("status failed: " + err);
        std::printf("%s\n", resp->dump().c_str());
        return resp->boolean("ok") ? 0 : 1;
    }
    if (op != "submit") {
        usage(stderr);
        return 2;
    }
    const std::string specErr = spec.validate();
    if (!specErr.empty())
        return fail(specErr);

    std::string err;
    auto final = client.submitAndWait(spec, policy, err, stderr);
    if (!final) {
        std::fprintf(stderr, "mapsctl: %s\n", err.c_str());
        return 3;
    }
    if (json) {
        std::printf("%s\n", final->dump().c_str());
    } else if (const Json *result = final->get("result");
               result != nullptr && result->isString()) {
        std::fputs(result->asString().c_str(), stdout);
    }
    if (final->str("state") != "done") {
        std::fprintf(stderr, "mapsctl: job %s %s: %s\n",
                     final->str("job").c_str(),
                     final->str("state").c_str(),
                     final->str("error").c_str());
        return 1;
    }
    return 0;
}
