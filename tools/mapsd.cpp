/**
 * @file
 * mapsd — the maps experiment daemon.
 *
 * Serves maps-svc-v1 on a UNIX socket: accepts experiment requests for
 * any fig/tab/abl driver, runs their cells out of process on a shared
 * worker pool with per-request deadlines, journals every job-state
 * transition, and survives SIGKILL by resuming unfinished jobs from the
 * journal and the drivers' --resume checkpoints. SIGTERM drains: no new
 * admissions, running jobs finish, queued ones stay journaled.
 *
 *   mapsd --socket=/tmp/mapsd.sock --state-dir=/tmp/mapsd \
 *         --drivers-dir=build/bench [--workers=4] [--queue-max=16]
 *         [--max-active-jobs=2] [--degrade-depth=32]
 *         [--cell-timeout=SECS] [--chaos=kill:worker@n=3,...]
 *
 * See docs/SERVICE.md for the protocol and the robustness model.
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "service/service.hpp"

namespace {

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: mapsd --socket=PATH --state-dir=DIR --drivers-dir=DIR\n"
        "             [--workers=N] [--queue-max=N]\n"
        "             [--max-active-jobs=N] [--degrade-depth=N]\n"
        "             [--cell-timeout=SECS] [--chaos=SPEC]\n"
        "\n"
        "  --socket=PATH          UNIX socket to serve maps-svc-v1 on\n"
        "  --state-dir=DIR        journal, checkpoints, logs, results\n"
        "  --drivers-dir=DIR      directory with the driver binaries\n"
        "  --workers=N            cell worker pool size (default 4)\n"
        "  --queue-max=N          shed submits beyond N queued jobs\n"
        "  --max-active-jobs=N    concurrent jobs (default 2)\n"
        "  --degrade-depth=N      cell-queue depth that downgrades\n"
        "                         --metrics=full cells to summary\n"
        "  --cell-timeout=SECS    default per-cell budget when the\n"
        "                         request does not set one\n"
        "  --chaos=SPEC           deterministic fault injection, e.g.\n"
        "                         kill:worker@n=3,hang:worker@n=5\n"
        "\n"
        "Each option may be given at most once; repeats are errors.\n");
}

bool
parseCount(const std::string &value, std::size_t &out)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos)
        return false;
    out = std::stoull(value);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    maps::service::ServiceConfig cfg;
    std::vector<std::string> seen;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        }
        const std::string key = arg.substr(0, arg.find('='));
        for (const auto &s : seen) {
            if (s == key) {
                std::fprintf(stderr,
                             "mapsd: duplicate option %s (%s was "
                             "already given)\n",
                             arg.c_str(), key.c_str());
                return 2;
            }
        }
        seen.push_back(key);
        const std::string value =
            arg.find('=') == std::string::npos
                ? ""
                : arg.substr(arg.find('=') + 1);
        std::size_t count = 0;
        if (arg.rfind("--socket=", 0) == 0) {
            cfg.socketPath = value;
        } else if (arg.rfind("--state-dir=", 0) == 0) {
            cfg.stateDir = value;
        } else if (arg.rfind("--drivers-dir=", 0) == 0) {
            cfg.driversDir = value;
        } else if (arg.rfind("--workers=", 0) == 0 &&
                   parseCount(value, count) && count > 0) {
            cfg.workers = static_cast<unsigned>(count);
        } else if (arg.rfind("--queue-max=", 0) == 0 &&
                   parseCount(value, count) && count > 0) {
            cfg.queueMax = count;
        } else if (arg.rfind("--max-active-jobs=", 0) == 0 &&
                   parseCount(value, count) && count > 0) {
            cfg.maxActiveJobs = count;
        } else if (arg.rfind("--degrade-depth=", 0) == 0 &&
                   parseCount(value, count) && count > 0) {
            cfg.degradeDepth = count;
        } else if (arg.rfind("--cell-timeout=", 0) == 0) {
            char *end = nullptr;
            cfg.defaultCellTimeoutSec = std::strtod(value.c_str(), &end);
            if (end != value.c_str() + value.size() ||
                cfg.defaultCellTimeoutSec < 0.0) {
                std::fprintf(stderr, "mapsd: bad --cell-timeout '%s'\n",
                             value.c_str());
                return 2;
            }
        } else if (arg.rfind("--chaos=", 0) == 0) {
            cfg.chaosSpec = value;
        } else {
            std::fprintf(stderr, "mapsd: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }
    if (cfg.socketPath.empty() || cfg.stateDir.empty() ||
        cfg.driversDir.empty()) {
        std::fprintf(stderr, "mapsd: --socket, --state-dir and "
                             "--drivers-dir are required\n");
        usage(stderr);
        return 2;
    }
    maps::service::Service service(cfg);
    std::string err;
    const int code = service.run(err);
    if (!err.empty())
        std::fprintf(stderr, "mapsd: %s\n", err.c_str());
    return code;
}
