#include "mem/dram.hpp"

#include <algorithm>

#include "util/bitops.hpp"
#include "util/logging.hpp"

namespace maps {

void
DramConfig::validate() const
{
    fatalIf(!isPow2(channels), "channels must be a power of two");
    fatalIf(!isPow2(banksPerChannel), "banks must be a power of two");
    fatalIf(!isPow2(rowBytes) || rowBytes < kBlockSize,
            "row size must be a power of two >= one block");
}

DramModel::DramModel(DramConfig cfg) : cfg_(cfg)
{
    cfg_.validate();
    banks_.assign(static_cast<std::size_t>(cfg_.channels) *
                      cfg_.banksPerChannel,
                  Bank{});
}

void
DramModel::mapAddress(Addr addr, std::uint32_t &bank,
                      std::uint64_t &row) const
{
    // row : bank : column : channel : block-offset — column bits below the
    // bank bits so sequential blocks stream within one open row.
    std::uint64_t x = addr >> kBlockShift;
    const std::uint32_t channel =
        static_cast<std::uint32_t>(x & (cfg_.channels - 1));
    x >>= floorLog2(cfg_.channels);
    const std::uint64_t row_blocks = cfg_.rowBytes / kBlockSize;
    x >>= floorLog2(row_blocks); // discard column
    const std::uint32_t bank_in_channel =
        static_cast<std::uint32_t>(x & (cfg_.banksPerChannel - 1));
    x >>= floorLog2(cfg_.banksPerChannel);
    row = x;
    bank = channel * cfg_.banksPerChannel + bank_in_channel;
}

std::uint64_t
DramModel::openRow(std::uint32_t bank_index) const
{
    return banks_[bank_index].openRow;
}

MemAccessResult
DramModel::access(Addr addr, bool write, Cycles now)
{
    std::uint32_t bank_index = 0;
    std::uint64_t row = 0;
    mapAddress(addr, bank_index, row);
    Bank &bank = banks_[bank_index];

    const Cycles start = std::max(now, bank.busyUntil);
    const bool row_hit = bank.openRow == row;
    Cycles service;
    if (bank.openRow == row) {
        service = cfg_.tCl + cfg_.tBurst;
        ++stats_.rowHits;
    } else if (bank.openRow == ~std::uint64_t{0}) {
        service = cfg_.tRcd + cfg_.tCl + cfg_.tBurst;
        ++stats_.rowMisses;
    } else {
        service = cfg_.tRp + cfg_.tRcd + cfg_.tCl + cfg_.tBurst;
        ++stats_.rowConflicts;
    }
    bank.openRow = row;
    bank.busyUntil = start + service + (write ? cfg_.tWr : 0);

    const Cycles latency = (start - now) + service;
    if (write)
        ++stats_.writes;
    else
        ++stats_.reads;
    stats_.totalLatency += latency;

    return {latency, row_hit};
}

} // namespace maps
