#include "mem/fixed_latency.hpp"

namespace maps {

FixedLatencyMemory::FixedLatencyMemory(Cycles latency) : latency_(latency)
{
}

MemAccessResult
FixedLatencyMemory::access(Addr, bool write, Cycles)
{
    if (write)
        ++stats_.writes;
    else
        ++stats_.reads;
    stats_.totalLatency += latency_;
    return {latency_, false};
}

} // namespace maps
