/**
 * @file
 * Constant-latency memory, for tests and analytic experiments.
 */
#ifndef MAPS_MEM_FIXED_LATENCY_HPP
#define MAPS_MEM_FIXED_LATENCY_HPP

#include "mem/memory_model.hpp"

namespace maps {

/** Every access completes in a fixed number of CPU cycles. */
class FixedLatencyMemory : public MemoryModel
{
  public:
    explicit FixedLatencyMemory(Cycles latency = 200);

    MemAccessResult access(Addr addr, bool write, Cycles now) override;
    const MemoryStats &stats() const override { return stats_; }
    MemoryStats &statsMut() override { return stats_; }
    std::string name() const override { return "fixed"; }

    Cycles latency() const { return latency_; }

  private:
    Cycles latency_;
    MemoryStats stats_;
};

} // namespace maps

#endif // MAPS_MEM_FIXED_LATENCY_HPP
