/**
 * @file
 * Abstract main-memory timing model (DRAMSim2 stand-in; DESIGN.md §1).
 */
#ifndef MAPS_MEM_MEMORY_MODEL_HPP
#define MAPS_MEM_MEMORY_MODEL_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "metrics/derived.hpp"
#include "util/types.hpp"

namespace maps {

/** Timing outcome of one block transfer. */
struct MemAccessResult
{
    /** Total latency seen by the requester, in CPU cycles. */
    Cycles latency = 0;
    /** The access hit an open row (only meaningful for banked models). */
    bool rowHit = false;
};

/**
 * Aggregate memory statistics. Monotonic — never reset; windowed
 * readings come from metrics::Registry phase snapshots.
 */
struct MemoryStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t rowConflicts = 0;
    Cycles totalLatency = 0;

    std::uint64_t accesses() const { return reads + writes; }
    double avgLatency() const
    {
        return metrics::ratioOrZero(totalLatency, accesses());
    }
};

/** metrics::Registry enumeration protocol (attach / measureView). */
template <typename Fn>
void
forEachCounter(MemoryStats &s, Fn &&fn)
{
    fn("reads", s.reads);
    fn("writes", s.writes);
    fn("row.hits", s.rowHits);
    fn("row.misses", s.rowMisses);
    fn("bank.conflicts", s.rowConflicts);
    fn("latency.cycles", s.totalLatency);
}

/** Interface implemented by FixedLatencyMemory and DramModel. */
class MemoryModel
{
  public:
    virtual ~MemoryModel() = default;

    /**
     * Transfer one 64B block.
     * @param addr  any address within the block.
     * @param write true for a write (LLC/metadata writeback).
     * @param now   CPU cycle at which the request arrives.
     */
    virtual MemAccessResult access(Addr addr, bool write, Cycles now) = 0;

    virtual const MemoryStats &stats() const = 0;
    /** Mutable counters (metrics::Registry attachment only). */
    virtual MemoryStats &statsMut() = 0;
    virtual std::string name() const = 0;
};

} // namespace maps

#endif // MAPS_MEM_MEMORY_MODEL_HPP
