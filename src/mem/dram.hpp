/**
 * @file
 * DRAM-lite: a banked, open-page, row-buffer timing model.
 *
 * Replaces DRAMSim2 at the fidelity MAPS needs (DESIGN.md §1): per-bank
 * row-buffer state, row hit/miss/conflict latencies, and bank busy times
 * for queueing delay. Timing parameters default to DDR3-1600 expressed in
 * 3GHz CPU cycles (Table I's clock).
 */
#ifndef MAPS_MEM_DRAM_HPP
#define MAPS_MEM_DRAM_HPP

#include <vector>

#include "mem/memory_model.hpp"

namespace maps {

/** Geometry and timing, all latencies in CPU cycles. */
struct DramConfig
{
    std::uint32_t channels = 1;
    std::uint32_t banksPerChannel = 8;
    std::uint64_t rowBytes = 8192;

    Cycles tRcd = 41;  ///< activate -> column command (13.75ns @ 3GHz)
    Cycles tCl = 41;   ///< column command -> first data
    Cycles tRp = 41;   ///< precharge
    Cycles tBurst = 12; ///< 64B burst on a x64 DDR3-1600 channel
    Cycles tWr = 45;   ///< write recovery (adds to bank busy on writes)

    void validate() const;
};

/** Open-page banked DRAM with FCFS per-bank service. */
class DramModel : public MemoryModel
{
  public:
    explicit DramModel(DramConfig cfg = {});

    MemAccessResult access(Addr addr, bool write, Cycles now) override;
    const MemoryStats &stats() const override { return stats_; }
    MemoryStats &statsMut() override { return stats_; }
    std::string name() const override { return "dram"; }

    const DramConfig &config() const { return cfg_; }

    /** Row currently open in a bank (kInvalidAddr if closed). */
    std::uint64_t openRow(std::uint32_t bank_index) const;

  private:
    struct Bank
    {
        std::uint64_t openRow = ~std::uint64_t{0};
        Cycles busyUntil = 0;
    };

    DramConfig cfg_;
    std::vector<Bank> banks_; // channels * banksPerChannel
    MemoryStats stats_;

    /** Decompose an address into (global bank index, row). */
    void mapAddress(Addr addr, std::uint32_t &bank,
                    std::uint64_t &row) const;
};

} // namespace maps

#endif // MAPS_MEM_DRAM_HPP
