/**
 * @file
 * Summary statistics over traces: footprint, write fraction, per-type mix.
 */
#ifndef MAPS_TRACE_TRACE_STATS_HPP
#define MAPS_TRACE_TRACE_STATS_HPP

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "trace/record.hpp"

namespace maps {

/** Aggregate statistics for a CPU-level reference stream. */
struct MemRefStats
{
    std::uint64_t refs = 0;
    std::uint64_t writes = 0;
    InstCount instructions = 0;
    std::uint64_t uniqueBlocks = 0;
    std::uint64_t uniquePages = 0;

    double writeFraction() const
    {
        return refs ? static_cast<double>(writes) /
                      static_cast<double>(refs)
                    : 0.0;
    }
    std::uint64_t footprintBytes() const { return uniqueBlocks * kBlockSize; }
};

MemRefStats computeStats(const std::vector<MemRef> &refs);

/** Aggregate statistics for a metadata access stream. */
struct MetadataTraceStats
{
    std::uint64_t accesses = 0;
    std::array<std::uint64_t, kNumMetadataTypes> byType{};
    std::array<std::uint64_t, kNumMetadataTypes> writesByType{};
    std::array<std::uint64_t, kNumMetadataTypes> uniqueBlocksByType{};

    std::uint64_t totalWrites() const
    {
        std::uint64_t acc = 0;
        for (auto w : writesByType)
            acc += w;
        return acc;
    }
};

MetadataTraceStats computeStats(const std::vector<MetadataAccess> &accs);

/**
 * Incremental collector for memory-request streams (used by taps that do
 * not want to materialize a full trace).
 */
class RequestStatsCollector
{
  public:
    void observe(const MemoryRequest &req);

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writebacks() const { return writebacks_; }
    std::uint64_t uniqueBlocks() const { return blocks_.size(); }

  private:
    std::uint64_t reads_ = 0;
    std::uint64_t writebacks_ = 0;
    std::unordered_set<std::uint64_t> blocks_;
};

} // namespace maps

#endif // MAPS_TRACE_TRACE_STATS_HPP
