#include "trace/record.hpp"

namespace maps {

const char *
metadataTypeName(MetadataType t)
{
    switch (t) {
      case MetadataType::Counter:
        return "counter";
      case MetadataType::TreeNode:
        return "tree";
      case MetadataType::Hash:
        return "hash";
      case MetadataType::Data:
        return "data";
    }
    return "unknown";
}

MetadataType
metadataTypeFromName(const std::string &name)
{
    if (name == "counter")
        return MetadataType::Counter;
    if (name == "tree")
        return MetadataType::TreeNode;
    if (name == "hash")
        return MetadataType::Hash;
    return MetadataType::Data;
}

const char *
reuseTransitionName(ReuseTransition t)
{
    switch (t) {
      case ReuseTransition::ReadAfterRead:
        return "RAR";
      case ReuseTransition::ReadAfterWrite:
        return "RAW";
      case ReuseTransition::WriteAfterRead:
        return "WAR";
      case ReuseTransition::WriteAfterWrite:
        return "WAW";
    }
    return "???";
}

} // namespace maps
