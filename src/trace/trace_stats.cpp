#include "trace/trace_stats.hpp"

#include <unordered_set>

namespace maps {

MemRefStats
computeStats(const std::vector<MemRef> &refs)
{
    MemRefStats stats;
    std::unordered_set<std::uint64_t> blocks;
    std::unordered_set<std::uint64_t> pages;
    for (const auto &ref : refs) {
        ++stats.refs;
        if (ref.isWrite())
            ++stats.writes;
        stats.instructions += ref.instGap;
        blocks.insert(blockIndex(ref.addr));
        pages.insert(pageIndex(ref.addr));
    }
    stats.uniqueBlocks = blocks.size();
    stats.uniquePages = pages.size();
    return stats;
}

MetadataTraceStats
computeStats(const std::vector<MetadataAccess> &accs)
{
    MetadataTraceStats stats;
    std::array<std::unordered_set<std::uint64_t>, kNumMetadataTypes> blocks;
    for (const auto &acc : accs) {
        ++stats.accesses;
        const auto idx = static_cast<std::size_t>(acc.type);
        if (idx < kNumMetadataTypes) {
            ++stats.byType[idx];
            if (acc.isWrite())
                ++stats.writesByType[idx];
            blocks[idx].insert(blockIndex(acc.addr));
        }
    }
    for (std::size_t i = 0; i < kNumMetadataTypes; ++i)
        stats.uniqueBlocksByType[i] = blocks[i].size();
    return stats;
}

void
RequestStatsCollector::observe(const MemoryRequest &req)
{
    if (req.kind == RequestKind::Read)
        ++reads_;
    else
        ++writebacks_;
    blocks_.insert(blockIndex(req.addr));
}

} // namespace maps
