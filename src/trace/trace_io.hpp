/**
 * @file
 * Binary trace file IO.
 *
 * Format: 16-byte header (magic "MAPSTRCE", u16 version, u16 record kind,
 * u32 reserved) followed by u64 record count and packed little-endian
 * records. Each record type has a fixed on-disk encoding independent of the
 * in-memory struct layout, so files are portable.
 */
#ifndef MAPS_TRACE_TRACE_IO_HPP
#define MAPS_TRACE_TRACE_IO_HPP

#include <string>
#include <vector>

#include "trace/record.hpp"

namespace maps {

/** On-disk record kinds. */
enum class TraceKind : std::uint16_t
{
    MemRefs = 1,
    MemoryRequests = 2,
    MetadataAccesses = 3,
};

/** Save records; returns false on IO failure. */
bool saveTrace(const std::string &path, const std::vector<MemRef> &refs);
bool saveTrace(const std::string &path,
               const std::vector<MemoryRequest> &reqs);
bool saveTrace(const std::string &path,
               const std::vector<MetadataAccess> &accs);

/** Load records; returns false on IO failure or kind mismatch. */
bool loadTrace(const std::string &path, std::vector<MemRef> &refs);
bool loadTrace(const std::string &path, std::vector<MemoryRequest> &reqs);
bool loadTrace(const std::string &path, std::vector<MetadataAccess> &accs);

/** Peek at the kind of a trace file; returns 0 on failure. */
std::uint16_t traceFileKind(const std::string &path);

} // namespace maps

#endif // MAPS_TRACE_TRACE_IO_HPP
