#include "trace/trace_io.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

namespace maps {

namespace {

constexpr char kMagic[8] = {'M', 'A', 'P', 'S', 'T', 'R', 'C', 'E'};
constexpr std::uint16_t kVersion = 1;

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

class Writer
{
  public:
    explicit Writer(std::FILE *f) : f_(f) {}

    bool ok() const { return ok_; }

    void u8(std::uint8_t v) { raw(&v, 1); }
    void u16(std::uint16_t v)
    {
        std::uint8_t b[2] = {std::uint8_t(v), std::uint8_t(v >> 8)};
        raw(b, 2);
    }
    void u32(std::uint32_t v)
    {
        std::uint8_t b[4];
        for (int i = 0; i < 4; ++i)
            b[i] = std::uint8_t(v >> (8 * i));
        raw(b, 4);
    }
    void u64(std::uint64_t v)
    {
        std::uint8_t b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = std::uint8_t(v >> (8 * i));
        raw(b, 8);
    }

  private:
    std::FILE *f_;
    bool ok_ = true;

    void raw(const void *p, std::size_t n)
    {
        if (ok_ && std::fwrite(p, 1, n, f_) != n)
            ok_ = false;
    }
};

class Reader
{
  public:
    explicit Reader(std::FILE *f) : f_(f) {}

    bool ok() const { return ok_; }

    std::uint8_t u8()
    {
        std::uint8_t v = 0;
        raw(&v, 1);
        return v;
    }
    std::uint16_t u16()
    {
        std::uint8_t b[2] = {};
        raw(b, 2);
        return std::uint16_t(b[0] | (b[1] << 8));
    }
    std::uint32_t u32()
    {
        std::uint8_t b[4] = {};
        raw(b, 4);
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i)
            v = (v << 8) | b[i];
        return v;
    }
    std::uint64_t u64()
    {
        std::uint8_t b[8] = {};
        raw(b, 8);
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | b[i];
        return v;
    }

  private:
    std::FILE *f_;
    bool ok_ = true;

    void raw(void *p, std::size_t n)
    {
        if (ok_ && std::fread(p, 1, n, f_) != n)
            ok_ = false;
    }
};

bool
writeHeader(Writer &w, TraceKind kind, std::uint64_t count)
{
    for (char c : kMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.u16(kVersion);
    w.u16(static_cast<std::uint16_t>(kind));
    w.u32(0);
    w.u64(count);
    return w.ok();
}

bool
readHeader(Reader &r, TraceKind expected, std::uint64_t &count)
{
    char magic[8];
    for (char &c : magic)
        c = static_cast<char>(r.u8());
    if (!r.ok() || std::memcmp(magic, kMagic, 8) != 0)
        return false;
    const std::uint16_t version = r.u16();
    const std::uint16_t kind = r.u16();
    r.u32();
    count = r.u64();
    return r.ok() && version == kVersion &&
           kind == static_cast<std::uint16_t>(expected);
}

} // namespace

bool
saveTrace(const std::string &path, const std::vector<MemRef> &refs)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    Writer w(f.get());
    if (!writeHeader(w, TraceKind::MemRefs, refs.size()))
        return false;
    for (const auto &ref : refs) {
        w.u64(ref.addr);
        w.u8(static_cast<std::uint8_t>(ref.type));
        w.u32(ref.instGap);
    }
    return w.ok();
}

bool
saveTrace(const std::string &path, const std::vector<MemoryRequest> &reqs)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    Writer w(f.get());
    if (!writeHeader(w, TraceKind::MemoryRequests, reqs.size()))
        return false;
    for (const auto &req : reqs) {
        w.u64(req.addr);
        w.u8(static_cast<std::uint8_t>(req.kind));
        w.u64(req.icount);
    }
    return w.ok();
}

bool
saveTrace(const std::string &path, const std::vector<MetadataAccess> &accs)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    Writer w(f.get());
    if (!writeHeader(w, TraceKind::MetadataAccesses, accs.size()))
        return false;
    for (const auto &acc : accs) {
        w.u64(acc.addr);
        w.u8(static_cast<std::uint8_t>(acc.type));
        w.u8(static_cast<std::uint8_t>(acc.access));
        w.u8(acc.level);
        w.u64(acc.icount);
    }
    return w.ok();
}

bool
loadTrace(const std::string &path, std::vector<MemRef> &refs)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    Reader r(f.get());
    std::uint64_t count = 0;
    if (!readHeader(r, TraceKind::MemRefs, count))
        return false;
    refs.clear();
    refs.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        MemRef ref;
        ref.addr = r.u64();
        ref.type = static_cast<AccessType>(r.u8());
        ref.instGap = r.u32();
        if (!r.ok())
            return false;
        refs.push_back(ref);
    }
    return true;
}

bool
loadTrace(const std::string &path, std::vector<MemoryRequest> &reqs)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    Reader r(f.get());
    std::uint64_t count = 0;
    if (!readHeader(r, TraceKind::MemoryRequests, count))
        return false;
    reqs.clear();
    reqs.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        MemoryRequest req;
        req.addr = r.u64();
        req.kind = static_cast<RequestKind>(r.u8());
        req.icount = r.u64();
        if (!r.ok())
            return false;
        reqs.push_back(req);
    }
    return true;
}

bool
loadTrace(const std::string &path, std::vector<MetadataAccess> &accs)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    Reader r(f.get());
    std::uint64_t count = 0;
    if (!readHeader(r, TraceKind::MetadataAccesses, count))
        return false;
    accs.clear();
    accs.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        MetadataAccess acc;
        acc.addr = r.u64();
        acc.type = static_cast<MetadataType>(r.u8());
        acc.access = static_cast<AccessType>(r.u8());
        acc.level = r.u8();
        acc.icount = r.u64();
        if (!r.ok())
            return false;
        accs.push_back(acc);
    }
    return true;
}

std::uint16_t
traceFileKind(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return 0;
    Reader r(f.get());
    char magic[8];
    for (char &c : magic)
        c = static_cast<char>(r.u8());
    if (!r.ok() || std::memcmp(magic, kMagic, 8) != 0)
        return 0;
    r.u16(); // version
    const std::uint16_t kind = r.u16();
    return r.ok() ? kind : 0;
}

} // namespace maps
