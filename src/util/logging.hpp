/**
 * @file
 * panic/fatal helpers in the spirit of gem5's logging.hh.
 *
 * panic(): an internal invariant was violated (simulator bug) — aborts.
 * fatal(): the user supplied an impossible configuration — exits cleanly.
 */
#ifndef MAPS_UTIL_LOGGING_HPP
#define MAPS_UTIL_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <string>

namespace maps {

[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Check a user-facing configuration constraint. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

/** Check an internal invariant. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace maps

#endif // MAPS_UTIL_LOGGING_HPP
