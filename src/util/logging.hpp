/**
 * @file
 * panic/fatal helpers in the spirit of gem5's logging.hh.
 *
 * panic(): an internal invariant was violated (simulator bug) — aborts.
 * fatal(): the user supplied an impossible configuration — exits cleanly.
 *
 * Thread safety: these helpers are called from ExperimentRunner worker
 * threads. There is no mutable state here, and each emits its message
 * with a single fprintf call, which POSIX makes atomic with respect to
 * other stdio calls on the same stream — concurrent messages may
 * interleave *between* lines but never within one. panic/fatal
 * terminate the whole process, not just the calling thread, which is
 * the intended behavior for a violated invariant mid-sweep.
 */
#ifndef MAPS_UTIL_LOGGING_HPP
#define MAPS_UTIL_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <string>

namespace maps {

[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Check a user-facing configuration constraint. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

/** Check an internal invariant. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace maps

#endif // MAPS_UTIL_LOGGING_HPP
