#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace maps {

std::uint64_t
Rng::splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    // Seed the four lanes via SplitMix64, as recommended by the authors,
    // so even seed=0 yields a well-mixed state.
    std::uint64_t sm = seed;
    for (auto &lane : s_)
        lane = splitMix64(sm);
}

static inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    assert(bound != 0);
    // Lemire's nearly-divisionless bounded generation; the bias for 64-bit
    // multiplies is negligible for simulation purposes.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    assert(lo <= hi);
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double p)
{
    assert(p > 0.0 && p <= 1.0);
    if (p >= 1.0)
        return 1;
    double u = nextDouble();
    if (u <= 0.0)
        u = 0x1.0p-53;
    const double v = std::ceil(std::log(u) / std::log(1.0 - p));
    return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    assert(n >= 1);
    assert(theta >= 0.0);
    hIntegralX1_ = hIntegral(1.5) - 1.0;
    hIntegralNumItems_ = hIntegral(static_cast<double>(n) + 0.5);
    s_ = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
}

double
ZipfSampler::helper1(double x)
{
    // log1p(x)/x with series fallback near zero.
    if (std::abs(x) > 1e-8)
        return std::log1p(x) / x;
    return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x));
}

double
ZipfSampler::helper2(double x)
{
    // expm1(x)/x with series fallback near zero.
    if (std::abs(x) > 1e-8)
        return std::expm1(x) / x;
    return 1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x));
}

double
ZipfSampler::hIntegral(double x) const
{
    const double logx = std::log(x);
    return helper2((1.0 - theta_) * logx) * logx;
}

double
ZipfSampler::h(double x) const
{
    return std::exp(-theta_ * std::log(x));
}

double
ZipfSampler::hIntegralInverse(double x) const
{
    double t = x * (1.0 - theta_);
    if (t < -1.0)
        t = -1.0;
    return std::exp(helper1(t) * x);
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    if (n_ == 1)
        return 0;
    if (theta_ == 0.0)
        return rng.nextBounded(n_);
    while (true) {
        const double u = hIntegralNumItems_ +
            rng.nextDouble() * (hIntegralX1_ - hIntegralNumItems_);
        const double x = hIntegralInverse(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        else if (k > n_)
            k = n_;
        const double kd = static_cast<double>(k);
        if (kd - x <= s_ || u >= hIntegral(kd + 0.5) - h(kd))
            return k - 1;
    }
}

} // namespace maps
