#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace maps {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::clear()
{
    n_ = 0;
    mean_ = m2_ = min_ = max_ = 0.0;
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += std::log(std::max(v, 1e-12));
    return std::exp(acc / static_cast<double>(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += v;
    return acc / static_cast<double>(values.size());
}

} // namespace maps
