#include "util/histogram.hpp"

#include "util/bitops.hpp"

#include <algorithm>
#include <cassert>

namespace maps {

void
Log2Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    std::size_t bucket;
    if (value == 0)
        bucket = 0;
    else
        bucket = static_cast<std::size_t>(ceilLog2(value + 1));
    if (bucket >= counts_.size())
        counts_.resize(bucket + 1, 0);
    counts_[bucket] += weight;
    total_ += weight;
}

std::uint64_t
Log2Histogram::bucketLo(std::size_t i)
{
    if (i == 0)
        return 0;
    return std::uint64_t{1} << (i - 1);
}

std::uint64_t
Log2Histogram::bucketHi(std::size_t i)
{
    return std::uint64_t{1} << i;
}

double
Log2Histogram::cumulativeAtOrBelow(std::uint64_t x) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (bucketHi(i) - 1 <= x) {
            acc += counts_[i];
        } else if (bucketLo(i) <= x) {
            // Partially covered bucket: assume uniform within the bucket.
            const double span = static_cast<double>(bucketHi(i) - bucketLo(i));
            const double covered =
                static_cast<double>(x - bucketLo(i) + 1) / span;
            return (static_cast<double>(acc) +
                    covered * static_cast<double>(counts_[i])) /
                   static_cast<double>(total_);
        } else {
            break;
        }
    }
    return static_cast<double>(acc) / static_cast<double>(total_);
}

std::uint64_t
Log2Histogram::quantileUpperBound(double q) const
{
    assert(q >= 0.0 && q <= 1.0);
    if (total_ == 0)
        return 0;
    const double target = q * static_cast<double>(total_);
    double acc = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        acc += static_cast<double>(counts_[i]);
        if (acc >= target)
            return bucketHi(i);
    }
    return counts_.empty() ? 0 : bucketHi(counts_.size() - 1);
}

void
Log2Histogram::merge(const Log2Histogram &other)
{
    if (other.counts_.size() > counts_.size())
        counts_.resize(other.counts_.size(), 0);
    for (std::size_t i = 0; i < other.counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

void
Log2Histogram::clear()
{
    counts_.clear();
    total_ = 0;
}

void
ExactHistogram::add(std::uint64_t value, std::uint64_t weight)
{
    cells_[value] += weight;
    total_ += weight;
}

double
ExactHistogram::cumulativeAtOrBelow(std::uint64_t x) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (auto it = cells_.begin();
         it != cells_.end() && it->first <= x; ++it) {
        acc += it->second;
    }
    return static_cast<double>(acc) / static_cast<double>(total_);
}

std::uint64_t
ExactHistogram::quantile(double q) const
{
    assert(q >= 0.0 && q <= 1.0);
    if (total_ == 0)
        return 0;
    const double target = q * static_cast<double>(total_);
    double acc = 0.0;
    for (const auto &[value, count] : cells_) {
        acc += static_cast<double>(count);
        if (acc >= target)
            return value;
    }
    return cells_.rbegin()->first;
}

double
ExactHistogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto &[value, count] : cells_)
        acc += static_cast<double>(value) * static_cast<double>(count);
    return acc / static_cast<double>(total_);
}

void
ExactHistogram::merge(const ExactHistogram &other)
{
    for (const auto &[value, count] : other.cells_)
        cells_[value] += count;
    total_ += other.total_;
}

void
ExactHistogram::clear()
{
    cells_.clear();
    total_ = 0;
}

} // namespace maps
