/**
 * @file
 * Small bit-manipulation helpers used by cache geometry and layouts.
 */
#ifndef MAPS_UTIL_BITOPS_HPP
#define MAPS_UTIL_BITOPS_HPP

#include <bit>
#include <cassert>
#include <cstdint>

namespace maps {

/** True if v is a power of two (and non-zero). */
inline constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be non-zero. */
inline constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Ceil of log2(v); v must be non-zero. */
inline constexpr unsigned
ceilLog2(std::uint64_t v)
{
    assert(v != 0);
    return v == 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Ceiling division. */
inline constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    assert(b != 0);
    return (a + b - 1) / b;
}

/** Round v up to the next multiple of m (m power of two). */
inline constexpr std::uint64_t
roundUpPow2(std::uint64_t v, std::uint64_t m)
{
    assert(isPow2(m));
    return (v + m - 1) & ~(m - 1);
}

/** Extract bits [lo, lo+len) of v. */
inline constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned len)
{
    assert(len <= 64 && lo < 64);
    const std::uint64_t mask = len >= 64 ? ~std::uint64_t{0}
                                         : ((std::uint64_t{1} << len) - 1);
    return (v >> lo) & mask;
}

} // namespace maps

#endif // MAPS_UTIL_BITOPS_HPP
