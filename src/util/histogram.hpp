/**
 * @file
 * Histogram containers used by the reuse-distance analyzers and EVA.
 */
#ifndef MAPS_UTIL_HISTOGRAM_HPP
#define MAPS_UTIL_HISTOGRAM_HPP

#include <cstdint>
#include <map>
#include <vector>

namespace maps {

/**
 * Power-of-two bucketed histogram: bucket i counts samples in
 * [2^(i-1), 2^i) with bucket 0 reserved for the value 0 and bucket 1 for 1.
 * Compact and fast — the natural container for reuse distances that span
 * ten orders of magnitude.
 */
class Log2Histogram
{
  public:
    void add(std::uint64_t value, std::uint64_t weight = 1);

    std::uint64_t totalCount() const { return total_; }

    /** Count of samples strictly below 2^bucket boundaries; see bucketLo. */
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

    /** Inclusive lower bound of bucket i. */
    static std::uint64_t bucketLo(std::size_t i);

    /** Exclusive upper bound of bucket i. */
    static std::uint64_t bucketHi(std::size_t i);

    /** Fraction of samples with value <= x (piecewise-constant per bucket). */
    double cumulativeAtOrBelow(std::uint64_t x) const;

    /** Smallest bucket upper bound b with P(value < b) >= q. */
    std::uint64_t quantileUpperBound(double q) const;

    void merge(const Log2Histogram &other);
    void clear();

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Exact histogram over arbitrary 64-bit values; backed by an ordered map.
 * Used where exact CDFs are needed (e.g., reuse-distance CDF benches).
 */
class ExactHistogram
{
  public:
    void add(std::uint64_t value, std::uint64_t weight = 1);

    std::uint64_t totalCount() const { return total_; }
    const std::map<std::uint64_t, std::uint64_t> &cells() const
    {
        return cells_;
    }

    /** Fraction of samples with value <= x. */
    double cumulativeAtOrBelow(std::uint64_t x) const;

    /** Smallest value v with P(<= v) >= q; 0 when empty. */
    std::uint64_t quantile(double q) const;

    /** Mean of the distribution; 0 when empty. */
    double mean() const;

    void merge(const ExactHistogram &other);
    void clear();

  private:
    std::map<std::uint64_t, std::uint64_t> cells_;
    std::uint64_t total_ = 0;
};

} // namespace maps

#endif // MAPS_UTIL_HISTOGRAM_HPP
