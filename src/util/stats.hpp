/**
 * @file
 * Streaming statistics and suite-level reducers (geometric mean etc.).
 */
#ifndef MAPS_UTIL_STATS_HPP
#define MAPS_UTIL_STATS_HPP

#include <cstdint>
#include <vector>

namespace maps {

/** Welford streaming mean/variance accumulator. */
class RunningStats
{
  public:
    void add(double x);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    void clear();

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Geometric mean of positive values; values <= 0 are clamped to epsilon. */
double geometricMean(const std::vector<double> &values);

/** Arithmetic mean; 0 for empty input. */
double arithmeticMean(const std::vector<double> &values);

} // namespace maps

#endif // MAPS_UTIL_STATS_HPP
