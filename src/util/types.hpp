/**
 * @file
 * Fundamental types and constants shared across the MAPS simulator.
 */
#ifndef MAPS_UTIL_TYPES_HPP
#define MAPS_UTIL_TYPES_HPP

#include <cstdint>
#include <cstddef>

namespace maps {

/** Physical (or metadata-space) byte address. */
using Addr = std::uint64_t;

/** Processor clock cycles. */
using Cycles = std::uint64_t;

/** Instruction counts. */
using InstCount = std::uint64_t;

/** Energy in picojoules. */
using PicoJoules = double;

/** Time in nanoseconds. */
using Nanoseconds = double;

/** Size of a cache block / memory transfer granule, in bytes. */
inline constexpr std::uint64_t kBlockSize = 64;

/** log2(kBlockSize). */
inline constexpr unsigned kBlockShift = 6;

/** Size of an OS page, in bytes. */
inline constexpr std::uint64_t kPageSize = 4096;

/** log2(kPageSize). */
inline constexpr unsigned kPageShift = 12;

/** Blocks per page. */
inline constexpr std::uint64_t kBlocksPerPage = kPageSize / kBlockSize;

/** Sentinel for "no address". */
inline constexpr Addr kInvalidAddr = ~Addr{0};

/** Convenience byte-size literals. */
inline constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}
inline constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}
inline constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

/** Align an address down to a block boundary. */
inline constexpr Addr blockAlign(Addr a) { return a & ~(kBlockSize - 1); }

/** Block index of an address. */
inline constexpr std::uint64_t blockIndex(Addr a) { return a >> kBlockShift; }

/** Page index of an address. */
inline constexpr std::uint64_t pageIndex(Addr a) { return a >> kPageShift; }

} // namespace maps

#endif // MAPS_UTIL_TYPES_HPP
