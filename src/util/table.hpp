/**
 * @file
 * Aligned plain-text table and CSV emitters used by the figure benches so
 * every experiment prints paper-style rows.
 */
#ifndef MAPS_UTIL_TABLE_HPP
#define MAPS_UTIL_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace maps {

/**
 * Column-aligned text table. Collect rows of strings, then print; numeric
 * formatting is the caller's job (use TextTable::fmt helpers).
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal rule before the next row. */
    void addRule();

    void print(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

    /** Format a double with the given precision. */
    static std::string fmt(double v, int precision = 3);

    /** Format an integer with thousands grouping disabled (plain). */
    static std::string fmt(std::uint64_t v);

    /** Format a byte size as e.g. "64KB", "2MB". */
    static std::string fmtSize(std::uint64_t bytes);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_; // empty row == rule
};

/** Minimal CSV writer (quotes cells containing separators). */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    void writeRow(const std::vector<std::string> &cells);

  private:
    std::ostream &os_;

    static std::string escape(const std::string &cell);
};

} // namespace maps

#endif // MAPS_UTIL_TABLE_HPP
