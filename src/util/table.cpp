#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iomanip>

namespace maps {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addRule()
{
    rows_.emplace_back(); // empty vector marks a rule
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_rule = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    auto print_cells = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << "| " << cell
               << std::string(widths[c] - cell.size() + 1, ' ');
        }
        os << "|\n";
    };

    print_rule();
    print_cells(header_);
    print_rule();
    for (const auto &row : rows_) {
        if (row.empty())
            print_rule();
        else
            print_cells(row);
    }
    print_rule();
}

std::string
TextTable::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::fmt(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
TextTable::fmtSize(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= (1ull << 30) && bytes % (1ull << 30) == 0) {
        std::snprintf(buf, sizeof(buf), "%lluGB",
                      static_cast<unsigned long long>(bytes >> 30));
    } else if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0) {
        std::snprintf(buf, sizeof(buf), "%lluMB",
                      static_cast<unsigned long long>(bytes >> 20));
    } else if (bytes >= (1ull << 10) && bytes % (1ull << 10) == 0) {
        std::snprintf(buf, sizeof(buf), "%lluKB",
                      static_cast<unsigned long long>(bytes >> 10));
    } else {
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << escape(cells[i]);
    }
    os_ << '\n';
}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += "\"\"";
        else
            out += ch;
    }
    out += '"';
    return out;
}

} // namespace maps
