#include "util/cdf.hpp"

#include <algorithm>
#include <cmath>

namespace maps {

CdfCurve
CdfCurve::fromHistogram(const std::string &name, const ExactHistogram &hist,
                        std::uint64_t maxX, unsigned pointsPerDecade)
{
    CdfCurve curve(name);
    if (hist.totalCount() == 0 || maxX == 0)
        return curve;

    const double steps = std::max<unsigned>(pointsPerDecade, 1);
    const double top = std::log10(static_cast<double>(maxX));
    std::uint64_t last_x = 0;
    for (double e = 0.0; e <= top + 1e-9; e += 1.0 / steps) {
        const auto x = static_cast<std::uint64_t>(std::pow(10.0, e));
        if (x == last_x)
            continue;
        last_x = x;
        curve.addPoint(x, hist.cumulativeAtOrBelow(x));
    }
    if (last_x < maxX)
        curve.addPoint(maxX, hist.cumulativeAtOrBelow(maxX));
    return curve;
}

double
CdfCurve::evaluate(std::uint64_t x) const
{
    if (points_.empty())
        return 0.0;
    if (x <= points_.front().x)
        return points_.front().y;
    if (x >= points_.back().x)
        return points_.back().y;
    auto it = std::lower_bound(
        points_.begin(), points_.end(), x,
        [](const CdfPoint &p, std::uint64_t v) { return p.x < v; });
    if (it->x == x)
        return it->y;
    const auto &hi = *it;
    const auto &lo = *(it - 1);
    const double t = static_cast<double>(x - lo.x) /
                     static_cast<double>(hi.x - lo.x);
    return lo.y + t * (hi.y - lo.y);
}

} // namespace maps
