/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All randomness in MAPS flows through Rng (xoshiro256**) seeded explicitly,
 * so every experiment is bit-reproducible across runs and machines.
 */
#ifndef MAPS_UTIL_RNG_HPP
#define MAPS_UTIL_RNG_HPP

#include <cstdint>
#include <vector>

namespace maps {

/**
 * xoshiro256** generator (Blackman & Vigna). Small, fast, and good enough
 * for workload synthesis; never use std::rand in the simulator.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi]. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /** Geometrically distributed value >= 1 with success probability p. */
    std::uint64_t nextGeometric(double p);

  private:
    std::uint64_t s_[4];

    static std::uint64_t splitMix64(std::uint64_t &state);
};

/**
 * Zipf-distributed sampler over [0, n). Uses the rejection-inversion method
 * of Hörmann & Derflinger so setup is O(1) and sampling is O(1) expected,
 * independent of n.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     Number of items (ranks 0..n-1).
     * @param theta Skew; 0 degenerates to uniform, ~0.99 is "YCSB-like".
     */
    ZipfSampler(std::uint64_t n, double theta);

    /** Draw a rank in [0, n); rank 0 is the most popular. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t items() const { return n_; }
    double theta() const { return theta_; }

  private:
    std::uint64_t n_;
    double theta_;
    double hIntegralX1_;
    double hIntegralNumItems_;
    double s_;

    double hIntegral(double x) const;
    double h(double x) const;
    double hIntegralInverse(double x) const;
    static double helper1(double x);
    static double helper2(double x);
};

} // namespace maps

#endif // MAPS_UTIL_RNG_HPP
