/**
 * @file
 * Cumulative-distribution containers for reuse-distance reporting.
 */
#ifndef MAPS_UTIL_CDF_HPP
#define MAPS_UTIL_CDF_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "util/histogram.hpp"

namespace maps {

/** One evaluated CDF point: P(value <= x) = y. */
struct CdfPoint
{
    std::uint64_t x;
    double y;
};

/**
 * A named, evaluated CDF curve — the unit the figure benches print.
 * Built from an ExactHistogram at a chosen set of x positions.
 */
class CdfCurve
{
  public:
    CdfCurve() = default;
    explicit CdfCurve(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    const std::vector<CdfPoint> &points() const { return points_; }
    bool empty() const { return points_.empty(); }

    void addPoint(std::uint64_t x, double y) { points_.push_back({x, y}); }

    /**
     * Evaluate hist at logarithmically spaced x positions spanning
     * [1, maxX], plus the exact maximum sample.
     */
    static CdfCurve fromHistogram(const std::string &name,
                                  const ExactHistogram &hist,
                                  std::uint64_t maxX,
                                  unsigned pointsPerDecade = 4);

    /** Linear interpolation of y at x (clamped to curve ends). */
    double evaluate(std::uint64_t x) const;

  private:
    std::string name_;
    std::vector<CdfPoint> points_;
};

} // namespace maps

#endif // MAPS_UTIL_CDF_HPP
