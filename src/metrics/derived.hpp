/**
 * @file
 * Derived-metric definitions, in exactly one place.
 *
 * Every rate the figures report — MPKI, miss rates, average latencies,
 * ED², accesses-per-request — is one of these three shapes. The stats
 * structs and the energy model delegate here so no bench can drift to a
 * slightly different formula (the pre-registry code had three private
 * MPKI implementations).
 *
 * Header-only and dependency-free on purpose: producers in cache/ and
 * mem/ include this without linking the metrics library.
 */
#ifndef MAPS_METRICS_DERIVED_HPP
#define MAPS_METRICS_DERIVED_HPP

#include <cstdint>

namespace maps::metrics {

/** Events per kilo-instruction (MPKI and friends); 0 when idle. */
inline double
perKiloInstructions(std::uint64_t events, std::uint64_t instructions)
{
    return instructions ? 1000.0 * static_cast<double>(events) /
                              static_cast<double>(instructions)
                        : 0.0;
}

/** num/den as a double; 0 when the denominator is 0. */
inline double
ratioOrZero(std::uint64_t num, std::uint64_t den)
{
    return den ? static_cast<double>(num) / static_cast<double>(den)
               : 0.0;
}

/** Energy-delay-squared: energy (pJ, converted to J) x time (s) squared. */
inline double
energyDelaySquared(double energy_pj, double seconds)
{
    return energy_pj * 1e-12 * seconds * seconds;
}

} // namespace maps::metrics

#endif // MAPS_METRICS_DERIVED_HPP
