/**
 * @file
 * Sampled chrome://tracing event emission (--trace-events).
 *
 * Every Nth measured request becomes a complete-event ("ph":"X") span;
 * the metadata fetches it triggers are nested child spans, and a
 * root-ward integrity-tree traversal is grouped under its own wrapper
 * span. Load the file in chrome://tracing or Perfetto.
 *
 * The timeline is synthetic: spans are laid out on a monotonically
 * advancing microsecond axis, one slot per metadata access, so the
 * visualization shows *structure* (what each request touched, in
 * order), not timing — the simulator's transaction-level cycle
 * accounting lives in each span's args ("latency_cycles"). A synthetic
 * axis keeps the file deterministic for a given cell and seed, which
 * the CI validity job relies on.
 *
 * File format (schema "maps-trace-v1"):
 *   { "traceEvents": [...], "displayTimeUnit": "ms",
 *     "otherData": { "schema": ..., "cell": ..., "sample_every": ...,
 *                    "requests_sampled": ..., "requests_seen": ... } }
 */
#ifndef MAPS_METRICS_TRACE_EVENTS_HPP
#define MAPS_METRICS_TRACE_EVENTS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace maps::metrics {

/** Version tag stamped into the trace file's otherData. */
inline constexpr const char *kTraceSchemaVersion = "maps-trace-v1";

/**
 * Buffers sampled request/metadata spans and writes one chrome-trace
 * JSON file in finish(). Owned by SecureMemorySim; fed from the request
 * path and the metadata tap. Not thread-safe (cell-local, like every
 * simulation object).
 */
class TraceEventWriter
{
  public:
    /**
     * @param path         output file (written atomically in finish()).
     * @param sample_every record every Nth request (>= 1).
     * @param cell         cell label stamped into otherData.
     */
    TraceEventWriter(std::string path, std::uint64_t sample_every,
                     std::string cell);
    ~TraceEventWriter();

    /** A request enters the controller; decides whether to sample it. */
    void beginRequest(const MemoryRequest &req);

    /** A metadata access of the currently sampled request. */
    void metadataAccess(const MetadataAccess &acc);

    /** The sampled request completed with its timing outcome. */
    void endRequest(Cycles latency, std::uint32_t mem_accesses);

    /** Write the file (idempotent; also called from the destructor). */
    void finish();

    std::uint64_t requestsSampled() const { return sampled_; }

  private:
    struct Child
    {
        MetadataAccess acc;
    };

    std::string path_;
    std::uint64_t sampleEvery_;
    std::string cell_;

    std::vector<std::string> events_;
    std::uint64_t seen_ = 0;
    std::uint64_t sampled_ = 0;
    /** Synthetic clock, in microsecond ticks. */
    std::uint64_t now_ = 0;
    bool finished_ = false;

    /** In-flight sampled request (valid while recording_). */
    bool recording_ = false;
    MemoryRequest current_;
    std::vector<Child> children_;

    /** Cap on sampled requests so the buffer stays bounded. */
    static constexpr std::uint64_t kMaxSampledRequests = 20'000;

    void flushRequest(Cycles latency, std::uint32_t mem_accesses);
};

} // namespace maps::metrics

#endif // MAPS_METRICS_TRACE_EVENTS_HPP
