/**
 * @file
 * maps::metrics — the phase-aware statistics registry behind every
 * counter the simulator reports.
 *
 * Design rules (docs/METRICS.md):
 *
 *  - Counters are plain monotonic `std::uint64_t` fields living inside
 *    the component's own stats struct; they are incremented inline and
 *    are NEVER reset. The registry holds only {name -> pointer}, so a
 *    registered counter costs exactly the same machine code on the hot
 *    path as an unregistered one (zero-overhead in release builds).
 *  - Components publish their struct through a `forEachCounter(S&, fn)`
 *    overload (found by ADL) enumerating (leaf-name, field) pairs; the
 *    same enumeration drives registration and windowed views.
 *  - Measurement windows are explicit: `beginPhase(Phase::Measure)`
 *    snapshots every counter exactly ONCE per run (a second call
 *    panics). The warmup window is the snapshot; the measure window is
 *    total - snapshot. Every bespoke `clearStats()` is replaced by this
 *    single rule.
 *  - Derived metrics (MPKI, ED², accesses-per-request, energy) are
 *    doubles registered at report time — definitions live in
 *    metrics/derived.hpp so every consumer computes them one way.
 *
 * Naming: dot-separated hierarchical lower_snake leaves, e.g.
 * `llc.misses`, `secmem.mem.counter.reads`, `dram.bank.conflicts`.
 */
#ifndef MAPS_METRICS_METRICS_HPP
#define MAPS_METRICS_METRICS_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/histogram.hpp"

namespace maps::metrics {

/** Version tag stamped on every structured metrics export. */
inline constexpr const char *kSchemaVersion = "maps-metrics-v1";

/**
 * Run phases. A run starts in Warmup; beginPhase(Phase::Measure) opens
 * the measurement window. There is no way back — counters are
 * monotonic and the snapshot is taken exactly once.
 */
enum class Phase : std::uint8_t
{
    Warmup = 0,
    Measure = 1,
};

const char *phaseName(Phase p);

/**
 * The registry. One instance per simulation (SecureMemorySim owns one);
 * not thread-safe — a registry and all its producers belong to a single
 * cell/thread, which is the runner's existing ownership rule.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    // -- registration -----------------------------------------------------

    /**
     * Register one monotonic counter. @p field must outlive the
     * registry's use and must never decrease. Duplicate names panic.
     */
    void counter(std::string name, const std::uint64_t *field);

    /**
     * Register every counter of a stats struct under @p prefix via the
     * struct's forEachCounter overload: `attach("llc", stats)` registers
     * `llc.hits`, `llc.misses`, ...
     */
    template <typename S> void attach(const std::string &prefix, S &stats)
    {
        forEachCounter(stats,
                       [&](std::string_view leaf, std::uint64_t &field) {
                           counter(join(prefix, leaf), &field);
                       });
    }

    /**
     * Register a latency/size distribution. Snapshotted bucket-wise at
     * the phase boundary like any counter. Must outlive the registry's
     * use.
     */
    void histogram(std::string name, const Log2Histogram *hist);

    /**
     * Subscribe to phase transitions (components capture phase-relative
     * state here, e.g. the hierarchy records the instruction count at
     * the start of Measure). Listeners run in registration order,
     * after the snapshot is taken.
     */
    void onPhaseBegin(std::function<void(Phase)> listener);

    // -- phases -----------------------------------------------------------

    /**
     * Open the measurement window: snapshot every counter and histogram,
     * then notify listeners. Calling twice — or with Phase::Warmup —
     * panics; this is the "counters reset exactly once" rule made
     * mechanical.
     */
    void beginPhase(Phase p);

    Phase phase() const { return phase_; }

    // -- windowed reads ---------------------------------------------------

    /** Whole-run value (monotonic total). Unknown names panic. */
    std::uint64_t total(std::string_view name) const;
    /** Warmup-window value: the phase snapshot (whole run before it). */
    std::uint64_t warmup(std::string_view name) const;
    /** Measure-window value: total - snapshot. */
    std::uint64_t measure(std::string_view name) const;

    /**
     * Measure-window copy of a whole stats struct: each enumerated
     * field of @p totals minus its snapshot under @p prefix. This is
     * what RunReport exposes — byte-for-byte what the old
     * clearStats()-then-read convention produced.
     */
    template <typename S>
    S measureView(const std::string &prefix, const S &totals) const
    {
        S view = totals;
        forEachCounter(view,
                       [&](std::string_view leaf, std::uint64_t &field) {
                           field -= snapshotOf(join(prefix, leaf));
                       });
        return view;
    }

    // -- derived metrics --------------------------------------------------

    /**
     * Record a derived (computed) metric for export. @p precision is the
     * display precision used by every sink. Duplicate names panic.
     */
    void derived(std::string name, double value, int precision = 4);

    // -- export -----------------------------------------------------------

    struct CounterRecord
    {
        std::string name;
        std::uint64_t warmup = 0;
        std::uint64_t measure = 0;
        std::uint64_t total = 0;
    };

    struct DerivedRecord
    {
        std::string name;
        double value = 0.0;
        int precision = 4;
    };

    struct HistogramRecord
    {
        std::string name;
        /** Per-bucket counts; index i covers [bucketLo(i), bucketHi(i)). */
        std::vector<std::uint64_t> warmupBuckets;
        std::vector<std::uint64_t> measureBuckets;
        std::uint64_t totalCount = 0;
    };

    /** The full registry contents, in registration order. */
    struct Export
    {
        std::string schema = kSchemaVersion;
        std::vector<CounterRecord> counters;
        std::vector<DerivedRecord> derived;
        std::vector<HistogramRecord> histograms;
    };

    Export exportAll() const;

    /** Number of registered counters (tests / sanity). */
    std::size_t counterCount() const { return counters_.size(); }

  private:
    struct CounterSlot
    {
        std::string name;
        const std::uint64_t *field = nullptr;
        std::uint64_t snapshot = 0;
    };

    struct HistogramSlot
    {
        std::string name;
        const Log2Histogram *hist = nullptr;
        std::vector<std::uint64_t> snapshot;
    };

    static std::string join(const std::string &prefix,
                            std::string_view leaf)
    {
        std::string name;
        name.reserve(prefix.size() + 1 + leaf.size());
        name += prefix;
        name += '.';
        name += leaf;
        return name;
    }

    const CounterSlot &slotOf(std::string_view name) const;
    /** Snapshot value under the phase rule (0 while still in Warmup). */
    std::uint64_t snapshotOf(std::string_view name) const;

    std::vector<CounterSlot> counters_;
    std::unordered_map<std::string, std::size_t> index_;
    std::vector<HistogramSlot> histograms_;
    std::vector<DerivedRecord> derived_;
    std::unordered_map<std::string, std::size_t> derivedIndex_;
    std::vector<std::function<void(Phase)>> listeners_;
    Phase phase_ = Phase::Warmup;
    bool measureSnapshotTaken_ = false;
};

} // namespace maps::metrics

#endif // MAPS_METRICS_METRICS_HPP
