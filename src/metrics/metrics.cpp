#include "metrics/metrics.hpp"

#include "util/logging.hpp"

namespace maps::metrics {

const char *
phaseName(Phase p)
{
    switch (p) {
    case Phase::Warmup:
        return "warmup";
    case Phase::Measure:
        return "measure";
    }
    return "?";
}

void
Registry::counter(std::string name, const std::uint64_t *field)
{
    panicIf(field == nullptr,
            "metrics: null counter field for '" + name + "'");
    panicIf(measureSnapshotTaken_, "metrics: counter '" + name +
                                       "' registered after the Measure "
                                       "snapshot");
    auto [it, inserted] = index_.emplace(name, counters_.size());
    panicIf(!inserted, "metrics: duplicate counter name '" + name + "'");
    counters_.push_back(CounterSlot{std::move(name), field, 0});
    (void)it;
}

void
Registry::histogram(std::string name, const Log2Histogram *hist)
{
    panicIf(hist == nullptr, "metrics: null histogram '" + name + "'");
    panicIf(measureSnapshotTaken_, "metrics: histogram '" + name +
                                       "' registered after the Measure "
                                       "snapshot");
    for (const auto &h : histograms_)
        panicIf(h.name == name,
                "metrics: duplicate histogram name '" + name + "'");
    histograms_.push_back(HistogramSlot{std::move(name), hist, {}});
}

void
Registry::onPhaseBegin(std::function<void(Phase)> listener)
{
    listeners_.push_back(std::move(listener));
}

void
Registry::beginPhase(Phase p)
{
    panicIf(p == Phase::Warmup,
            "metrics: a run starts in Warmup; there is no way back");
    panicIf(measureSnapshotTaken_,
            "metrics: beginPhase(Measure) called twice — counters are "
            "snapshotted exactly once per run");
    for (auto &slot : counters_)
        slot.snapshot = *slot.field;
    for (auto &h : histograms_)
        h.snapshot = h.hist->buckets();
    phase_ = p;
    measureSnapshotTaken_ = true;
    for (auto &listener : listeners_)
        listener(p);
}

const Registry::CounterSlot &
Registry::slotOf(std::string_view name) const
{
    auto it = index_.find(std::string(name));
    panicIf(it == index_.end(),
            "metrics: unknown counter '" + std::string(name) + "'");
    return counters_[it->second];
}

std::uint64_t
Registry::snapshotOf(std::string_view name) const
{
    // Before the Measure snapshot the measurement window spans the whole
    // run (snapshot identically zero) — the natural semantics for runs
    // without an explicit warmup phase.
    return slotOf(name).snapshot;
}

std::uint64_t
Registry::total(std::string_view name) const
{
    return *slotOf(name).field;
}

std::uint64_t
Registry::warmup(std::string_view name) const
{
    return snapshotOf(name);
}

std::uint64_t
Registry::measure(std::string_view name) const
{
    const CounterSlot &slot = slotOf(name);
    const std::uint64_t now = *slot.field;
    panicIf(now < slot.snapshot,
            "metrics: counter '" + slot.name + "' decreased (" +
                std::to_string(slot.snapshot) + " -> " +
                std::to_string(now) + "); counters must be monotonic");
    return now - slot.snapshot;
}

void
Registry::derived(std::string name, double value, int precision)
{
    auto [it, inserted] = derivedIndex_.emplace(name, derived_.size());
    panicIf(!inserted,
            "metrics: duplicate derived metric '" + name + "'");
    derived_.push_back(DerivedRecord{std::move(name), value, precision});
    (void)it;
}

Registry::Export
Registry::exportAll() const
{
    Export out;
    out.counters.reserve(counters_.size());
    for (const auto &slot : counters_) {
        CounterRecord rec;
        rec.name = slot.name;
        rec.total = *slot.field;
        rec.warmup = slot.snapshot;
        rec.measure = rec.total - slot.snapshot;
        out.counters.push_back(std::move(rec));
    }
    out.derived = derived_;
    out.histograms.reserve(histograms_.size());
    for (const auto &h : histograms_) {
        HistogramRecord rec;
        rec.name = h.name;
        rec.warmupBuckets = h.snapshot;
        rec.totalCount = h.hist->totalCount();
        const auto &now = h.hist->buckets();
        rec.measureBuckets.resize(now.size(), 0);
        for (std::size_t i = 0; i < now.size(); ++i) {
            const std::uint64_t snap =
                i < h.snapshot.size() ? h.snapshot[i] : 0;
            rec.measureBuckets[i] = now[i] - snap;
        }
        out.histograms.push_back(std::move(rec));
    }
    return out;
}

} // namespace maps::metrics
