#include "metrics/trace_events.hpp"

#include <cstdio>
#include <fstream>
#include <utility>

#include "util/logging.hpp"

namespace maps::metrics {

namespace {

std::string
hexAddr(Addr addr)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

/** One complete event ("ph":"X") as a JSON object. */
std::string
completeEvent(const std::string &name, const char *cat, std::uint64_t ts,
              std::uint64_t dur, const std::string &args)
{
    std::string ev = "{\"name\":\"" + name + "\",\"cat\":\"" + cat +
                     "\",\"ph\":\"X\",\"ts\":" + std::to_string(ts) +
                     ",\"dur\":" + std::to_string(dur) +
                     ",\"pid\":0,\"tid\":0";
    if (!args.empty())
        ev += ",\"args\":{" + args + "}";
    ev += "}";
    return ev;
}

const char *
metadataSlug(MetadataType t)
{
    switch (t) {
    case MetadataType::Counter:
        return "counter";
    case MetadataType::TreeNode:
        return "tree";
    case MetadataType::Hash:
        return "hash";
    case MetadataType::Data:
        return "data";
    }
    return "?";
}

} // namespace

TraceEventWriter::TraceEventWriter(std::string path,
                                   std::uint64_t sample_every,
                                   std::string cell)
    : path_(std::move(path)),
      sampleEvery_(sample_every ? sample_every : 1),
      cell_(std::move(cell))
{
}

TraceEventWriter::~TraceEventWriter()
{
    finish();
}

void
TraceEventWriter::beginRequest(const MemoryRequest &req)
{
    panicIf(recording_, "trace: beginRequest while a request is open");
    const bool sample = seen_ % sampleEvery_ == 0 &&
                        sampled_ < kMaxSampledRequests && !finished_;
    ++seen_;
    if (!sample)
        return;
    recording_ = true;
    current_ = req;
    children_.clear();
}

void
TraceEventWriter::metadataAccess(const MetadataAccess &acc)
{
    if (!recording_)
        return;
    children_.push_back(Child{acc});
}

void
TraceEventWriter::endRequest(Cycles latency, std::uint32_t mem_accesses)
{
    if (!recording_)
        return;
    recording_ = false;
    ++sampled_;
    flushRequest(latency, mem_accesses);
}

void
TraceEventWriter::flushRequest(Cycles latency, std::uint32_t mem_accesses)
{
    // Synthetic layout: the request span opens at t0; each metadata
    // access occupies one 1us slot starting at t0+1; a run of
    // consecutive tree-node accesses is wrapped in a "tree traversal"
    // span covering its slots (containment is what chrome://tracing
    // nests by).
    const std::uint64_t t0 = now_;
    const std::uint64_t slots = children_.size();

    const char *kind =
        current_.kind == RequestKind::Read ? "read" : "writeback";
    std::string args = "\"addr\":\"" + hexAddr(current_.addr) +
                       "\",\"icount\":" + std::to_string(current_.icount) +
                       ",\"latency_cycles\":" + std::to_string(latency) +
                       ",\"mem_accesses\":" +
                       std::to_string(mem_accesses) +
                       ",\"metadata_accesses\":" + std::to_string(slots);
    events_.push_back(completeEvent(std::string(kind) + " " +
                                        hexAddr(current_.addr),
                                    "request", t0, slots + 2, args));

    std::size_t i = 0;
    while (i < children_.size()) {
        const MetadataAccess &acc = children_[i].acc;
        if (acc.type == MetadataType::TreeNode) {
            // Group the whole consecutive traversal run.
            std::size_t j = i;
            while (j < children_.size() &&
                   children_[j].acc.type == MetadataType::TreeNode)
                ++j;
            events_.push_back(completeEvent(
                "tree traversal", "metadata", t0 + 1 + i, j - i,
                "\"levels\":" + std::to_string(j - i)));
            for (std::size_t k = i; k < j; ++k) {
                const MetadataAccess &node = children_[k].acc;
                events_.push_back(completeEvent(
                    std::string("tree L") + std::to_string(node.level) +
                        (node.isWrite() ? " write" : " read"),
                    "metadata", t0 + 1 + k, 1,
                    "\"addr\":\"" + hexAddr(node.addr) +
                        "\",\"level\":" + std::to_string(node.level)));
            }
            i = j;
            continue;
        }
        events_.push_back(completeEvent(
            std::string(metadataSlug(acc.type)) +
                (acc.isWrite() ? " write" : " read"),
            "metadata", t0 + 1 + i, 1,
            "\"addr\":\"" + hexAddr(acc.addr) + "\""));
        ++i;
    }

    now_ = t0 + slots + 3;
    children_.clear();
}

void
TraceEventWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    recording_ = false;

    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os) {
            warn("trace: cannot open '" + tmp + "' for writing");
            return;
        }
        os << "{\"traceEvents\":[\n";
        for (std::size_t i = 0; i < events_.size(); ++i) {
            os << events_[i];
            if (i + 1 < events_.size())
                os << ",";
            os << "\n";
        }
        os << "],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{"
           << "\"schema\":\"" << kTraceSchemaVersion << "\","
           << "\"cell\":\"" << cell_ << "\","
           << "\"sample_every\":" << sampleEvery_ << ","
           << "\"requests_sampled\":" << sampled_ << ","
           << "\"requests_seen\":" << seen_ << "}}\n";
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        warn("trace: cannot rename '" + tmp + "' to '" + path_ + "'");
    events_.clear();
    events_.shrink_to_fit();
}

} // namespace maps::metrics
