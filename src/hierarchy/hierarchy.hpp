/**
 * @file
 * Three-level write-back cache hierarchy (Table I: 32KB L1D, 256KB L2,
 * 2MB LLC, all 8-way). Trace-driven: CPU references go in, LLC misses
 * and dirty writebacks come out as the memory-request stream the secure
 * memory controller services.
 */
#ifndef MAPS_HIERARCHY_HIERARCHY_HPP
#define MAPS_HIERARCHY_HIERARCHY_HPP

#include <functional>
#include <memory>

#include "cache/cache.hpp"
#include "metrics/derived.hpp"
#include "metrics/metrics.hpp"
#include "trace/record.hpp"

namespace maps {

/** Hierarchy shape; Table I defaults. */
struct HierarchyConfig
{
    std::uint64_t l1Bytes = 32_KiB;
    std::uint32_t l1Assoc = 8;
    std::uint64_t l2Bytes = 256_KiB;
    std::uint32_t l2Assoc = 8;
    std::uint64_t llcBytes = 2_MiB;
    std::uint32_t llcAssoc = 8;
    /** Replacement policy for all levels. */
    std::string policy = "lru";
};

/**
 * Per-level and aggregate statistics. Monotonic — never reset; the
 * warmup/measure split comes from metrics::Registry phase snapshots.
 */
struct HierarchyStats
{
    InstCount instructions = 0;
    std::uint64_t refs = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t llcWritebacks = 0;

    double llcMpki() const
    {
        return metrics::perKiloInstructions(llcMisses, instructions);
    }
};

/** metrics::Registry enumeration protocol (attach / measureView). */
template <typename Fn>
void
forEachCounter(HierarchyStats &s, Fn &&fn)
{
    fn("instructions", s.instructions);
    fn("refs", s.refs);
    fn("l1.misses", s.l1Misses);
    fn("l2.misses", s.l2Misses);
    fn("llc.misses", s.llcMisses);
    fn("llc.writebacks", s.llcWritebacks);
}

/**
 * Non-inclusive write-back, write-allocate hierarchy. Downstream traffic
 * is delivered to a sink callback so callers can chain the secure memory
 * controller, a trace file, or an analyzer.
 */
class CacheHierarchy
{
  public:
    using RequestSink = std::function<void(const MemoryRequest &)>;

    explicit CacheHierarchy(HierarchyConfig cfg = {});

    /** Process one CPU reference. Requests reach the sink in order. */
    void access(const MemRef &ref);

    void setRequestSink(RequestSink sink) { sink_ = std::move(sink); }

    const HierarchyStats &stats() const { return stats_; }

    /**
     * Register every hierarchy counter (aggregate stats plus the
     * l1/l2/llc arrays) with the registry, and subscribe to the phase
     * transition: downstream request icounts are phase-relative, so the
     * instruction count at the start of Measure is captured here.
     */
    void attachMetrics(metrics::Registry &registry);

    /** Instructions retired when Phase::Measure began (0 before). */
    InstCount phaseStartInstructions() const { return phaseStartInst_; }

    const HierarchyConfig &config() const { return cfg_; }
    const SetAssociativeCache &l1() const { return *l1_; }
    const SetAssociativeCache &l2() const { return *l2_; }
    const SetAssociativeCache &llc() const { return *llc_; }
    /** Mutable access (maps::check shadow attachment). */
    SetAssociativeCache &l1Mut() { return *l1_; }
    SetAssociativeCache &l2Mut() { return *l2_; }
    SetAssociativeCache &llcMut() { return *llc_; }

  private:
    HierarchyConfig cfg_;
    std::unique_ptr<SetAssociativeCache> l1_;
    std::unique_ptr<SetAssociativeCache> l2_;
    std::unique_ptr<SetAssociativeCache> llc_;
    RequestSink sink_;
    HierarchyStats stats_;
    /** Instruction count captured at beginPhase(Measure). */
    InstCount phaseStartInst_ = 0;

    /**
     * maps::check: per-level hit/miss/writeback accounting. All
     * counters are monotonic from construction, so the invariants
     * compare raw totals — no baseline snapshots needed.
     */
    void checkInvariants() const;

    void emit(Addr addr, RequestKind kind);
    /** Access the LLC; emit a Read on miss, Writeback on dirty victim. */
    void accessLlc(Addr addr, bool write);
    /** Access L2; spill into the LLC. */
    void accessL2(Addr addr, bool write);
};

} // namespace maps

#endif // MAPS_HIERARCHY_HIERARCHY_HPP
