#include "hierarchy/hierarchy.hpp"

#include "check/check.hpp"
#include "util/logging.hpp"

namespace maps {

namespace {

std::unique_ptr<SetAssociativeCache>
buildLevel(std::uint64_t size, std::uint32_t assoc,
           const std::string &policy)
{
    CacheGeometry geom;
    geom.sizeBytes = size;
    geom.assoc = assoc;
    return std::make_unique<SetAssociativeCache>(
        geom, makeReplacementPolicy(policy));
}

} // namespace

CacheHierarchy::CacheHierarchy(HierarchyConfig cfg) : cfg_(cfg)
{
    l1_ = buildLevel(cfg_.l1Bytes, cfg_.l1Assoc, cfg_.policy);
    l2_ = buildLevel(cfg_.l2Bytes, cfg_.l2Assoc, cfg_.policy);
    llc_ = buildLevel(cfg_.llcBytes, cfg_.llcAssoc, cfg_.policy);
}

void
CacheHierarchy::attachMetrics(metrics::Registry &registry)
{
    registry.attach("hierarchy", stats_);
    registry.attach("l1", l1_->statsMut());
    registry.attach("l2", l2_->statsMut());
    registry.attach("llc", llc_->statsMut());
    registry.onPhaseBegin([this](metrics::Phase p) {
        if (p == metrics::Phase::Measure)
            phaseStartInst_ = stats_.instructions;
    });
}

void
CacheHierarchy::emit(Addr addr, RequestKind kind)
{
    if (!sink_)
        return;
    MemoryRequest req;
    req.addr = blockAlign(addr);
    req.kind = kind;
    // Phase-relative: downstream consumers (reuse analyzers, MIN
    // oracles) see instruction counts restarting at the measurement
    // boundary, exactly as the old clearStats() produced.
    req.icount = stats_.instructions - phaseStartInst_;
    sink_(req);
}

void
CacheHierarchy::accessLlc(Addr addr, bool write)
{
    const auto result = llc_->access(addr, write);
    if (!result.hit) {
        ++stats_.llcMisses;
        emit(addr, RequestKind::Read);
    }
    if (result.evictedValid && result.evictedDirty) {
        if (check::enabled() && check::mutations().dropLlcWriteback) {
            // Seeded bug (check_mutants): the dirty victim vanishes —
            // neither counted nor emitted downstream.
            return;
        }
        ++stats_.llcWritebacks;
        emit(result.evictedAddr, RequestKind::Writeback);
    }
}

void
CacheHierarchy::accessL2(Addr addr, bool write)
{
    const auto result = l2_->access(addr, write);
    if (!result.hit) {
        ++stats_.l2Misses;
        accessLlc(addr, false); // fill path reads from below
        if (write) {
            // The L2 line is already marked dirty by the access above;
            // nothing further to do — writeback data stays in L2.
        }
    }
    if (result.evictedValid && result.evictedDirty)
        accessLlc(result.evictedAddr, true); // spill dirty line downward
}

void
CacheHierarchy::access(const MemRef &ref)
{
    ++stats_.refs;
    stats_.instructions += ref.instGap;

    const auto result = l1_->access(ref.addr, ref.isWrite());
    if (!result.hit) {
        ++stats_.l1Misses;
        accessL2(ref.addr, false);
    }
    if (result.evictedValid && result.evictedDirty)
        accessL2(result.evictedAddr, true);

    if (check::enabled())
        checkInvariants();
}

void
CacheHierarchy::checkInvariants() const
{
    check::countChecks();
    const auto expect = [](std::uint64_t got, std::uint64_t want,
                           const char *what) {
        if (got != want) {
            check::fail("hierarchy",
                        std::string(what) + ": got " +
                            std::to_string(got) + ", expected " +
                            std::to_string(want));
        }
    };
    // Every CPU reference is exactly one L1 access, every level's miss
    // counter mirrors its cache's own, and each lower level sees one
    // access per upper-level miss plus one per dirty spill. Counters
    // are monotonic from construction, so totals compare directly.
    const CacheStats &l1 = l1_->stats();
    const CacheStats &l2 = l2_->stats();
    const CacheStats &llc = llc_->stats();
    expect(l1.accesses(), stats_.refs, "L1 accesses != refs");
    expect(stats_.l1Misses, l1.misses, "L1 miss accounting");
    expect(l2.accesses(), stats_.l1Misses + l1.dirtyEvictions,
           "L2 accesses != L1 misses + L1 dirty evictions");
    expect(stats_.l2Misses, l2.misses, "L2 miss accounting");
    expect(llc.accesses(), stats_.l2Misses + l2.dirtyEvictions,
           "LLC accesses != L2 misses + L2 dirty evictions");
    expect(stats_.llcMisses, llc.misses, "LLC miss accounting");
    expect(stats_.llcWritebacks, llc.dirtyEvictions,
           "LLC writebacks != LLC dirty evictions");
}

} // namespace maps
