#include "hierarchy/hierarchy.hpp"

#include "util/logging.hpp"

namespace maps {

namespace {

std::unique_ptr<SetAssociativeCache>
buildLevel(std::uint64_t size, std::uint32_t assoc,
           const std::string &policy)
{
    CacheGeometry geom;
    geom.sizeBytes = size;
    geom.assoc = assoc;
    return std::make_unique<SetAssociativeCache>(
        geom, makeReplacementPolicy(policy));
}

} // namespace

CacheHierarchy::CacheHierarchy(HierarchyConfig cfg) : cfg_(cfg)
{
    l1_ = buildLevel(cfg_.l1Bytes, cfg_.l1Assoc, cfg_.policy);
    l2_ = buildLevel(cfg_.l2Bytes, cfg_.l2Assoc, cfg_.policy);
    llc_ = buildLevel(cfg_.llcBytes, cfg_.llcAssoc, cfg_.policy);
}

void
CacheHierarchy::emit(Addr addr, RequestKind kind)
{
    if (!sink_)
        return;
    MemoryRequest req;
    req.addr = blockAlign(addr);
    req.kind = kind;
    req.icount = stats_.instructions;
    sink_(req);
}

void
CacheHierarchy::accessLlc(Addr addr, bool write)
{
    const auto result = llc_->access(addr, write);
    if (!result.hit) {
        ++stats_.llcMisses;
        emit(addr, RequestKind::Read);
    }
    if (result.evictedValid && result.evictedDirty) {
        ++stats_.llcWritebacks;
        emit(result.evictedAddr, RequestKind::Writeback);
    }
}

void
CacheHierarchy::accessL2(Addr addr, bool write)
{
    const auto result = l2_->access(addr, write);
    if (!result.hit) {
        ++stats_.l2Misses;
        accessLlc(addr, false); // fill path reads from below
        if (write) {
            // The L2 line is already marked dirty by the access above;
            // nothing further to do — writeback data stays in L2.
        }
    }
    if (result.evictedValid && result.evictedDirty)
        accessLlc(result.evictedAddr, true); // spill dirty line downward
}

void
CacheHierarchy::access(const MemRef &ref)
{
    ++stats_.refs;
    stats_.instructions += ref.instGap;

    const auto result = l1_->access(ref.addr, ref.isWrite());
    if (!result.hit) {
        ++stats_.l1Misses;
        accessL2(ref.addr, false);
    }
    if (result.evictedValid && result.evictedDirty)
        accessL2(result.evictedAddr, true);
}

} // namespace maps
