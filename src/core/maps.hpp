/**
 * @file
 * Umbrella header: include <core/maps.hpp> (with -I src) to get the
 * whole public MAPS API — the simulator façade, the secure-memory
 * stack, workloads, analysis, and the offline toolkit.
 */
#ifndef MAPS_CORE_MAPS_HPP
#define MAPS_CORE_MAPS_HPP

#include "analysis/bimodal.hpp"
#include "analysis/reuse.hpp"
#include "cache/cache.hpp"
#include "cache/partition.hpp"
#include "cache/policy_belady.hpp"
#include "cache/policy_cost.hpp"
#include "cache/policy_drrip.hpp"
#include "cache/policy_eva.hpp"
#include "core/simulator.hpp"
#include "energy/energy.hpp"
#include "hierarchy/hierarchy.hpp"
#include "mem/dram.hpp"
#include "mem/fixed_latency.hpp"
#include "offline/capture.hpp"
#include "offline/csopt.hpp"
#include "offline/itermin.hpp"
#include "offline/min_sim.hpp"
#include "offline/oracle.hpp"
#include "secmem/controller.hpp"
#include "secmem/counter_store.hpp"
#include "secmem/integrity_tree.hpp"
#include "secmem/layout.hpp"
#include "secmem/metadata_cache.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"
#include "workloads/generators.hpp"
#include "workloads/suite.hpp"

#endif // MAPS_CORE_MAPS_HPP
