/**
 * @file
 * SecureMemorySim: the top-level façade wiring a workload through the
 * cache hierarchy, the secure memory controller and DRAM, with energy
 * and delay accounting. This is the public entry point used by the
 * examples and every figure bench.
 */
#ifndef MAPS_CORE_SIMULATOR_HPP
#define MAPS_CORE_SIMULATOR_HPP

#include <memory>
#include <string>
#include <vector>

#include "check/secmem_shadow.hpp"
#include "check/shadow_cache.hpp"
#include "energy/energy.hpp"
#include "hierarchy/hierarchy.hpp"
#include "mem/dram.hpp"
#include "mem/fixed_latency.hpp"
#include "metrics/metrics.hpp"
#include "metrics/trace_events.hpp"
#include "secmem/controller.hpp"
#include "workloads/suite.hpp"

namespace maps {

/** Full experiment configuration (Table I defaults). */
struct SimConfig
{
    /** Benchmark name from the registry (workloads/suite.hpp). */
    std::string benchmark = "libquantum";
    std::uint64_t seed = 1;

    /** References to warm caches before measurement (paper: 50M inst). */
    std::uint64_t warmupRefs = 200'000;
    /** Measured references (paper: 500M instructions). */
    std::uint64_t measureRefs = 2'000'000;

    HierarchyConfig hierarchy;
    SecureMemoryConfig secure;
    /** False simulates an insecure baseline (no metadata at all). */
    bool secureEnabled = true;

    /** Use the banked DRAM model; false = fixed latency. */
    bool useDram = true;
    Cycles fixedLatencyCycles = 200;

    EnergyConfig energy;
};

/**
 * Everything a run produces.
 *
 * The per-component stats members are *measure-window views* generated
 * from the metrics registry (total minus the Phase::Measure snapshot):
 * exactly what the old clearStats()-at-measure-start convention
 * produced, so every figure is unchanged. The full registry (all
 * windows, derived metrics, histograms) is in metricsExport.
 */
struct RunReport
{
    std::string benchmark;
    InstCount instructions = 0;
    std::uint64_t refs = 0;

    HierarchyStats hierarchy;
    ControllerStats controller;
    MetadataCacheStats mdCache;
    MemoryStats memory;

    double llcMpki = 0.0;
    /** Metadata cache misses (+ bypasses) per kilo-instruction. */
    double metadataMpki = 0.0;

    Cycles cycles = 0;
    double seconds = 0.0;
    EnergyBreakdown energy;
    double ed2 = 0.0;

    /** Extra memory accesses per LLC-level request (overhead factor). */
    double memAccessesPerRequest = 0.0;

    /** Full registry contents (schema metrics::kSchemaVersion). */
    metrics::Registry::Export metricsExport;
};

/**
 * One simulation instance. Construct, optionally install taps or a
 * metadata replacement policy override, then run().
 */
class SecureMemorySim
{
  public:
    /**
     * @param cfg       validated configuration.
     * @param md_policy optional metadata-cache policy override (e.g. an
     *                  oracle-driven BeladyPolicy); nullptr uses
     *                  cfg.secure.cache.policy.
     */
    explicit SecureMemorySim(SimConfig cfg,
                             std::unique_ptr<ReplacementPolicy> md_policy
                             = nullptr);

    /**
     * Observe metadata accesses.
     * @param include_warmup also deliver warmup-phase accesses — needed
     *        when the stream feeds a MIN oracle, whose cursor must stay
     *        aligned with every access the replacement policy sees.
     */
    void setMetadataTap(SecureMemoryController::MetadataTap tap,
                        bool include_warmup = false);

    /**
     * Run warmup + measurement and produce the report. One run per
     * simulation instance: the phase snapshot is taken exactly once.
     */
    RunReport run();

    /**
     * Emit sampled chrome://tracing events for this run (every
     * @p sample_every-th measured request) to @p path. Normally wired
     * automatically from `--trace-events`; public for tests and
     * programmatic use. Call before run().
     */
    void enableTraceEvents(const std::string &path,
                           std::uint64_t sample_every,
                           const std::string &cell);

    /** Components (valid after construction). */
    CacheHierarchy &hierarchy() { return *hierarchy_; }
    SecureMemoryController &controller() { return *controller_; }
    MemoryModel &memory() { return *memory_; }
    /** The phase-aware statistics registry for this simulation. */
    metrics::Registry &metricsRegistry() { return registry_; }
    const SimConfig &config() const { return cfg_; }

  private:
    SimConfig cfg_;
    std::unique_ptr<AccessGenerator> generator_;
    std::unique_ptr<MemoryModel> memory_;
    std::unique_ptr<SecureMemoryController> controller_;
    std::unique_ptr<CacheHierarchy> hierarchy_;
    EnergyModel energyModel_;
    metrics::Registry registry_;
    std::unique_ptr<metrics::TraceEventWriter> traceWriter_;

    Cycles cycles_ = 0;
    bool measuring_ = false;
    SecureMemoryController::MetadataTap userTap_;
    bool tapIncludeWarmup_ = false;

    /**
     * maps::check differential models, attached when checking is
     * enabled at construction time: one CacheShadow per cache array
     * plus the flat SecmemShadow over the controller.
     */
    std::vector<std::unique_ptr<check::CacheShadow>> cacheShadows_;
    std::unique_ptr<check::SecmemShadow> secmemShadow_;

    /** (Re)install the controller tap dispatching to the shadow, the
     * trace writer and the user tap. */
    void installTap();

    void serviceRequest(const MemoryRequest &req);

    /** maps::check: cross-component accounting over registry windows. */
    void auditAccounting() const;

    /** Register derived metrics and fill report.metricsExport. */
    void exportMetrics(RunReport &report);
};

/** Convenience: run one benchmark with a given config. */
RunReport runBenchmark(const SimConfig &cfg);

} // namespace maps

#endif // MAPS_CORE_SIMULATOR_HPP
