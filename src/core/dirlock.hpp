/**
 * @file
 * DirLock — advisory single-owner lock on a directory, used to keep two
 * runners (or a runner and the mapsd daemon) from interleaving atomic
 * publishes into the same --resume checkpoint directory, and by mapsd to
 * claim its state directory.
 *
 * The lock is a file (".maps-lock" by default) created with O_EXCL and
 * holding "maps-lock-v1 pid <pid>\n". Acquisition fails fast with a
 * descriptive error when a *live* foreign process owns the lock; a lock
 * whose owner pid no longer exists is stale and is taken over. The
 * daemon's out-of-process cell children are let through on purpose: a
 * lock owned by the calling process or by its direct parent is adopted
 * (held but not released by the adopter), so fork/exec'ed driver
 * processes may publish checkpoints into a directory their parent owns.
 *
 * This is cooperation, not security: it guards against accidental
 * double-runs, not against adversaries with write access to the
 * directory.
 */
#ifndef MAPS_CORE_DIRLOCK_HPP
#define MAPS_CORE_DIRLOCK_HPP

#include <string>

namespace maps::runner {

class DirLock
{
  public:
    DirLock() = default;
    ~DirLock() { release(); }

    DirLock(const DirLock &) = delete;
    DirLock &operator=(const DirLock &) = delete;
    DirLock(DirLock &&other) noexcept { *this = std::move(other); }
    DirLock &operator=(DirLock &&other) noexcept;

    /**
     * Try to lock @p dir (created if missing). Returns "" on success or
     * an error message naming the live owner pid on contention. A stale
     * lock (dead owner) is silently taken over; a lock owned by this
     * process or its parent is adopted without taking ownership of the
     * file.
     */
    std::string acquire(const std::string &dir,
                        const std::string &name = ".maps-lock");

    /** Unlink the lock file if this instance owns it. Idempotent. */
    void release();

    bool held() const { return held_; }
    /** True when acquire() adopted a parent/self-owned lock. */
    bool adopted() const { return adopted_; }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    bool held_ = false;
    bool adopted_ = false;
};

} // namespace maps::runner

#endif // MAPS_CORE_DIRLOCK_HPP
