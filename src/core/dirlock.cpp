#include "core/dirlock.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <unistd.h>

namespace maps::runner {

namespace {

constexpr const char *kMagic = "maps-lock-v1 pid ";

/** Parse the owner pid out of a lock file; 0 when unreadable. */
pid_t
lockOwner(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return 0;
    std::string line;
    std::getline(in, line);
    if (line.rfind(kMagic, 0) != 0)
        return 0;
    const auto digits = line.substr(std::strlen(kMagic));
    if (digits.empty())
        return 0;
    char *end = nullptr;
    const long pid = std::strtol(digits.c_str(), &end, 10);
    if (end != digits.c_str() + digits.size() || pid <= 0)
        return 0;
    return static_cast<pid_t>(pid);
}

/**
 * Liveness probe. EPERM means the pid exists but belongs to another
 * user — still alive for our purposes.
 */
bool
pidAlive(pid_t pid)
{
    return ::kill(pid, 0) == 0 || errno == EPERM;
}

} // namespace

DirLock &
DirLock::operator=(DirLock &&other) noexcept
{
    if (this != &other) {
        release();
        path_ = std::move(other.path_);
        held_ = other.held_;
        adopted_ = other.adopted_;
        other.held_ = false;
        other.adopted_ = false;
        other.path_.clear();
    }
    return *this;
}

std::string
DirLock::acquire(const std::string &dir, const std::string &name)
{
    if (held_)
        return "";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return "cannot create lock directory '" + dir +
               "': " + ec.message();
    const auto path = (std::filesystem::path(dir) / name).string();

    // Bounded retries: each loop either succeeds, fails on a live
    // owner, or removes one stale/unreadable lock file.
    for (int attempt = 0; attempt < 16; ++attempt) {
        const int fd = ::open(path.c_str(),
                              O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC,
                              0644);
        if (fd >= 0) {
            char buf[64];
            const int n = std::snprintf(buf, sizeof(buf), "%s%ld\n",
                                        kMagic,
                                        static_cast<long>(::getpid()));
            const bool ok = n > 0 && ::write(fd, buf, static_cast<
                                             std::size_t>(n)) == n;
            ::close(fd);
            if (!ok) {
                ::unlink(path.c_str());
                return "cannot write lock file '" + path + "'";
            }
            path_ = path;
            held_ = true;
            adopted_ = false;
            return "";
        }
        if (errno != EEXIST)
            return "cannot create lock file '" + path +
                   "': " + std::strerror(errno);

        const pid_t owner = lockOwner(path);
        if (owner == ::getpid() || (owner > 0 && owner == ::getppid())) {
            // Our own (or our parent's) lock: adopt it. The owner keeps
            // responsibility for unlinking it.
            path_ = path;
            held_ = true;
            adopted_ = true;
            return "";
        }
        if (owner > 0 && pidAlive(owner)) {
            return "directory '" + dir + "' is locked by running "
                   "process " + std::to_string(owner) +
                   " (" + path + "); refusing to interleave — stop the "
                   "other run or remove the lock file if it is wrong";
        }
        // Stale (dead owner) or unreadable/torn lock: take it over.
        ::unlink(path.c_str());
    }
    return "cannot acquire lock '" + path + "': too much contention";
}

void
DirLock::release()
{
    if (held_ && !adopted_)
        ::unlink(path_.c_str());
    held_ = false;
    adopted_ = false;
    path_.clear();
}

} // namespace maps::runner
