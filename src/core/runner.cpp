#include "core/runner.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#ifdef _WIN32
#include <io.h>
#define MAPS_ISATTY(fd) _isatty(fd)
#else
#include <signal.h>
#include <unistd.h>
#define MAPS_ISATTY(fd) isatty(fd)
#endif

#include "check/check.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace maps::runner {

// ---------------------------------------------------------------------------
// Options.
// ---------------------------------------------------------------------------

const char *
formatName(OutputFormat f)
{
    switch (f) {
      case OutputFormat::Table:
        return "table";
      case OutputFormat::Jsonl:
        return "json";
      case OutputFormat::Csv:
        return "csv";
    }
    return "?";
}

namespace {

bool
parsePositiveDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        return false;
    if (!std::isfinite(v) || v <= 0.0)
        return false;
    out = v;
    return true;
}

bool
parseUint(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

} // namespace

std::string
Options::tryParse(const std::vector<std::string> &args, Options &out,
                  std::vector<std::string> *positionals)
{
    // Strict-parser contract: every option may be given at most once.
    // Last-wins would silently ignore half of "--jobs=2 --jobs=4"; that
    // is almost always a script bug, so repeats are hard errors. The
    // three sweep-size spellings share one slot.
    std::vector<std::string> seen;
    for (const auto &arg : args) {
        std::string key;
        if (arg == "--quick" || arg == "--full" ||
            arg.rfind("--scale=", 0) == 0) {
            key = "--scale/--quick/--full";
        } else if (arg.rfind("--", 0) == 0) {
            const auto eq = arg.find('=');
            key = eq == std::string::npos ? arg : arg.substr(0, eq);
        }
        if (!key.empty()) {
            if (std::find(seen.begin(), seen.end(), key) != seen.end())
                return "duplicate option " + arg + " (" + key +
                       " was already given; each option may appear at "
                       "most once)";
            seen.push_back(key);
        }
        const auto value_of = [&arg](std::size_t prefix_len) {
            return arg.substr(prefix_len);
        };
        if (arg == "--help" || arg == "-h") {
            return "help";
        } else if (arg == "--quick") {
            out.scale = 0.25;
        } else if (arg == "--full") {
            out.scale = 4.0;
        } else if (arg.rfind("--scale=", 0) == 0) {
            if (!parsePositiveDouble(value_of(8), out.scale))
                return "invalid --scale value '" + value_of(8) +
                       "' (need a finite number > 0)";
        } else if (arg.rfind("--seed=", 0) == 0) {
            if (!parseUint(value_of(7), out.seed))
                return "invalid --seed value '" + value_of(7) + "'";
        } else if (arg.rfind("--jobs=", 0) == 0) {
            std::uint64_t jobs = 0;
            if (!parseUint(value_of(7), jobs) || jobs == 0 ||
                jobs > 4096)
                return "invalid --jobs value '" + value_of(7) +
                       "' (need an integer in [1, 4096])";
            out.jobs = static_cast<unsigned>(jobs);
        } else if (arg.rfind("--format=", 0) == 0) {
            const auto fmt = value_of(9);
            if (fmt == "table")
                out.format = OutputFormat::Table;
            else if (fmt == "json" || fmt == "jsonl")
                out.format = OutputFormat::Jsonl;
            else if (fmt == "csv")
                out.format = OutputFormat::Csv;
            else
                return "invalid --format value '" + fmt +
                       "' (table, json, or csv)";
        } else if (arg.rfind("--out=", 0) == 0) {
            out.outPath = value_of(6);
            if (out.outPath.empty())
                return "--out needs a file path";
        } else if (arg == "--no-progress") {
            out.progress = false;
        } else if (arg == "--check") {
            out.check = true;
        } else if (arg.rfind("--cell-timeout=", 0) == 0) {
            if (!parsePositiveDouble(value_of(15), out.cellTimeoutSec))
                return "invalid --cell-timeout value '" + value_of(15) +
                       "' (need seconds > 0)";
        } else if (arg.rfind("--resume=", 0) == 0) {
            out.resumeDir = value_of(9);
            if (out.resumeDir.empty())
                return "--resume needs a directory path";
        } else if (arg.rfind("--metrics=", 0) == 0) {
            const auto level = value_of(10);
            if (level == "off")
                out.metrics = MetricsLevel::Off;
            else if (level == "summary")
                out.metrics = MetricsLevel::Summary;
            else if (level == "full")
                out.metrics = MetricsLevel::Full;
            else
                return "invalid --metrics value '" + level +
                       "' (off, summary, or full)";
        } else if (arg.rfind("--trace-events=", 0) == 0) {
            out.traceEventsPath = value_of(15);
            if (out.traceEventsPath.empty())
                return "--trace-events needs a file path";
        } else if (arg.rfind("--trace-sample=", 0) == 0) {
            if (!parseUint(value_of(15), out.traceSample) ||
                out.traceSample == 0)
                return "invalid --trace-sample value '" + value_of(15) +
                       "' (need an integer >= 1)";
        } else if (arg.rfind("--trace-cell=", 0) == 0) {
            out.traceCell = value_of(13);
            if (out.traceCell.empty())
                return "--trace-cell needs a cell id";
        } else if (arg == "--list-cells") {
            out.listCells = true;
        } else if (arg.rfind("--only-cells=", 0) == 0) {
            const auto list = value_of(13);
            out.onlyCells.clear();
            std::size_t start = 0;
            while (start <= list.size()) {
                const auto comma = list.find(',', start);
                const auto end =
                    comma == std::string::npos ? list.size() : comma;
                if (end == start)
                    return "invalid --only-cells value '" + list +
                           "' (empty cell id)";
                out.onlyCells.push_back(list.substr(start, end - start));
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
            if (out.onlyCells.empty())
                return "--only-cells needs at least one cell id";
        } else if (arg.rfind("--", 0) == 0) {
            return "unknown option: " + arg;
        } else if (positionals) {
            positionals->push_back(arg);
        } else {
            return "unexpected argument: " + arg;
        }
    }
    return "";
}

void
Options::usage(std::ostream &os, const std::string &argv0)
{
    os << "usage: " << argv0 << " [options]\n"
       << "  --quick | --full | --scale=X  sweep size (X > 0; quick=0.25,"
          " full=4)\n"
       << "  --seed=N                      base RNG seed (default 1)\n"
       << "  --jobs=N                      worker threads (default: all"
          " cores)\n"
       << "  --format=table|json|csv       result format (default table)\n"
       << "  --out=FILE                    write results to FILE (default"
          " stdout)\n"
       << "  --no-progress                 suppress stderr progress/ETA\n"
       << "  --check                       run maps::check differential"
          " verification (exit 1 on divergence)\n"
       << "  --cell-timeout=SECS           cancel cells cooperatively"
          " after SECS seconds\n"
       << "  --resume=DIR                  checkpoint finished cells in"
          " DIR; restart skips them\n"
       << "  --metrics=off|summary|full    append maps::metrics registry"
          " rows per cell (default off)\n"
       << "  --trace-events=FILE           write a sampled chrome://tracing"
          " JSON for one cell\n"
       << "  --trace-sample=N              trace every N-th measured"
          " request (default 4096)\n"
       << "  --trace-cell=ID               cell that claims --trace-events"
          " (default: first to start)\n"
       << "  --list-cells                  print the cell grid (phase, id,"
          " cached|pending) instead of running\n"
       << "  --only-cells=ID[,ID...]       run only the named cells;"
          " others load from --resume or are skipped\n"
       << "  --help                        this message\n"
       << "Each option may be given at most once; repeats are errors.\n";
}

Options
Options::parse(int argc, char **argv,
               std::vector<std::string> *positionals)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    Options opts;
    const auto err = tryParse(args, opts, positionals);
    if (err == "help") {
        usage(std::cout, argv[0]);
        std::exit(0);
    }
    if (!err.empty()) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        usage(std::cerr, argv[0]);
        std::exit(2);
    }
    return opts;
}

std::uint64_t
Options::refs(std::uint64_t base) const
{
    const auto scaled =
        static_cast<std::uint64_t>(static_cast<double>(base) * scale);
    return scaled < 10'000 ? 10'000 : scaled;
}

unsigned
Options::effectiveJobs() const
{
    if (jobs)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::uint64_t
deriveCellSeed(std::uint64_t base, std::string_view cell_id)
{
    // FNV-1a over the id, folded into the base, splitmix64-finalized.
    std::uint64_t h = base ^ 0xCBF29CE484222325ull;
    for (const char c : cell_id) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ull;
    }
    h += 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    return h ^ (h >> 31);
}

// ---------------------------------------------------------------------------
// Process-wide observability state.
// ---------------------------------------------------------------------------

const char *
metricsLevelName(MetricsLevel level)
{
    switch (level) {
      case MetricsLevel::Off:
        return "off";
      case MetricsLevel::Summary:
        return "summary";
      case MetricsLevel::Full:
        return "full";
    }
    return "?";
}

namespace {

std::atomic<MetricsLevel> g_metricsLevel{MetricsLevel::Off};

// Trace configuration is written once (Experiment construction, before
// any worker starts) and claimed at most once; the mutex covers the
// read-and-claim against a concurrent re-arm from tests.
std::mutex g_traceMu;
std::string g_tracePath;
std::uint64_t g_traceSample = 4096;
std::string g_traceCellFilter;
std::atomic<bool> g_traceClaimed{false};

thread_local std::string tlsCellId;

} // namespace

MetricsLevel
metricsLevel()
{
    return g_metricsLevel.load(std::memory_order_relaxed);
}

void
setMetricsLevel(MetricsLevel level)
{
    g_metricsLevel.store(level, std::memory_order_relaxed);
}

void
setTraceEvents(std::string path, std::uint64_t sample_every,
               std::string cell)
{
    const std::lock_guard<std::mutex> lock(g_traceMu);
    g_tracePath = std::move(path);
    g_traceSample = sample_every ? sample_every : 1;
    g_traceCellFilter = std::move(cell);
    g_traceClaimed.store(false, std::memory_order_relaxed);
}

std::optional<TraceClaim>
claimTraceEvents()
{
    // Fast path once somebody holds the claim (or tracing is off and
    // nothing was ever configured).
    if (g_traceClaimed.load(std::memory_order_acquire))
        return std::nullopt;
    const std::lock_guard<std::mutex> lock(g_traceMu);
    if (g_tracePath.empty())
        return std::nullopt;
    if (!g_traceCellFilter.empty() && tlsCellId != g_traceCellFilter)
        return std::nullopt;
    if (g_traceClaimed.exchange(true, std::memory_order_acq_rel))
        return std::nullopt;
    TraceClaim claim;
    claim.path = g_tracePath;
    claim.sampleEvery = g_traceSample;
    claim.cell = tlsCellId.empty() ? std::string("run") : tlsCellId;
    return claim;
}

const std::string &
currentCellId()
{
    return tlsCellId;
}

// ---------------------------------------------------------------------------
// Value / Row / CellOutput.
// ---------------------------------------------------------------------------

Value
Value::num(double v, int precision)
{
    Value out;
    out.kind_ = Kind::Real;
    out.real_ = v;
    out.precision_ = precision;
    return out;
}

Value
Value::integer(std::uint64_t v)
{
    Value out;
    out.kind_ = Kind::Int;
    out.int_ = v;
    return out;
}

Value
Value::size(std::uint64_t bytes)
{
    return Value(TextTable::fmtSize(bytes));
}

std::string
Value::text() const
{
    switch (kind_) {
      case Kind::Text:
        return text_;
      case Kind::Real:
        return TextTable::fmt(real_, precision_);
      case Kind::Int:
        return TextTable::fmt(int_);
    }
    return "";
}

std::string
Value::json() const
{
    switch (kind_) {
      case Kind::Real: {
        // Render the display value so every sink reports one number;
        // non-finite doubles have no JSON literal, so quote them.
        if (!std::isfinite(real_))
            return "\"" + TextTable::fmt(real_, precision_) + "\"";
        return TextTable::fmt(real_, precision_);
      }
      case Kind::Int:
        return TextTable::fmt(int_);
      case Kind::Text:
        break;
    }
    std::string out = "\"";
    for (const char ch : text_) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(ch));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
    return out;
}

double
Value::asDouble() const
{
    switch (kind_) {
      case Kind::Real:
        return real_;
      case Kind::Int:
        return static_cast<double>(int_);
      case Kind::Text:
        break;
    }
    return 0.0;
}

Row &
Row::add(std::string key, Value v)
{
    cols.emplace_back(std::move(key), std::move(v));
    return *this;
}

Row &
Row::add(std::string key, const std::string &text)
{
    return add(std::move(key), Value(text));
}

Row &
Row::add(std::string key, const char *text)
{
    return add(std::move(key), Value(text));
}

Row &
Row::add(std::string key, double v, int precision)
{
    return add(std::move(key), Value::num(v, precision));
}

Row &
Row::add(std::string key, std::uint64_t v)
{
    return add(std::move(key), Value::integer(v));
}

const Value *
Row::find(std::string_view key) const
{
    for (const auto &[k, v] : cols)
        if (k == key)
            return &v;
    return nullptr;
}

double
Row::num(std::string_view key) const
{
    const auto *v = find(key);
    return v ? v->asDouble() : 0.0;
}

CellOutput &
CellOutput::add(std::string section, Row row)
{
    rows.push_back({std::move(section), std::move(row)});
    return *this;
}

// ---------------------------------------------------------------------------
// Sinks.
// ---------------------------------------------------------------------------

void
ResultSink::begin(const ExperimentMeta &, const Options &)
{
}

void
ResultSink::note(const std::string &)
{
}

void
ResultSink::end()
{
}

void
TableSink::begin(const ExperimentMeta &meta, const Options &opts)
{
    const std::string rule(70, '=');
    os_ << rule << '\n'
        << "MAPS reproduction | " << meta.title << '\n'
        << "paper reference   | " << meta.paperRef << '\n';
    char scale[64];
    std::snprintf(scale, sizeof(scale), "%.2f", opts.scale);
    // No --jobs echo here: results are independent of the job count and
    // the table must be byte-identical for every value of it.
    os_ << "scale             | " << scale
        << "x (use --quick / --full / --scale=X)\n"
        << rule << "\n\n";
}

void
TableSink::row(const SectionRow &r)
{
    if (sections_.empty() || sections_.back().first != r.section) {
        // Append to an earlier table if the section re-appears, so
        // drivers may emit related sections in any grouping.
        auto it = std::find_if(
            sections_.begin(), sections_.end(),
            [&](const auto &s) { return s.first == r.section; });
        if (it != sections_.end()) {
            it->second.push_back(r.row);
            return;
        }
        sections_.push_back({r.section, {}});
    }
    sections_.back().second.push_back(r.row);
}

void
TableSink::note(const std::string &text)
{
    notes_.push_back(text);
}

void
TableSink::end()
{
    bool first = true;
    for (const auto &[section, rows] : sections_) {
        if (rows.empty())
            continue;
        if (!first)
            os_ << '\n';
        first = false;
        if (!section.empty())
            os_ << section << '\n';
        std::vector<std::string> header;
        for (const auto &[key, value] : rows.front().cols)
            header.push_back(key);
        TextTable table(header);
        for (const auto &row : rows) {
            std::vector<std::string> cells;
            for (const auto &key : header) {
                const auto *v = row.find(key);
                cells.push_back(v ? v->text() : "");
            }
            table.addRow(std::move(cells));
        }
        table.print(os_);
    }
    for (const auto &text : notes_)
        os_ << '\n' << text << '\n';
    os_.flush();
}

void
JsonlSink::begin(const ExperimentMeta &meta, const Options &)
{
    experiment_ = meta.name;
}

void
JsonlSink::row(const SectionRow &r)
{
    os_ << "{\"experiment\":" << Value(experiment_).json()
        << ",\"section\":" << Value(r.section).json();
    for (const auto &[key, value] : r.row.cols)
        os_ << ',' << Value(key).json() << ':' << value.json();
    os_ << "}\n";
    os_.flush();
}

void
CsvSink::begin(const ExperimentMeta &meta, const Options &)
{
    experiment_ = meta.name;
}

void
CsvSink::row(const SectionRow &r)
{
    for (const auto &[key, value] : r.row.cols) {
        if (std::find(columns_.begin(), columns_.end(), key) ==
            columns_.end())
            columns_.push_back(key);
    }
    rows_.push_back(r);
}

void
CsvSink::end()
{
    CsvWriter writer(os_);
    std::vector<std::string> header{"experiment", "section"};
    header.insert(header.end(), columns_.begin(), columns_.end());
    writer.writeRow(header);
    for (const auto &r : rows_) {
        std::vector<std::string> cells{experiment_, r.section};
        for (const auto &key : columns_) {
            const auto *v = r.row.find(key);
            cells.push_back(v ? v->text() : "");
        }
        writer.writeRow(cells);
    }
    os_.flush();
}

namespace {

/** Sink wrapper owning the output file stream. */
class FileSink : public ResultSink
{
  public:
    FileSink(std::unique_ptr<std::ofstream> os,
             std::unique_ptr<ResultSink> inner)
        : os_(std::move(os)), inner_(std::move(inner))
    {
    }

    void begin(const ExperimentMeta &meta, const Options &opts) override
    {
        inner_->begin(meta, opts);
    }
    void row(const SectionRow &r) override { inner_->row(r); }
    void note(const std::string &text) override { inner_->note(text); }
    void end() override { inner_->end(); }

  private:
    std::unique_ptr<std::ofstream> os_;
    std::unique_ptr<ResultSink> inner_;
};

std::unique_ptr<ResultSink>
makeSinkFor(const Options &opts, std::ostream &os)
{
    switch (opts.format) {
      case OutputFormat::Table:
        return std::make_unique<TableSink>(os);
      case OutputFormat::Jsonl:
        return std::make_unique<JsonlSink>(os);
      case OutputFormat::Csv:
        return std::make_unique<CsvSink>(os);
    }
    return std::make_unique<TableSink>(os);
}

} // namespace

std::unique_ptr<ResultSink>
makeSink(const Options &opts)
{
    if (opts.outPath.empty())
        return makeSinkFor(opts, std::cout);
    auto file = std::make_unique<std::ofstream>(opts.outPath);
    fatalIf(!*file, "cannot open --out file '" + opts.outPath + "'");
    auto &os = *file;
    return std::make_unique<FileSink>(std::move(file),
                                      makeSinkFor(opts, os));
}

// ---------------------------------------------------------------------------
// Checkpoint serialization (--resume).
// ---------------------------------------------------------------------------

namespace detail {

namespace {

/**
 * Length-prefixed strings ("<len>:<bytes>") sidestep escaping entirely,
 * so the round trip is exact for any cell id / section / text content.
 */
void
putString(std::ostream &os, const std::string &s)
{
    os << s.size() << ':' << s;
}

/** Strict cursor over a checkpoint file's contents. */
class Cursor
{
  public:
    explicit Cursor(const std::string &text) : text_(text) {}

    bool literal(const char *lit)
    {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool uint(std::uint64_t &out)
    {
        if (pos_ >= text_.size() || !std::isdigit(
                static_cast<unsigned char>(text_[pos_])))
            return false;
        out = 0;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            out = out * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
            ++pos_;
        }
        return true;
    }

    bool hexU64(std::uint64_t &out)
    {
        if (pos_ >= text_.size() || !std::isxdigit(
                static_cast<unsigned char>(text_[pos_])))
            return false;
        out = 0;
        unsigned digits = 0;
        while (pos_ < text_.size() &&
               std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
            const char c = text_[pos_];
            const std::uint64_t nibble =
                c <= '9' ? static_cast<std::uint64_t>(c - '0')
                         : static_cast<std::uint64_t>(
                               (c | 0x20) - 'a' + 10);
            out = (out << 4) | nibble;
            ++pos_;
            if (++digits > 16)
                return false;
        }
        return true;
    }

    bool string(std::string &out)
    {
        std::uint64_t len = 0;
        if (!uint(len) || !literal(":"))
            return false;
        if (pos_ + len > text_.size())
            return false;
        out = text_.substr(pos_, len);
        pos_ += len;
        return true;
    }

    bool done() const { return pos_ == text_.size(); }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
serializeCellOutput(const CellOutput &out)
{
    std::ostringstream os;
    os << "maps-cell-v1 " << out.rows.size() << '\n';
    for (const auto &sr : out.rows) {
        os << "row " << sr.row.cols.size() << ' ';
        putString(os, sr.section);
        os << '\n';
        for (const auto &[key, value] : sr.row.cols) {
            switch (value.kind()) {
              case Value::Kind::Text:
                os << "t ";
                putString(os, key);
                os << ' ';
                putString(os, value.rawText());
                break;
              case Value::Kind::Real:
                // Bit pattern, not decimal: the restored double must be
                // the exact value so re-rendered output is byte-equal.
                os << "r ";
                putString(os, key);
                {
                    char buf[32];
                    std::snprintf(buf, sizeof(buf), " %016" PRIx64 " %d",
                                  std::bit_cast<std::uint64_t>(
                                      value.rawReal()),
                                  value.precision());
                    os << buf;
                }
                break;
              case Value::Kind::Int:
                os << "i ";
                putString(os, key);
                os << ' ' << value.rawInt();
                break;
            }
            os << '\n';
        }
    }
    os << "done\n";
    return os.str();
}

bool
parseCellOutput(const std::string &text, CellOutput &out)
{
    Cursor cur(text);
    std::uint64_t rows = 0;
    if (!cur.literal("maps-cell-v1 ") || !cur.uint(rows) ||
        !cur.literal("\n"))
        return false;
    CellOutput parsed;
    for (std::uint64_t r = 0; r < rows; ++r) {
        std::uint64_t cols = 0;
        std::string section;
        if (!cur.literal("row ") || !cur.uint(cols) ||
            !cur.literal(" ") || !cur.string(section) ||
            !cur.literal("\n"))
            return false;
        Row row;
        for (std::uint64_t c = 0; c < cols; ++c) {
            std::string key;
            if (cur.literal("t ")) {
                std::string value;
                if (!cur.string(key) || !cur.literal(" ") ||
                    !cur.string(value) || !cur.literal("\n"))
                    return false;
                row.add(std::move(key), Value(std::move(value)));
            } else if (cur.literal("r ")) {
                std::uint64_t bits = 0;
                std::uint64_t precision = 0;
                if (!cur.string(key) || !cur.literal(" ") ||
                    !cur.hexU64(bits) || !cur.literal(" ") ||
                    !cur.uint(precision) || !cur.literal("\n") ||
                    precision > 32)
                    return false;
                row.add(std::move(key),
                        Value::num(std::bit_cast<double>(bits),
                                   static_cast<int>(precision)));
            } else if (cur.literal("i ")) {
                std::uint64_t value = 0;
                if (!cur.string(key) || !cur.literal(" ") ||
                    !cur.uint(value) || !cur.literal("\n"))
                    return false;
                row.add(std::move(key), Value::integer(value));
            } else {
                return false;
            }
        }
        parsed.add(std::move(section), std::move(row));
    }
    if (!cur.literal("done\n") || !cur.done())
        return false;
    out = std::move(parsed);
    return true;
}

std::string
checkpointFileName(const std::string &phase, const Cell &cell,
                   double scale)
{
    // The hash keys everything the result depends on (phase, id, the
    // derived seed, the sweep scale) so a checkpoint from a different
    // configuration can never be mistaken for this cell's.
    std::uint64_t h = 0xCBF29CE484222325ull;
    const auto fold = [&h](const void *data, std::size_t n) {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= bytes[i];
            h *= 0x100000001B3ull;
        }
    };
    fold(phase.data(), phase.size());
    fold("\0", 1);
    fold(cell.id.data(), cell.id.size());
    fold("\0", 1);
    fold(&cell.seed, sizeof(cell.seed));
    const std::uint64_t scale_bits = std::bit_cast<std::uint64_t>(scale);
    fold(&scale_bits, sizeof(scale_bits));

    std::string stem;
    for (const char c : cell.id) {
        const bool keep = std::isalnum(static_cast<unsigned char>(c)) ||
                          c == '.' || c == '_' || c == '-';
        stem += keep ? c : '_';
        if (stem.size() >= 40)
            break;
    }
    if (stem.empty())
        stem = "cell";
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "-%016" PRIx64 ".cell",
                  h);
    return stem + suffix;
}

} // namespace detail

// ---------------------------------------------------------------------------
// Runner.
// ---------------------------------------------------------------------------

namespace {

/**
 * Cooperative cancellation slot, one per worker thread. The watchdog
 * stamps cancelStamp with the slot's current cell serial; heartbeat()
 * only honors a stamp matching the cell it is called from, so a cell
 * finishing at the same moment can never cancel its successor.
 */
struct WorkerSlot
{
    std::atomic<std::uint64_t> stamp{0}; ///< 0 = idle, else cell index+1
    std::atomic<std::int64_t> startedAtMs{0};
    std::atomic<std::uint64_t> cancelStamp{0};
    double timeoutSec = 0.0;
};

thread_local WorkerSlot *tlsSlot = nullptr;
thread_local std::uint64_t tlsStamp = 0;

std::int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

void
heartbeat()
{
    WorkerSlot *slot = tlsSlot;
    if (!slot)
        return;
    if (slot->cancelStamp.load(std::memory_order_relaxed) != tlsStamp)
        return;
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "cell exceeded --cell-timeout=%gs and was cancelled",
                  slot->timeoutSec);
    throw CellTimedOut(buf);
}

// ---------------------------------------------------------------------------
// Graceful SIGINT/SIGTERM.
// ---------------------------------------------------------------------------

namespace {

std::atomic<int> g_interrupt{0};
std::atomic<bool> g_handlersInstalled{false};

void
onGracefulSignal(int signo)
{
    // Async-signal-safe: one relaxed store. Workers poll the flag
    // before claiming their next cell; SA_RESETHAND below restores the
    // default disposition so a second signal terminates immediately.
    g_interrupt.store(signo, std::memory_order_relaxed);
}

} // namespace

void
installSignalHandlers()
{
#ifndef _WIN32
    if (g_handlersInstalled.exchange(true))
        return;
    struct sigaction sa = {};
    sa.sa_handler = &onGracefulSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESETHAND;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
#endif
}

int
interruptSignal()
{
    return g_interrupt.load(std::memory_order_relaxed);
}

void
requestInterrupt(int signo)
{
    g_interrupt.store(signo, std::memory_order_relaxed);
}

namespace {

/**
 * stderr progress/ETA reporter. All completions funnel through one
 * mutex, which also serializes the stderr writes.
 */
class Progress
{
  public:
    Progress(std::string phase, std::size_t total, bool enabled)
        : phase_(std::move(phase)), total_(total),
          enabled_(enabled && total > 0),
          tty_(MAPS_ISATTY(2 /* stderr */) != 0),
          start_(std::chrono::steady_clock::now())
    {
    }

    void completed(const std::string &cell_id)
    {
        if (!enabled_)
            return;
        const std::lock_guard<std::mutex> lock(mu_);
        ++done_;
        // Non-tty consumers (CI logs) get at most ~10 lines per phase.
        if (!tty_ && done_ != total_ &&
            done_ % std::max<std::size_t>(1, total_ / 10) != 0)
            return;
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        const double eta =
            elapsed / static_cast<double>(done_) *
            static_cast<double>(total_ - done_);
        std::fprintf(stderr, "%s[%s] %zu/%zu cells, %.1fs elapsed, "
                             "eta %.1fs (%s)%s",
                     tty_ ? "\r\033[K" : "", phase_.c_str(), done_,
                     total_, elapsed, eta, cell_id.c_str(),
                     tty_ ? "" : "\n");
        if (tty_ && done_ == total_)
            std::fprintf(stderr, "\n");
        std::fflush(stderr);
    }

  private:
    std::string phase_;
    std::size_t total_;
    bool enabled_;
    bool tty_;
    std::chrono::steady_clock::time_point start_;
    std::mutex mu_;
    std::size_t done_ = 0;
};

} // namespace

std::vector<CellOutput>
ExperimentRunner::run(const std::vector<Cell> &cells,
                      const std::string &phase)
{
    std::vector<Cell> work(cells);
    for (auto &cell : work) {
        if (!cell.seed)
            cell.seed = deriveCellSeed(opts_.seed, cell.id);
        panicIf(!cell.work, "cell '" + cell.id + "' has no work function");
    }

    const std::string phase_name = phase.empty() ? "run" : phase;
    std::vector<CellOutput> out(work.size());

    // --resume: load checkpoints written by a previous (possibly killed)
    // run of the same configuration; loaded cells are never re-run.
    std::vector<char> loaded(work.size(), 0);
    std::filesystem::path ckdir;
    const bool checkpointing = !opts_.resumeDir.empty();
    if (checkpointing) {
        ckdir = opts_.resumeDir;
        std::error_code ec;
        std::filesystem::create_directories(ckdir, ec);
        fatalIf(static_cast<bool>(ec), "cannot create --resume directory '" +
                                           opts_.resumeDir + "': " +
                                           ec.message());
        // Claim the directory before publishing into it (skipped in the
        // read-only --list-cells mode). Lock errors are fatal: silently
        // interleaving two runs would corrupt neither file (publishes
        // are atomic) but makes the resulting mix impossible to reason
        // about.
        if (!opts_.listCells && !resumeLock_.held()) {
            const auto err = resumeLock_.acquire(opts_.resumeDir);
            fatalIf(!err.empty(), err);
        }
        for (std::size_t i = 0; i < work.size(); ++i) {
            const auto path = ckdir / detail::checkpointFileName(
                                          phase_name, work[i], opts_.scale);
            std::ifstream in(path, std::ios::binary);
            if (!in)
                continue;
            std::ostringstream text;
            text << in.rdbuf();
            // A malformed checkpoint (e.g. torn by a crash before the
            // atomic rename existed) is simply re-run.
            if (detail::parseCellOutput(text.str(), out[i])) {
                loaded[i] = 1;
                ++resumedCells_;
            }
        }
    }

    // --list-cells: report the grid instead of running it. A phase with
    // unresolved (pending) cells cannot let the driver continue — later
    // phases may consume this phase's outputs — so the process stops
    // here; the service re-lists after executing the pending cells.
    if (opts_.listCells) {
        bool complete = true;
        for (std::size_t i = 0; i < work.size(); ++i) {
            std::printf("cell\t%s\t%s\t%s\n", phase_name.c_str(),
                        work[i].id.c_str(),
                        loaded[i] ? "cached" : "pending");
            complete = complete && loaded[i];
        }
        if (!complete) {
            std::printf("list-end incomplete\n");
            std::fflush(stdout);
            std::exit(0);
        }
        std::fflush(stdout);
        return out;
    }

    // --only-cells: unselected cells keep their checkpoint-loaded
    // output (dependent phases need it) or stay empty.
    std::vector<char> selected(work.size(), 1);
    if (!opts_.onlyCells.empty()) {
        for (std::size_t i = 0; i < work.size(); ++i) {
            const bool want =
                std::find(opts_.onlyCells.begin(), opts_.onlyCells.end(),
                          work[i].id) != opts_.onlyCells.end();
            selected[i] = want ? 1 : 0;
            if (want &&
                std::find(matchedOnlyCells_.begin(),
                          matchedOnlyCells_.end(),
                          work[i].id) == matchedOnlyCells_.end())
                matchedOnlyCells_.push_back(work[i].id);
            if (!want && !loaded[i])
                ++shardSkipped_;
        }
    }

    std::size_t pending = 0;
    for (std::size_t i = 0; i < work.size(); ++i)
        pending += (!loaded[i] && selected[i]) ? 1 : 0;
    Progress progress(phase_name, pending, opts_.progress);

    const unsigned jobs = static_cast<unsigned>(std::min<std::size_t>(
        opts_.effectiveJobs(), std::max<std::size_t>(pending, 1)));

    std::atomic<std::size_t> next{0};
    std::mutex fail_mu;
    std::vector<CellFailure> failures;

    std::vector<std::unique_ptr<WorkerSlot>> slots;
    for (unsigned t = 0; t < jobs; ++t) {
        slots.push_back(std::make_unique<WorkerSlot>());
        slots.back()->timeoutSec = opts_.cellTimeoutSec;
    }

    std::vector<char> visited(work.size(), 0);

    const auto worker = [&](WorkerSlot *slot) {
        tlsSlot = slot;
        for (;;) {
            // A graceful-stop request (SIGINT/SIGTERM) lets the cell in
            // flight finish and checkpoint; unclaimed cells stay behind
            // for --resume.
            if (interruptSignal())
                break;
            const std::size_t i = next.fetch_add(1);
            if (i >= work.size())
                break;
            visited[i] = 1;
            if (loaded[i] || !selected[i])
                continue;
            tlsStamp = static_cast<std::uint64_t>(i) + 1;
            tlsCellId = work[i].id;
            slot->startedAtMs.store(nowMs(), std::memory_order_relaxed);
            slot->stamp.store(tlsStamp, std::memory_order_release);
            bool ok = true;
            std::string error;
            try {
                out[i] = work[i].work(work[i]);
            } catch (const std::exception &e) {
                ok = false;
                error = e.what();
            } catch (...) {
                ok = false;
                error = "unknown exception";
            }
            slot->stamp.store(0, std::memory_order_release);
            if (!ok) {
                out[i] = CellOutput{};
                const std::lock_guard<std::mutex> lock(fail_mu);
                failures.push_back({i, phase_name, work[i].id,
                                    work[i].seed, error});
            } else if (checkpointing) {
                const auto path =
                    ckdir / detail::checkpointFileName(phase_name, work[i],
                                                       opts_.scale);
                // Atomic publish: a kill can leave a stale .tmp around
                // but never a torn checkpoint under the final name.
                const auto tmp = path.string() + ".tmp";
                std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
                os << detail::serializeCellOutput(out[i]);
                os.flush();
                if (os) {
                    os.close();
                    std::error_code ec;
                    std::filesystem::rename(tmp, path, ec);
                    if (ec)
                        std::filesystem::remove(tmp, ec);
                } else {
                    std::error_code ec;
                    std::filesystem::remove(tmp, ec);
                }
            }
            progress.completed(work[i].id);
        }
        tlsSlot = nullptr;
        tlsCellId.clear();
    };

    // Cooperative watchdog: flags a slot whose current cell has been
    // running past --cell-timeout; the cell observes the flag at its
    // next runner::heartbeat() call and unwinds as a recorded failure.
    std::atomic<bool> stop_watchdog{false};
    std::thread watchdog;
    if (opts_.cellTimeoutSec > 0.0) {
        const auto timeout_ms =
            static_cast<std::int64_t>(opts_.cellTimeoutSec * 1000.0);
        watchdog = std::thread([&, timeout_ms] {
            while (!stop_watchdog.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(25));
                const std::int64_t now = nowMs();
                for (const auto &slot : slots) {
                    const std::uint64_t stamp =
                        slot->stamp.load(std::memory_order_acquire);
                    if (!stamp)
                        continue;
                    const std::int64_t started =
                        slot->startedAtMs.load(std::memory_order_relaxed);
                    if (now - started > timeout_ms)
                        slot->cancelStamp.store(
                            stamp, std::memory_order_relaxed);
                }
            }
        });
    }

    if (jobs <= 1) {
        worker(slots[0].get());
    } else {
        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            threads.emplace_back(worker, slots[t].get());
        for (auto &t : threads)
            t.join();
    }
    if (watchdog.joinable()) {
        stop_watchdog.store(true, std::memory_order_relaxed);
        watchdog.join();
    }

    // Deterministic failure order regardless of which worker hit what.
    std::sort(failures.begin(), failures.end(),
              [](const CellFailure &a, const CellFailure &b) {
                  return a.index < b.index;
              });
    failures_.insert(failures_.end(), failures.begin(), failures.end());

    if (interruptSignal()) {
        for (std::size_t i = 0; i < work.size(); ++i)
            if (!visited[i] && !loaded[i] && selected[i])
                ++interruptedCells_;
    }
    return out;
}

std::vector<std::string>
ExperimentRunner::unmatchedOnlyCells() const
{
    std::vector<std::string> unmatched;
    for (const auto &id : opts_.onlyCells)
        if (std::find(matchedOnlyCells_.begin(), matchedOnlyCells_.end(),
                      id) == matchedOnlyCells_.end())
            unmatched.push_back(id);
    return unmatched;
}

// ---------------------------------------------------------------------------
// Experiment harness.
// ---------------------------------------------------------------------------

namespace {

/** Swallows everything; --list-cells owns stdout for the cell lines. */
class NullSink : public ResultSink
{
  public:
    void row(const SectionRow &) override {}
};

std::unique_ptr<ResultSink>
makeExperimentSink(const Options &opts)
{
    if (opts.listCells)
        return std::make_unique<NullSink>();
    return makeSink(opts);
}

} // namespace

Experiment::Experiment(ExperimentMeta meta, const Options &opts)
    : meta_(std::move(meta)), runner_(opts),
      sink_(makeExperimentSink(opts))
{
    installSignalHandlers();
    if (opts.check) {
        // Record mode: divergences are tallied and summarized by
        // finish() instead of aborting the run at the first one.
        check::setEnabled(true);
        check::setFailureMode(check::FailureMode::Record);
        check::resetStats();
    }
    // Publish the observability options process-wide before any cell
    // runs; the simulator and bench helpers read them from there.
    setMetricsLevel(opts.metrics);
    setTraceEvents(opts.traceEventsPath, opts.traceSample,
                   opts.traceCell);
    sink_->begin(meta_, opts);
}

std::vector<CellOutput>
Experiment::run(const std::vector<Cell> &cells, const std::string &phase)
{
    auto out = runner_.run(cells, phase.empty() ? meta_.name : phase);
    // A phase that came back with holes must not let the driver
    // continue: later phases may consume these outputs cell-by-cell,
    // and a missing one is undefined to dereference. Holes appear on a
    // graceful interrupt (unclaimed cells) and in --only-cells shards
    // (unselected cells with no checkpoint, or failed siblings).
    // Finished cells are already checkpointed, so stopping here loses
    // nothing; finish() reports what happened and picks the exit code.
    const bool interrupted =
        interruptSignal() != 0 && runner_.interruptedCells() > 0;
    const bool shardHoles =
        !runner_.options().onlyCells.empty() &&
        (runner_.shardSkippedCells() > 0 || !runner_.failures().empty());
    if (interrupted || shardHoles)
        std::exit(finish());
    return out;
}

std::vector<CellOutput>
Experiment::runAndEmit(const std::vector<Cell> &cells,
                       const std::string &phase)
{
    auto outputs = run(cells, phase);
    for (const auto &output : outputs)
        emit(output);
    return outputs;
}

void
Experiment::emit(const SectionRow &r)
{
    sink_->row(r);
}

void
Experiment::emit(std::string section, Row row)
{
    emit(SectionRow{std::move(section), std::move(row)});
}

void
Experiment::emit(const CellOutput &out)
{
    for (const auto &r : out.rows)
        emit(r);
}

void
Experiment::note(const std::string &text)
{
    sink_->note(text);
}

int
Experiment::finish()
{
    if (runner_.options().listCells) {
        // Every phase resolved from checkpoints; the grid is complete.
        if (!finished_) {
            std::printf("list-end complete\n");
            std::fflush(stdout);
            finished_ = true;
        }
        return 0;
    }
    const bool checking = runner_.options().check;
    const auto &failed = runner_.failures();
    const int interrupt = interruptSignal();
    if (!finished_) {
        if (interrupt) {
            Row row;
            row.add("signal", static_cast<std::uint64_t>(interrupt));
            row.add("cells not run", runner_.interruptedCells());
            row.add("resume",
                    runner_.options().resumeDir.empty()
                        ? "no --resume dir; completed work was lost"
                        : "re-run with the same --resume dir to "
                          "continue");
            emit("interrupted", std::move(row));
        }
        if (checking) {
            Row row;
            row.add("checks", check::checkCount());
            row.add("divergences", check::failureCount());
            // Only fault campaigns declare expected domains; the column
            // stays absent (and goldens unchanged) everywhere else.
            if (check::expectedCount() != 0)
                row.add("expected divergences", check::expectedCount());
            row.add("verdict",
                    check::failureCount() == 0 ? "ok" : "DIVERGED");
            emit("maps::check", std::move(row));
            for (const auto &failure : check::failures()) {
                note("maps::check divergence [" + failure.domain + "] " +
                     failure.message);
            }
        }
        for (const auto &f : failed) {
            Row row;
            row.add("cell", f.id);
            row.add("phase", f.phase);
            row.add("seed", f.seed);
            row.add("error", f.error);
            emit("failed cells", std::move(row));
        }
        sink_->end();
        finished_ = true;
    }
    int code = 0;
    if (checking && check::failureCount() != 0)
        code = 1;
    if (!failed.empty())
        code = 1;
    const auto unmatched = runner_.unmatchedOnlyCells();
    if (!unmatched.empty()) {
        std::string ids;
        for (const auto &id : unmatched)
            ids += (ids.empty() ? "" : ", ") + id;
        warn("--only-cells named unknown cells: " + ids);
        code = 4;
    }
    if (interrupt)
        code = 128 + interrupt;
    return code;
}

} // namespace maps::runner
