#include "core/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>

#ifdef _WIN32
#include <io.h>
#define MAPS_ISATTY(fd) _isatty(fd)
#else
#include <unistd.h>
#define MAPS_ISATTY(fd) isatty(fd)
#endif

#include "check/check.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace maps::runner {

// ---------------------------------------------------------------------------
// Options.
// ---------------------------------------------------------------------------

const char *
formatName(OutputFormat f)
{
    switch (f) {
      case OutputFormat::Table:
        return "table";
      case OutputFormat::Jsonl:
        return "json";
      case OutputFormat::Csv:
        return "csv";
    }
    return "?";
}

namespace {

bool
parsePositiveDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        return false;
    if (!std::isfinite(v) || v <= 0.0)
        return false;
    out = v;
    return true;
}

bool
parseUint(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

} // namespace

std::string
Options::tryParse(const std::vector<std::string> &args, Options &out,
                  std::vector<std::string> *positionals)
{
    for (const auto &arg : args) {
        const auto value_of = [&arg](std::size_t prefix_len) {
            return arg.substr(prefix_len);
        };
        if (arg == "--help" || arg == "-h") {
            return "help";
        } else if (arg == "--quick") {
            out.scale = 0.25;
        } else if (arg == "--full") {
            out.scale = 4.0;
        } else if (arg.rfind("--scale=", 0) == 0) {
            if (!parsePositiveDouble(value_of(8), out.scale))
                return "invalid --scale value '" + value_of(8) +
                       "' (need a finite number > 0)";
        } else if (arg.rfind("--seed=", 0) == 0) {
            if (!parseUint(value_of(7), out.seed))
                return "invalid --seed value '" + value_of(7) + "'";
        } else if (arg.rfind("--jobs=", 0) == 0) {
            std::uint64_t jobs = 0;
            if (!parseUint(value_of(7), jobs) || jobs == 0 ||
                jobs > 4096)
                return "invalid --jobs value '" + value_of(7) +
                       "' (need an integer in [1, 4096])";
            out.jobs = static_cast<unsigned>(jobs);
        } else if (arg.rfind("--format=", 0) == 0) {
            const auto fmt = value_of(9);
            if (fmt == "table")
                out.format = OutputFormat::Table;
            else if (fmt == "json" || fmt == "jsonl")
                out.format = OutputFormat::Jsonl;
            else if (fmt == "csv")
                out.format = OutputFormat::Csv;
            else
                return "invalid --format value '" + fmt +
                       "' (table, json, or csv)";
        } else if (arg.rfind("--out=", 0) == 0) {
            out.outPath = value_of(6);
            if (out.outPath.empty())
                return "--out needs a file path";
        } else if (arg == "--no-progress") {
            out.progress = false;
        } else if (arg == "--check") {
            out.check = true;
        } else if (arg.rfind("--", 0) == 0) {
            return "unknown option: " + arg;
        } else if (positionals) {
            positionals->push_back(arg);
        } else {
            return "unexpected argument: " + arg;
        }
    }
    return "";
}

void
Options::usage(std::ostream &os, const std::string &argv0)
{
    os << "usage: " << argv0 << " [options]\n"
       << "  --quick | --full | --scale=X  sweep size (X > 0; quick=0.25,"
          " full=4)\n"
       << "  --seed=N                      base RNG seed (default 1)\n"
       << "  --jobs=N                      worker threads (default: all"
          " cores)\n"
       << "  --format=table|json|csv       result format (default table)\n"
       << "  --out=FILE                    write results to FILE (default"
          " stdout)\n"
       << "  --no-progress                 suppress stderr progress/ETA\n"
       << "  --check                       run maps::check differential"
          " verification (exit 1 on divergence)\n"
       << "  --help                        this message\n";
}

Options
Options::parse(int argc, char **argv,
               std::vector<std::string> *positionals)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    Options opts;
    const auto err = tryParse(args, opts, positionals);
    if (err == "help") {
        usage(std::cout, argv[0]);
        std::exit(0);
    }
    if (!err.empty()) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        usage(std::cerr, argv[0]);
        std::exit(2);
    }
    return opts;
}

std::uint64_t
Options::refs(std::uint64_t base) const
{
    const auto scaled =
        static_cast<std::uint64_t>(static_cast<double>(base) * scale);
    return scaled < 10'000 ? 10'000 : scaled;
}

unsigned
Options::effectiveJobs() const
{
    if (jobs)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::uint64_t
deriveCellSeed(std::uint64_t base, std::string_view cell_id)
{
    // FNV-1a over the id, folded into the base, splitmix64-finalized.
    std::uint64_t h = base ^ 0xCBF29CE484222325ull;
    for (const char c : cell_id) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ull;
    }
    h += 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    return h ^ (h >> 31);
}

// ---------------------------------------------------------------------------
// Value / Row / CellOutput.
// ---------------------------------------------------------------------------

Value
Value::num(double v, int precision)
{
    Value out;
    out.kind_ = Kind::Real;
    out.real_ = v;
    out.precision_ = precision;
    return out;
}

Value
Value::integer(std::uint64_t v)
{
    Value out;
    out.kind_ = Kind::Int;
    out.int_ = v;
    return out;
}

Value
Value::size(std::uint64_t bytes)
{
    return Value(TextTable::fmtSize(bytes));
}

std::string
Value::text() const
{
    switch (kind_) {
      case Kind::Text:
        return text_;
      case Kind::Real:
        return TextTable::fmt(real_, precision_);
      case Kind::Int:
        return TextTable::fmt(int_);
    }
    return "";
}

std::string
Value::json() const
{
    switch (kind_) {
      case Kind::Real: {
        // Render the display value so every sink reports one number;
        // non-finite doubles have no JSON literal, so quote them.
        if (!std::isfinite(real_))
            return "\"" + TextTable::fmt(real_, precision_) + "\"";
        return TextTable::fmt(real_, precision_);
      }
      case Kind::Int:
        return TextTable::fmt(int_);
      case Kind::Text:
        break;
    }
    std::string out = "\"";
    for (const char ch : text_) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(ch));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
    return out;
}

double
Value::asDouble() const
{
    switch (kind_) {
      case Kind::Real:
        return real_;
      case Kind::Int:
        return static_cast<double>(int_);
      case Kind::Text:
        break;
    }
    return 0.0;
}

Row &
Row::add(std::string key, Value v)
{
    cols.emplace_back(std::move(key), std::move(v));
    return *this;
}

Row &
Row::add(std::string key, const std::string &text)
{
    return add(std::move(key), Value(text));
}

Row &
Row::add(std::string key, const char *text)
{
    return add(std::move(key), Value(text));
}

Row &
Row::add(std::string key, double v, int precision)
{
    return add(std::move(key), Value::num(v, precision));
}

Row &
Row::add(std::string key, std::uint64_t v)
{
    return add(std::move(key), Value::integer(v));
}

const Value *
Row::find(std::string_view key) const
{
    for (const auto &[k, v] : cols)
        if (k == key)
            return &v;
    return nullptr;
}

double
Row::num(std::string_view key) const
{
    const auto *v = find(key);
    return v ? v->asDouble() : 0.0;
}

CellOutput &
CellOutput::add(std::string section, Row row)
{
    rows.push_back({std::move(section), std::move(row)});
    return *this;
}

// ---------------------------------------------------------------------------
// Sinks.
// ---------------------------------------------------------------------------

void
ResultSink::begin(const ExperimentMeta &, const Options &)
{
}

void
ResultSink::note(const std::string &)
{
}

void
ResultSink::end()
{
}

void
TableSink::begin(const ExperimentMeta &meta, const Options &opts)
{
    const std::string rule(70, '=');
    os_ << rule << '\n'
        << "MAPS reproduction | " << meta.title << '\n'
        << "paper reference   | " << meta.paperRef << '\n';
    char scale[64];
    std::snprintf(scale, sizeof(scale), "%.2f", opts.scale);
    // No --jobs echo here: results are independent of the job count and
    // the table must be byte-identical for every value of it.
    os_ << "scale             | " << scale
        << "x (use --quick / --full / --scale=X)\n"
        << rule << "\n\n";
}

void
TableSink::row(const SectionRow &r)
{
    if (sections_.empty() || sections_.back().first != r.section) {
        // Append to an earlier table if the section re-appears, so
        // drivers may emit related sections in any grouping.
        auto it = std::find_if(
            sections_.begin(), sections_.end(),
            [&](const auto &s) { return s.first == r.section; });
        if (it != sections_.end()) {
            it->second.push_back(r.row);
            return;
        }
        sections_.push_back({r.section, {}});
    }
    sections_.back().second.push_back(r.row);
}

void
TableSink::note(const std::string &text)
{
    notes_.push_back(text);
}

void
TableSink::end()
{
    bool first = true;
    for (const auto &[section, rows] : sections_) {
        if (rows.empty())
            continue;
        if (!first)
            os_ << '\n';
        first = false;
        if (!section.empty())
            os_ << section << '\n';
        std::vector<std::string> header;
        for (const auto &[key, value] : rows.front().cols)
            header.push_back(key);
        TextTable table(header);
        for (const auto &row : rows) {
            std::vector<std::string> cells;
            for (const auto &key : header) {
                const auto *v = row.find(key);
                cells.push_back(v ? v->text() : "");
            }
            table.addRow(std::move(cells));
        }
        table.print(os_);
    }
    for (const auto &text : notes_)
        os_ << '\n' << text << '\n';
    os_.flush();
}

void
JsonlSink::begin(const ExperimentMeta &meta, const Options &)
{
    experiment_ = meta.name;
}

void
JsonlSink::row(const SectionRow &r)
{
    os_ << "{\"experiment\":" << Value(experiment_).json()
        << ",\"section\":" << Value(r.section).json();
    for (const auto &[key, value] : r.row.cols)
        os_ << ',' << Value(key).json() << ':' << value.json();
    os_ << "}\n";
    os_.flush();
}

void
CsvSink::begin(const ExperimentMeta &meta, const Options &)
{
    experiment_ = meta.name;
}

void
CsvSink::row(const SectionRow &r)
{
    for (const auto &[key, value] : r.row.cols) {
        if (std::find(columns_.begin(), columns_.end(), key) ==
            columns_.end())
            columns_.push_back(key);
    }
    rows_.push_back(r);
}

void
CsvSink::end()
{
    CsvWriter writer(os_);
    std::vector<std::string> header{"experiment", "section"};
    header.insert(header.end(), columns_.begin(), columns_.end());
    writer.writeRow(header);
    for (const auto &r : rows_) {
        std::vector<std::string> cells{experiment_, r.section};
        for (const auto &key : columns_) {
            const auto *v = r.row.find(key);
            cells.push_back(v ? v->text() : "");
        }
        writer.writeRow(cells);
    }
    os_.flush();
}

namespace {

/** Sink wrapper owning the output file stream. */
class FileSink : public ResultSink
{
  public:
    FileSink(std::unique_ptr<std::ofstream> os,
             std::unique_ptr<ResultSink> inner)
        : os_(std::move(os)), inner_(std::move(inner))
    {
    }

    void begin(const ExperimentMeta &meta, const Options &opts) override
    {
        inner_->begin(meta, opts);
    }
    void row(const SectionRow &r) override { inner_->row(r); }
    void note(const std::string &text) override { inner_->note(text); }
    void end() override { inner_->end(); }

  private:
    std::unique_ptr<std::ofstream> os_;
    std::unique_ptr<ResultSink> inner_;
};

std::unique_ptr<ResultSink>
makeSinkFor(const Options &opts, std::ostream &os)
{
    switch (opts.format) {
      case OutputFormat::Table:
        return std::make_unique<TableSink>(os);
      case OutputFormat::Jsonl:
        return std::make_unique<JsonlSink>(os);
      case OutputFormat::Csv:
        return std::make_unique<CsvSink>(os);
    }
    return std::make_unique<TableSink>(os);
}

} // namespace

std::unique_ptr<ResultSink>
makeSink(const Options &opts)
{
    if (opts.outPath.empty())
        return makeSinkFor(opts, std::cout);
    auto file = std::make_unique<std::ofstream>(opts.outPath);
    fatalIf(!*file, "cannot open --out file '" + opts.outPath + "'");
    auto &os = *file;
    return std::make_unique<FileSink>(std::move(file),
                                      makeSinkFor(opts, os));
}

// ---------------------------------------------------------------------------
// Runner.
// ---------------------------------------------------------------------------

namespace {

/**
 * stderr progress/ETA reporter. All completions funnel through one
 * mutex, which also serializes the stderr writes.
 */
class Progress
{
  public:
    Progress(std::string phase, std::size_t total, bool enabled)
        : phase_(std::move(phase)), total_(total),
          enabled_(enabled && total > 0),
          tty_(MAPS_ISATTY(2 /* stderr */) != 0),
          start_(std::chrono::steady_clock::now())
    {
    }

    void completed(const std::string &cell_id)
    {
        if (!enabled_)
            return;
        const std::lock_guard<std::mutex> lock(mu_);
        ++done_;
        // Non-tty consumers (CI logs) get at most ~10 lines per phase.
        if (!tty_ && done_ != total_ &&
            done_ % std::max<std::size_t>(1, total_ / 10) != 0)
            return;
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        const double eta =
            elapsed / static_cast<double>(done_) *
            static_cast<double>(total_ - done_);
        std::fprintf(stderr, "%s[%s] %zu/%zu cells, %.1fs elapsed, "
                             "eta %.1fs (%s)%s",
                     tty_ ? "\r\033[K" : "", phase_.c_str(), done_,
                     total_, elapsed, eta, cell_id.c_str(),
                     tty_ ? "" : "\n");
        if (tty_ && done_ == total_)
            std::fprintf(stderr, "\n");
        std::fflush(stderr);
    }

  private:
    std::string phase_;
    std::size_t total_;
    bool enabled_;
    bool tty_;
    std::chrono::steady_clock::time_point start_;
    std::mutex mu_;
    std::size_t done_ = 0;
};

} // namespace

std::vector<CellOutput>
ExperimentRunner::run(const std::vector<Cell> &cells,
                      const std::string &phase)
{
    std::vector<Cell> work(cells);
    for (auto &cell : work) {
        if (!cell.seed)
            cell.seed = deriveCellSeed(opts_.seed, cell.id);
        panicIf(!cell.work, "cell '" + cell.id + "' has no work function");
    }

    std::vector<CellOutput> out(work.size());
    Progress progress(phase.empty() ? "run" : phase, work.size(),
                      opts_.progress);

    const unsigned jobs = static_cast<unsigned>(std::min<std::size_t>(
        opts_.effectiveJobs(), work.size()));

    std::atomic<std::size_t> next{0};
    std::mutex error_mu;
    std::exception_ptr error;

    const auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= work.size())
                return;
            try {
                out[i] = work[i].work(work[i]);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mu);
                if (!error)
                    error = std::current_exception();
                return;
            }
            progress.completed(work[i].id);
        }
    };

    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            threads.emplace_back(worker);
        for (auto &t : threads)
            t.join();
    }
    if (error)
        std::rethrow_exception(error);
    return out;
}

// ---------------------------------------------------------------------------
// Experiment harness.
// ---------------------------------------------------------------------------

Experiment::Experiment(ExperimentMeta meta, const Options &opts)
    : meta_(std::move(meta)), runner_(opts), sink_(makeSink(opts))
{
    if (opts.check) {
        // Record mode: divergences are tallied and summarized by
        // finish() instead of aborting the run at the first one.
        check::setEnabled(true);
        check::setFailureMode(check::FailureMode::Record);
        check::resetStats();
    }
    sink_->begin(meta_, opts);
}

std::vector<CellOutput>
Experiment::run(const std::vector<Cell> &cells, const std::string &phase)
{
    return runner_.run(cells, phase.empty() ? meta_.name : phase);
}

std::vector<CellOutput>
Experiment::runAndEmit(const std::vector<Cell> &cells,
                       const std::string &phase)
{
    auto outputs = run(cells, phase);
    for (const auto &output : outputs)
        emit(output);
    return outputs;
}

void
Experiment::emit(const SectionRow &r)
{
    sink_->row(r);
}

void
Experiment::emit(std::string section, Row row)
{
    emit(SectionRow{std::move(section), std::move(row)});
}

void
Experiment::emit(const CellOutput &out)
{
    for (const auto &r : out.rows)
        emit(r);
}

void
Experiment::note(const std::string &text)
{
    sink_->note(text);
}

int
Experiment::finish()
{
    const bool checking = runner_.options().check;
    if (!finished_) {
        if (checking) {
            Row row;
            row.add("checks", check::checkCount());
            row.add("divergences", check::failureCount());
            row.add("verdict",
                    check::failureCount() == 0 ? "ok" : "DIVERGED");
            emit("maps::check", std::move(row));
            for (const auto &failure : check::failures()) {
                note("maps::check divergence [" + failure.domain + "] " +
                     failure.message);
            }
        }
        sink_->end();
        finished_ = true;
    }
    return checking && check::failureCount() != 0 ? 1 : 0;
}

} // namespace maps::runner
