#include "core/simulator.hpp"

#include "core/runner.hpp"
#include "util/logging.hpp"

namespace maps {

SecureMemorySim::SecureMemorySim(SimConfig cfg,
                                 std::unique_ptr<ReplacementPolicy>
                                     md_policy)
    : cfg_(std::move(cfg)), energyModel_(cfg_.energy)
{
    generator_ = makeBenchmark(cfg_.benchmark, cfg_.seed);

    if (cfg_.useDram)
        memory_ = std::make_unique<DramModel>();
    else
        memory_ = std::make_unique<FixedLatencyMemory>(
            cfg_.fixedLatencyCycles);

    const bool md_override = md_policy != nullptr;
    if (cfg_.secureEnabled) {
        controller_ = std::make_unique<SecureMemoryController>(
            cfg_.secure, *memory_, std::move(md_policy));
    }

    hierarchy_ = std::make_unique<CacheHierarchy>(cfg_.hierarchy);
    hierarchy_->setRequestSink(
        [this](const MemoryRequest &req) { serviceRequest(req); });

    if (check::enabled()) {
        // The hierarchy builds its policies with the factory default
        // seed; the metadata cache uses its configured seed. A policy
        // override has unknown internals, so its shadow only mirrors.
        cacheShadows_.push_back(
            check::CacheShadow::attach(hierarchy_->l1Mut(), "l1"));
        cacheShadows_.push_back(
            check::CacheShadow::attach(hierarchy_->l2Mut(), "l2"));
        cacheShadows_.push_back(
            check::CacheShadow::attach(hierarchy_->llcMut(), "llc"));
        if (controller_) {
            cacheShadows_.push_back(check::CacheShadow::attach(
                controller_->metadataCache().arrayMut(), "mdcache",
                cfg_.secure.cache.seed, md_override));
            secmemShadow_ =
                std::make_unique<check::SecmemShadow>(*controller_);
            installTap();
        }
    }
}

void
SecureMemorySim::setMetadataTap(SecureMemoryController::MetadataTap tap,
                                bool include_warmup)
{
    userTap_ = std::move(tap);
    tapIncludeWarmup_ = include_warmup;
    installTap();
}

void
SecureMemorySim::installTap()
{
    if (!controller_ || (!userTap_ && !secmemShadow_))
        return;
    controller_->setMetadataTap([this](const MetadataAccess &acc) {
        if (secmemShadow_)
            secmemShadow_->onTap(acc);
        if (userTap_ && (measuring_ || tapIncludeWarmup_))
            userTap_(acc);
    });
}

void
SecureMemorySim::serviceRequest(const MemoryRequest &req)
{
    if (controller_) {
        if (secmemShadow_)
            secmemShadow_->beginRequest(req);
        const RequestOutcome outcome =
            controller_->handleRequest(req, cycles_);
        if (secmemShadow_)
            secmemShadow_->endRequest();
        // Reads stall the core; posted writes do not (write buffers).
        if (req.kind == RequestKind::Read)
            cycles_ += outcome.latency;
        return;
    }
    // Insecure baseline: a plain block transfer.
    const auto result =
        memory_->access(req.addr, req.isWrite(), cycles_);
    if (req.kind == RequestKind::Read)
        cycles_ += result.latency;
}

RunReport
SecureMemorySim::run()
{
    // Cancellation cadence for --cell-timeout: cheap relative to the
    // work between calls, frequent enough to bound overshoot.
    constexpr std::uint64_t kHeartbeatRefs = 32 * 1024;

    // Warmup: fill caches, then discard statistics.
    measuring_ = false;
    for (std::uint64_t i = 0; i < cfg_.warmupRefs; ++i) {
        if (i % kHeartbeatRefs == 0)
            runner::heartbeat();
        hierarchy_->access(generator_->next());
    }

    hierarchy_->clearStats();
    memory_->clearStats();
    if (controller_)
        controller_->clearStats();
    cycles_ = 0;
    measuring_ = true;

    for (std::uint64_t i = 0; i < cfg_.measureRefs; ++i) {
        if (i % kHeartbeatRefs == 0)
            runner::heartbeat();
        const MemRef ref = generator_->next();
        cycles_ += ref.instGap; // unit-IPC core
        hierarchy_->access(ref);
    }
    measuring_ = false;

    // End-of-run structural audit of every shadowed cache array.
    for (auto &shadow : cacheShadows_)
        shadow->finalAudit();

    RunReport report;
    report.benchmark = cfg_.benchmark;
    report.hierarchy = hierarchy_->stats();
    report.instructions = report.hierarchy.instructions;
    report.refs = report.hierarchy.refs;
    report.memory = memory_->stats();
    report.llcMpki = report.hierarchy.llcMpki();

    if (controller_) {
        report.controller = controller_->stats();
        report.mdCache = controller_->metadataCache().stats();
        report.metadataMpki =
            controller_->metadataCache().mpki(report.instructions);
        const auto requests = report.controller.requests();
        report.memAccessesPerRequest =
            requests ? static_cast<double>(
                           report.controller.totalMemAccesses()) /
                           static_cast<double>(requests)
                     : 0.0;
    }

    // Timing: unit-IPC core plus read-request stalls, both folded into
    // cycles_ during the run.
    report.cycles = cycles_;
    report.seconds = energyModel_.secondsOf(report.cycles);

    // Energy: dynamic per level + DRAM + SRAM leakage.
    const auto &h = *hierarchy_;
    report.energy.l1Pj = energyModel_.cacheDynamicPj(
        cfg_.hierarchy.l1Bytes, h.l1().stats().accesses());
    report.energy.l2Pj = energyModel_.cacheDynamicPj(
        cfg_.hierarchy.l2Bytes, h.l2().stats().accesses());
    report.energy.llcPj = energyModel_.cacheDynamicPj(
        cfg_.hierarchy.llcBytes, h.llc().stats().accesses());

    std::uint64_t sram_bytes = cfg_.hierarchy.l1Bytes +
                               cfg_.hierarchy.l2Bytes +
                               cfg_.hierarchy.llcBytes;
    if (controller_) {
        const auto &md = controller_->metadataCache();
        std::uint64_t md_accesses = 0;
        for (unsigned t = 0; t < kNumMetadataTypes; ++t) {
            md_accesses += md.stats().accesses[t] - md.stats().bypasses[t];
        }
        if (cfg_.secure.cacheEnabled) {
            report.energy.mdCachePj = energyModel_.cacheDynamicPj(
                cfg_.secure.cache.sizeBytes, md_accesses);
            sram_bytes += cfg_.secure.cache.sizeBytes;
        }
    }
    report.energy.dramPj =
        energyModel_.dramAccessPj() *
        static_cast<double>(report.memory.accesses());
    report.energy.leakagePj =
        energyModel_.leakagePj(sram_bytes, report.seconds);

    report.ed2 =
        energyDelaySquared(report.energy.totalPj(), report.seconds);
    return report;
}

RunReport
runBenchmark(const SimConfig &cfg)
{
    SecureMemorySim sim(cfg);
    return sim.run();
}

} // namespace maps
