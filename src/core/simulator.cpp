#include "core/simulator.hpp"

#include "core/runner.hpp"
#include "metrics/derived.hpp"
#include "util/logging.hpp"

namespace maps {

SecureMemorySim::SecureMemorySim(SimConfig cfg,
                                 std::unique_ptr<ReplacementPolicy>
                                     md_policy)
    : cfg_(std::move(cfg)), energyModel_(cfg_.energy)
{
    generator_ = makeBenchmark(cfg_.benchmark, cfg_.seed);

    if (cfg_.useDram)
        memory_ = std::make_unique<DramModel>();
    else
        memory_ = std::make_unique<FixedLatencyMemory>(
            cfg_.fixedLatencyCycles);

    const bool md_override = md_policy != nullptr;
    if (cfg_.secureEnabled) {
        controller_ = std::make_unique<SecureMemoryController>(
            cfg_.secure, *memory_, std::move(md_policy));
    }

    hierarchy_ = std::make_unique<CacheHierarchy>(cfg_.hierarchy);
    hierarchy_->setRequestSink(
        [this](const MemoryRequest &req) { serviceRequest(req); });

    // Every counter in the simulation registers here, in a fixed order
    // (the export order). Registration stores pointers only — hot-path
    // increments are unchanged.
    hierarchy_->attachMetrics(registry_);
    registry_.attach(memory_->name(), memory_->statsMut());
    if (controller_)
        controller_->attachMetrics(registry_);

    if (check::enabled()) {
        // The hierarchy builds its policies with the factory default
        // seed; the metadata cache uses its configured seed. A policy
        // override has unknown internals, so its shadow only mirrors.
        cacheShadows_.push_back(
            check::CacheShadow::attach(hierarchy_->l1Mut(), "l1"));
        cacheShadows_.push_back(
            check::CacheShadow::attach(hierarchy_->l2Mut(), "l2"));
        cacheShadows_.push_back(
            check::CacheShadow::attach(hierarchy_->llcMut(), "llc"));
        if (controller_) {
            cacheShadows_.push_back(check::CacheShadow::attach(
                controller_->metadataCache().arrayMut(), "mdcache",
                cfg_.secure.cache.seed, md_override));
            secmemShadow_ =
                std::make_unique<check::SecmemShadow>(*controller_);
            installTap();
        }
    }
}

void
SecureMemorySim::setMetadataTap(SecureMemoryController::MetadataTap tap,
                                bool include_warmup)
{
    userTap_ = std::move(tap);
    tapIncludeWarmup_ = include_warmup;
    installTap();
}

void
SecureMemorySim::enableTraceEvents(const std::string &path,
                                   std::uint64_t sample_every,
                                   const std::string &cell)
{
    traceWriter_ = std::make_unique<metrics::TraceEventWriter>(
        path, sample_every, cell);
    installTap();
}

void
SecureMemorySim::installTap()
{
    if (!controller_ || (!userTap_ && !secmemShadow_ && !traceWriter_))
        return;
    controller_->setMetadataTap([this](const MetadataAccess &acc) {
        if (secmemShadow_)
            secmemShadow_->onTap(acc);
        if (traceWriter_ && measuring_)
            traceWriter_->metadataAccess(acc);
        if (userTap_ && (measuring_ || tapIncludeWarmup_))
            userTap_(acc);
    });
}

void
SecureMemorySim::serviceRequest(const MemoryRequest &req)
{
    const bool tracing = traceWriter_ && measuring_;
    if (tracing)
        traceWriter_->beginRequest(req);
    if (controller_) {
        if (secmemShadow_)
            secmemShadow_->beginRequest(req);
        const RequestOutcome outcome =
            controller_->handleRequest(req, cycles_);
        if (secmemShadow_)
            secmemShadow_->endRequest();
        if (tracing)
            traceWriter_->endRequest(outcome.latency,
                                     outcome.memAccesses);
        // Reads stall the core; posted writes do not (write buffers).
        if (req.kind == RequestKind::Read)
            cycles_ += outcome.latency;
        return;
    }
    // Insecure baseline: a plain block transfer.
    const auto result =
        memory_->access(req.addr, req.isWrite(), cycles_);
    if (tracing)
        traceWriter_->endRequest(result.latency, 1);
    if (req.kind == RequestKind::Read)
        cycles_ += result.latency;
}

RunReport
SecureMemorySim::run()
{
    // Cancellation cadence for --cell-timeout: cheap relative to the
    // work between calls, frequent enough to bound overshoot.
    constexpr std::uint64_t kHeartbeatRefs = 32 * 1024;

    // Wire the sampled event trace when this cell was selected by
    // --trace-events (at most one cell per process claims it).
    if (!traceWriter_) {
        if (auto claim = runner::claimTraceEvents())
            enableTraceEvents(claim->path, claim->sampleEvery,
                              claim->cell);
    }

    // Warmup: fill caches. Counters keep counting — the warmup window
    // is separated from measurement by the registry phase snapshot, not
    // by resets.
    measuring_ = false;
    for (std::uint64_t i = 0; i < cfg_.warmupRefs; ++i) {
        if (i % kHeartbeatRefs == 0)
            runner::heartbeat();
        hierarchy_->access(generator_->next());
    }

    // The one statistics boundary of a run: snapshot every counter.
    registry_.beginPhase(metrics::Phase::Measure);
    // Timing state (not a statistic) restarts with measurement: request
    // latencies depend on absolute cycle arithmetic in the DRAM model.
    cycles_ = 0;
    measuring_ = true;

    for (std::uint64_t i = 0; i < cfg_.measureRefs; ++i) {
        if (i % kHeartbeatRefs == 0)
            runner::heartbeat();
        const MemRef ref = generator_->next();
        cycles_ += ref.instGap; // unit-IPC core
        hierarchy_->access(ref);
    }
    measuring_ = false;

    // End-of-run structural audit of every shadowed cache array, plus
    // the registry-level cross-component accounting audit.
    for (auto &shadow : cacheShadows_)
        shadow->finalAudit();
    if (check::enabled())
        auditAccounting();

    RunReport report;
    report.benchmark = cfg_.benchmark;
    report.hierarchy =
        registry_.measureView("hierarchy", hierarchy_->stats());
    report.instructions = report.hierarchy.instructions;
    report.refs = report.hierarchy.refs;
    report.memory =
        registry_.measureView(memory_->name(), memory_->stats());
    report.llcMpki = report.hierarchy.llcMpki();

    if (controller_) {
        report.controller =
            registry_.measureView("secmem", controller_->stats());
        report.mdCache = registry_.measureView(
            "secmem.mdcache", controller_->metadataCache().stats());
        report.metadataMpki = report.mdCache.mpki(report.instructions);
        report.memAccessesPerRequest = metrics::ratioOrZero(
            report.controller.totalMemAccesses(),
            report.controller.requests());
    }

    // Timing: unit-IPC core plus read-request stalls, both folded into
    // cycles_ during the run.
    report.cycles = cycles_;
    report.seconds = energyModel_.secondsOf(report.cycles);

    // Energy: dynamic per level + DRAM + SRAM leakage. The documented
    // window convention: l1/l2/llc dynamic energy spans BOTH phases
    // (whole-run totals — caches are warmed by real accesses that cost
    // energy), while the metadata cache and DRAM terms are
    // measure-window (they scale the measured traffic).
    const auto &h = *hierarchy_;
    report.energy.l1Pj = energyModel_.cacheDynamicPj(
        cfg_.hierarchy.l1Bytes, h.l1().stats().accesses());
    report.energy.l2Pj = energyModel_.cacheDynamicPj(
        cfg_.hierarchy.l2Bytes, h.l2().stats().accesses());
    report.energy.llcPj = energyModel_.cacheDynamicPj(
        cfg_.hierarchy.llcBytes, h.llc().stats().accesses());

    std::uint64_t sram_bytes = cfg_.hierarchy.l1Bytes +
                               cfg_.hierarchy.l2Bytes +
                               cfg_.hierarchy.llcBytes;
    if (controller_) {
        std::uint64_t md_accesses = 0;
        for (unsigned t = 0; t < kNumMetadataTypes; ++t) {
            md_accesses +=
                report.mdCache.accesses[t] - report.mdCache.bypasses[t];
        }
        if (cfg_.secure.cacheEnabled) {
            report.energy.mdCachePj = energyModel_.cacheDynamicPj(
                cfg_.secure.cache.sizeBytes, md_accesses);
            sram_bytes += cfg_.secure.cache.sizeBytes;
        }
    }
    report.energy.dramPj =
        energyModel_.dramAccessPj() *
        static_cast<double>(report.memory.accesses());
    report.energy.leakagePj =
        energyModel_.leakagePj(sram_bytes, report.seconds);

    report.ed2 =
        energyDelaySquared(report.energy.totalPj(), report.seconds);

    exportMetrics(report);
    if (traceWriter_)
        traceWriter_->finish();
    return report;
}

void
SecureMemorySim::auditAccounting() const
{
    check::countChecks();
    const auto expect = [](std::uint64_t got, std::uint64_t want,
                           const std::string &what) {
        if (got != want) {
            check::fail("metrics", what + ": got " +
                                       std::to_string(got) +
                                       ", expected " +
                                       std::to_string(want));
        }
    };
    if (!controller_)
        return;

    // With the controller in the path, every DRAM transfer is one of
    // its categorized accesses — in each phase window separately.
    const std::string mem = memory_->name();
    static constexpr const char *kCats[] = {"data", "counter", "hash",
                                            "tree", "reencrypt"};
    for (const char *window : {"warmup", "measure"}) {
        const bool warm = window[0] == 'w';
        const auto read = [&](const std::string &name) {
            return warm ? registry_.warmup(name)
                        : registry_.measure(name);
        };
        std::uint64_t categorized = 0;
        for (const char *cat : kCats) {
            categorized += read("secmem.mem." + std::string(cat) +
                                ".reads");
            categorized += read("secmem.mem." + std::string(cat) +
                                ".writes");
        }
        expect(read(mem + ".reads") + read(mem + ".writes"), categorized,
               std::string(window) +
                   "-window DRAM accesses != controller categories");
    }

    // The controller's overflow statistic mirrors the functional
    // counter store exactly (whole run).
    expect(registry_.total("secmem.page_overflows"),
           registry_.total("secmem.counters.page_overflows"),
           "controller page overflows != counter-store overflows");
}

void
SecureMemorySim::exportMetrics(RunReport &report)
{
    // Derived metrics: every rate the figures report, computed in one
    // place (metrics/derived.hpp) and recorded with the registry.
    registry_.derived("derived.llc.mpki", report.llcMpki, 4);
    registry_.derived("derived.metadata.mpki", report.metadataMpki, 4);
    registry_.derived("derived.mem.accesses_per_request",
                      report.memAccessesPerRequest, 4);
    registry_.derived("derived.cycles",
                      static_cast<double>(report.cycles), 0);
    registry_.derived("derived.seconds", report.seconds, 9);
    registry_.derived("derived.energy.l1_pj", report.energy.l1Pj, 1);
    registry_.derived("derived.energy.l2_pj", report.energy.l2Pj, 1);
    registry_.derived("derived.energy.llc_pj", report.energy.llcPj, 1);
    registry_.derived("derived.energy.mdcache_pj",
                      report.energy.mdCachePj, 1);
    registry_.derived("derived.energy.dram_pj", report.energy.dramPj, 1);
    registry_.derived("derived.energy.leakage_pj",
                      report.energy.leakagePj, 1);
    registry_.derived("derived.energy.total_pj",
                      report.energy.totalPj(), 1);
    registry_.derived("derived.ed2", report.ed2, 18);

    report.metricsExport = registry_.exportAll();
}

RunReport
runBenchmark(const SimConfig &cfg)
{
    SecureMemorySim sim(cfg);
    return sim.run();
}

} // namespace maps
