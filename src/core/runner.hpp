/**
 * @file
 * maps::runner — the shared experiment harness behind every figure /
 * table / ablation driver.
 *
 * An experiment is a named grid of *cells*: independent units of
 * simulation work (typically one `benchmark x SimConfig` point, or a
 * small dependent cluster such as an on/off pair) that each produce
 * rows of derived metrics. ExperimentRunner executes cells on a
 * std::thread pool (`--jobs=N`, default hardware_concurrency) and
 * returns outputs indexed by cell, so results — and therefore the
 * emitted tables — are identical whatever the execution order or job
 * count. A ResultSink renders the rows as an aligned text table
 * (`--format=table`, the default), JSON lines (`--format=json`) or CSV
 * (`--format=csv`), to stdout or `--out=FILE`.
 *
 * Thread-safety contract for cell work functions: a cell must only
 * touch state it owns. Every simulation object in MAPS (SecureMemorySim
 * and everything beneath it, analyzers, Rng) is self-contained with no
 * mutable globals, so constructing them inside the work function is
 * sufficient. Randomness is seeded per cell: each SimConfig carries its
 * own seed and each generator owns its Rng, and `Cell::seed` provides a
 * deterministic per-cell auxiliary seed derived from `--seed` and the
 * cell id — never share an Rng across cells.
 */
#ifndef MAPS_CORE_RUNNER_HPP
#define MAPS_CORE_RUNNER_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/dirlock.hpp"

namespace maps::runner {

// ---------------------------------------------------------------------------
// Options: the common bench command line.
// ---------------------------------------------------------------------------

enum class OutputFormat : std::uint8_t { Table, Jsonl, Csv };

const char *formatName(OutputFormat f);

/**
 * How much of the maps::metrics registry the benches append to their
 * result stream (schema metrics::kSchemaVersion):
 *   Off      nothing beyond the figure's own rows (the default)
 *   Summary  the derived metrics (MPKI, ED², energy, ...) per cell
 *   Full     Summary plus every raw counter (warmup/measure/total
 *            windows) and histogram
 */
enum class MetricsLevel : std::uint8_t { Off, Summary, Full };

const char *metricsLevelName(MetricsLevel level);

/**
 * Options shared by every experiment driver.
 *
 *   --quick | --full | --scale=X   sweep size (X > 0)
 *   --seed=N                       base RNG seed
 *   --jobs=N                       worker threads (default: all cores)
 *   --format=table|json|csv        result rendering
 *   --out=FILE                     write results to FILE (default stdout)
 *   --no-progress                  suppress the stderr progress reporter
 *   --check                        run the maps::check differential
 *                                  verification layer and report
 *   --cell-timeout=SECS            cancel cells cooperatively after SECS
 *   --resume=DIR                   checkpoint finished cells in DIR and
 *                                  skip them on restart
 *   --metrics=off|summary|full     append maps::metrics registry rows to
 *                                  the result stream
 *   --trace-events=FILE            emit a sampled chrome://tracing JSON
 *                                  for one cell of the run
 *   --trace-sample=N               trace every N-th measured request
 *                                  (default 4096)
 *   --trace-cell=ID                which cell claims the trace (default:
 *                                  first to start)
 *   --list-cells                   print the cell grid instead of
 *                                  running it (service discovery mode)
 *   --only-cells=ID[,ID...]        run only the named cells; others are
 *                                  loaded from --resume checkpoints or
 *                                  skipped (service sharding mode)
 *   --help                         usage
 *
 * Unknown flags, malformed values, non-positive scales, and *repeated*
 * flags (e.g. "--jobs=2 --jobs=4") are errors: every option may be
 * given at most once, and the mutually-exclusive sweep-size spellings
 * (--quick / --full / --scale) count as one option.
 */
struct Options
{
    double scale = 1.0;
    std::uint64_t seed = 1;
    /** Worker threads; 0 means hardware_concurrency. */
    unsigned jobs = 0;
    OutputFormat format = OutputFormat::Table;
    /** Result destination; empty means stdout. */
    std::string outPath;
    bool progress = true;
    /**
     * Enable maps::check (runtime invariants + shadow models) in Record
     * mode for the whole run; divergences are summarized by
     * Experiment::finish(), which then returns exit code 1.
     */
    bool check = false;
    /**
     * Cooperative per-cell watchdog: a cell running longer than this
     * many seconds is cancelled at its next runner::heartbeat() call
     * and recorded as a failed cell. 0 disables the watchdog.
     */
    double cellTimeoutSec = 0.0;
    /**
     * Checkpoint directory: every completed cell's output is persisted
     * here (atomic write) and a restarted run with the same options
     * skips the cells whose checkpoints parse, making a killed sweep
     * resumable with byte-identical final output. Empty disables.
     */
    std::string resumeDir;
    /**
     * Registry emission level; Summary/Full make every cell append
     * "maps::metrics ..." sections to its output (see
     * bench/common.hpp addMetricsRows).
     */
    MetricsLevel metrics = MetricsLevel::Off;
    /**
     * When non-empty, exactly one cell of the run claims the trace and
     * writes a sampled chrome://tracing event file here (schema
     * metrics::kTraceSchemaVersion). Which cell: --trace-cell when
     * given, otherwise the first cell that starts a simulation.
     */
    std::string traceEventsPath;
    /** Trace every N-th measured request (>= 1). */
    std::uint64_t traceSample = 4096;
    /** Cell id that claims --trace-events; empty = first come. */
    std::string traceCell;
    /**
     * Cell-discovery mode for the experiment service (mapsd): instead
     * of running, each run() call prints one machine-readable line per
     * cell ("cell <TAB> phase <TAB> id <TAB> cached|pending"). A phase
     * whose cells are all cached (loadable --resume checkpoints)
     * returns the loaded outputs so the driver can construct dependent
     * phases; otherwise the process prints "list-end incomplete" and
     * exits 0 immediately — later phases are discovered by re-listing
     * once the pending cells have been executed and checkpointed.
     * finish() prints "list-end complete" when every phase resolved.
     */
    bool listCells = false;
    /**
     * Cell-sharding mode for the experiment service: run only the
     * cells named here. Unselected cells are loaded from --resume
     * checkpoints when available and otherwise skipped with empty
     * output (drivers whose later phases consume earlier outputs need
     * those phases checkpointed — mapsd schedules phases in order).
     * Empty means run everything.
     */
    std::vector<std::string> onlyCells;

    /**
     * Strict parse. On --help prints usage and exits 0; on any error
     * prints the error plus usage and exits 2. When @p positionals is
     * non-null, non-flag arguments are collected there instead of being
     * rejected (for examples that take positional operands).
     */
    static Options parse(int argc, char **argv,
                         std::vector<std::string> *positionals = nullptr);

    /**
     * Non-exiting parse over pre-split arguments (argv[0] excluded).
     * Returns an empty string on success, the error message otherwise.
     * `--help` is reported as the error "help".
     */
    static std::string tryParse(const std::vector<std::string> &args,
                                Options &out,
                                std::vector<std::string> *positionals
                                = nullptr);

    static void usage(std::ostream &os, const std::string &argv0);

    /** Scale a base reference count, with the historical 10k floor. */
    std::uint64_t refs(std::uint64_t base) const;

    /** Resolved worker count (>= 1). */
    unsigned effectiveJobs() const;
};

/**
 * Deterministic auxiliary seed for one cell: a hash of the base seed
 * and the cell id, independent of execution order and job count.
 */
std::uint64_t deriveCellSeed(std::uint64_t base, std::string_view cell_id);

/**
 * Thrown out of runner::heartbeat() when the running cell exceeded
 * --cell-timeout; the runner records it like any other cell failure.
 */
class CellTimedOut : public std::runtime_error
{
  public:
    explicit CellTimedOut(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Cooperative cancellation point for cell work functions. Long-running
 * simulation loops call this periodically (SecureMemorySim does, every
 * few ten-thousand references); when the cell's --cell-timeout expired,
 * it throws CellTimedOut. A no-op outside runner workers and when no
 * timeout is configured.
 */
void heartbeat();

/**
 * Install graceful SIGINT/SIGTERM handling for batch runs: the first
 * signal requests an orderly stop (workers finish and checkpoint the
 * cells they are running, pending cells are left for --resume, and
 * Experiment::finish() prints the interruption plus the failed-cells
 * report and returns 128+signo); a second signal kills the process with
 * the default disposition. Installed by the Experiment constructor;
 * idempotent.
 */
void installSignalHandlers();

/** Signal number of a pending graceful-stop request, 0 if none. */
int interruptSignal();

/** Set/clear the graceful-stop request (signal-handler and test hook). */
void requestInterrupt(int signo);

// ---------------------------------------------------------------------------
// Process-wide observability state.
//
// The Experiment harness publishes the parsed --metrics / --trace-*
// options here once, before any cell runs; cells (and the simulator
// beneath them) read the state without threading new parameters through
// every driver. Setters are exposed for tests.
// ---------------------------------------------------------------------------

/** Registry emission level for this process (from --metrics). */
MetricsLevel metricsLevel();
void setMetricsLevel(MetricsLevel level);

/**
 * Publish --trace-events configuration (empty @p path disables); also
 * re-arms the once-per-process claim, so tests can reuse it.
 */
void setTraceEvents(std::string path, std::uint64_t sample_every,
                    std::string cell);

/** A granted --trace-events claim: where and how to write the trace. */
struct TraceClaim
{
    std::string path;
    std::uint64_t sampleEvery = 4096;
    /** Id of the claiming cell (recorded in the trace metadata). */
    std::string cell;
};

/**
 * Try to claim the process's --trace-events output for the calling
 * cell. At most one claim is granted per configuration: the cell whose
 * id matches --trace-cell, or — without a filter — the first caller.
 * Returns nullopt when tracing is off, filtered to another cell, or
 * already claimed. SecureMemorySim::run() calls this automatically.
 */
std::optional<TraceClaim> claimTraceEvents();

/**
 * Id of the cell the calling worker thread is currently executing
 * (empty outside runner workers). Stable for the duration of one cell's
 * work function.
 */
const std::string &currentCellId();

// ---------------------------------------------------------------------------
// Values, rows, cells.
// ---------------------------------------------------------------------------

/**
 * One metric value. Numeric values remember their display precision so
 * the table, JSON and CSV sinks all render the same number.
 */
class Value
{
  public:
    Value() = default;
    Value(std::string text) : kind_(Kind::Text), text_(std::move(text)) {}
    Value(const char *text) : kind_(Kind::Text), text_(text) {}

    static Value num(double v, int precision = 3);
    static Value integer(std::uint64_t v);
    /** Byte size rendered as "64KB" / "2MB" (text in every format). */
    static Value size(std::uint64_t bytes);

    /** Table / CSV cell content. */
    std::string text() const;
    /** JSON literal (bare number or quoted string). */
    std::string json() const;

    bool isNumeric() const { return kind_ != Kind::Text; }
    /** Raw numeric value (0 for text). */
    double asDouble() const;

    /// @name Exact-representation access (checkpoint serialization)
    /// @{
    enum class Kind : std::uint8_t { Text, Real, Int };
    Kind kind() const { return kind_; }
    const std::string &rawText() const { return text_; }
    double rawReal() const { return real_; }
    std::uint64_t rawInt() const { return int_; }
    int precision() const { return precision_; }
    /// @}

  private:
    Kind kind_ = Kind::Text;
    std::string text_;
    double real_ = 0.0;
    std::uint64_t int_ = 0;
    int precision_ = 3;
};

/** An ordered set of (column, value) pairs; one line of a result table. */
struct Row
{
    std::vector<std::pair<std::string, Value>> cols;

    Row &add(std::string key, Value v);
    Row &add(std::string key, const std::string &text);
    Row &add(std::string key, const char *text);
    Row &add(std::string key, double v, int precision);
    Row &add(std::string key, std::uint64_t v);

    /** nullptr if the column is absent. */
    const Value *find(std::string_view key) const;
    /** Numeric value of a column; 0 if absent. */
    double num(std::string_view key) const;
};

/**
 * A row tagged with the heading of the table it belongs to ("" for the
 * experiment's single/main table). The table sink starts a new table
 * whenever the section changes (first-seen order); JSON/CSV emit the
 * section as a field.
 */
struct SectionRow
{
    std::string section;
    Row row;
};

/** Everything one cell produces. */
struct CellOutput
{
    std::vector<SectionRow> rows;

    CellOutput &add(std::string section, Row row);
    CellOutput &add(Row row) { return add("", std::move(row)); }
};

/** One schedulable unit of experiment work. */
struct Cell
{
    /** Unique id within the experiment, e.g. "canneal/64KB". */
    std::string id;
    /**
     * Deterministic per-cell seed; filled by the runner from
     * deriveCellSeed(opts.seed, id) when left 0.
     */
    std::uint64_t seed = 0;
    /** Runs on a worker thread; must only touch cell-local state. */
    std::function<CellOutput(const Cell &)> work;
};

/**
 * One isolated cell failure. The runner records the failure, leaves the
 * cell's output empty, and keeps running the remaining cells; the
 * harness reports every failure and turns them into a non-zero exit.
 */
struct CellFailure
{
    /** Index of the failed cell within its run() call. */
    std::size_t index = 0;
    std::string phase;
    std::string id;
    std::uint64_t seed = 0;
    std::string error;
};

/** Identity of an experiment, shown in banners and records. */
struct ExperimentMeta
{
    /** Machine name, e.g. "fig6_eviction_policies". */
    std::string name;
    std::string title;
    std::string paperRef;
};

// ---------------------------------------------------------------------------
// Result sinks.
// ---------------------------------------------------------------------------

/** Receives experiment rows and renders them somewhere. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    virtual void begin(const ExperimentMeta &meta, const Options &opts);
    virtual void row(const SectionRow &r) = 0;
    /** Free-form postscript; only the table sink renders it. */
    virtual void note(const std::string &text);
    virtual void end();
};

/** Aligned text tables with the classic bench banner and notes. */
class TableSink : public ResultSink
{
  public:
    explicit TableSink(std::ostream &os) : os_(os) {}

    void begin(const ExperimentMeta &meta, const Options &opts) override;
    void row(const SectionRow &r) override;
    void note(const std::string &text) override;
    void end() override;

  private:
    std::ostream &os_;
    std::vector<std::pair<std::string, std::vector<Row>>> sections_;
    std::vector<std::string> notes_;
};

/** One flat JSON object per row: experiment/section plus the columns. */
class JsonlSink : public ResultSink
{
  public:
    explicit JsonlSink(std::ostream &os) : os_(os) {}

    void begin(const ExperimentMeta &meta, const Options &opts) override;
    void row(const SectionRow &r) override;

  private:
    std::ostream &os_;
    std::string experiment_;
};

/**
 * CSV with one header: experiment,section,<union of columns in
 * first-seen order>; cells a row lacks are left empty.
 */
class CsvSink : public ResultSink
{
  public:
    explicit CsvSink(std::ostream &os) : os_(os) {}

    void begin(const ExperimentMeta &meta, const Options &opts) override;
    void row(const SectionRow &r) override;
    void end() override;

  private:
    std::ostream &os_;
    std::string experiment_;
    std::vector<std::string> columns_;
    std::vector<SectionRow> rows_;
};

/** Build the sink selected by --format / --out (fatal on open failure). */
std::unique_ptr<ResultSink> makeSink(const Options &opts);

// ---------------------------------------------------------------------------
// Runner.
// ---------------------------------------------------------------------------

/**
 * Executes cells on a pool of opts.effectiveJobs() threads. Outputs are
 * indexed like the input cells, so downstream consumers see the same
 * results in the same order regardless of parallelism; a progress/ETA
 * line is maintained on stderr while cells complete.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(Options opts) : opts_(std::move(opts)) {}

    /**
     * Run the cells. A throwing cell does not abort the grid: its
     * failure is recorded (see failures()) and its output stays empty
     * while every other cell still runs to completion.
     */
    std::vector<CellOutput> run(const std::vector<Cell> &cells,
                                const std::string &phase = "");

    const Options &options() const { return opts_; }

    /** Failures recorded across every run() call, in cell order. */
    const std::vector<CellFailure> &failures() const { return failures_; }

    /** Cells skipped because a --resume checkpoint was loaded. */
    std::uint64_t resumedCells() const { return resumedCells_; }

    /** Cells skipped because --only-cells deselected them. */
    std::uint64_t shardSkippedCells() const { return shardSkipped_; }

    /** Cells left unexecuted by a graceful SIGINT/SIGTERM stop. */
    std::uint64_t interruptedCells() const { return interruptedCells_; }

    /** --only-cells ids that never matched any cell of any run(). */
    std::vector<std::string> unmatchedOnlyCells() const;

  private:
    Options opts_;
    std::vector<CellFailure> failures_;
    std::uint64_t resumedCells_ = 0;
    std::uint64_t shardSkipped_ = 0;
    std::uint64_t interruptedCells_ = 0;
    std::vector<std::string> matchedOnlyCells_;
    /**
     * Held for the runner's lifetime when --resume is active: two
     * runners (or a runner plus mapsd) pointed at the same checkpoint
     * directory fail fast instead of interleaving atomic publishes.
     */
    DirLock resumeLock_;
};

/// @name Checkpoint internals (exposed for tests)
/// @{
namespace detail {
/** Exact, self-contained serialization of one cell's output. */
std::string serializeCellOutput(const CellOutput &out);
/** Strict inverse of serializeCellOutput; false on any mismatch. */
bool parseCellOutput(const std::string &text, CellOutput &out);
/** Checkpoint file name for a cell (phase + id + seed + scale keyed). */
std::string checkpointFileName(const std::string &phase, const Cell &cell,
                               double scale);
} // namespace detail
/// @}

/**
 * The per-driver harness: banner + runner + sink. Typical driver:
 *
 *   auto opts = Options::parse(argc, argv);
 *   Experiment exp({"fig4_bimodal", "Figure 4: ...", "Figure 4 (§IV-D)"},
 *                  opts);
 *   exp.runAndEmit(cells);
 *   exp.note("expected shape (paper): ...");
 *   return exp.finish();
 */
class Experiment
{
  public:
    Experiment(ExperimentMeta meta, const Options &opts);

    ExperimentRunner &runner() { return runner_; }
    const Options &options() const { return runner_.options(); }

    /** Run cells without emitting (intermediate phase). */
    std::vector<CellOutput> run(const std::vector<Cell> &cells,
                                const std::string &phase = "");
    /** Run cells and stream every row to the sink in cell order. */
    std::vector<CellOutput> runAndEmit(const std::vector<Cell> &cells,
                                       const std::string &phase = "");

    void emit(const SectionRow &r);
    void emit(std::string section, Row row);
    void emit(Row row) { emit("", std::move(row)); }
    void emit(const CellOutput &out);

    void note(const std::string &text);

    /**
     * Flush the sink (appending the maps::check summary when --check is
     * active); returns the process exit code: 0; 1 when --check
     * recorded divergences or cells failed; 4 when --only-cells named
     * unknown cells; 128+signo after a graceful SIGINT/SIGTERM stop.
     * In --list-cells mode prints "list-end complete" instead of
     * rendering results.
     */
    int finish();

  private:
    ExperimentMeta meta_;
    ExperimentRunner runner_;
    std::unique_ptr<ResultSink> sink_;
    bool finished_ = false;
};

} // namespace maps::runner

#endif // MAPS_CORE_RUNNER_HPP
