/**
 * @file
 * Energy and delay models (McPAT/CACTI stand-in, DESIGN.md §1).
 *
 * Uses the paper's cited constants: DRAM 150 pJ/bit [14], SRAM
 * 0.3 pJ/bit [26]. SRAM per-access energy scales with sqrt(capacity)
 * (CACTI-like wordline/bitline growth); a small per-MB leakage power
 * term makes capacity itself cost energy over time.
 */
#ifndef MAPS_ENERGY_ENERGY_HPP
#define MAPS_ENERGY_ENERGY_HPP

#include <cstdint>

#include "util/types.hpp"

namespace maps {

/** Model constants. */
struct EnergyConfig
{
    double dramPjPerBit = 150.0;     ///< [14] per bit transferred
    double sramPjPerBitRef = 0.3;    ///< [26] at the reference capacity
    std::uint64_t sramRefBytes = 1_MiB;
    double sramSizeExponent = 0.5;   ///< access energy ~ size^exp
    double sramLeakMwPerMb = 20.0;   ///< static power
    double cpuFreqGhz = 3.0;         ///< Table I
};

/** Per-component dynamic + leakage energy, in picojoules. */
struct EnergyBreakdown
{
    double l1Pj = 0;
    double l2Pj = 0;
    double llcPj = 0;
    double mdCachePj = 0;
    double dramPj = 0;
    double leakagePj = 0;

    double totalPj() const
    {
        return l1Pj + l2Pj + llcPj + mdCachePj + dramPj + leakagePj;
    }
};

/** Evaluates the constants above. */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyConfig cfg = {});

    /** Energy of one 64B SRAM access in a cache of the given size. */
    double sramAccessPj(std::uint64_t size_bytes) const;

    /** Energy of one 64B DRAM block transfer. */
    double dramAccessPj() const;

    /** Dynamic energy of a cache given its access count. */
    double cacheDynamicPj(std::uint64_t size_bytes,
                          std::uint64_t accesses) const;

    /** Leakage of an SRAM array over a duration. */
    double leakagePj(std::uint64_t size_bytes, double seconds) const;

    /** Convert cycles to seconds at the configured clock. */
    double secondsOf(Cycles cycles) const;

    const EnergyConfig &config() const { return cfg_; }

  private:
    EnergyConfig cfg_;
};

/** Energy-delay-squared: energy (pJ) x time (s) squared. */
double energyDelaySquared(double energy_pj, double seconds);

} // namespace maps

#endif // MAPS_ENERGY_ENERGY_HPP
