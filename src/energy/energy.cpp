#include "energy/energy.hpp"

#include <cmath>

#include "metrics/derived.hpp"
#include "util/logging.hpp"

namespace maps {

EnergyModel::EnergyModel(EnergyConfig cfg) : cfg_(cfg)
{
    fatalIf(cfg_.sramRefBytes == 0, "SRAM reference size must be non-zero");
    fatalIf(cfg_.cpuFreqGhz <= 0.0, "CPU frequency must be positive");
}

double
EnergyModel::sramAccessPj(std::uint64_t size_bytes) const
{
    const double bits = 8.0 * static_cast<double>(kBlockSize);
    const double scale =
        std::pow(static_cast<double>(size_bytes) /
                     static_cast<double>(cfg_.sramRefBytes),
                 cfg_.sramSizeExponent);
    return bits * cfg_.sramPjPerBitRef * scale;
}

double
EnergyModel::dramAccessPj() const
{
    const double bits = 8.0 * static_cast<double>(kBlockSize);
    return bits * cfg_.dramPjPerBit;
}

double
EnergyModel::cacheDynamicPj(std::uint64_t size_bytes,
                            std::uint64_t accesses) const
{
    return sramAccessPj(size_bytes) * static_cast<double>(accesses);
}

double
EnergyModel::leakagePj(std::uint64_t size_bytes, double seconds) const
{
    const double mb =
        static_cast<double>(size_bytes) / static_cast<double>(1_MiB);
    const double watts = cfg_.sramLeakMwPerMb * mb * 1e-3;
    return watts * seconds * 1e12; // J -> pJ
}

double
EnergyModel::secondsOf(Cycles cycles) const
{
    return static_cast<double>(cycles) / (cfg_.cpuFreqGhz * 1e9);
}

double
energyDelaySquared(double energy_pj, double seconds)
{
    return metrics::energyDelaySquared(energy_pj, seconds);
}

} // namespace maps
