/**
 * @file
 * AccessGenerator: the interface every synthetic workload implements.
 *
 * Generators stand in for the paper's SPEC 2006 / PARSEC / SPLASH-2
 * binaries (see DESIGN.md §1). Each produces an infinite, deterministic
 * stream of CPU-level memory references with a configurable
 * instructions-per-reference gap, so MPKI is well-defined.
 */
#ifndef MAPS_WORKLOADS_GENERATOR_HPP
#define MAPS_WORKLOADS_GENERATOR_HPP

#include <memory>
#include <string>

#include "trace/record.hpp"
#include "util/rng.hpp"

namespace maps {

/** Interface for synthetic reference streams. */
class AccessGenerator
{
  public:
    virtual ~AccessGenerator() = default;

    /** Produce the next reference. Streams are infinite. */
    virtual MemRef next() = 0;

    /** Restart the stream from its initial state (same seed). */
    virtual void reset() = 0;

    /** Generator family name (for reports). */
    virtual std::string name() const = 0;
};

/**
 * Common machinery: seeded RNG and the instruction-gap model. The gap
 * between consecutive references is 1 + Geometric, tuned so the mean
 * instructions-per-memory-reference matches @c meanGap.
 */
class GeneratorBase : public AccessGenerator
{
  public:
    GeneratorBase(std::uint64_t seed, double mean_gap)
        : seed_(seed), meanGap_(mean_gap), rng_(seed)
    {
    }

    void reset() override { rng_ = Rng(seed_); resetImpl(); }

  protected:
    /** Subclass state reset hook. */
    virtual void resetImpl() = 0;

    /** Build a reference at addr with a sampled instruction gap. */
    MemRef
    makeRef(Addr addr, bool write)
    {
        MemRef ref;
        ref.addr = addr;
        ref.type = write ? AccessType::Write : AccessType::Read;
        if (meanGap_ <= 1.0) {
            ref.instGap = 1;
        } else {
            const double p = 1.0 / meanGap_;
            ref.instGap = static_cast<std::uint32_t>(rng_.nextGeometric(p));
        }
        return ref;
    }

    Rng &rng() { return rng_; }

  private:
    std::uint64_t seed_;
    double meanGap_;
    Rng rng_;
};

} // namespace maps

#endif // MAPS_WORKLOADS_GENERATOR_HPP
