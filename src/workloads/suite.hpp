/**
 * @file
 * The named benchmark registry: synthetic stand-ins for the paper's
 * SPEC 2006, PARSEC and SPLASH-2 workloads (see DESIGN.md §1 for why the
 * substitution preserves the studied behaviours).
 */
#ifndef MAPS_WORKLOADS_SUITE_HPP
#define MAPS_WORKLOADS_SUITE_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workloads/generator.hpp"

namespace maps {

/** Origin suite of the benchmark being modelled. */
enum class BenchmarkSuite : std::uint8_t { Spec2006, Parsec, Splash2 };

const char *suiteName(BenchmarkSuite s);

/** A registry entry: how to build one benchmark's generator. */
struct BenchmarkSpec
{
    std::string name;
    BenchmarkSuite suite;
    /** What property of the real workload the generator reproduces. */
    std::string character;
    /** Paper's focus set: LLC MPKI > 10 under a 2MB LLC. */
    bool memoryIntensive = false;
    /** Data footprint in bytes (for reports). */
    std::uint64_t footprintBytes = 0;
    std::function<std::unique_ptr<AccessGenerator>(std::uint64_t seed)>
        factory;
};

/** All registered benchmarks, in canonical order. */
const std::vector<BenchmarkSpec> &benchmarkSuite();

/** Names of all benchmarks (canonical order). */
std::vector<std::string> benchmarkNames(bool memory_intensive_only = false);

/** Find a benchmark spec by name; nullptr if absent. */
const BenchmarkSpec *findBenchmark(const std::string &name);

/** Build a generator for a named benchmark; fatal if unknown. */
std::unique_ptr<AccessGenerator> makeBenchmark(const std::string &name,
                                               std::uint64_t seed = 1);

/** The six representative benchmarks used by the paper's Figure 3. */
std::vector<std::string> figure3Benchmarks();

} // namespace maps

#endif // MAPS_WORKLOADS_SUITE_HPP
