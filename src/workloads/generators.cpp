#include "workloads/generators.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/bitops.hpp"
#include "util/logging.hpp"

namespace maps {

StreamGenerator::StreamGenerator(std::uint64_t footprint_bytes,
                                 double write_frac,
                                 std::uint64_t stride_bytes,
                                 std::uint64_t seed, double mean_gap,
                                 Addr base)
    : GeneratorBase(seed, mean_gap),
      footprint_(footprint_bytes),
      writeFrac_(write_frac),
      stride_(stride_bytes),
      base_(base)
{
    fatalIf(footprint_ == 0, "stream footprint must be non-zero");
    fatalIf(stride_ == 0, "stream stride must be non-zero");
}

MemRef
StreamGenerator::next()
{
    const Addr addr = base_ + pos_;
    pos_ += stride_;
    if (pos_ >= footprint_)
        pos_ = 0;
    return makeRef(addr, rng().nextBool(writeFrac_));
}

RandomGenerator::RandomGenerator(std::uint64_t footprint_bytes,
                                 double write_frac, std::uint64_t seed,
                                 double mean_gap, Addr base)
    : GeneratorBase(seed, mean_gap),
      blocks_(footprint_bytes / kBlockSize),
      writeFrac_(write_frac),
      base_(base)
{
    fatalIf(blocks_ == 0, "random footprint must be at least one block");
}

MemRef
RandomGenerator::next()
{
    const Addr addr = base_ + rng().nextBounded(blocks_) * kBlockSize;
    return makeRef(addr, rng().nextBool(writeFrac_));
}

ZipfGenerator::ZipfGenerator(std::uint64_t footprint_bytes, double theta,
                             double write_frac, unsigned run_length,
                             std::uint64_t seed, double mean_gap, Addr base)
    : GeneratorBase(seed, mean_gap),
      blocks_(footprint_bytes / kBlockSize),
      writeFrac_(write_frac),
      runLength_(std::max(run_length, 1u)),
      base_(base),
      zipf_(std::max<std::uint64_t>(blocks_, 1), theta)
{
    fatalIf(blocks_ == 0, "zipf footprint must be at least one block");
}

std::uint64_t
ZipfGenerator::scatter(std::uint64_t rank) const
{
    // Bijective multiplicative scatter (Fibonacci hashing) so popular
    // ranks spread across the footprint rather than clustering at the
    // low addresses (which would fake spatial locality).
    return (rank * 0x9E3779B97F4A7C15ull) % blocks_;
}

MemRef
ZipfGenerator::next()
{
    if (runLeft_ == 0) {
        current_ = scatter(zipf_.sample(rng()));
        runLeft_ = runLength_;
    }
    const std::uint64_t offset = runLength_ - runLeft_;
    --runLeft_;
    const std::uint64_t block = (current_ + offset) % blocks_;
    return makeRef(base_ + block * kBlockSize, rng().nextBool(writeFrac_));
}

StencilGenerator::StencilGenerator(std::uint64_t nx, std::uint64_t ny,
                                   std::uint64_t nz,
                                   std::uint64_t elem_bytes,
                                   unsigned write_every, std::uint64_t seed,
                                   double mean_gap, Addr base)
    : GeneratorBase(seed, mean_gap),
      nx_(nx), ny_(ny), nz_(nz), elemBytes_(elem_bytes),
      writeEvery_(std::max(write_every, 1u)),
      base_(base)
{
    fatalIf(nx_ == 0 || ny_ == 0 || nz_ == 0,
            "stencil grid dimensions must be non-zero");
    fatalIf(elemBytes_ == 0, "stencil element size must be non-zero");
}

MemRef
StencilGenerator::next()
{
    const std::uint64_t points = nx_ * ny_ * nz_;
    const std::uint64_t p = point_;

    // Neighbour offsets in linear index space. Out-of-range neighbours
    // fold back onto the centre (boundary handling that preserves the
    // stream structure without branching on grid coordinates).
    const std::uint64_t plane = nx_ * ny_;
    std::uint64_t target = p;
    bool write = false;
    switch (phase_) {
      case 0: // centre read
        target = p;
        break;
      case 1: // -x neighbour
        target = p >= 1 ? p - 1 : p;
        break;
      case 2: // +x neighbour
        target = p + 1 < points ? p + 1 : p;
        break;
      case 3: // -y neighbour
        target = p >= nx_ ? p - nx_ : p;
        break;
      case 4: // +y neighbour
        target = p + nx_ < points ? p + nx_ : p;
        break;
      case 5: // -z neighbour
        target = p >= plane ? p - plane : p;
        break;
      case 6: // +z neighbour / centre write
        target = p + plane < points ? p + plane : p;
        break;
      case 7: // centre write (only every writeEvery-th point)
        target = p;
        write = true;
        break;
    }

    const unsigned last_phase =
        (point_ % writeEvery_ == 0) ? 7u : 6u;
    if (phase_ >= last_phase) {
        phase_ = 0;
        point_ = (point_ + 1) % points;
    } else {
        ++phase_;
    }
    // Collapse 2D grids (nz==1) to the 4-neighbour stencil by skipping
    // the z phases.
    if (nz_ == 1 && (phase_ == 5 || phase_ == 6))
        phase_ = last_phase;

    return makeRef(elemAddr(target), write);
}

PointerChaseGenerator::PointerChaseGenerator(std::uint64_t footprint_bytes,
                                             double write_frac,
                                             std::uint64_t seed,
                                             double mean_gap, Addr base)
    : GeneratorBase(seed, mean_gap),
      writeFrac_(write_frac),
      base_(base)
{
    const std::uint64_t blocks = footprint_bytes / kBlockSize;
    fatalIf(blocks == 0, "pointer-chase footprint must be >= one block");
    fatalIf(blocks > (std::uint64_t{1} << 32),
            "pointer-chase footprint too large for 32-bit links");

    // Sattolo's algorithm: a single random cycle over all blocks, so the
    // chase visits the entire footprint before repeating.
    nextBlock_.resize(blocks);
    std::iota(nextBlock_.begin(), nextBlock_.end(), 0u);
    Rng perm_rng(seed ^ 0xC0FFEEull);
    for (std::uint64_t i = blocks - 1; i >= 1; --i) {
        const std::uint64_t j = perm_rng.nextBounded(i);
        std::swap(nextBlock_[i], nextBlock_[j]);
    }
}

MemRef
PointerChaseGenerator::next()
{
    const Addr addr = base_ + current_ * kBlockSize;
    current_ = nextBlock_[current_];
    return makeRef(addr, rng().nextBool(writeFrac_));
}

TransposeGenerator::TransposeGenerator(std::uint64_t rows,
                                       std::uint64_t cols,
                                       std::uint64_t elem_bytes,
                                       double write_frac,
                                       std::uint64_t seed, double mean_gap,
                                       Addr base)
    : GeneratorBase(seed, mean_gap),
      rows_(rows), cols_(cols), elemBytes_(elem_bytes),
      writeFrac_(write_frac),
      base_(base)
{
    fatalIf(rows_ == 0 || cols_ == 0 || elemBytes_ == 0,
            "transpose dimensions must be non-zero");
}

MemRef
TransposeGenerator::next()
{
    const std::uint64_t elems = rows_ * cols_;
    std::uint64_t linear;
    if (!columnPhase_) {
        linear = idx_;
    } else {
        // Column-major traversal: element (r, c) visited in order
        // c*rows + r -> linear r*cols + c.
        const std::uint64_t r = idx_ % rows_;
        const std::uint64_t c = idx_ / rows_;
        linear = r * cols_ + c;
    }

    ++idx_;
    if (idx_ >= elems) {
        idx_ = 0;
        columnPhase_ = !columnPhase_;
    }

    const Addr addr = base_ + linear * elemBytes_;
    return makeRef(addr, rng().nextBool(writeFrac_));
}

InterleavedStreamGenerator::InterleavedStreamGenerator(
    std::uint32_t streams, std::uint64_t stream_bytes,
    std::uint64_t elem_bytes, double write_frac, std::uint64_t seed,
    double mean_gap, Addr base)
    : GeneratorBase(seed, mean_gap),
      streams_(streams),
      streamBytes_(stream_bytes),
      elemBytes_(elem_bytes),
      writeFrac_(write_frac),
      base_(base)
{
    fatalIf(streams_ == 0, "need at least one stream");
    fatalIf(streamBytes_ == 0 || elemBytes_ == 0,
            "stream and element sizes must be non-zero");
    fatalIf(elemBytes_ > streamBytes_, "element larger than the stream");
}

MemRef
InterleavedStreamGenerator::next()
{
    // Stagger stream origins by one block so block-boundary crossings
    // do not all happen on the same round.
    const Addr stream_base =
        base_ + static_cast<Addr>(turn_) * streamBytes_;
    const Addr offset =
        (pos_ + static_cast<Addr>(turn_) * kBlockSize) % streamBytes_;
    const Addr addr = stream_base + offset;

    ++turn_;
    if (turn_ >= streams_) {
        turn_ = 0;
        pos_ += elemBytes_;
        if (pos_ >= streamBytes_)
            pos_ = 0;
    }
    return makeRef(addr, rng().nextBool(writeFrac_));
}

MultiProgrammedGenerator::MultiProgrammedGenerator(
    std::vector<std::unique_ptr<AccessGenerator>> programs,
    std::uint64_t region_bytes, unsigned burst_length)
    : programs_(std::move(programs)),
      regionBytes_(region_bytes),
      burstLength_(std::max(burst_length, 1u))
{
    fatalIf(programs_.empty(), "need at least one program");
    fatalIf(!isPow2(regionBytes_) || regionBytes_ < kPageSize,
            "region size must be a power of two >= one page");
}

MemRef
MultiProgrammedGenerator::next()
{
    if (burstLeft_ == 0) {
        current_ = (current_ + 1) % programs_.size();
        burstLeft_ = burstLength_;
    }
    --burstLeft_;
    MemRef ref = programs_[current_]->next();
    ref.addr = static_cast<Addr>(current_) * regionBytes_ +
               (ref.addr & (regionBytes_ - 1));
    return ref;
}

void
MultiProgrammedGenerator::reset()
{
    current_ = 0;
    burstLeft_ = 0;
    for (auto &program : programs_)
        program->reset();
}

MixtureGenerator::MixtureGenerator(
    std::vector<std::unique_ptr<AccessGenerator>> parts,
    std::vector<double> weights, unsigned burst_length, std::uint64_t seed)
    : GeneratorBase(seed, 1.0), // gaps come from the components
      parts_(std::move(parts)),
      burstLength_(std::max(burst_length, 1u))
{
    fatalIf(parts_.empty(), "mixture needs at least one component");
    fatalIf(weights.size() != parts_.size(),
            "mixture weights/components size mismatch");
    double acc = 0.0;
    for (double w : weights) {
        fatalIf(w < 0.0, "mixture weights must be non-negative");
        acc += w;
        cumWeights_.push_back(acc);
    }
    fatalIf(acc <= 0.0, "mixture weights must not all be zero");
    for (double &w : cumWeights_)
        w /= acc;
}

void
MixtureGenerator::resetImpl()
{
    current_ = 0;
    burstLeft_ = 0;
    for (auto &part : parts_)
        part->reset();
}

MemRef
MixtureGenerator::next()
{
    if (burstLeft_ == 0) {
        const double u = rng().nextDouble();
        current_ = 0;
        while (current_ + 1 < cumWeights_.size() &&
               u > cumWeights_[current_]) {
            ++current_;
        }
        burstLeft_ = burstLength_;
    }
    --burstLeft_;
    return parts_[current_]->next();
}

} // namespace maps
