#include "workloads/suite.hpp"

#include "util/logging.hpp"
#include "util/types.hpp"
#include "workloads/generators.hpp"

namespace maps {

const char *
suiteName(BenchmarkSuite s)
{
    switch (s) {
      case BenchmarkSuite::Spec2006:
        return "SPEC2006";
      case BenchmarkSuite::Parsec:
        return "PARSEC";
      case BenchmarkSuite::Splash2:
        return "SPLASH2";
    }
    return "?";
}

namespace {

// Generators emit element-granularity (8B) addresses where the modelled
// code streams through arrays, so the L1/L2 filter sequential accesses
// the way they do for real binaries; only truly scattered access
// patterns run at block granularity. Instruction gaps put the suite's
// refs-per-kilo-instruction near real SPEC/PARSEC rates.

std::unique_ptr<AccessGenerator>
makeCanneal(std::uint64_t seed)
{
    // Simulated annealing over a huge netlist: random element swaps
    // across 64MB with a modest hot index structure. Poor spatial
    // locality; ~half the counter reuse beyond 1MB (Fig. 3).
    std::vector<std::unique_ptr<AccessGenerator>> parts;
    parts.push_back(std::make_unique<RandomGenerator>(
        64_MiB, 0.25, seed, 5.0, 0));
    parts.push_back(std::make_unique<ZipfGenerator>(
        2_MiB, 0.70, 0.20, 4, seed + 1, 5.0, 64_MiB));
    std::vector<double> weights{0.20, 0.80};
    return std::make_unique<MixtureGenerator>(std::move(parts),
                                              std::move(weights), 8, seed);
}

std::unique_ptr<AccessGenerator>
makeCactusAdm(std::uint64_t seed)
{
    // Einstein-equation kernel sweeping ~dozens of grid functions in
    // lockstep: interleaved streams spread page revisits a fixed number
    // of misses apart — the *moderate* reuse distances that make
    // cactusADM a bimodality exception (Fig. 4).
    // 96 streams put the counter/hash reuse distances squarely in the
    // moderate (128-512 block) classes: ~2x95 sibling metadata blocks
    // plus tree nodes between two touches of the same page.
    return std::make_unique<InterleavedStreamGenerator>(
        96, 384_KiB, 8, 0.25, seed, 5.0, 0); // 36MB across 96 streams
}

std::unique_ptr<AccessGenerator>
makeFft(std::uint64_t seed)
{
    // Six-step FFT: row-major butterflies alternating with column-major
    // transposes over a 16MB matrix; 20% writes (paper §IV-E).
    return std::make_unique<TransposeGenerator>(
        2048, 1024, 8, 0.20, seed, 4.0, 0);
}

std::unique_ptr<AccessGenerator>
makeLeslie3d(std::uint64_t seed)
{
    // CFD: a 3D stencil sweep plus straight streaming over auxiliary
    // field arrays; ~5% writes overall.
    std::vector<std::unique_ptr<AccessGenerator>> parts;
    parts.push_back(std::make_unique<StencilGenerator>(
        192, 160, 96, 8, 3, seed, 4.0, 0)); // ~22.5MB grid
    parts.push_back(std::make_unique<StreamGenerator>(
        12_MiB, 0.05, 8, seed + 1, 4.0, 48_MiB));
    std::vector<double> weights{0.55, 0.45};
    return std::make_unique<MixtureGenerator>(std::move(parts),
                                              std::move(weights), 16, seed);
}

std::unique_ptr<AccessGenerator>
makeLibquantum(std::uint64_t seed)
{
    // Streams repeatedly through a 4MB quantum-register array (paper
    // §IV-C uses exactly this structure to explain hash-block bursts).
    return std::make_unique<StreamGenerator>(4_MiB, 0.25, 8, seed, 4.0, 0);
}

std::unique_ptr<AccessGenerator>
makeMcf(std::uint64_t seed)
{
    // Network simplex: pointer chasing over a large arc array plus a
    // hot node working set.
    std::vector<std::unique_ptr<AccessGenerator>> parts;
    // Pointer chasing dominates, but the pricing phases also scan the
    // arc arrays sequentially — that scan supplies the short-distance
    // mode of mcf's bimodal metadata reuse.
    parts.push_back(std::make_unique<PointerChaseGenerator>(
        48_MiB, 0.12, seed, 3.5, 0));
    parts.push_back(std::make_unique<ZipfGenerator>(
        3_MiB, 0.90, 0.10, 2, seed + 1, 3.5, 48_MiB));
    parts.push_back(std::make_unique<StreamGenerator>(
        24_MiB, 0.05, 8, seed + 2, 3.5, 52_MiB));
    std::vector<double> weights{0.05, 0.45, 0.50};
    return std::make_unique<MixtureGenerator>(std::move(parts),
                                              std::move(weights), 16, seed);
}

std::unique_ptr<AccessGenerator>
makeBarnes(std::uint64_t seed)
{
    // Barnes-Hut N-body: skewed tree walks (hot upper tree, cold
    // leaves) with short spatial runs over particle records.
    return std::make_unique<ZipfGenerator>(
        8_MiB, 1.05, 0.15, 4, seed, 4.5, 0);
}

std::unique_ptr<AccessGenerator>
makePerl(std::uint64_t seed)
{
    // perlbench: interpreter with a small, hot working set — low LLC
    // MPKI (the paper's CSOPT finishes in 32 minutes only for perl).
    return std::make_unique<ZipfGenerator>(
        1536_KiB, 0.80, 0.20, 8, seed, 5.0, 0);
}

std::unique_ptr<AccessGenerator>
makeLbm(std::uint64_t seed)
{
    // Lattice-Boltzmann: read stream + write-heavy stream over two
    // lattices.
    std::vector<std::unique_ptr<AccessGenerator>> parts;
    parts.push_back(std::make_unique<StreamGenerator>(
        16_MiB, 0.10, 8, seed, 4.0, 0));
    parts.push_back(std::make_unique<StreamGenerator>(
        16_MiB, 0.75, 8, seed + 1, 4.0, 16_MiB));
    std::vector<double> weights{0.5, 0.5};
    return std::make_unique<MixtureGenerator>(std::move(parts),
                                              std::move(weights), 8, seed);
}

std::unique_ptr<AccessGenerator>
makeMilc(std::uint64_t seed)
{
    // Lattice QCD: streaming over su3 matrices plus scattered gathers.
    std::vector<std::unique_ptr<AccessGenerator>> parts;
    parts.push_back(std::make_unique<StreamGenerator>(
        24_MiB, 0.20, 8, seed, 4.5, 0));
    parts.push_back(std::make_unique<RandomGenerator>(
        24_MiB, 0.15, seed + 1, 4.5, 0));
    std::vector<double> weights{0.88, 0.12};
    return std::make_unique<MixtureGenerator>(std::move(parts),
                                              std::move(weights), 16, seed);
}

std::unique_ptr<AccessGenerator>
makeOcean(std::uint64_t seed)
{
    // Ocean simulation: 2D red-black grid sweeps + column streaming.
    std::vector<std::unique_ptr<AccessGenerator>> parts;
    parts.push_back(std::make_unique<StencilGenerator>(
        1536, 1536, 1, 8, 5, seed, 4.0, 0)); // 18MB 2D grid
    parts.push_back(std::make_unique<StreamGenerator>(
        18_MiB, 0.10, 8, seed + 1, 4.0, 32_MiB));
    std::vector<double> weights{0.6, 0.4};
    return std::make_unique<MixtureGenerator>(std::move(parts),
                                              std::move(weights), 16, seed);
}

std::unique_ptr<AccessGenerator>
makeRadix(std::uint64_t seed)
{
    // Radix sort: sequential key reads + scattered bucket writes.
    std::vector<std::unique_ptr<AccessGenerator>> parts;
    parts.push_back(std::make_unique<StreamGenerator>(
        16_MiB, 0.02, 8, seed, 3.5, 0));
    parts.push_back(std::make_unique<RandomGenerator>(
        16_MiB, 0.95, seed + 1, 3.5, 16_MiB));
    std::vector<double> weights{0.90, 0.10};
    return std::make_unique<MixtureGenerator>(std::move(parts),
                                              std::move(weights), 4, seed);
}

std::unique_ptr<AccessGenerator>
makeStreamcluster(std::uint64_t seed)
{
    // Online clustering: read-mostly scans over the point set.
    return std::make_unique<StreamGenerator>(12_MiB, 0.02, 8, seed, 4.0,
                                             0);
}

std::unique_ptr<AccessGenerator>
makeGcc(std::uint64_t seed)
{
    // Compiler: medium footprint, skewed IR-node reuse, moderate writes.
    return std::make_unique<ZipfGenerator>(
        6_MiB, 0.85, 0.25, 6, seed, 5.0, 0);
}

std::vector<BenchmarkSpec>
buildRegistry()
{
    std::vector<BenchmarkSpec> v;
    v.push_back({"canneal", BenchmarkSuite::Parsec,
                 "random sprays over 64MB, little spatial locality", true,
                 66_MiB, makeCanneal});
    v.push_back({"cactusADM", BenchmarkSuite::Spec2006,
                 "160 lockstep grid-function streams (bimodality "
                 "exception)",
                 true, 40_MiB, makeCactusAdm});
    v.push_back({"fft", BenchmarkSuite::Splash2,
                 "transpose phases, 20% writes", true, 16_MiB, makeFft});
    v.push_back({"leslie3d", BenchmarkSuite::Spec2006,
                 "3D stencil + field streaming, 5% writes", true, 34_MiB,
                 makeLeslie3d});
    v.push_back({"libquantum", BenchmarkSuite::Spec2006,
                 "streams repeatedly through a 4MB array", true, 4_MiB,
                 makeLibquantum});
    v.push_back({"mcf", BenchmarkSuite::Spec2006,
                 "pointer chasing over 48MB of arcs", true, 52_MiB,
                 makeMcf});
    v.push_back({"barnes", BenchmarkSuite::Splash2,
                 "skewed tree walks over 8MB of bodies", true, 8_MiB,
                 makeBarnes});
    v.push_back({"lbm", BenchmarkSuite::Spec2006,
                 "write-heavy dual-lattice streaming", true, 32_MiB,
                 makeLbm});
    v.push_back({"milc", BenchmarkSuite::Spec2006,
                 "streaming sweeps + scattered gathers over 24MB", true,
                 24_MiB, makeMilc});
    v.push_back({"ocean", BenchmarkSuite::Splash2,
                 "2D red-black grid sweeps", true, 36_MiB, makeOcean});
    v.push_back({"radix", BenchmarkSuite::Splash2,
                 "sequential key reads + scattered bucket writes", true,
                 32_MiB, makeRadix});
    v.push_back({"streamcluster", BenchmarkSuite::Parsec,
                 "read-mostly scans over 12MB of points", true, 12_MiB,
                 makeStreamcluster});
    v.push_back({"perl", BenchmarkSuite::Spec2006,
                 "small hot interpreter working set (low MPKI)", false,
                 1536_KiB, makePerl});
    v.push_back({"gcc", BenchmarkSuite::Spec2006,
                 "skewed IR-node reuse, medium footprint", false, 6_MiB,
                 makeGcc});
    return v;
}

} // namespace

const std::vector<BenchmarkSpec> &
benchmarkSuite()
{
    static const std::vector<BenchmarkSpec> registry = buildRegistry();
    return registry;
}

std::vector<std::string>
benchmarkNames(bool memory_intensive_only)
{
    std::vector<std::string> names;
    for (const auto &spec : benchmarkSuite()) {
        if (!memory_intensive_only || spec.memoryIntensive)
            names.push_back(spec.name);
    }
    return names;
}

const BenchmarkSpec *
findBenchmark(const std::string &name)
{
    for (const auto &spec : benchmarkSuite()) {
        if (spec.name == name)
            return &spec;
    }
    return nullptr;
}

std::unique_ptr<AccessGenerator>
makeBenchmark(const std::string &name, std::uint64_t seed)
{
    // Multiprogrammed mixes: "mix:canneal+libquantum" interleaves the
    // named benchmarks, each in its own 64MB region.
    if (name.rfind("mix:", 0) == 0) {
        std::vector<std::unique_ptr<AccessGenerator>> programs;
        std::string rest = name.substr(4);
        std::size_t pos = 0;
        std::uint64_t sub_seed = seed;
        while (pos <= rest.size()) {
            const std::size_t plus = rest.find('+', pos);
            const std::string part =
                rest.substr(pos, plus == std::string::npos
                                     ? std::string::npos
                                     : plus - pos);
            fatalIf(part.empty(), "empty program in mix: " + name);
            programs.push_back(makeBenchmark(part, sub_seed++));
            if (plus == std::string::npos)
                break;
            pos = plus + 1;
        }
        return std::make_unique<MultiProgrammedGenerator>(
            std::move(programs));
    }
    const BenchmarkSpec *spec = findBenchmark(name);
    fatalIf(spec == nullptr, "unknown benchmark: " + name);
    return spec->factory(seed);
}

std::vector<std::string>
figure3Benchmarks()
{
    return {"canneal", "libquantum", "fft", "leslie3d", "mcf", "barnes"};
}

} // namespace maps
