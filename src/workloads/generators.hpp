/**
 * @file
 * Concrete synthetic access-pattern generators.
 *
 * Each family reproduces the property of a real benchmark that drives the
 * paper's results: streaming (libquantum), transpose phases (fft), 3D
 * stencils (leslie3d/ocean), pointer chasing (mcf), skewed working sets
 * (barnes/perl/gcc), uniform sprays (canneal), and large-stride sweeps
 * (cactusADM).
 */
#ifndef MAPS_WORKLOADS_GENERATORS_HPP
#define MAPS_WORKLOADS_GENERATORS_HPP

#include <memory>
#include <vector>

#include "workloads/generator.hpp"

namespace maps {

/**
 * Sequential sweep over a contiguous array, wrapping at the end.
 * With probability writeFrac an access is a store to the current position
 * (read-modify-write streams set this high; pure scans set it near zero).
 */
class StreamGenerator : public GeneratorBase
{
  public:
    StreamGenerator(std::uint64_t footprint_bytes, double write_frac,
                    std::uint64_t stride_bytes = kBlockSize,
                    std::uint64_t seed = 1, double mean_gap = 4.0,
                    Addr base = 0);

    MemRef next() override;
    std::string name() const override { return "stream"; }

  protected:
    void resetImpl() override { pos_ = 0; }

  private:
    std::uint64_t footprint_;
    double writeFrac_;
    std::uint64_t stride_;
    Addr base_;
    std::uint64_t pos_ = 0;
};

/** Uniform random block accesses over the footprint (no locality). */
class RandomGenerator : public GeneratorBase
{
  public:
    RandomGenerator(std::uint64_t footprint_bytes, double write_frac,
                    std::uint64_t seed = 1, double mean_gap = 4.0,
                    Addr base = 0);

    MemRef next() override;
    std::string name() const override { return "random"; }

  protected:
    void resetImpl() override {}

  private:
    std::uint64_t blocks_;
    double writeFrac_;
    Addr base_;
};

/**
 * Zipf-skewed block popularity with short sequential runs. theta controls
 * hotness; runLength adds spatial locality (a picked block is followed by
 * its neighbours). Ranks are scattered over the footprint with a bijective
 * multiplicative hash so hot blocks are not physically adjacent.
 */
class ZipfGenerator : public GeneratorBase
{
  public:
    ZipfGenerator(std::uint64_t footprint_bytes, double theta,
                  double write_frac, unsigned run_length = 1,
                  std::uint64_t seed = 1, double mean_gap = 4.0,
                  Addr base = 0);

    MemRef next() override;
    std::string name() const override { return "zipf"; }

  protected:
    void resetImpl() override { runLeft_ = 0; }

  private:
    std::uint64_t blocks_;
    double writeFrac_;
    unsigned runLength_;
    Addr base_;
    ZipfSampler zipf_;
    std::uint64_t current_ = 0;
    unsigned runLeft_ = 0;

    std::uint64_t scatter(std::uint64_t rank) const;
};

/**
 * 3D Jacobi-style stencil sweep: for each grid point, read the 6 (or 4 in
 * 2D) neighbours and the centre, then write the centre every writeEvery-th
 * point. Produces one sequential stream plus plane/row-strided streams —
 * the access signature of leslie3d and ocean.
 */
class StencilGenerator : public GeneratorBase
{
  public:
    StencilGenerator(std::uint64_t nx, std::uint64_t ny, std::uint64_t nz,
                     std::uint64_t elem_bytes, unsigned write_every,
                     std::uint64_t seed = 1, double mean_gap = 4.0,
                     Addr base = 0);

    MemRef next() override;
    std::string name() const override { return "stencil"; }

    std::uint64_t footprintBytes() const
    {
        return nx_ * ny_ * nz_ * elemBytes_;
    }

  protected:
    void resetImpl() override { point_ = 0; phase_ = 0; }

  private:
    std::uint64_t nx_, ny_, nz_, elemBytes_;
    unsigned writeEvery_;
    Addr base_;
    std::uint64_t point_ = 0; ///< linear index of the current grid point
    unsigned phase_ = 0;      ///< which neighbour of the point is next

    Addr elemAddr(std::uint64_t linear) const
    {
        return base_ + linear * elemBytes_;
    }
};

/**
 * Pointer chase over a pre-built random permutation cycle of the blocks
 * (mcf-style): consecutive accesses land on unrelated blocks, destroying
 * spatial locality while touching the whole footprint.
 */
class PointerChaseGenerator : public GeneratorBase
{
  public:
    PointerChaseGenerator(std::uint64_t footprint_bytes, double write_frac,
                          std::uint64_t seed = 1, double mean_gap = 4.0,
                          Addr base = 0);

    MemRef next() override;
    std::string name() const override { return "ptrchase"; }

  protected:
    void resetImpl() override { current_ = 0; }

  private:
    double writeFrac_;
    Addr base_;
    std::vector<std::uint32_t> nextBlock_;
    std::uint64_t current_ = 0;
};

/**
 * FFT-style phase alternation: a row-major pass (unit stride) followed by
 * a column-major pass (large stride), both read-modify-write with the
 * configured write fraction. Reproduces fft's 20%-write transpose phases.
 */
class TransposeGenerator : public GeneratorBase
{
  public:
    TransposeGenerator(std::uint64_t rows, std::uint64_t cols,
                       std::uint64_t elem_bytes, double write_frac,
                       std::uint64_t seed = 1, double mean_gap = 4.0,
                       Addr base = 0);

    MemRef next() override;
    std::string name() const override { return "transpose"; }

    std::uint64_t footprintBytes() const
    {
        return rows_ * cols_ * elemBytes_;
    }

  protected:
    void resetImpl() override { idx_ = 0; columnPhase_ = false; }

  private:
    std::uint64_t rows_, cols_, elemBytes_;
    double writeFrac_;
    Addr base_;
    std::uint64_t idx_ = 0;
    bool columnPhase_ = false;
};

/**
 * Round-robin interleaving of N independent sequential streams, each in
 * its own region: stream i advances by elemBytes once per round. Models
 * codes that sweep many grid functions in lockstep (cactusADM's ~dozen
 * 4D arrays): every block is touched once per sweep, so LLC misses are
 * spread N streams apart — exactly the *moderate* metadata reuse
 * distances that make cactusADM a bimodality exception (Fig. 4).
 */
class InterleavedStreamGenerator : public GeneratorBase
{
  public:
    InterleavedStreamGenerator(std::uint32_t streams,
                               std::uint64_t stream_bytes,
                               std::uint64_t elem_bytes, double write_frac,
                               std::uint64_t seed = 1,
                               double mean_gap = 4.0, Addr base = 0);

    MemRef next() override;
    std::string name() const override { return "interleaved"; }

    std::uint64_t footprintBytes() const
    {
        return static_cast<std::uint64_t>(streams_) * streamBytes_;
    }

  protected:
    void resetImpl() override { turn_ = 0; pos_ = 0; }

  private:
    std::uint32_t streams_;
    std::uint64_t streamBytes_;
    std::uint64_t elemBytes_;
    double writeFrac_;
    Addr base_;
    std::uint32_t turn_ = 0; ///< which stream goes next
    std::uint64_t pos_ = 0;  ///< byte offset within each stream
};

/**
 * Multiprogrammed interleaving: N complete benchmarks time-share the
 * machine round-robin in bursts, each confined to its own address
 * region (sub-generator addresses are folded into region-sized slots).
 * Models consolidated/cloud execution — the threat setting that
 * motivates secure memory in the first place (§I).
 */
class MultiProgrammedGenerator : public AccessGenerator
{
  public:
    MultiProgrammedGenerator(
        std::vector<std::unique_ptr<AccessGenerator>> programs,
        std::uint64_t region_bytes = 64_MiB, unsigned burst_length = 64);

    MemRef next() override;
    void reset() override;
    std::string name() const override { return "multiprogrammed"; }

    std::uint64_t regionBytes() const { return regionBytes_; }

  private:
    std::vector<std::unique_ptr<AccessGenerator>> programs_;
    std::uint64_t regionBytes_;
    unsigned burstLength_;
    std::size_t current_ = 0;
    unsigned burstLeft_ = 0;
};

/**
 * Burst-level mixture of sub-generators: every burstLength references,
 * re-draw which component produces the stream, weighted by @c weights.
 * Models benchmarks with several concurrent access engines (milc, radix).
 */
class MixtureGenerator : public GeneratorBase
{
  public:
    MixtureGenerator(std::vector<std::unique_ptr<AccessGenerator>> parts,
                     std::vector<double> weights, unsigned burst_length,
                     std::uint64_t seed = 1);

    MemRef next() override;
    std::string name() const override { return "mixture"; }

  protected:
    void resetImpl() override;

  private:
    std::vector<std::unique_ptr<AccessGenerator>> parts_;
    std::vector<double> cumWeights_;
    unsigned burstLength_;
    std::size_t current_ = 0;
    unsigned burstLeft_ = 0;
};

} // namespace maps

#endif // MAPS_WORKLOADS_GENERATORS_HPP
