#include "offline/min_sim.hpp"

#include <limits>
#include <list>
#include <unordered_map>
#include <vector>

namespace maps {

FixedTraceResult
simulateMinFixedTrace(const std::vector<Addr> &trace,
                      const CacheGeometry &geometry)
{
    geometry.validate();
    const std::uint64_t never = std::numeric_limits<std::uint64_t>::max();

    // next_use[i]: position of the next access to trace[i]'s block.
    std::vector<std::uint64_t> next_use(trace.size(), never);
    {
        std::unordered_map<Addr, std::uint64_t> upcoming;
        upcoming.reserve(trace.size() / 4 + 1);
        for (std::uint64_t i = trace.size(); i-- > 0;) {
            const Addr block = blockAlign(trace[i]);
            const auto it = upcoming.find(block);
            if (it != upcoming.end())
                next_use[i] = it->second;
            upcoming[block] = i;
        }
    }

    // Per-set resident map: block -> its next use position.
    std::vector<std::unordered_map<Addr, std::uint64_t>> sets(
        geometry.numSets());

    FixedTraceResult result;
    for (std::uint64_t i = 0; i < trace.size(); ++i) {
        const Addr block = blockAlign(trace[i]);
        auto &set = sets[geometry.setIndexOf(block)];
        ++result.accesses;

        const auto it = set.find(block);
        if (it != set.end()) {
            ++result.hits;
            it->second = next_use[i];
            continue;
        }

        ++result.misses;
        if (set.size() >= geometry.assoc) {
            // Evict the resident block reused furthest in the future.
            auto victim = set.begin();
            for (auto cand = set.begin(); cand != set.end(); ++cand) {
                if (cand->second > victim->second)
                    victim = cand;
            }
            set.erase(victim);
        }
        set.emplace(block, next_use[i]);
    }
    return result;
}

FixedTraceResult
simulateLruFixedTrace(const std::vector<Addr> &trace,
                      const CacheGeometry &geometry)
{
    geometry.validate();

    struct SetState
    {
        std::list<Addr> order; // MRU at front
        std::unordered_map<Addr, std::list<Addr>::iterator> where;
    };
    std::vector<SetState> sets(geometry.numSets());

    FixedTraceResult result;
    for (const Addr addr : trace) {
        const Addr block = blockAlign(addr);
        auto &set = sets[geometry.setIndexOf(block)];
        ++result.accesses;

        const auto it = set.where.find(block);
        if (it != set.where.end()) {
            ++result.hits;
            set.order.splice(set.order.begin(), set.order, it->second);
            continue;
        }

        ++result.misses;
        if (set.where.size() >= geometry.assoc) {
            const Addr victim = set.order.back();
            set.order.pop_back();
            set.where.erase(victim);
        }
        set.order.push_front(block);
        set.where[block] = set.order.begin();
    }
    return result;
}

} // namespace maps
