/**
 * @file
 * iterMIN (§V-B): iterate Belady's MIN to a fixed point.
 *
 * Because metadata cache contents change the access stream (tree nodes
 * are only requested when their children miss), a MIN oracle built from
 * one run's trace is stale for the next. The paper iterates: simulate,
 * capture the realized trace, rebuild the oracle, re-simulate — until
 * the trace (or miss count) stops changing.
 */
#ifndef MAPS_OFFLINE_ITERMIN_HPP
#define MAPS_OFFLINE_ITERMIN_HPP

#include <functional>
#include <memory>
#include <vector>

#include "cache/replacement.hpp"
#include "offline/oracle.hpp"

namespace maps {

/** Outcome of the fixed-point iteration. */
struct IterMinResult
{
    /** Metadata cache misses per iteration; [0] is the profiling run. */
    std::vector<std::uint64_t> missesPerIteration;
    /** Oracle divergence count per MIN iteration (empty slot 0). */
    std::vector<std::uint64_t> divergencesPerIteration;
    bool converged = false;
    std::uint64_t finalMisses() const
    {
        return missesPerIteration.empty() ? 0
                                          : missesPerIteration.back();
    }
    unsigned iterations() const
    {
        return missesPerIteration.empty()
                   ? 0
                   : static_cast<unsigned>(missesPerIteration.size() - 1);
    }
};

/**
 * Drives the iteration. The caller supplies a simulation functor that
 * runs the whole benchmark with a given metadata-cache policy and
 * returns (misses, realized metadata access trace).
 */
class IterMinDriver
{
  public:
    /**
     * Simulation callback: run with @c policy, append the realized
     * metadata cache access trace to @c trace_out, return the metadata
     * cache miss count.
     */
    using SimulateFn = std::function<std::uint64_t(
        std::unique_ptr<ReplacementPolicy> policy,
        std::vector<Addr> &trace_out)>;

    /**
     * @param profile_policy policy for iteration 0 (paper: true LRU).
     * @param max_iterations bound on MIN re-simulations.
     */
    IterMinResult run(const SimulateFn &simulate,
                      const std::string &profile_policy = "lru",
                      unsigned max_iterations = 8) const;
};

} // namespace maps

#endif // MAPS_OFFLINE_ITERMIN_HPP
