#include "offline/itermin.hpp"

#include "cache/policy_belady.hpp"

namespace maps {

IterMinResult
IterMinDriver::run(const SimulateFn &simulate,
                   const std::string &profile_policy,
                   unsigned max_iterations) const
{
    IterMinResult result;

    // Iteration 0: profiling run under the baseline policy.
    std::vector<Addr> trace;
    const std::uint64_t profile_misses =
        simulate(makeReplacementPolicy(profile_policy), trace);
    result.missesPerIteration.push_back(profile_misses);
    result.divergencesPerIteration.push_back(0);

    for (unsigned iter = 0; iter < max_iterations; ++iter) {
        TraceOracle oracle(std::move(trace));
        trace = {};
        const std::uint64_t misses = simulate(
            std::make_unique<BeladyPolicy>(oracle), trace);
        result.missesPerIteration.push_back(misses);
        result.divergencesPerIteration.push_back(oracle.divergences());

        // Fixed point: the realized trace equals the oracle's trace
        // (no divergences) — further iterations cannot change anything.
        if (oracle.divergences() == 0 &&
            trace.size() == oracle.traceLength()) {
            result.converged = true;
            break;
        }
        // Secondary stop: miss count stabilized across two iterations.
        const auto n = result.missesPerIteration.size();
        if (n >= 3 && result.missesPerIteration[n - 1] ==
                          result.missesPerIteration[n - 2]) {
            result.converged = true;
            break;
        }
    }
    return result;
}

} // namespace maps
