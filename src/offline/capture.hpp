/**
 * @file
 * Metadata-access capture: a controller tap that records the metadata
 * cache access stream for offline (MIN / CSOPT) analysis.
 */
#ifndef MAPS_OFFLINE_CAPTURE_HPP
#define MAPS_OFFLINE_CAPTURE_HPP

#include <vector>

#include "secmem/controller.hpp"
#include "trace/record.hpp"

namespace maps {

/**
 * Records every metadata access seen by the controller (one cache access
 * per record). Install with attach(); the recorded stream is the paper's
 * "cache access trace" gathered from the profiling run.
 */
class TraceCapture
{
  public:
    void attach(SecureMemoryController &controller);

    const std::vector<MetadataAccess> &records() const { return records_; }
    std::vector<MetadataAccess> takeRecords() { return std::move(records_); }

    /** Just the block addresses, in order (oracle input). */
    std::vector<Addr> addresses() const;

    void clear() { records_.clear(); }
    std::size_t size() const { return records_.size(); }
    void reserve(std::size_t n) { records_.reserve(n); }

  private:
    std::vector<MetadataAccess> records_;
};

} // namespace maps

#endif // MAPS_OFFLINE_CAPTURE_HPP
