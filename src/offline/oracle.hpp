/**
 * @file
 * TraceOracle: future knowledge for Belady's MIN from a recorded trace.
 *
 * The oracle's cursor advances once per *live* access regardless of
 * whether the live access matches the recorded one. When the live run
 * diverges from the profiling run (tree accesses depend on cache
 * contents), the oracle keeps answering from the stale trace — exactly
 * the failure mode of §V-B.
 */
#ifndef MAPS_OFFLINE_ORACLE_HPP
#define MAPS_OFFLINE_ORACLE_HPP

#include <unordered_map>
#include <vector>

#include "cache/policy_belady.hpp"

namespace maps {

/** FutureOracle over a recorded address trace. */
class TraceOracle : public FutureOracle
{
  public:
    explicit TraceOracle(std::vector<Addr> trace);

    void onAccess(Addr addr) override;
    std::uint64_t nextUse(Addr addr) const override;

    /** Live accesses whose address differed from the recorded one. */
    std::uint64_t divergences() const { return divergences_; }
    std::uint64_t cursor() const { return cursor_; }
    std::size_t traceLength() const { return trace_.size(); }

    void reset()
    {
        cursor_ = 0;
        divergences_ = 0;
    }

  private:
    std::vector<Addr> trace_;
    /** Per-address sorted occurrence positions. */
    std::unordered_map<Addr, std::vector<std::uint64_t>> positions_;
    std::uint64_t cursor_ = 0;
    std::uint64_t divergences_ = 0;
};

} // namespace maps

#endif // MAPS_OFFLINE_ORACLE_HPP
