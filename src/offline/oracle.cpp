#include "offline/oracle.hpp"

#include <algorithm>

namespace maps {

TraceOracle::TraceOracle(std::vector<Addr> trace) : trace_(std::move(trace))
{
    positions_.reserve(trace_.size() / 4 + 1);
    for (std::uint64_t i = 0; i < trace_.size(); ++i)
        positions_[trace_[i]].push_back(i);
}

void
TraceOracle::onAccess(Addr addr)
{
    if (cursor_ < trace_.size() && trace_[cursor_] != addr)
        ++divergences_;
    ++cursor_;
}

std::uint64_t
TraceOracle::nextUse(Addr addr) const
{
    const auto it = positions_.find(addr);
    if (it == positions_.end())
        return kNeverUsed;
    const auto &pos = it->second;
    // First recorded occurrence strictly after the cursor (the cursor
    // position itself is the access currently being serviced).
    const auto next = std::upper_bound(pos.begin(), pos.end(), cursor_);
    return next == pos.end() ? kNeverUsed : *next;
}

} // namespace maps
