/**
 * @file
 * CSOPT (Jeong & Dubois, SPAA 1999), generalized to arbitrary per-access
 * miss costs (§V-B).
 *
 * Optimal replacement with non-uniform miss costs cannot be solved
 * greedily; CSOPT explores all eviction choices breadth-first over the
 * trace, pruning states that reach the same cache content at higher
 * cost. Worst case is exponential — the paper reports 32 minutes (perl)
 * to >6 days (canneal) — so the solver takes a state budget and falls
 * back to beam search (keeping the cheapest states) when it is exceeded,
 * reporting whether the result is exact.
 *
 * Traces are per cache set: with a fixed trace, sets are independent, so
 * callers split a set-associative problem into one solve per set with
 * the set's associativity as the capacity.
 */
#ifndef MAPS_OFFLINE_CSOPT_HPP
#define MAPS_OFFLINE_CSOPT_HPP

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace maps {

/** One access with the cost its miss would incur (>= 1). */
struct CsOptAccess
{
    Addr block = 0;
    std::uint64_t missCost = 1;
};

/** Solver knobs. */
struct CsOptConfig
{
    /** Cache capacity in blocks (the set's associativity). */
    unsigned ways = 4;
    /** Maximum concurrent states before beam pruning (0 = unlimited). */
    std::size_t beamWidth = 1u << 16;
};

/** Solver outcome. */
struct CsOptResult
{
    std::uint64_t minCost = 0;
    /** Misses along the minimum-cost path. */
    std::uint64_t misses = 0;
    std::size_t peakStates = 0;
    std::uint64_t expansions = 0;
    /** False when beam pruning may have lost the true optimum. */
    bool exact = true;
};

/** Solve one set's trace. Blocks may be arbitrary addresses. */
CsOptResult solveCsOpt(const std::vector<CsOptAccess> &trace,
                       const CsOptConfig &cfg);

/**
 * Convenience: split a trace across the sets of a geometry and sum the
 * per-set optima (valid because the trace is fixed).
 */
CsOptResult solveCsOptSetAssociative(const std::vector<CsOptAccess> &trace,
                                     std::uint32_t sets, unsigned ways,
                                     std::size_t beam_width = 1u << 16);

} // namespace maps

#endif // MAPS_OFFLINE_CSOPT_HPP
