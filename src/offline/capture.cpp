#include "offline/capture.hpp"

namespace maps {

void
TraceCapture::attach(SecureMemoryController &controller)
{
    controller.setMetadataTap(
        [this](const MetadataAccess &acc) { records_.push_back(acc); });
}

std::vector<Addr>
TraceCapture::addresses() const
{
    std::vector<Addr> addrs;
    addrs.reserve(records_.size());
    for (const auto &acc : records_)
        addrs.push_back(acc.addr);
    return addrs;
}

} // namespace maps
