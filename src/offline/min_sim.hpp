/**
 * @file
 * Offline Belady MIN on a *fixed* trace — the textbook setting in which
 * MIN is provably optimal (uniform miss cost, trace independent of the
 * cache). Used as a reference point and for property tests; the paper's
 * point is that metadata caches violate both assumptions.
 */
#ifndef MAPS_OFFLINE_MIN_SIM_HPP
#define MAPS_OFFLINE_MIN_SIM_HPP

#include <vector>

#include "cache/geometry.hpp"
#include "util/types.hpp"

namespace maps {

/** Result of an offline simulation over a fixed trace. */
struct FixedTraceResult
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    double missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** Simulate MIN over the trace with the given set-associative shape. */
FixedTraceResult simulateMinFixedTrace(const std::vector<Addr> &trace,
                                       const CacheGeometry &geometry);

/** Simulate true LRU over the same fixed trace (reference baseline). */
FixedTraceResult simulateLruFixedTrace(const std::vector<Addr> &trace,
                                       const CacheGeometry &geometry);

} // namespace maps

#endif // MAPS_OFFLINE_MIN_SIM_HPP
