#include "offline/csopt.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <unordered_map>

#include "util/logging.hpp"

namespace maps {

namespace {

constexpr unsigned kMaxWays = 8;
constexpr std::uint16_t kEmpty = 0xFFFF;

/** Canonical (sorted) content of one cache set, as dense block ids. */
struct StateKey
{
    std::array<std::uint16_t, kMaxWays> blocks;

    bool operator==(const StateKey &other) const
    {
        return blocks == other.blocks;
    }
};

struct StateKeyHash
{
    std::size_t operator()(const StateKey &key) const
    {
        // FNV-1a over the packed ids.
        std::uint64_t h = 0xCBF29CE484222325ull;
        for (const std::uint16_t b : key.blocks) {
            h ^= b;
            h *= 0x100000001B3ull;
        }
        return static_cast<std::size_t>(h);
    }
};

struct StateValue
{
    std::uint64_t cost = 0;
    std::uint64_t misses = 0;
};

bool
better(const StateValue &a, const StateValue &b)
{
    return a.cost < b.cost || (a.cost == b.cost && a.misses < b.misses);
}

using StateMap = std::unordered_map<StateKey, StateValue, StateKeyHash>;

/** Insertion sort over the first n slots (n <= kMaxWays). */
void
sortPrefix(StateKey &key, unsigned n)
{
    for (unsigned i = 1; i < n && i < kMaxWays; ++i) {
        const std::uint16_t v = key.blocks[i];
        unsigned j = i;
        while (j > 0 && key.blocks[j - 1] > v) {
            key.blocks[j] = key.blocks[j - 1];
            --j;
        }
        key.blocks[j] = v;
    }
}

} // namespace

CsOptResult
solveCsOpt(const std::vector<CsOptAccess> &trace, const CsOptConfig &cfg)
{
    fatalIf(cfg.ways == 0 || cfg.ways > kMaxWays,
            "CSOPT supports 1..8 ways");

    CsOptResult result;
    if (trace.empty())
        return result;

    // Densify block ids.
    std::unordered_map<Addr, std::uint16_t> ids;
    std::vector<std::uint16_t> access_id(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Addr block = blockAlign(trace[i].block);
        auto [it, inserted] =
            ids.emplace(block, static_cast<std::uint16_t>(ids.size()));
        fatalIf(ids.size() >= kEmpty, "CSOPT trace touches too many blocks");
        access_id[i] = it->second;
    }

    StateKey initial;
    initial.blocks.fill(kEmpty);
    StateMap states;
    states.emplace(initial, StateValue{});
    result.peakStates = 1;

    StateMap next;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const std::uint16_t block = access_id[i];
        const std::uint64_t miss_cost = trace[i].missCost;
        next.clear();

        auto upsert = [&next](const StateKey &key, const StateValue &val) {
            auto [it, inserted] = next.emplace(key, val);
            if (!inserted && better(val, it->second))
                it->second = val;
        };

        for (const auto &[key, val] : states) {
            ++result.expansions;
            const auto end =
                std::find(key.blocks.begin(), key.blocks.end(), kEmpty);
            const bool hit =
                std::find(key.blocks.begin(), end, block) != end;
            if (hit) {
                upsert(key, val);
                continue;
            }

            StateValue missed = val;
            missed.cost += miss_cost;
            missed.misses += 1;

            const auto occupied =
                static_cast<unsigned>(end - key.blocks.begin());
            if (occupied < cfg.ways) {
                StateKey grown = key;
                grown.blocks[occupied] = block;
                sortPrefix(grown, occupied + 1);
                upsert(grown, missed);
                continue;
            }

            // Branch over every eviction candidate (the heart of CSOPT:
            // no greedy choice is safe under non-uniform costs).
            for (unsigned w = 0; w < cfg.ways; ++w) {
                StateKey child = key;
                child.blocks[w] = block;
                sortPrefix(child, cfg.ways);
                upsert(child, missed);
            }
        }

        // Beam pruning when the frontier exceeds the budget.
        if (cfg.beamWidth && next.size() > cfg.beamWidth) {
            std::vector<std::pair<StateKey, StateValue>> frontier(
                next.begin(), next.end());
            std::nth_element(
                frontier.begin(), frontier.begin() + cfg.beamWidth,
                frontier.end(), [](const auto &a, const auto &b) {
                    return better(a.second, b.second);
                });
            frontier.resize(cfg.beamWidth);
            next.clear();
            next.insert(frontier.begin(), frontier.end());
            result.exact = false;
        }

        states.swap(next);
        result.peakStates = std::max(result.peakStates, states.size());
    }

    StateValue best;
    best.cost = std::numeric_limits<std::uint64_t>::max();
    for (const auto &[key, val] : states) {
        if (better(val, best))
            best = val;
    }
    result.minCost = best.cost;
    result.misses = best.misses;
    return result;
}

CsOptResult
solveCsOptSetAssociative(const std::vector<CsOptAccess> &trace,
                         std::uint32_t sets, unsigned ways,
                         std::size_t beam_width)
{
    fatalIf(sets == 0, "need at least one set");
    std::vector<std::vector<CsOptAccess>> per_set(sets);
    for (const auto &acc : trace) {
        const std::uint64_t set = blockIndex(acc.block) % sets;
        per_set[set].push_back(acc);
    }

    CsOptConfig cfg;
    cfg.ways = ways;
    cfg.beamWidth = beam_width;

    CsOptResult total;
    for (const auto &set_trace : per_set) {
        const CsOptResult r = solveCsOpt(set_trace, cfg);
        total.minCost += r.minCost;
        total.misses += r.misses;
        total.expansions += r.expansions;
        total.peakStates = std::max(total.peakStates, r.peakStates);
        total.exact = total.exact && r.exact;
    }
    return total;
}

} // namespace maps
