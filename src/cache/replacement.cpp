#include "cache/replacement.hpp"

#include "cache/policy_cost.hpp"
#include "cache/policy_drrip.hpp"
#include "cache/policy_eva.hpp"
#include "cache/policy_lru.hpp"
#include "cache/policy_plru.hpp"
#include "cache/policy_random.hpp"
#include "cache/policy_srrip.hpp"
#include "util/logging.hpp"

namespace maps {

void
ReplacementPolicy::invalidate(std::uint32_t, std::uint32_t)
{
}

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(PolicyKind kind, std::uint64_t seed)
{
    switch (kind) {
      case PolicyKind::TrueLru:
        return std::make_unique<TrueLruPolicy>();
      case PolicyKind::TreePlru:
        return std::make_unique<TreePlruPolicy>();
      case PolicyKind::Random:
        return std::make_unique<RandomPolicy>(seed);
      case PolicyKind::Srrip:
        return std::make_unique<SrripPolicy>();
      case PolicyKind::Eva:
        return std::make_unique<EvaPolicy>();
    }
    panic("unknown replacement policy kind");
}

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &name, std::uint64_t seed)
{
    if (name == "lru")
        return makeReplacementPolicy(PolicyKind::TrueLru, seed);
    if (name == "plru")
        return makeReplacementPolicy(PolicyKind::TreePlru, seed);
    if (name == "random")
        return makeReplacementPolicy(PolicyKind::Random, seed);
    if (name == "srrip")
        return makeReplacementPolicy(PolicyKind::Srrip, seed);
    if (name == "eva")
        return makeReplacementPolicy(PolicyKind::Eva, seed);
    if (name == "eva-typed") {
        EvaConfig cfg;
        cfg.classifyByType = true;
        return std::make_unique<EvaPolicy>(cfg);
    }
    if (name == "cost-lru")
        return std::make_unique<CostAwareLruPolicy>();
    if (name == "drrip") {
        DrripConfig cfg;
        cfg.seed = seed;
        return std::make_unique<DrripPolicy>(cfg);
    }
    if (name == "drrip-typed") {
        DrripConfig cfg;
        cfg.typedInsertion = true;
        cfg.seed = seed;
        return std::make_unique<DrripPolicy>(cfg);
    }
    fatal("unknown replacement policy: " + name);
}

} // namespace maps
