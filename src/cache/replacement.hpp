/**
 * @file
 * Replacement-policy interface shared by every cache in MAPS.
 *
 * Policies are per-cache objects that see hits (touch), fills (insert),
 * invalidations, and are asked for a victim way when a set is full. The
 * victim call carries a bitmask of ways the incoming block may occupy so
 * way-partitioning composes with any policy.
 */
#ifndef MAPS_CACHE_REPLACEMENT_HPP
#define MAPS_CACHE_REPLACEMENT_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace maps {

/** Per-line state a policy may inspect when choosing a victim. */
struct ReplLineInfo
{
    Addr addr = kInvalidAddr;
    bool valid = false;
    bool dirty = false;
    /** Caller-defined class (MetadataType for metadata caches). */
    std::uint8_t typeClass = 0;
};

/** Context describing the access that triggered the policy callback. */
struct ReplContext
{
    Addr addr = 0;
    bool write = false;
    std::uint8_t typeClass = 0;
};

/** All 'ways' bits set. */
inline constexpr std::uint64_t
fullWayMask(std::uint32_t ways)
{
    return ways >= 64 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << ways) - 1);
}

/** Abstract replacement policy. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Bind to a cache shape; called once before use. */
    virtual void init(std::uint32_t sets, std::uint32_t ways) = 0;

    /** A resident line was hit. */
    virtual void touch(std::uint32_t set, std::uint32_t way,
                       const ReplContext &ctx) = 0;

    /** A line was filled into (set, way). */
    virtual void insert(std::uint32_t set, std::uint32_t way,
                        const ReplContext &ctx) = 0;

    /**
     * Choose a victim among the valid lines of a full set.
     *
     * @param lines        'ways' entries describing the set.
     * @param allowed_mask bit i set => way i may be victimized. Non-zero,
     *                     and every allowed way is valid.
     * @return the chosen way (must have its bit set in allowed_mask).
     */
    virtual std::uint32_t victim(std::uint32_t set,
                                 const ReplLineInfo *lines,
                                 std::uint64_t allowed_mask,
                                 const ReplContext &ctx) = 0;

    /** A line was invalidated externally. */
    virtual void invalidate(std::uint32_t set, std::uint32_t way);

    virtual std::string name() const = 0;
};

/** Known policy names for makeReplacementPolicy. */
enum class PolicyKind : std::uint8_t
{
    TrueLru,
    TreePlru,
    Random,
    Srrip,
    Eva,
};

/** Factory for the standard online policies. */
std::unique_ptr<ReplacementPolicy> makeReplacementPolicy(PolicyKind kind,
                                                         std::uint64_t seed
                                                         = 1);

/** Factory by name ("lru", "plru", "random", "srrip", "eva"). */
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &name, std::uint64_t seed = 1);

} // namespace maps

#endif // MAPS_CACHE_REPLACEMENT_HPP
