/**
 * @file
 * EVA replacement (Beckmann & Sanchez, HPCA 2017): economic value added.
 *
 * Lines are ranked by EVA(age) = expected future hits minus the cache's
 * average hit opportunity cost over the line's expected remaining
 * lifetime. Ages are coarsened global-access counts; hit/eviction age
 * histograms are folded periodically into a rank table.
 *
 * The paper (§V-A) finds EVA underperforms on metadata because reuse
 * distances are bimodal; an optional per-metadata-type classification
 * (one histogram per type) is provided to explore that observation.
 */
#ifndef MAPS_CACHE_POLICY_EVA_HPP
#define MAPS_CACHE_POLICY_EVA_HPP

#include <vector>

#include "cache/replacement.hpp"

namespace maps {

/** Tuning knobs for EVA. */
struct EvaConfig
{
    /** Number of age buckets in the histograms. */
    unsigned maxAge = 64;
    /** Accesses per age tick; 0 = auto (lines / 8). */
    std::uint64_t ageGranularity = 0;
    /** Rank recompute period in accesses; 0 = auto (8 * lines). */
    std::uint64_t updatePeriod = 0;
    /** Keep one histogram per typeClass instead of one global. */
    bool classifyByType = false;
    /** Number of type classes when classifyByType is set. */
    unsigned numClasses = 4;
};

class EvaPolicy : public ReplacementPolicy
{
  public:
    explicit EvaPolicy(EvaConfig cfg = {});

    void init(std::uint32_t sets, std::uint32_t ways) override;
    void touch(std::uint32_t set, std::uint32_t way,
               const ReplContext &ctx) override;
    void insert(std::uint32_t set, std::uint32_t way,
                const ReplContext &ctx) override;
    std::uint32_t victim(std::uint32_t set, const ReplLineInfo *lines,
                         std::uint64_t allowed_mask,
                         const ReplContext &ctx) override;
    void invalidate(std::uint32_t set, std::uint32_t way) override;
    std::string name() const override
    {
        return cfg_.classifyByType ? "eva-typed" : "eva";
    }

    /** Rank table for inspection in tests. */
    const std::vector<double> &ranks(unsigned cls = 0) const
    {
        return ranks_[cls];
    }

  private:
    EvaConfig cfg_;
    std::uint32_t ways_ = 0;
    std::uint64_t lines_ = 0;
    std::uint64_t clock_ = 0;
    std::uint64_t nextUpdate_ = 0;
    std::uint64_t ageGranularity_ = 1;

    std::vector<std::uint64_t> birth_;    // sets * ways, access stamp
    std::vector<std::uint8_t> lineClass_; // sets * ways

    // Per class: hit / eviction age histograms and rank tables.
    std::vector<std::vector<std::uint64_t>> hitHist_;
    std::vector<std::vector<std::uint64_t>> evictHist_;
    std::vector<std::vector<double>> ranks_;

    unsigned numClasses() const
    {
        return cfg_.classifyByType ? cfg_.numClasses : 1;
    }
    unsigned classOf(std::uint8_t type_class) const
    {
        return cfg_.classifyByType
                   ? (type_class % cfg_.numClasses)
                   : 0;
    }
    unsigned ageOf(std::uint64_t birth) const;
    void recomputeRanks();
    void tick();
};

} // namespace maps

#endif // MAPS_CACHE_POLICY_EVA_HPP
