/**
 * @file
 * Static RRIP (Jaleel et al., ISCA 2010) — a reuse-prediction baseline
 * the paper points to as a foundation for future metadata policies.
 */
#ifndef MAPS_CACHE_POLICY_SRRIP_HPP
#define MAPS_CACHE_POLICY_SRRIP_HPP

#include <vector>

#include "cache/replacement.hpp"

namespace maps {

/**
 * 2-bit SRRIP with hit-priority promotion: insert at RRPV = max-1,
 * promote to 0 on hit, victimize the first allowed way at max RRPV,
 * aging the set when none is found.
 */
class SrripPolicy : public ReplacementPolicy
{
  public:
    explicit SrripPolicy(unsigned bits = 2);

    void init(std::uint32_t sets, std::uint32_t ways) override;
    void touch(std::uint32_t set, std::uint32_t way,
               const ReplContext &ctx) override;
    void insert(std::uint32_t set, std::uint32_t way,
                const ReplContext &ctx) override;
    std::uint32_t victim(std::uint32_t set, const ReplLineInfo *lines,
                         std::uint64_t allowed_mask,
                         const ReplContext &ctx) override;
    std::string name() const override { return "srrip"; }

  private:
    std::uint8_t maxRrpv_;
    std::uint32_t ways_ = 0;
    std::vector<std::uint8_t> rrpv_; // sets * ways
};

} // namespace maps

#endif // MAPS_CACHE_POLICY_SRRIP_HPP
