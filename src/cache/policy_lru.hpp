/**
 * @file
 * True LRU replacement (exact recency order per set).
 */
#ifndef MAPS_CACHE_POLICY_LRU_HPP
#define MAPS_CACHE_POLICY_LRU_HPP

#include <vector>

#include "cache/replacement.hpp"

namespace maps {

/**
 * Exact LRU: per-line 64-bit last-touch stamps; victim is the allowed way
 * with the oldest stamp. The paper uses true LRU both as a baseline and to
 * record the profiling trace that feeds MIN.
 */
class TrueLruPolicy : public ReplacementPolicy
{
  public:
    void init(std::uint32_t sets, std::uint32_t ways) override;
    void touch(std::uint32_t set, std::uint32_t way,
               const ReplContext &ctx) override;
    void insert(std::uint32_t set, std::uint32_t way,
                const ReplContext &ctx) override;
    std::uint32_t victim(std::uint32_t set, const ReplLineInfo *lines,
                         std::uint64_t allowed_mask,
                         const ReplContext &ctx) override;
    void invalidate(std::uint32_t set, std::uint32_t way) override;
    std::string name() const override { return "lru"; }

  private:
    std::uint32_t ways_ = 0;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamps_; // sets * ways
};

} // namespace maps

#endif // MAPS_CACHE_POLICY_LRU_HPP
