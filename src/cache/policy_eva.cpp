#include "cache/policy_eva.hpp"

#include <algorithm>
#include <limits>

#include "util/logging.hpp"

namespace maps {

EvaPolicy::EvaPolicy(EvaConfig cfg) : cfg_(cfg)
{
    fatalIf(cfg_.maxAge < 2, "EVA needs at least two age buckets");
    fatalIf(cfg_.classifyByType && cfg_.numClasses == 0,
            "EVA classification needs at least one class");
}

void
EvaPolicy::init(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    lines_ = static_cast<std::uint64_t>(sets) * ways;
    clock_ = 0;

    ageGranularity_ = cfg_.ageGranularity
                          ? cfg_.ageGranularity
                          : std::max<std::uint64_t>(1, lines_ / 8);
    const std::uint64_t period =
        cfg_.updatePeriod ? cfg_.updatePeriod : 8 * lines_;
    nextUpdate_ = period;

    birth_.assign(lines_, 0);
    lineClass_.assign(lines_, 0);

    hitHist_.assign(numClasses(),
                    std::vector<std::uint64_t>(cfg_.maxAge, 0));
    evictHist_.assign(numClasses(),
                      std::vector<std::uint64_t>(cfg_.maxAge, 0));
    // Initial ranks favour evicting older lines (LRU-like) until the
    // first histogram fold provides real statistics.
    ranks_.assign(numClasses(), std::vector<double>(cfg_.maxAge));
    for (auto &table : ranks_) {
        for (unsigned a = 0; a < cfg_.maxAge; ++a)
            table[a] = -static_cast<double>(a);
    }
}

unsigned
EvaPolicy::ageOf(std::uint64_t birth) const
{
    const std::uint64_t age = (clock_ - birth) / ageGranularity_;
    return static_cast<unsigned>(
        std::min<std::uint64_t>(age, cfg_.maxAge - 1));
}

void
EvaPolicy::tick()
{
    ++clock_;
    if (clock_ >= nextUpdate_) {
        recomputeRanks();
        const std::uint64_t period =
            cfg_.updatePeriod ? cfg_.updatePeriod : 8 * lines_;
        nextUpdate_ = clock_ + period;
    }
}

void
EvaPolicy::touch(std::uint32_t set, std::uint32_t way,
                 const ReplContext &ctx)
{
    tick();
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    const unsigned cls = classOf(ctx.typeClass);
    hitHist_[cls][ageOf(birth_[idx])]++;
    // A hit starts a new "lifetime" for the line (EVA models hits as
    // terminating the current lifetime).
    birth_[idx] = clock_;
    lineClass_[idx] = ctx.typeClass;
}

void
EvaPolicy::insert(std::uint32_t set, std::uint32_t way,
                  const ReplContext &ctx)
{
    tick();
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    birth_[idx] = clock_;
    lineClass_[idx] = ctx.typeClass;
}

std::uint32_t
EvaPolicy::victim(std::uint32_t set, const ReplLineInfo *,
                  std::uint64_t allowed_mask, const ReplContext &)
{
    panicIf(allowed_mask == 0, "EVA victim with empty allowed mask");
    std::uint32_t best = 64;
    double best_rank = std::numeric_limits<double>::infinity();
    unsigned best_age = 0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!(allowed_mask & (std::uint64_t{1} << w)))
            continue;
        const std::size_t idx = static_cast<std::size_t>(set) * ways_ + w;
        const unsigned age = ageOf(birth_[idx]);
        const unsigned cls = classOf(lineClass_[idx]);
        const double rank = ranks_[cls][age];
        if (best >= ways_ || rank < best_rank ||
            (rank == best_rank && age > best_age)) {
            best = w;
            best_rank = rank;
            best_age = age;
        }
    }
    panicIf(best >= ways_, "EVA victim found no allowed way");

    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + best;
    const unsigned cls = classOf(lineClass_[idx]);
    evictHist_[cls][ageOf(birth_[idx])]++;
    return best;
}

void
EvaPolicy::invalidate(std::uint32_t set, std::uint32_t way)
{
    birth_[static_cast<std::size_t>(set) * ways_ + way] = clock_;
}

void
EvaPolicy::recomputeRanks()
{
    for (unsigned cls = 0; cls < numClasses(); ++cls) {
        auto &hits = hitHist_[cls];
        auto &evictions = evictHist_[cls];

        std::uint64_t total_hits = 0, total_events = 0;
        for (unsigned a = 0; a < cfg_.maxAge; ++a) {
            total_hits += hits[a];
            total_events += hits[a] + evictions[a];
        }
        if (total_events == 0)
            continue; // keep previous ranks (or the LRU-like defaults)

        // Per-access opportunity cost: the cache's hit rate per lifetime
        // event, as in the EVA reference formulation.
        const double cost = static_cast<double>(total_hits) /
                            static_cast<double>(total_events);

        // Backward sweep: accumulate hits, events, and the expected
        // remaining lifetime integral for ages >= a.
        double acc_hits = 0.0, acc_events = 0.0, acc_lifetime = 0.0;
        for (int a = static_cast<int>(cfg_.maxAge) - 1; a >= 0; --a) {
            acc_hits += static_cast<double>(hits[a]);
            acc_events += static_cast<double>(
                hits[a] + evictions[a]);
            acc_lifetime += acc_events;
            if (acc_events > 0.0) {
                ranks_[cls][a] =
                    (acc_hits - cost * acc_lifetime) / acc_events;
            } else {
                // No observations this old: assume dead (strongly
                // prefer eviction).
                ranks_[cls][a] =
                    -std::numeric_limits<double>::infinity();
            }
        }

        // Exponential decay so the policy adapts to phase changes.
        for (unsigned a = 0; a < cfg_.maxAge; ++a) {
            hits[a] /= 2;
            evictions[a] /= 2;
        }
    }
}

} // namespace maps
