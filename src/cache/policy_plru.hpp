/**
 * @file
 * Tree-based pseudo-LRU (the paper's hardware baseline).
 */
#ifndef MAPS_CACHE_POLICY_PLRU_HPP
#define MAPS_CACHE_POLICY_PLRU_HPP

#include <vector>

#include "cache/replacement.hpp"

namespace maps {

/**
 * Binary-tree PLRU: one bit per internal node pointing toward the
 * pseudo-least-recently-used half. Associativity must be a power of two.
 * With a partition mask the traversal is constrained to subtrees that
 * contain at least one allowed way.
 */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    void init(std::uint32_t sets, std::uint32_t ways) override;
    void touch(std::uint32_t set, std::uint32_t way,
               const ReplContext &ctx) override;
    void insert(std::uint32_t set, std::uint32_t way,
                const ReplContext &ctx) override;
    std::uint32_t victim(std::uint32_t set, const ReplLineInfo *lines,
                         std::uint64_t allowed_mask,
                         const ReplContext &ctx) override;
    std::string name() const override { return "plru"; }

  private:
    std::uint32_t ways_ = 0;
    std::uint32_t nodes_ = 0; // internal nodes per set == ways - 1
    std::vector<bool> bits_;  // sets * nodes

    void touchWay(std::uint32_t set, std::uint32_t way);
    bool subtreeHasAllowed(std::uint32_t node_ways_lo,
                           std::uint32_t node_ways_hi,
                           std::uint64_t allowed_mask) const;
};

} // namespace maps

#endif // MAPS_CACHE_POLICY_PLRU_HPP
