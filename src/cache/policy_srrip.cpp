#include "cache/policy_srrip.hpp"

#include "util/logging.hpp"

namespace maps {

SrripPolicy::SrripPolicy(unsigned bits)
    : maxRrpv_(static_cast<std::uint8_t>((1u << bits) - 1))
{
    fatalIf(bits == 0 || bits > 7, "SRRIP needs 1..7 RRPV bits");
}

void
SrripPolicy::init(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    rrpv_.assign(static_cast<std::size_t>(sets) * ways, maxRrpv_);
}

void
SrripPolicy::touch(std::uint32_t set, std::uint32_t way,
                   const ReplContext &)
{
    rrpv_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

void
SrripPolicy::insert(std::uint32_t set, std::uint32_t way,
                    const ReplContext &)
{
    rrpv_[static_cast<std::size_t>(set) * ways_ + way] =
        static_cast<std::uint8_t>(maxRrpv_ - 1);
}

std::uint32_t
SrripPolicy::victim(std::uint32_t set, const ReplLineInfo *,
                    std::uint64_t allowed_mask, const ReplContext &)
{
    panicIf(allowed_mask == 0, "SRRIP victim with empty allowed mask");
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    while (true) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if ((allowed_mask & (std::uint64_t{1} << w)) &&
                rrpv_[base + w] >= maxRrpv_) {
                return w;
            }
        }
        // Age every line in the set (classic SRRIP behaviour).
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (rrpv_[base + w] < maxRrpv_)
                ++rrpv_[base + w];
        }
    }
}

} // namespace maps
