/**
 * @file
 * SetAssociativeCache: the tag-store model used for the L1/L2/LLC and the
 * metadata cache. Write-back, write-allocate, transaction-level (no MSHRs
 * or banking — MAPS' metrics are counts and distributions).
 */
#ifndef MAPS_CACHE_CACHE_HPP
#define MAPS_CACHE_CACHE_HPP

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/geometry.hpp"
#include "cache/partition.hpp"
#include "cache/replacement.hpp"
#include "metrics/derived.hpp"

namespace maps {

/** What happened on an access, including any eviction it caused. */
struct CacheAccessOutcome
{
    bool hit = false;
    /** A victim line was evicted to make room. */
    bool evictedValid = false;
    Addr evictedAddr = kInvalidAddr;
    bool evictedDirty = false;
    std::uint8_t evictedType = 0;
};

/**
 * One observed state-changing cache operation, delivered to the access
 * observer (maps::check shadow models). `addr` is block-normalized.
 */
struct CacheAccessEvent
{
    enum class Kind : std::uint8_t { Access, Invalidate, Clean };
    Kind kind = Kind::Access;
    Addr addr = kInvalidAddr;
    bool write = false;
    std::uint8_t typeClass = 0;
    /** Valid for Kind::Access. */
    CacheAccessOutcome outcome;
    /** Valid for Kind::Invalidate / Kind::Clean: the line was resident. */
    bool found = false;
};

/**
 * Aggregate counters; per-typeClass breakdowns sized for MetadataType.
 * Monotonic for the whole lifetime of the cache — never reset. Windowed
 * readings (warmup vs measure) come from metrics::Registry phase
 * snapshots.
 */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;
    std::array<std::uint64_t, 4> hitsByType{};
    std::array<std::uint64_t, 4> missesByType{};

    std::uint64_t accesses() const { return hits + misses; }
    double missRate() const
    {
        return metrics::ratioOrZero(misses, accesses());
    }
};

/** metrics::Registry enumeration protocol (attach / measureView). */
template <typename Fn>
void
forEachCounter(CacheStats &s, Fn &&fn)
{
    fn("hits", s.hits);
    fn("misses", s.misses);
    fn("evictions", s.evictions);
    fn("evictions.dirty", s.dirtyEvictions);
    for (std::size_t i = 0; i < s.hitsByType.size(); ++i)
        fn("hits.class" + std::to_string(i), s.hitsByType[i]);
    for (std::size_t i = 0; i < s.missesByType.size(); ++i)
        fn("misses.class" + std::to_string(i), s.missesByType[i]);
}

/**
 * A set-associative, write-back, write-allocate cache with a pluggable
 * replacement policy and optional way-partitioning.
 */
class SetAssociativeCache
{
  public:
    /**
     * @param geometry  validated shape.
     * @param policy    replacement policy (owned).
     * @param partition optional way partition (owned); nullptr = none.
     */
    SetAssociativeCache(CacheGeometry geometry,
                        std::unique_ptr<ReplacementPolicy> policy,
                        std::unique_ptr<WayPartition> partition = nullptr);

    /**
     * Access a block. On a miss the block is filled (allocate-on-write
     * too) and a victim may be evicted.
     *
     * @param addr       block-aligned (or any address within the block).
     * @param write      store (marks the line dirty).
     * @param type_class caller-defined class (MetadataType for metadata).
     */
    CacheAccessOutcome access(Addr addr, bool write,
                              std::uint8_t type_class = 0);

    /** Hit test without state change. */
    bool probe(Addr addr) const;

    /**
     * Remove a block if present.
     * @return true if found; was_dirty reports its dirty bit.
     */
    bool invalidate(Addr addr, bool *was_dirty = nullptr);

    /** Mark a resident block clean (after an external writeback). */
    bool cleanLine(Addr addr);

    /** Invoke fn for every valid line. */
    void
    forEachLine(const std::function<void(const ReplLineInfo &)> &fn) const;

    const CacheGeometry &geometry() const { return geom_; }
    const CacheStats &stats() const { return stats_; }
    /** Mutable counters (metrics::Registry attachment only). */
    CacheStats &statsMut() { return stats_; }
    ReplacementPolicy &policy() { return *policy_; }
    const ReplacementPolicy &policy() const { return *policy_; }
    WayPartition *partition() { return partition_.get(); }
    const WayPartition *partition() const { return partition_.get(); }

    /** Number of currently valid lines. */
    std::uint64_t validLines() const { return validLines_; }

    /**
     * Install an observer for every state-changing operation (at most
     * one; maps::check shadow models attach here). The observer runs
     * after the operation completes and must outlive the cache's use.
     */
    using AccessObserver = std::function<void(const CacheAccessEvent &)>;
    void setAccessObserver(AccessObserver observer)
    {
        observer_ = std::move(observer);
    }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint8_t typeClass = 0;
    };

    CacheGeometry geom_;
    std::unique_ptr<ReplacementPolicy> policy_;
    std::unique_ptr<WayPartition> partition_;
    std::vector<Line> lines_; // sets * ways
    std::uint64_t validLines_ = 0;
    CacheStats stats_;
    AccessObserver observer_;

    Line &lineAt(std::uint32_t set, std::uint32_t way)
    {
        return lines_[static_cast<std::size_t>(set) * geom_.assoc + way];
    }
    const Line &lineAt(std::uint32_t set, std::uint32_t way) const
    {
        return lines_[static_cast<std::size_t>(set) * geom_.assoc + way];
    }

    /** Reconstruct a block address from set/tag. */
    Addr addrOf(std::uint32_t set, std::uint64_t tag) const
    {
        return (tag * geom_.numSets() + set) *
               static_cast<Addr>(geom_.blockBytes);
    }

    int findWay(std::uint32_t set, std::uint64_t tag) const;

    /** maps::check: duplicate-tag and partition-residency audit. */
    void auditSet(std::uint32_t set) const;
};

} // namespace maps

#endif // MAPS_CACHE_CACHE_HPP
