#include "cache/partition.hpp"

#include "util/logging.hpp"

namespace maps {

void
WayPartition::onHit(std::uint32_t, const ReplContext &)
{
}

void
WayPartition::onMiss(std::uint32_t, const ReplContext &)
{
}

std::uint64_t
WayPartition::residencyMask(std::uint32_t, std::uint8_t) const
{
    return ~std::uint64_t{0};
}

void
StaticPartition::init(std::uint32_t, std::uint32_t ways)
{
    ways_ = ways;
    fatalIf(counterWays_ == 0 || counterWays_ >= ways,
            "static partition must give both counters and hashes >= 1 way");
    fullMask_ = fullWayMask(ways);
    counterMask_ = fullWayMask(counterWays_);
    hashMask_ = fullMask_ & ~counterMask_;
}

std::uint64_t
StaticPartition::allowedWays(std::uint32_t, const ReplContext &ctx)
{
    switch (static_cast<MetadataType>(ctx.typeClass)) {
      case MetadataType::Counter:
        return counterMask_;
      case MetadataType::Hash:
        return hashMask_;
      default:
        return fullMask_;
    }
}

std::uint64_t
StaticPartition::residencyMask(std::uint32_t,
                               std::uint8_t type_class) const
{
    switch (static_cast<MetadataType>(type_class)) {
      case MetadataType::Counter:
        return counterMask_;
      case MetadataType::Hash:
        return hashMask_;
      default:
        return fullMask_;
    }
}

std::string
StaticPartition::name() const
{
    return "static(" + std::to_string(counterWays_) + "/" +
           std::to_string(ways_ - counterWays_) + ")";
}

SetDuelingPartition::SetDuelingPartition(std::uint32_t split_a,
                                         std::uint32_t split_b,
                                         std::uint32_t leader_stride,
                                         unsigned psel_bits)
    : partA_(split_a),
      partB_(split_b),
      leaderStride_(leader_stride),
      pselMax_(1 << (psel_bits - 1))
{
    fatalIf(leader_stride < 2, "leader stride must be at least 2");
    fatalIf(psel_bits < 2 || psel_bits > 20, "psel bits out of range");
}

void
SetDuelingPartition::init(std::uint32_t sets, std::uint32_t ways)
{
    partA_.init(sets, ways);
    partB_.init(sets, ways);
    psel_ = 0;
    if (sets < leaderStride_)
        warn("set-dueling: too few sets for distinct leader groups");
}

SetDuelingPartition::SetRole
SetDuelingPartition::roleOf(std::uint32_t set) const
{
    // Leaders distributed uniformly: one A-leader and one B-leader per
    // stride of sets, offset by half a stride so they interleave.
    const std::uint32_t phase = set % leaderStride_;
    if (phase == 0)
        return SetRole::LeaderA;
    if (phase == leaderStride_ / 2)
        return SetRole::LeaderB;
    return SetRole::Follower;
}

std::uint64_t
SetDuelingPartition::allowedWays(std::uint32_t set, const ReplContext &ctx)
{
    switch (roleOf(set)) {
      case SetRole::LeaderA:
        return partA_.allowedWays(set, ctx);
      case SetRole::LeaderB:
        return partB_.allowedWays(set, ctx);
      case SetRole::Follower:
        break;
    }
    return psel_ >= 0 ? partA_.allowedWays(set, ctx)
                      : partB_.allowedWays(set, ctx);
}

void
SetDuelingPartition::onMiss(std::uint32_t set, const ReplContext &)
{
    switch (roleOf(set)) {
      case SetRole::LeaderA:
        // A miss in A's leaders is evidence for B.
        if (psel_ > -pselMax_)
            --psel_;
        break;
      case SetRole::LeaderB:
        if (psel_ < pselMax_ - 1)
            ++psel_;
        break;
      case SetRole::Follower:
        break;
    }
}

std::uint32_t
SetDuelingPartition::activeSplit() const
{
    return psel_ >= 0 ? partA_.counterWays() : partB_.counterWays();
}

} // namespace maps
