/**
 * @file
 * Set-associative cache geometry: size/associativity/block arithmetic.
 */
#ifndef MAPS_CACHE_GEOMETRY_HPP
#define MAPS_CACHE_GEOMETRY_HPP

#include <cstdint>

#include "util/types.hpp"

namespace maps {

/** Immutable description of a cache's shape. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    std::uint32_t assoc = 1;
    std::uint32_t blockBytes = kBlockSize;

    std::uint32_t numSets() const
    {
        return static_cast<std::uint32_t>(
            sizeBytes / (static_cast<std::uint64_t>(assoc) * blockBytes));
    }

    std::uint64_t numLines() const
    {
        return sizeBytes / blockBytes;
    }

    std::uint32_t setIndexOf(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;

    /** fatal() on inconsistent parameters (non-power-of-two sets, etc). */
    void validate() const;
};

} // namespace maps

#endif // MAPS_CACHE_GEOMETRY_HPP
