#include "cache/policy_cost.hpp"

#include "util/logging.hpp"

namespace maps {

CostAwareLruPolicy::CostAwareLruPolicy(CostTable costs) : costs_(costs)
{
    for (const double c : costs_.cost)
        fatalIf(c <= 0.0, "miss costs must be positive");
}

void
CostAwareLruPolicy::init(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    clock_ = 0;
    stamps_.assign(static_cast<std::size_t>(sets) * ways, 0);
}

void
CostAwareLruPolicy::touch(std::uint32_t set, std::uint32_t way,
                          const ReplContext &)
{
    stamps_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
}

void
CostAwareLruPolicy::insert(std::uint32_t set, std::uint32_t way,
                           const ReplContext &)
{
    stamps_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
}

std::uint32_t
CostAwareLruPolicy::victim(std::uint32_t set, const ReplLineInfo *lines,
                           std::uint64_t allowed_mask, const ReplContext &)
{
    panicIf(allowed_mask == 0, "cost-lru victim with empty allowed mask");
    std::uint32_t best = 64;
    double best_score = -1.0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!(allowed_mask & (std::uint64_t{1} << w)))
            continue;
        const std::uint64_t stamp =
            stamps_[static_cast<std::size_t>(set) * ways_ + w];
        // Age since last touch, discounted by how expensive the line's
        // miss would be. +1 keeps just-touched lines comparable.
        const double age = static_cast<double>(clock_ - stamp) + 1.0;
        const double score = age / costOf(lines[w].typeClass);
        if (score > best_score) {
            best_score = score;
            best = w;
        }
    }
    panicIf(best >= ways_, "cost-lru victim found no allowed way");
    return best;
}

void
CostAwareLruPolicy::invalidate(std::uint32_t set, std::uint32_t way)
{
    stamps_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

} // namespace maps
