#include "cache/policy_random.hpp"

#include <bit>

#include "util/logging.hpp"

namespace maps {

void
RandomPolicy::init(std::uint32_t, std::uint32_t ways)
{
    ways_ = ways;
}

std::uint32_t
RandomPolicy::victim(std::uint32_t, const ReplLineInfo *,
                     std::uint64_t allowed_mask, const ReplContext &)
{
    panicIf(allowed_mask == 0, "random victim with empty allowed mask");
    const unsigned count = std::popcount(allowed_mask);
    std::uint64_t pick = rng_.nextBounded(count);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (allowed_mask & (std::uint64_t{1} << w)) {
            if (pick == 0)
                return w;
            --pick;
        }
    }
    panic("random victim ran past the allowed mask");
}

} // namespace maps
