/**
 * @file
 * Belady's MIN as an oracle-driven policy.
 *
 * MIN requires future knowledge; the FutureOracle abstraction supplies
 * it. The offline module provides a TraceOracle built from a recorded
 * profiling run (the paper records it under true LRU), which faithfully
 * reproduces the *stale future knowledge* problem of §V-B: once live
 * accesses diverge from the recorded trace, the oracle's answers are
 * wrong, and MIN underperforms even pseudo-LRU.
 */
#ifndef MAPS_CACHE_POLICY_BELADY_HPP
#define MAPS_CACHE_POLICY_BELADY_HPP

#include "cache/replacement.hpp"

namespace maps {

/** Supplies next-use positions for Belady's MIN. */
class FutureOracle
{
  public:
    virtual ~FutureOracle() = default;

    /**
     * Advance the oracle's cursor by one access. Called once per cache
     * access in stream order, with the live access's address (which may
     * differ from the recorded trace — the cursor advances in lock-step
     * regardless, reproducing the paper's divergence).
     */
    virtual void onAccess(Addr addr) = 0;

    /**
     * Position of the next use of @c addr strictly after the cursor;
     * returns kNeverUsed when the oracle believes it is never used again.
     */
    virtual std::uint64_t nextUse(Addr addr) const = 0;

    static constexpr std::uint64_t kNeverUsed = ~std::uint64_t{0};
};

/** Belady's MIN: victimize the line whose next use is furthest away. */
class BeladyPolicy : public ReplacementPolicy
{
  public:
    /** The oracle must outlive the policy. */
    explicit BeladyPolicy(FutureOracle &oracle) : oracle_(oracle) {}

    void init(std::uint32_t sets, std::uint32_t ways) override;
    void touch(std::uint32_t set, std::uint32_t way,
               const ReplContext &ctx) override;
    void insert(std::uint32_t set, std::uint32_t way,
                const ReplContext &ctx) override;
    std::uint32_t victim(std::uint32_t set, const ReplLineInfo *lines,
                         std::uint64_t allowed_mask,
                         const ReplContext &ctx) override;
    std::string name() const override { return "min"; }

  private:
    FutureOracle &oracle_;
    std::uint32_t ways_ = 0;
};

} // namespace maps

#endif // MAPS_CACHE_POLICY_BELADY_HPP
