#include "cache/policy_lru.hpp"

#include "util/logging.hpp"

namespace maps {

void
TrueLruPolicy::init(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    clock_ = 0;
    stamps_.assign(static_cast<std::size_t>(sets) * ways, 0);
}

void
TrueLruPolicy::touch(std::uint32_t set, std::uint32_t way,
                     const ReplContext &)
{
    stamps_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
}

void
TrueLruPolicy::insert(std::uint32_t set, std::uint32_t way,
                      const ReplContext &)
{
    stamps_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
}

std::uint32_t
TrueLruPolicy::victim(std::uint32_t set, const ReplLineInfo *,
                      std::uint64_t allowed_mask, const ReplContext &)
{
    panicIf(allowed_mask == 0, "LRU victim with empty allowed mask");
    std::uint32_t best = 64;
    std::uint64_t best_stamp = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!(allowed_mask & (std::uint64_t{1} << w)))
            continue;
        const std::uint64_t stamp =
            stamps_[static_cast<std::size_t>(set) * ways_ + w];
        if (stamp < best_stamp) {
            best_stamp = stamp;
            best = w;
        }
    }
    panicIf(best >= ways_, "LRU victim found no allowed way");
    return best;
}

void
TrueLruPolicy::invalidate(std::uint32_t set, std::uint32_t way)
{
    stamps_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

} // namespace maps
