#include "cache/policy_plru.hpp"

#include "check/check.hpp"
#include "util/bitops.hpp"
#include "util/logging.hpp"

namespace maps {

void
TreePlruPolicy::init(std::uint32_t sets, std::uint32_t ways)
{
    fatalIf(!isPow2(ways), "tree PLRU requires power-of-two associativity");
    ways_ = ways;
    nodes_ = ways > 1 ? ways - 1 : 0;
    bits_.assign(static_cast<std::size_t>(sets) * nodes_, false);
}

void
TreePlruPolicy::touchWay(std::uint32_t set, std::uint32_t way)
{
    if (ways_ == 1)
        return;
    // Walk from the root; at each node flip the bit away from the
    // accessed way's half.
    std::uint32_t lo = 0, hi = ways_;
    std::uint32_t node = 0; // index within the set's implicit tree
    const std::size_t base = static_cast<std::size_t>(set) * nodes_;
    while (hi - lo > 1) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        const bool go_right = way >= mid;
        // Convention: bit true means "the left half was touched more
        // recently", so the victim walk follows the bit rightward.
        bits_[base + node] = !go_right;
        if (go_right) {
            node = 2 * node + 2;
            lo = mid;
        } else {
            node = 2 * node + 1;
            hi = mid;
        }
    }
}

void
TreePlruPolicy::touch(std::uint32_t set, std::uint32_t way,
                      const ReplContext &)
{
    if (check::enabled() && check::mutations().plruSkipTouch) {
        // Seeded bug (check_mutants): hits no longer refresh the tree
        // bits, so the victim walk degrades toward FIFO.
        return;
    }
    touchWay(set, way);
}

void
TreePlruPolicy::insert(std::uint32_t set, std::uint32_t way,
                       const ReplContext &)
{
    touchWay(set, way);
}

bool
TreePlruPolicy::subtreeHasAllowed(std::uint32_t lo, std::uint32_t hi,
                                  std::uint64_t allowed_mask) const
{
    for (std::uint32_t w = lo; w < hi; ++w) {
        if (allowed_mask & (std::uint64_t{1} << w))
            return true;
    }
    return false;
}

std::uint32_t
TreePlruPolicy::victim(std::uint32_t set, const ReplLineInfo *,
                       std::uint64_t allowed_mask, const ReplContext &)
{
    panicIf(allowed_mask == 0, "PLRU victim with empty allowed mask");
    if (ways_ == 1)
        return 0;

    std::uint32_t lo = 0, hi = ways_;
    std::uint32_t node = 0;
    const std::size_t base = static_cast<std::size_t>(set) * nodes_;
    while (hi - lo > 1) {
        const std::uint32_t mid = lo + (hi - lo) / 2;
        // bit true == left touched more recently => pseudo-LRU is right.
        bool follow_right = bits_[base + node];
        const bool left_ok = subtreeHasAllowed(lo, mid, allowed_mask);
        const bool right_ok = subtreeHasAllowed(mid, hi, allowed_mask);
        panicIf(!left_ok && !right_ok, "PLRU subtree lost allowed ways");
        if (follow_right && !right_ok)
            follow_right = false;
        else if (!follow_right && !left_ok)
            follow_right = true;
        if (follow_right) {
            node = 2 * node + 2;
            lo = mid;
        } else {
            node = 2 * node + 1;
            hi = mid;
        }
    }
    panicIf(!(allowed_mask & (std::uint64_t{1} << lo)),
            "PLRU picked a disallowed way");
    return lo;
}

} // namespace maps
