#include "cache/policy_drrip.hpp"

#include "util/logging.hpp"

namespace maps {

DrripPolicy::DrripPolicy(DrripConfig cfg)
    : cfg_(cfg),
      maxRrpv_(static_cast<std::uint8_t>((1u << cfg.rrpvBits) - 1)),
      pselMax_(1 << (cfg.pselBits - 1)),
      rng_(cfg.seed)
{
    fatalIf(cfg_.rrpvBits == 0 || cfg_.rrpvBits > 7,
            "DRRIP needs 1..7 RRPV bits");
    fatalIf(cfg_.brripEpsilon < 2, "BRRIP epsilon must be >= 2");
    fatalIf(cfg_.leaderStride < 2, "leader stride must be >= 2");
}

void
DrripPolicy::init(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    rrpv_.assign(static_cast<std::size_t>(sets) * ways, maxRrpv_);
    psel_.fill(0);
    if (sets < cfg_.leaderStride)
        warn("DRRIP: too few sets for distinct leader groups");
}

DrripPolicy::SetRole
DrripPolicy::roleOf(std::uint32_t set) const
{
    const std::uint32_t phase = set % cfg_.leaderStride;
    if (phase == 0)
        return SetRole::LeaderSrrip;
    if (phase == cfg_.leaderStride / 2)
        return SetRole::LeaderBrrip;
    return SetRole::Follower;
}

std::uint8_t
DrripPolicy::insertionRrpv(std::uint32_t set, const ReplContext &ctx)
{
    bool use_brrip;
    switch (roleOf(set)) {
      case SetRole::LeaderSrrip:
        use_brrip = false;
        break;
      case SetRole::LeaderBrrip:
        use_brrip = true;
        break;
      default:
        use_brrip = psel_[classOf(ctx)] < 0;
        break;
    }
    if (!use_brrip)
        return static_cast<std::uint8_t>(maxRrpv_ - 1);
    // BRRIP: distant insertion, with an occasional intermediate one so
    // streams are eventually recognized.
    return rng_.nextBounded(cfg_.brripEpsilon) == 0
               ? static_cast<std::uint8_t>(maxRrpv_ - 1)
               : maxRrpv_;
}

void
DrripPolicy::touch(std::uint32_t set, std::uint32_t way,
                   const ReplContext &)
{
    rrpv_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

void
DrripPolicy::insert(std::uint32_t set, std::uint32_t way,
                    const ReplContext &ctx)
{
    rrpv_[static_cast<std::size_t>(set) * ways_ + way] =
        insertionRrpv(set, ctx);

    // The duel: a miss (each insert follows a miss) in a leader set
    // votes against that leader's insertion mode for the class.
    const unsigned cls = classOf(ctx);
    switch (roleOf(set)) {
      case SetRole::LeaderSrrip:
        if (psel_[cls] > -pselMax_)
            --psel_[cls];
        break;
      case SetRole::LeaderBrrip:
        if (psel_[cls] < pselMax_ - 1)
            ++psel_[cls];
        break;
      case SetRole::Follower:
        break;
    }
}

std::uint32_t
DrripPolicy::victim(std::uint32_t set, const ReplLineInfo *,
                    std::uint64_t allowed_mask, const ReplContext &)
{
    panicIf(allowed_mask == 0, "DRRIP victim with empty allowed mask");
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    while (true) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if ((allowed_mask & (std::uint64_t{1} << w)) &&
                rrpv_[base + w] >= maxRrpv_) {
                return w;
            }
        }
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (rrpv_[base + w] < maxRrpv_)
                ++rrpv_[base + w];
        }
    }
}

bool
DrripPolicy::brripActive(std::uint8_t type_class) const
{
    return psel_[cfg_.typedInsertion ? (type_class & 3) : 0] < 0;
}

} // namespace maps
