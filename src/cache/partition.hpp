/**
 * @file
 * Way-partitioning for metadata caches (paper §V-C).
 *
 * Partitions constrain which ways counter and hash blocks may occupy;
 * tree nodes are always unconstrained ("Tree nodes need not be included
 * in the partitioning scheme"). Three schemes: none, static split, and
 * dynamic set-dueling between two candidate splits [18,19].
 */
#ifndef MAPS_CACHE_PARTITION_HPP
#define MAPS_CACHE_PARTITION_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "cache/replacement.hpp"
#include "trace/record.hpp"

namespace maps {

/** Interface: per-access allowed-way masks plus dueling feedback hooks. */
class WayPartition
{
  public:
    virtual ~WayPartition() = default;

    virtual void init(std::uint32_t sets, std::uint32_t ways) = 0;

    /** Mask of ways the incoming block may be inserted into. Non-zero. */
    virtual std::uint64_t allowedWays(std::uint32_t set,
                                      const ReplContext &ctx) = 0;

    /** Called on every cache hit (for dueling statistics). */
    virtual void onHit(std::uint32_t set, const ReplContext &ctx);

    /** Called on every cache miss (for dueling statistics). */
    virtual void onMiss(std::uint32_t set, const ReplContext &ctx);

    /**
     * Ways the given class may legitimately *occupy* (maps::check
     * residency audit). Default: any way — schemes whose constraint
     * changes over time (set dueling) cannot bound residency, because
     * lines inserted under the losing split stay put.
     */
    virtual std::uint64_t residencyMask(std::uint32_t set,
                                        std::uint8_t type_class) const;

    virtual std::string name() const = 0;
};

/** No constraint: every type may use every way. */
class NoPartition : public WayPartition
{
  public:
    void init(std::uint32_t, std::uint32_t ways) override
    {
        mask_ = fullWayMask(ways);
    }
    std::uint64_t allowedWays(std::uint32_t, const ReplContext &) override
    {
        return mask_;
    }
    std::string name() const override { return "none"; }

  private:
    std::uint64_t mask_ = ~std::uint64_t{0};
};

/**
 * Static split: counters use ways [0, counterWays), hashes use
 * [counterWays, ways); tree nodes (and any other class) use all ways.
 */
class StaticPartition : public WayPartition
{
  public:
    explicit StaticPartition(std::uint32_t counter_ways)
        : counterWays_(counter_ways)
    {
    }

    void init(std::uint32_t sets, std::uint32_t ways) override;
    std::uint64_t allowedWays(std::uint32_t set,
                              const ReplContext &ctx) override;
    std::uint64_t residencyMask(std::uint32_t set,
                                std::uint8_t type_class) const override;
    std::string name() const override;

    std::uint32_t counterWays() const { return counterWays_; }

  private:
    std::uint32_t counterWays_;
    std::uint32_t ways_ = 0;
    std::uint64_t counterMask_ = 0;
    std::uint64_t hashMask_ = 0;
    std::uint64_t fullMask_ = 0;
};

/**
 * Set-dueling dynamic partition: two uniformly distributed leader groups
 * run two different static splits; a saturating PSEL counter driven by
 * leader misses selects the split followers use.
 */
class SetDuelingPartition : public WayPartition
{
  public:
    /**
     * @param split_a        counter ways for leader group A.
     * @param split_b        counter ways for leader group B.
     * @param leader_stride  one leader of each group per this many sets.
     * @param psel_bits      width of the saturating selector.
     */
    SetDuelingPartition(std::uint32_t split_a, std::uint32_t split_b,
                        std::uint32_t leader_stride = 32,
                        unsigned psel_bits = 10);

    void init(std::uint32_t sets, std::uint32_t ways) override;
    std::uint64_t allowedWays(std::uint32_t set,
                              const ReplContext &ctx) override;
    void onMiss(std::uint32_t set, const ReplContext &ctx) override;
    std::string name() const override { return "set-dueling"; }

    /** Currently winning split (counter ways), for inspection. */
    std::uint32_t activeSplit() const;

  private:
    StaticPartition partA_;
    StaticPartition partB_;
    std::uint32_t leaderStride_;
    std::int32_t psel_ = 0;
    std::int32_t pselMax_ = 512;

    enum class SetRole : std::uint8_t { Follower, LeaderA, LeaderB };
    SetRole roleOf(std::uint32_t set) const;
};

} // namespace maps

#endif // MAPS_CACHE_PARTITION_HPP
