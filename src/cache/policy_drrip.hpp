/**
 * @file
 * DRRIP (Jaleel et al., ISCA 2010): dynamic RRIP that set-duels SRRIP
 * against BRRIP, with an optional per-metadata-type insertion mode —
 * the paper's §IV-D suggestion that "architects could build on reuse
 * prediction for traditional caches, adding information about the
 * metadata type".
 *
 * Typed insertion duels *per typeClass*: each metadata type gets its
 * own PSEL, so a thrash-prone type (e.g. hashes under streaming) can
 * pick BRRIP while counters keep SRRIP.
 */
#ifndef MAPS_CACHE_POLICY_DRRIP_HPP
#define MAPS_CACHE_POLICY_DRRIP_HPP

#include <array>
#include <vector>

#include "cache/replacement.hpp"
#include "util/rng.hpp"

namespace maps {

/** DRRIP tuning. */
struct DrripConfig
{
    unsigned rrpvBits = 2;
    /** One insertion duel per typeClass instead of one global. */
    bool typedInsertion = false;
    /** BRRIP inserts at max-1 with probability 1/brripEpsilon. */
    std::uint32_t brripEpsilon = 32;
    std::uint32_t leaderStride = 32;
    unsigned pselBits = 10;
    std::uint64_t seed = 1;
};

class DrripPolicy : public ReplacementPolicy
{
  public:
    explicit DrripPolicy(DrripConfig cfg = {});

    void init(std::uint32_t sets, std::uint32_t ways) override;
    void touch(std::uint32_t set, std::uint32_t way,
               const ReplContext &ctx) override;
    void insert(std::uint32_t set, std::uint32_t way,
                const ReplContext &ctx) override;
    std::uint32_t victim(std::uint32_t set, const ReplLineInfo *lines,
                         std::uint64_t allowed_mask,
                         const ReplContext &ctx) override;
    std::string name() const override
    {
        return cfg_.typedInsertion ? "drrip-typed" : "drrip";
    }

    /** True when followers of the class currently use BRRIP. */
    bool brripActive(std::uint8_t type_class = 0) const;

  private:
    enum class SetRole : std::uint8_t { Follower, LeaderSrrip,
                                        LeaderBrrip };

    DrripConfig cfg_;
    std::uint8_t maxRrpv_ = 3;
    std::uint32_t ways_ = 0;
    std::vector<std::uint8_t> rrpv_; // sets * ways
    std::array<std::int32_t, 4> psel_{};
    std::int32_t pselMax_ = 512;
    Rng rng_;

    SetRole roleOf(std::uint32_t set) const;
    unsigned classOf(const ReplContext &ctx) const
    {
        return cfg_.typedInsertion ? (ctx.typeClass & 3) : 0;
    }
    std::uint8_t insertionRrpv(std::uint32_t set, const ReplContext &ctx);
};

} // namespace maps

#endif // MAPS_CACHE_POLICY_DRRIP_HPP
