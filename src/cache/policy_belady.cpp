#include "cache/policy_belady.hpp"

#include "util/logging.hpp"

namespace maps {

void
BeladyPolicy::init(std::uint32_t, std::uint32_t ways)
{
    ways_ = ways;
}

void
BeladyPolicy::touch(std::uint32_t, std::uint32_t, const ReplContext &ctx)
{
    oracle_.onAccess(ctx.addr);
}

void
BeladyPolicy::insert(std::uint32_t, std::uint32_t, const ReplContext &ctx)
{
    oracle_.onAccess(ctx.addr);
}

std::uint32_t
BeladyPolicy::victim(std::uint32_t, const ReplLineInfo *lines,
                     std::uint64_t allowed_mask, const ReplContext &)
{
    panicIf(allowed_mask == 0, "MIN victim with empty allowed mask");
    std::uint32_t best = 64;
    std::uint64_t best_next = 0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!(allowed_mask & (std::uint64_t{1} << w)))
            continue;
        const std::uint64_t next = oracle_.nextUse(lines[w].addr);
        if (best >= ways_ || next > best_next) {
            best = w;
            best_next = next;
            if (next == FutureOracle::kNeverUsed)
                break; // cannot do better than "never used again"
        }
    }
    panicIf(best >= ways_, "MIN victim found no allowed way");
    return best;
}

} // namespace maps
