/**
 * @file
 * Random replacement (seeded, deterministic).
 */
#ifndef MAPS_CACHE_POLICY_RANDOM_HPP
#define MAPS_CACHE_POLICY_RANDOM_HPP

#include "cache/replacement.hpp"
#include "util/rng.hpp"

namespace maps {

/** Picks a uniformly random allowed way. Useful as a sanity baseline. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed = 1) : rng_(seed) {}

    void init(std::uint32_t sets, std::uint32_t ways) override;
    void touch(std::uint32_t, std::uint32_t, const ReplContext &) override
    {
    }
    void insert(std::uint32_t, std::uint32_t, const ReplContext &) override
    {
    }
    std::uint32_t victim(std::uint32_t set, const ReplLineInfo *lines,
                         std::uint64_t allowed_mask,
                         const ReplContext &ctx) override;
    std::string name() const override { return "random"; }

  private:
    std::uint32_t ways_ = 0;
    Rng rng_;
};

} // namespace maps

#endif // MAPS_CACHE_POLICY_RANDOM_HPP
