#include "cache/geometry.hpp"

#include "util/bitops.hpp"
#include "util/logging.hpp"

namespace maps {

std::uint32_t
CacheGeometry::setIndexOf(Addr addr) const
{
    return static_cast<std::uint32_t>((addr / blockBytes) % numSets());
}

std::uint64_t
CacheGeometry::tagOf(Addr addr) const
{
    return (addr / blockBytes) / numSets();
}

void
CacheGeometry::validate() const
{
    fatalIf(sizeBytes == 0, "cache size must be non-zero");
    fatalIf(assoc == 0, "associativity must be non-zero");
    fatalIf(assoc > 64, "associativity above 64 ways is unsupported");
    fatalIf(blockBytes == 0 || !isPow2(blockBytes),
            "block size must be a power of two");
    fatalIf(sizeBytes % (static_cast<std::uint64_t>(assoc) * blockBytes) !=
                0,
            "cache size must be a multiple of assoc * block size");
    fatalIf(!isPow2(numSets()), "number of sets must be a power of two");
}

} // namespace maps
