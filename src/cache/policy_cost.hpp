/**
 * @file
 * Cost-aware LRU — an online policy for the paper's §VI direction:
 * "the metadata cache should have an eviction policy that accounts for
 * multiple miss costs".
 *
 * Victim choice divides a line's recency age by its miss cost, so a
 * counter block (whose miss may trigger a whole tree traversal) must be
 * proportionally staler than a hash block before it is evicted. Costs
 * are per typeClass and configurable; the defaults reflect the
 * metadata cost structure (§V): counter >> tree > hash.
 */
#ifndef MAPS_CACHE_POLICY_COST_HPP
#define MAPS_CACHE_POLICY_COST_HPP

#include <array>
#include <vector>

#include "cache/replacement.hpp"

namespace maps {

/** Per-typeClass miss costs (indexed by typeClass, up to 4 classes). */
struct CostTable
{
    std::array<double, 4> cost{1.0, 1.0, 1.0, 1.0};

    /** Metadata defaults: counter misses may pay a tree walk. */
    static CostTable
    metadataDefaults(std::uint32_t tree_levels = 4)
    {
        CostTable t;
        t.cost[0] = 1.0 + tree_levels; // Counter
        t.cost[1] = 2.0;               // TreeNode
        t.cost[2] = 1.0;               // Hash
        t.cost[3] = 1.0;               // Data/other
        return t;
    }
};

/** LRU ranked by age/cost: evict the line with the largest ratio. */
class CostAwareLruPolicy : public ReplacementPolicy
{
  public:
    explicit CostAwareLruPolicy(CostTable costs
                                = CostTable::metadataDefaults());

    void init(std::uint32_t sets, std::uint32_t ways) override;
    void touch(std::uint32_t set, std::uint32_t way,
               const ReplContext &ctx) override;
    void insert(std::uint32_t set, std::uint32_t way,
                const ReplContext &ctx) override;
    std::uint32_t victim(std::uint32_t set, const ReplLineInfo *lines,
                         std::uint64_t allowed_mask,
                         const ReplContext &ctx) override;
    void invalidate(std::uint32_t set, std::uint32_t way) override;
    std::string name() const override { return "cost-lru"; }

    const CostTable &costs() const { return costs_; }

  private:
    CostTable costs_;
    std::uint32_t ways_ = 0;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamps_; // sets * ways

    double costOf(std::uint8_t type_class) const
    {
        return costs_.cost[type_class < 4 ? type_class : 3];
    }
};

} // namespace maps

#endif // MAPS_CACHE_POLICY_COST_HPP
