#include "cache/cache.hpp"

#include "check/check.hpp"
#include "util/logging.hpp"

namespace maps {

SetAssociativeCache::SetAssociativeCache(
    CacheGeometry geometry, std::unique_ptr<ReplacementPolicy> policy,
    std::unique_ptr<WayPartition> partition)
    : geom_(geometry),
      policy_(std::move(policy)),
      partition_(std::move(partition))
{
    geom_.validate();
    fatalIf(!policy_, "cache requires a replacement policy");
    lines_.assign(static_cast<std::size_t>(geom_.numSets()) * geom_.assoc,
                  Line{});
    policy_->init(geom_.numSets(), geom_.assoc);
    if (partition_)
        partition_->init(geom_.numSets(), geom_.assoc);
}

int
SetAssociativeCache::findWay(std::uint32_t set, std::uint64_t tag) const
{
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        const Line &line = lineAt(set, w);
        if (line.valid && line.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

CacheAccessOutcome
SetAssociativeCache::access(Addr addr, bool write, std::uint8_t type_class)
{
    const std::uint32_t set = geom_.setIndexOf(addr);
    const std::uint64_t tag = geom_.tagOf(addr);
    const std::size_t type_idx = type_class < 4 ? type_class : 3;

    ReplContext ctx;
    ctx.addr = addrOf(set, tag);
    ctx.write = write;
    ctx.typeClass = type_class;

    CacheAccessOutcome outcome;

    const auto deliver = [&] {
        if (check::enabled())
            auditSet(set);
        if (observer_) {
            CacheAccessEvent ev;
            ev.kind = CacheAccessEvent::Kind::Access;
            ev.addr = ctx.addr;
            ev.write = write;
            ev.typeClass = type_class;
            ev.outcome = outcome;
            observer_(ev);
        }
    };

    const int hit_way = findWay(set, tag);
    if (hit_way >= 0) {
        outcome.hit = true;
        ++stats_.hits;
        ++stats_.hitsByType[type_idx];
        Line &line = lineAt(set, static_cast<std::uint32_t>(hit_way));
        line.dirty = line.dirty || write;
        policy_->touch(set, static_cast<std::uint32_t>(hit_way), ctx);
        if (partition_)
            partition_->onHit(set, ctx);
        deliver();
        return outcome;
    }

    ++stats_.misses;
    ++stats_.missesByType[type_idx];
    if (partition_)
        partition_->onMiss(set, ctx);

    std::uint64_t allowed =
        partition_ ? partition_->allowedWays(set, ctx)
                   : fullWayMask(geom_.assoc);
    if (check::enabled() && check::mutations().ignorePartition) {
        // Seeded bug (check_mutants): the partition mask is discarded,
        // so fills land in ways reserved for other metadata types.
        allowed = fullWayMask(geom_.assoc);
    }
    panicIf(allowed == 0, "partition produced an empty way mask");

    // Prefer an invalid allowed way.
    std::uint32_t fill_way = geom_.assoc;
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        if ((allowed & (std::uint64_t{1} << w)) && !lineAt(set, w).valid) {
            fill_way = w;
            break;
        }
    }

    if (fill_way == geom_.assoc) {
        ReplLineInfo infos[64];
        for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
            const Line &l = lineAt(set, w);
            infos[w].addr = l.valid ? addrOf(set, l.tag) : kInvalidAddr;
            infos[w].valid = l.valid;
            infos[w].dirty = l.dirty;
            infos[w].typeClass = l.typeClass;
        }
        fill_way = policy_->victim(set, infos, allowed, ctx);
        if (check::enabled() && check::mutations().lruOffByOneVictim) {
            // Seeded bug (check_mutants): evict the next allowed way
            // after the one the policy chose.
            for (std::uint32_t step = 1; step <= geom_.assoc; ++step) {
                const std::uint32_t w =
                    (fill_way + step) % geom_.assoc;
                if (allowed & (std::uint64_t{1} << w)) {
                    fill_way = w;
                    break;
                }
            }
        }
        panicIf(fill_way >= geom_.assoc ||
                    !(allowed & (std::uint64_t{1} << fill_way)),
                "policy victim outside the allowed mask");
        Line &victim = lineAt(set, fill_way);
        panicIf(!victim.valid, "victimized an invalid line");
        outcome.evictedValid = true;
        outcome.evictedAddr = addrOf(set, victim.tag);
        outcome.evictedDirty = victim.dirty;
        outcome.evictedType = victim.typeClass;
        ++stats_.evictions;
        if (victim.dirty)
            ++stats_.dirtyEvictions;
        --validLines_;
    }

    Line &line = lineAt(set, fill_way);
    line.tag = tag;
    line.valid = true;
    line.dirty = write;
    line.typeClass = type_class;
    ++validLines_;
    policy_->insert(set, fill_way, ctx);
    deliver();
    return outcome;
}

void
SetAssociativeCache::auditSet(std::uint32_t set) const
{
    check::countChecks();
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        const Line &line = lineAt(set, w);
        if (!line.valid)
            continue;
        for (std::uint32_t v = w + 1; v < geom_.assoc; ++v) {
            const Line &other = lineAt(set, v);
            if (other.valid && other.tag == line.tag) {
                check::fail("cache.set",
                            "duplicate tag in set " +
                                std::to_string(set) + ": ways " +
                                std::to_string(w) + " and " +
                                std::to_string(v));
            }
        }
        if (partition_ &&
            !(partition_->residencyMask(set, line.typeClass) &
              (std::uint64_t{1} << w))) {
            check::fail(
                "cache.partition",
                "type " + std::to_string(line.typeClass) +
                    " resident outside its partition (set " +
                    std::to_string(set) + " way " + std::to_string(w) +
                    ")");
        }
    }
}

bool
SetAssociativeCache::probe(Addr addr) const
{
    return findWay(geom_.setIndexOf(addr), geom_.tagOf(addr)) >= 0;
}

bool
SetAssociativeCache::invalidate(Addr addr, bool *was_dirty)
{
    const std::uint32_t set = geom_.setIndexOf(addr);
    const std::uint64_t tag = geom_.tagOf(addr);
    const int way = findWay(set, tag);
    const auto deliver = [&](bool found) {
        if (!observer_)
            return;
        CacheAccessEvent ev;
        ev.kind = CacheAccessEvent::Kind::Invalidate;
        ev.addr = addrOf(set, tag);
        ev.found = found;
        observer_(ev);
    };
    if (way < 0) {
        deliver(false);
        return false;
    }
    Line &line = lineAt(set, static_cast<std::uint32_t>(way));
    if (was_dirty)
        *was_dirty = line.dirty;
    line.valid = false;
    line.dirty = false;
    --validLines_;
    policy_->invalidate(set, static_cast<std::uint32_t>(way));
    deliver(true);
    return true;
}

bool
SetAssociativeCache::cleanLine(Addr addr)
{
    const std::uint32_t set = geom_.setIndexOf(addr);
    const std::uint64_t tag = geom_.tagOf(addr);
    const int way = findWay(set, tag);
    const bool found = way >= 0;
    if (found)
        lineAt(set, static_cast<std::uint32_t>(way)).dirty = false;
    if (observer_) {
        CacheAccessEvent ev;
        ev.kind = CacheAccessEvent::Kind::Clean;
        ev.addr = addrOf(set, tag);
        ev.found = found;
        observer_(ev);
    }
    return found;
}

void
SetAssociativeCache::forEachLine(
    const std::function<void(const ReplLineInfo &)> &fn) const
{
    for (std::uint32_t set = 0; set < geom_.numSets(); ++set) {
        for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
            const Line &line = lineAt(set, w);
            if (!line.valid)
                continue;
            ReplLineInfo info;
            info.addr = addrOf(set, line.tag);
            info.valid = true;
            info.dirty = line.dirty;
            info.typeClass = line.typeClass;
            fn(info);
        }
    }
}

} // namespace maps
