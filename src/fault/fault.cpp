#include "fault/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "check/check.hpp"
#include "util/logging.hpp"

namespace maps::fault {

namespace {

/** Seed for the counter-block digest fold (same idiom as SecmemShadow). */
constexpr std::uint64_t kBlockFoldSeed = 0xC0FFEE5EC0DE5EEDull;

/** Seed for the functional data-MAC. */
constexpr std::uint64_t kMacSeed = 0x5EC0FDA7A4AC5EEDull;

std::string
hex(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

} // namespace

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::BitFlip:
        return "flip";
      case FaultKind::StaleReplay:
        return "replay";
    }
    return "?";
}

const char *
faultSurfaceName(FaultSurface s)
{
    switch (s) {
      case FaultSurface::Data:
        return "data";
      case FaultSurface::CounterMinor:
        return "counter-minor";
      case FaultSurface::CounterMajor:
        return "counter-major";
      case FaultSurface::Mac:
        return "mac";
      case FaultSurface::TreeNode:
        return "tree";
      case FaultSurface::MdCacheLine:
        return "mdcache";
    }
    return "?";
}

bool
surfaceCovered(FaultSurface s, bool mac_check_enabled)
{
    switch (s) {
      case FaultSurface::CounterMinor:
      case FaultSurface::CounterMajor:
      case FaultSurface::TreeNode:
        return true;
      case FaultSurface::Data:
      case FaultSurface::Mac:
        return mac_check_enabled;
      case FaultSurface::MdCacheLine:
        return false;
    }
    return false;
}

std::string
FaultSpec::classId() const
{
    return std::string(faultKindName(kind)) + ":" +
           faultSurfaceName(surface);
}

std::string
FaultPlan::parseSpec(const std::string &text, FaultSpec &out)
{
    const auto colon = text.find(':');
    const auto at = text.find('@');
    if (colon == std::string::npos || at == std::string::npos ||
        at < colon) {
        return "fault spec '" + text +
               "' is not of the form kind:surface@trigger";
    }
    const std::string kind = text.substr(0, colon);
    const std::string surface = text.substr(colon + 1, at - colon - 1);
    const std::string trigger = text.substr(at + 1);

    FaultSpec spec;
    if (kind == "flip") {
        spec.kind = FaultKind::BitFlip;
    } else if (kind == "replay") {
        spec.kind = FaultKind::StaleReplay;
    } else {
        return "unknown fault kind '" + kind + "' (flip|replay)";
    }

    if (surface == "data") {
        spec.surface = FaultSurface::Data;
    } else if (surface == "counter-minor") {
        spec.surface = FaultSurface::CounterMinor;
    } else if (surface == "counter-major") {
        spec.surface = FaultSurface::CounterMajor;
    } else if (surface == "mac") {
        spec.surface = FaultSurface::Mac;
    } else if (surface == "tree") {
        spec.surface = FaultSurface::TreeNode;
    } else if (surface == "mdcache") {
        spec.surface = FaultSurface::MdCacheLine;
    } else {
        return "unknown fault surface '" + surface +
               "' (data|counter-minor|counter-major|mac|tree|mdcache)";
    }

    if (trigger.rfind("req=", 0) == 0) {
        spec.trigger.kind = FaultTrigger::Kind::AtRequest;
        char *end = nullptr;
        spec.trigger.request =
            std::strtoull(trigger.c_str() + 4, &end, 10);
        if (!end || *end != '\0')
            return "bad request number in trigger '" + trigger + "'";
    } else if (trigger.rfind("addr=", 0) == 0) {
        spec.trigger.kind = FaultTrigger::Kind::AtAddress;
        char *end = nullptr;
        spec.trigger.addr = std::strtoull(trigger.c_str() + 5, &end, 0);
        if (!end || *end != '\0')
            return "bad address in trigger '" + trigger + "'";
    } else if (trigger.rfind("p=", 0) == 0) {
        spec.trigger.kind = FaultTrigger::Kind::PerRequest;
        char *end = nullptr;
        spec.trigger.probability = std::strtod(trigger.c_str() + 2, &end);
        if (!end || *end != '\0' || spec.trigger.probability <= 0.0 ||
            spec.trigger.probability > 1.0) {
            return "bad probability in trigger '" + trigger +
                   "' (need 0 < p <= 1)";
        }
    } else {
        return "unknown trigger '" + trigger +
               "' (req=<N>|addr=<A>|p=<P>)";
    }

    out = spec;
    return "";
}

std::string
FaultPlan::add(const std::string &text)
{
    FaultSpec spec;
    const std::string err = parseSpec(text, spec);
    if (!err.empty())
        return err;
    if (spec.trigger.kind == FaultTrigger::Kind::PerRequest)
        spec.limit = defaultProbLimit;
    specs.push_back(spec);
    return "";
}

const FaultClassStats *
FaultReport::find(const std::string &class_id) const
{
    for (const auto &[id, stats] : classes) {
        if (id == class_id)
            return &stats;
    }
    return nullptr;
}

FaultClassStats
FaultReport::totals() const
{
    FaultClassStats acc;
    for (const auto &[id, stats] : classes) {
        acc.injected += stats.injected;
        acc.detected += stats.detected;
        acc.silent += stats.silent;
        acc.masked += stats.masked;
        acc.dormant += stats.dormant;
        acc.latencySum += stats.latencySum;
        acc.latencyMax = std::max(acc.latencyMax, stats.latencyMax);
    }
    return acc;
}

FaultInjector::FaultInjector(SecureMemoryController &controller,
                             FaultPlan plan)
    : ctl_(controller),
      layout_(controller.layout()),
      plan_(std::move(plan)),
      rng_(plan_.seed * 0x9E3779B97F4A7C15ull + 0xFA017ull),
      mirror_(layout_),
      tree_(layout_)
{
    specs_.reserve(plan_.specs.size());
    for (const auto &spec : plan_.specs) {
        specs_.push_back(SpecState{spec, 0, false});
        registerClass(spec.classId());
    }
    if (plan_.tamperLiveCounters) {
        // Live tampering makes the maps::check shadow diverge on
        // purpose; declare those domains expected so the campaign's
        // second detector is tallied instead of failing the run.
        check::setExpectedDomains({"secmem.shadow", "secmem.tap"});
    }
}

void
FaultInjector::registerClass(const std::string &class_id)
{
    if (std::find(classOrder_.begin(), classOrder_.end(), class_id) ==
        classOrder_.end()) {
        classOrder_.push_back(class_id);
    }
}

std::uint64_t
FaultInjector::committedDigest(std::uint64_t ctr_index) const
{
    const auto it = ctrDigest_.find(ctr_index);
    return it != ctrDigest_.end() ? it->second
                                  : IntegrityTree::kDefaultCounterDigest;
}

std::uint64_t
FaultInjector::cleanDigest(Addr counter_block_addr) const
{
    const std::uint64_t coverage = layout_.counterBlockCoverage();
    const Addr base =
        MetadataLayout::indexOf(counter_block_addr) * coverage;
    std::uint64_t h = kBlockFoldSeed;
    for (Addr blk = base; blk < base + coverage; blk += kBlockSize) {
        const CounterValue value = mirror_.read(blk);
        h = IntegrityTree::mix(h, value.major);
        h = IntegrityTree::mix(h, value.minor);
    }
    return h;
}

std::uint64_t
FaultInjector::corruptDigest(Addr counter_block_addr, Addr victim_blk,
                             FaultSurface surface,
                             std::uint64_t mask) const
{
    const std::uint64_t coverage = layout_.counterBlockCoverage();
    const Addr base =
        MetadataLayout::indexOf(counter_block_addr) * coverage;
    const Addr victim = blockAlign(victim_blk);
    std::uint64_t h = kBlockFoldSeed;
    for (Addr blk = base; blk < base + coverage; blk += kBlockSize) {
        CounterValue value = mirror_.read(blk);
        if (blk == victim) {
            if (surface == FaultSurface::CounterMinor)
                value.minor ^= static_cast<std::uint32_t>(mask);
            else
                value.major ^= mask;
        }
        h = IntegrityTree::mix(h, value.major);
        h = IntegrityTree::mix(h, value.minor);
    }
    return h;
}

std::uint64_t
FaultInjector::macFn(std::uint64_t block_index, std::uint64_t version,
                     const CounterValue &ctr) const
{
    std::uint64_t h = IntegrityTree::mix(kMacSeed, block_index);
    h = IntegrityTree::mix(h, version);
    h = IntegrityTree::mix(h, ctr.major);
    h = IntegrityTree::mix(h, ctr.minor);
    return h;
}

std::uint64_t
FaultInjector::dataStored(std::uint64_t block_index) const
{
    const auto it = dataOf_.find(block_index);
    return it != dataOf_.end() ? it->second : 0;
}

std::uint64_t
FaultInjector::storedMac(std::uint64_t block_index) const
{
    const auto it = macOf_.find(block_index);
    if (it != macOf_.end())
        return it->second;
    return macFn(block_index, 0, CounterValue{});
}

void
FaultInjector::resolve(Injected &f, Outcome outcome)
{
    f.outcome = outcome;
    f.armed = false;
    f.resolvedAt = requestIndex_;
}

void
FaultInjector::repair(Injected &f)
{
    switch (f.surface) {
      case FaultSurface::CounterMinor:
      case FaultSurface::CounterMajor:
        ctrDigest_[f.target] = f.savedValue;
        if (f.tamperedLive) {
            ctl_.tamperCounter(f.liveAddr, f.savedLive);
            f.tamperedLive = false;
        }
        break;
      case FaultSurface::TreeNode:
        tree_.tamperNode(static_cast<Addr>(f.target), f.savedValue);
        break;
      case FaultSurface::Data:
        dataOf_[f.target] = f.savedValue;
        break;
      case FaultSurface::Mac:
        macOf_[f.target] = f.savedValue;
        break;
      case FaultSurface::MdCacheLine:
        break; // no functional state was touched
    }
}

void
FaultInjector::onRequest(const MemoryRequest &req)
{
    // A fault that was fetched from memory during the previous request
    // and never resolved by a verification is silent corruption: the
    // controller consumed attacker-controlled state unchecked.
    for (auto &f : faults_) {
        if (f.outcome == Outcome::Active && f.armed) {
            resolve(f, Outcome::Silent);
            repair(f); // keep later injections attributable
        }
    }

    current_ = req;
    inRequest_ = true;
    maybeInject(req);
    ++requestIndex_;
}

void
FaultInjector::maybeInject(const MemoryRequest &req)
{
    for (auto &state : specs_) {
        if (state.fired >= state.spec.limit)
            continue;
        bool fire = false;
        switch (state.spec.trigger.kind) {
          case FaultTrigger::Kind::AtRequest:
            // >= so a spec that could not apply at exactly N (e.g. a
            // replay of never-written state) retries until it lands.
            fire = requestIndex_ >= state.spec.trigger.request;
            break;
          case FaultTrigger::Kind::AtAddress:
            fire = blockAlign(req.addr) ==
                   blockAlign(state.spec.trigger.addr);
            break;
          case FaultTrigger::Kind::PerRequest:
            fire = rng_.nextBool(state.spec.trigger.probability);
            break;
        }
        if (fire)
            inject(state, req);
    }
}

void
FaultInjector::inject(SpecState &state, const MemoryRequest &req)
{
    const FaultSurface surface = state.spec.surface;

    if (surface == FaultSurface::MdCacheLine) {
        // Corrupting trusted on-chip SRAM: wait for a resident line and
        // install on its next hit (see onMetadataAccess).
        state.armedForResident = true;
        ++state.fired;
        return;
    }

    Injected f;
    f.id = faults_.size();
    f.kind = state.spec.kind;
    f.surface = surface;
    f.classId = state.spec.classId();
    f.atRequest = requestIndex_;

    const Addr blk = blockAlign(req.addr);
    const std::uint64_t blk_index = blockIndex(blk);
    const Addr ctr_addr = layout_.counterBlockAddr(req.addr);
    const std::uint64_t ctr_index = MetadataLayout::indexOf(ctr_addr);

    switch (surface) {
      case FaultSurface::Data: {
        std::uint64_t victim = blk_index;
        std::uint64_t corrupted;
        if (f.kind == FaultKind::BitFlip) {
            f.savedValue = dataStored(victim);
            corrupted = f.savedValue ^ (1ull << rng_.nextBounded(64));
        } else {
            // Replay needs history. Streaming workloads rarely rewrite
            // the triggering block, so fall back to any block with a
            // previous committed version (smallest index, for
            // determinism across map iteration orders).
            auto it = dataPrev_.find(victim);
            if (it == dataPrev_.end()) {
                it = dataPrev_.begin();
                for (auto scan = dataPrev_.begin();
                     scan != dataPrev_.end(); ++scan) {
                    if (scan->first < it->first)
                        it = scan;
                }
                if (it == dataPrev_.end())
                    return; // nothing written twice yet: retry later
                victim = it->first;
            }
            f.savedValue = dataStored(victim);
            corrupted = it->second;
        }
        f.target = victim;
        if (corrupted == f.savedValue)
            return; // replay of identical state: nothing to observe
        dataOf_[victim] = corrupted;
        break;
      }
      case FaultSurface::Mac: {
        std::uint64_t victim = blk_index;
        std::uint64_t corrupted;
        if (f.kind == FaultKind::BitFlip) {
            f.savedValue = storedMac(victim);
            corrupted = f.savedValue ^ (1ull << rng_.nextBounded(64));
        } else {
            auto it = macPrev_.find(victim);
            if (it == macPrev_.end()) {
                it = macPrev_.begin();
                for (auto scan = macPrev_.begin(); scan != macPrev_.end();
                     ++scan) {
                    if (scan->first < it->first)
                        it = scan;
                }
                if (it == macPrev_.end())
                    return; // no previous MAC committed yet: retry later
                victim = it->first;
            }
            f.savedValue = storedMac(victim);
            corrupted = it->second;
        }
        f.target = victim;
        if (corrupted == f.savedValue)
            return;
        macOf_[victim] = corrupted;
        break;
      }
      case FaultSurface::CounterMinor:
      case FaultSurface::CounterMajor: {
        f.target = ctr_index;
        f.probeCtr = ctr_addr;
        f.savedValue = committedDigest(ctr_index);
        std::uint64_t corrupted;
        if (f.kind == FaultKind::BitFlip) {
            const std::uint64_t mask =
                surface == FaultSurface::CounterMinor
                    ? (1ull << rng_.nextBounded(7))
                    : (1ull << rng_.nextBounded(64));
            corrupted = corruptDigest(ctr_addr, blk, surface, mask);
            if (plan_.tamperLiveCounters) {
                f.liveAddr = blk;
                f.savedLive = ctl_.counters().read(blk);
                CounterValue tampered = f.savedLive;
                if (surface == FaultSurface::CounterMinor)
                    tampered.minor ^= static_cast<std::uint32_t>(mask);
                else
                    tampered.major ^= mask;
                ctl_.tamperCounter(blk, tampered);
                f.tamperedLive = true;
            }
        } else {
            const auto it = ctrDigestPrev_.find(ctr_index);
            // Before the first overwrite the "stale" image is the
            // never-written default.
            corrupted = it != ctrDigestPrev_.end()
                            ? it->second
                            : IntegrityTree::kDefaultCounterDigest;
        }
        if (corrupted == f.savedValue)
            return;
        ctrDigest_[ctr_index] = corrupted;
        break;
      }
      case FaultSurface::TreeNode: {
        const auto path = layout_.treePathForCounter(ctr_addr);
        if (path.empty())
            return;
        const Addr node = path[rng_.nextBounded(path.size())];
        f.target = node;
        f.probeCtr = ctr_addr;
        f.savedValue = tree_.nodeDigest(node);
        std::uint64_t corrupted;
        if (f.kind == FaultKind::BitFlip) {
            corrupted = f.savedValue ^ (1ull << rng_.nextBounded(64));
        } else {
            const auto it = treePrev_.find(node);
            if (it == treePrev_.end())
                return; // node never updated: no stale image to replay
            corrupted = it->second;
        }
        if (corrupted == f.savedValue)
            return;
        tree_.tamperNode(node, corrupted);
        break;
      }
      case FaultSurface::MdCacheLine:
        return; // handled above
    }

    ++state.fired;
    registerClass(f.classId);
    faults_.push_back(std::move(f));
}

void
FaultInjector::onMetadataAccess(Addr addr, MetadataType type, bool write,
                                bool hit, bool fetched)
{
    // Arming: corrupted state brought on chip from attackable memory.
    if (fetched) {
        if (type == MetadataType::Counter) {
            const std::uint64_t idx = MetadataLayout::indexOf(addr);
            for (auto &f : faults_) {
                if (f.outcome == Outcome::Active &&
                    (f.surface == FaultSurface::CounterMinor ||
                     f.surface == FaultSurface::CounterMajor) &&
                    f.target == idx) {
                    f.armed = true;
                }
            }
        } else if (type == MetadataType::TreeNode && !write) {
            for (auto &f : faults_) {
                if (f.outcome == Outcome::Active &&
                    f.surface == FaultSurface::TreeNode &&
                    f.target == addr) {
                    f.armed = true;
                }
            }
        }
    }

    // A tree-node write (immediate path update or a dirty-eviction
    // writeback) overwrites the stored node: pending corruption there
    // is masked, never consumed.
    if (type == MetadataType::TreeNode && write) {
        for (auto &f : faults_) {
            if (f.outcome == Outcome::Active &&
                f.surface == FaultSurface::TreeNode && f.target == addr) {
                resolve(f, Outcome::Masked);
                repair(f); // the writeback installs the clean node
            }
        }
    }

    if (!hit)
        return;

    // Resident-line consumption first: a corrupted cached line read is
    // silent by construction (the cache is inside the trust boundary —
    // nothing re-verifies it); a write overwrites the corruption.
    for (auto &f : faults_) {
        if (f.outcome == Outcome::Active &&
            f.surface == FaultSurface::MdCacheLine && f.target == addr) {
            resolve(f, write ? Outcome::Masked : Outcome::Silent);
        }
    }

    // Then install pending metadata-cache faults on this resident line.
    for (auto &state : specs_) {
        if (!state.armedForResident)
            continue;
        state.armedForResident = false;
        Injected f;
        f.id = faults_.size();
        f.kind = state.spec.kind;
        f.surface = FaultSurface::MdCacheLine;
        f.classId = state.spec.classId();
        f.atRequest = requestIndex_ ? requestIndex_ - 1 : 0;
        f.target = addr;
        registerClass(f.classId);
        faults_.push_back(std::move(f));
    }
}

void
FaultInjector::onCounterVerify(Addr counter_block_addr)
{
    ++verifies_;
    const std::uint64_t idx = MetadataLayout::indexOf(counter_block_addr);
    if (tree_.verifyCounter(counter_block_addr, committedDigest(idx)))
        return;

    // The real verify path flagged a mismatch: every active fault whose
    // corruption lies on this path is detected. The latency is measured
    // against the request counter, which already advanced past the
    // injection request (same-request detection = 0).
    const auto path = layout_.treePathForCounter(counter_block_addr);
    const std::uint64_t now =
        requestIndex_ ? requestIndex_ - 1 : 0;
    for (auto &f : faults_) {
        if (f.outcome != Outcome::Active)
            continue;
        bool on_path = false;
        if ((f.surface == FaultSurface::CounterMinor ||
             f.surface == FaultSurface::CounterMajor) &&
            f.target == idx) {
            on_path = true;
        } else if (f.surface == FaultSurface::TreeNode) {
            on_path = std::find(path.begin(), path.end(),
                                static_cast<Addr>(f.target)) != path.end();
        }
        if (!on_path)
            continue;
        resolve(f, Outcome::Detected);
        f.resolvedAt = now;
        repair(f);
    }
}

void
FaultInjector::onDataMacCheck(Addr data_addr)
{
    ++macChecks_;
    const std::uint64_t blk = blockIndex(blockAlign(data_addr));
    const std::uint64_t recomputed =
        macFn(blk, dataStored(blk), mirror_.read(data_addr));
    const bool mismatch = recomputed != storedMac(blk);

    for (auto &f : faults_) {
        if (f.outcome != Outcome::Active || f.target != blk)
            continue;
        if (f.surface != FaultSurface::Data &&
            f.surface != FaultSurface::Mac) {
            continue;
        }
        if (plan_.macCheckEnabled && mismatch) {
            resolve(f, Outcome::Detected);
            f.resolvedAt = requestIndex_ ? requestIndex_ - 1 : 0;
            repair(f);
        } else {
            // Consumed without an effective check; silent at the next
            // request boundary.
            f.armed = true;
        }
    }
}

void
FaultInjector::commitCounterBlock(Addr counter_block_addr)
{
    const std::uint64_t idx = MetadataLayout::indexOf(counter_block_addr);
    const auto path = layout_.treePathForCounter(counter_block_addr);

    // The write overwrites pending corruption of this counter block and
    // of every tree node on its update path.
    for (auto &f : faults_) {
        if (f.outcome != Outcome::Active)
            continue;
        if ((f.surface == FaultSurface::CounterMinor ||
             f.surface == FaultSurface::CounterMajor) &&
            f.target == idx) {
            resolve(f, Outcome::Masked);
        } else if (f.surface == FaultSurface::TreeNode &&
                   std::find(path.begin(), path.end(),
                             static_cast<Addr>(f.target)) != path.end()) {
            resolve(f, Outcome::Masked);
        }
    }

    for (const Addr node : path)
        treePrev_[node] = tree_.nodeDigest(node);
    ctrDigestPrev_[idx] = committedDigest(idx);
    const std::uint64_t digest = cleanDigest(counter_block_addr);
    ctrDigest_[idx] = digest;
    tree_.updateCounter(counter_block_addr, digest);
}

void
FaultInjector::onWriteCommitted(const MemoryRequest &req)
{
    const std::uint64_t blk = blockIndex(blockAlign(req.addr));

    for (auto &f : faults_) {
        if (f.outcome == Outcome::Active && f.target == blk &&
            (f.surface == FaultSurface::Data ||
             f.surface == FaultSurface::Mac)) {
            resolve(f, Outcome::Masked);
        }
    }

    dataPrev_[blk] = dataStored(blk);
    macPrev_[blk] = storedMac(blk);
    const std::uint64_t version = ++dataClean_[blk];
    dataOf_[blk] = version;
    mirror_.onBlockWrite(req.addr);
    macOf_[blk] = macFn(blk, version, mirror_.read(req.addr));

    commitCounterBlock(layout_.counterBlockAddr(req.addr));
}

void
FaultInjector::finalScrub()
{
    // Faults consumed by the tail request resolve as silent first.
    for (auto &f : faults_) {
        if (f.outcome == Outcome::Active && f.armed) {
            resolve(f, Outcome::Silent);
            repair(f);
        }
    }

    for (auto &f : faults_) {
        if (f.outcome != Outcome::Active)
            continue;
        switch (f.surface) {
          case FaultSurface::CounterMinor:
          case FaultSurface::CounterMajor: {
            ++verifies_;
            const Addr ctr = MetadataLayout::encode(
                MetadataType::Counter, 0, f.target);
            if (!tree_.verifyCounter(ctr, committedDigest(f.target))) {
                resolve(f, Outcome::Detected);
                repair(f);
            } else {
                resolve(f, Outcome::Dormant);
            }
            break;
          }
          case FaultSurface::TreeNode: {
            ++verifies_;
            const std::uint64_t idx =
                MetadataLayout::indexOf(f.probeCtr);
            if (!tree_.verifyCounter(f.probeCtr, committedDigest(idx))) {
                resolve(f, Outcome::Detected);
                repair(f);
            } else {
                resolve(f, Outcome::Dormant);
            }
            break;
          }
          case FaultSurface::Data:
          case FaultSurface::Mac: {
            if (!plan_.macCheckEnabled) {
                resolve(f, Outcome::Dormant);
                break;
            }
            ++macChecks_;
            const Addr addr = static_cast<Addr>(f.target) * kBlockSize;
            const std::uint64_t recomputed =
                macFn(f.target, dataStored(f.target), mirror_.read(addr));
            if (recomputed != storedMac(f.target)) {
                resolve(f, Outcome::Detected);
                repair(f);
            } else {
                resolve(f, Outcome::Dormant);
            }
            break;
          }
          case FaultSurface::MdCacheLine:
            resolve(f, Outcome::Dormant);
            break;
        }
    }
}

FaultReport
FaultInjector::report() const
{
    FaultReport rep;
    rep.requests = requestIndex_;
    rep.verifies = verifies_;
    rep.macChecks = macChecks_;
    for (const auto &id : classOrder_)
        rep.classes.emplace_back(id, FaultClassStats{});
    for (const auto &f : faults_) {
        FaultClassStats *stats = nullptr;
        for (auto &[id, s] : rep.classes) {
            if (id == f.classId) {
                stats = &s;
                break;
            }
        }
        if (!stats)
            continue;
        ++stats->injected;
        switch (f.outcome) {
          case Outcome::Detected: {
            ++stats->detected;
            const std::uint64_t latency =
                f.resolvedAt >= f.atRequest ? f.resolvedAt - f.atRequest
                                            : 0;
            stats->latencySum += latency;
            stats->latencyMax = std::max(stats->latencyMax, latency);
            break;
          }
          case Outcome::Silent:
            ++stats->silent;
            break;
          case Outcome::Masked:
            ++stats->masked;
            break;
          case Outcome::Dormant:
          case Outcome::Active: // defensive: scrub resolves everything
            ++stats->dormant;
            break;
        }
    }
    return rep;
}

std::string
FaultInjector::auditMirror(const std::vector<Addr> &probe_addrs) const
{
    for (const Addr addr : probe_addrs) {
        const CounterValue live = ctl_.counters().read(addr);
        const CounterValue mine = mirror_.read(addr);
        if (!(live == mine)) {
            return "counter mismatch at " + hex(addr) + ": controller (" +
                   std::to_string(live.major) + "," +
                   std::to_string(live.minor) + ") vs mirror (" +
                   std::to_string(mine.major) + "," +
                   std::to_string(mine.minor) + ")";
        }
    }
    if (ctl_.counters().pageOverflows() != mirror_.pageOverflows()) {
        return "page-overflow tallies diverge: controller " +
               std::to_string(ctl_.counters().pageOverflows()) +
               " vs mirror " + std::to_string(mirror_.pageOverflows());
    }
    return "";
}

} // namespace maps::fault
