/**
 * @file
 * maps::fault — deterministic fault-injection campaigns against the
 * secure-memory model.
 *
 * MAPS reproduces a *secure* memory simulator; this layer is the proof
 * that the modeled protection actually protects. A FaultPlan declares
 * seeded, trigger-based injections (at request N, at data address A, or
 * with probability p per request) of bit-flips and stale replays into
 * every metadata surface: data blocks, minor/major encryption counters,
 * data-MAC lines, integrity-tree nodes, and metadata-cache contents.
 * A FaultInjector attaches to a SecureMemoryController as its
 * SecureMemoryFaultObserver, applies the corruptions to a functional
 * tamper model (mirror counters, a real IntegrityTree, MAC and data
 * images), and classifies every injected fault by what the controller's
 * *real verify path* subsequently does with it:
 *
 *   detected  — a tree verification or MAC check flagged the mismatch
 *               (the fault is then "repaired" so the campaign can keep
 *               counting later injections);
 *   silent    — the corrupted state was fetched and consumed by a
 *               request without any verification catching it (for
 *               covered surfaces this indicates a broken verify path —
 *               e.g. the check_mutants skip-tree-verify bug);
 *   masked    — the corruption was overwritten by a later write before
 *               anything consumed it;
 *   dormant   — never consumed nor overwritten by the end of the run
 *               (finalScrub() resolves these through one last sweep of
 *               the verifiable surfaces).
 *
 * Detection latency is measured in requests between injection and the
 * verify failure. Everything is seeded: a campaign at a fixed seed and
 * scale reproduces its coverage matrix byte for byte.
 *
 * Modeling notes (see docs/FAULTS.md): verification is path-complete
 * (a functional verify walks leaf to root even when the timing walk
 * stops at a cached ancestor), and write commits refresh the functional
 * image immediately (the timing model's lazy writeback is approximated
 * at commit time). Metadata-cache faults corrupt trusted on-chip SRAM,
 * which tree+MAC verification can never detect — the class exists to
 * demonstrate exactly that trust boundary.
 */
#ifndef MAPS_FAULT_FAULT_HPP
#define MAPS_FAULT_FAULT_HPP

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "secmem/controller.hpp"
#include "secmem/counter_store.hpp"
#include "secmem/fault_hooks.hpp"
#include "secmem/integrity_tree.hpp"
#include "util/rng.hpp"

namespace maps::fault {

/** How a fault perturbs its target. */
enum class FaultKind : std::uint8_t
{
    BitFlip = 0,     ///< flip bits in the stored value
    StaleReplay = 1, ///< replay the previous (stale) stored value
};

/** Which stored state the fault lands in. */
enum class FaultSurface : std::uint8_t
{
    Data = 0,         ///< a protected data block in memory
    CounterMinor = 1, ///< a per-block (minor) encryption counter
    CounterMajor = 2, ///< a per-page (major) encryption counter
    Mac = 3,          ///< a stored data-MAC entry
    TreeNode = 4,     ///< a stored integrity-tree node
    MdCacheLine = 5,  ///< a metadata-cache line (trusted on-chip SRAM)
};
inline constexpr unsigned kNumFaultSurfaces = 6;

const char *faultKindName(FaultKind k);
const char *faultSurfaceName(FaultSurface s);

/**
 * Is the surface covered by the modeled protection? Tree-covered
 * surfaces (counters, tree nodes) and MAC-covered surfaces (data, MAC
 * lines — when MAC checking is enabled) must never be consumed
 * silently; MdCacheLine is on-chip and by design uncovered.
 */
bool surfaceCovered(FaultSurface s, bool mac_check_enabled);

/** When a fault spec fires. */
struct FaultTrigger
{
    enum class Kind : std::uint8_t
    {
        AtRequest = 0,   ///< on the Nth request entering the controller
        AtAddress = 1,   ///< on the first request touching data block A
        PerRequest = 2,  ///< Bernoulli(p) draw on every request
    };
    Kind kind = Kind::AtRequest;
    std::uint64_t request = 0; ///< AtRequest: N (0-based request index)
    Addr addr = 0;             ///< AtAddress: data block address
    double probability = 0.0;  ///< PerRequest: p per request
};

/** One declared injection. */
struct FaultSpec
{
    FaultKind kind = FaultKind::BitFlip;
    FaultSurface surface = FaultSurface::Data;
    FaultTrigger trigger;
    /** Stop injecting from this spec after this many injections. */
    std::uint32_t limit = 1;

    /** Campaign class id, e.g. "flip:counter-minor". */
    std::string classId() const;
};

/**
 * A full campaign declaration.
 *
 * Spec grammar (one spec per string; see docs/FAULTS.md):
 *
 *   <kind>:<surface>@<trigger>
 *   kind    := flip | replay
 *   surface := data | counter-minor | counter-major | mac | tree | mdcache
 *   trigger := req=<N> | addr=<hex-or-dec> | p=<0..1>
 *
 * e.g. "flip:tree@req=120", "replay:counter-minor@p=0.001".
 */
struct FaultPlan
{
    std::vector<FaultSpec> specs;
    /** Base seed for every randomized decision in the injector. */
    std::uint64_t seed = 1;
    /**
     * Model the data-MAC check on the read path. Disabling it creates
     * the demonstrably *uncovered* data-tamper class the coverage
     * campaign reports.
     */
    bool macCheckEnabled = true;
    /**
     * Counter faults additionally corrupt the controller's live
     * CounterStore, so the maps::check shadow (when --check is active)
     * acts as a second, independent detector. The injector declares the
     * resulting shadow divergences as expected with maps::check.
     */
    bool tamperLiveCounters = false;
    /** Default injection limit for p= triggers parsed from strings. */
    std::uint32_t defaultProbLimit = 8;

    /**
     * Parse one spec string into @p out. Returns "" on success, the
     * error message otherwise.
     */
    static std::string parseSpec(const std::string &text, FaultSpec &out);
    /** Parse and append; fatal-free, returns error or "". */
    std::string add(const std::string &text);
};

/** Aggregate outcome counts for one fault class. */
struct FaultClassStats
{
    std::uint64_t injected = 0;
    std::uint64_t detected = 0;
    std::uint64_t silent = 0;
    std::uint64_t masked = 0;
    std::uint64_t dormant = 0;
    /** Sum/max of detection latencies (requests), over detected. */
    std::uint64_t latencySum = 0;
    std::uint64_t latencyMax = 0;

    double avgLatency() const
    {
        return detected ? static_cast<double>(latencySum) /
                              static_cast<double>(detected)
                        : 0.0;
    }
    /** Detection coverage over consumed-or-scrubbed faults. */
    double coverage() const
    {
        const std::uint64_t attributable = injected - masked;
        return attributable ? static_cast<double>(detected) /
                                  static_cast<double>(attributable)
                            : 1.0;
    }
};

/** End-of-campaign report. */
struct FaultReport
{
    /** Keyed by FaultSpec::classId(), first-injection order. */
    std::vector<std::pair<std::string, FaultClassStats>> classes;
    std::uint64_t requests = 0;
    std::uint64_t verifies = 0;
    std::uint64_t macChecks = 0;

    const FaultClassStats *find(const std::string &class_id) const;
    FaultClassStats totals() const;
};

/**
 * The injector. Construct over a controller, attach with
 * `controller.setFaultObserver(&injector)`, run the workload, then call
 * finalScrub() and read report().
 *
 * Thread-safety: an injector belongs to one simulation (one experiment
 * cell); it is not shared across threads.
 */
class FaultInjector final : public SecureMemoryFaultObserver
{
  public:
    FaultInjector(SecureMemoryController &controller, FaultPlan plan);

    // SecureMemoryFaultObserver
    void onRequest(const MemoryRequest &req) override;
    void onMetadataAccess(Addr addr, MetadataType type, bool write,
                          bool hit, bool fetched) override;
    void onCounterVerify(Addr counter_block_addr) override;
    void onDataMacCheck(Addr data_addr) override;
    void onWriteCommitted(const MemoryRequest &req) override;

    /**
     * End-of-run integrity sweep: one functional verify per still-active
     * fault on a verifiable surface, resolving it to detected; faults on
     * unverifiable surfaces stay dormant. Mirrors a memory scrubber.
     */
    void finalScrub();

    FaultReport report() const;

    /**
     * Self-audit: with live tampering off, the controller's functional
     * counters must equal the injector's clean mirror at all times.
     * Returns "" or a description of the first mismatch found over the
     * touched pages of @p probe_addrs.
     */
    std::string auditMirror(const std::vector<Addr> &probe_addrs) const;

    const FaultPlan &plan() const { return plan_; }

  private:
    enum class Outcome : std::uint8_t
    {
        Active = 0,
        Detected,
        Silent,
        Masked,
        Dormant,
    };

    struct Injected
    {
        std::uint64_t id = 0;
        FaultKind kind = FaultKind::BitFlip;
        FaultSurface surface = FaultSurface::Data;
        std::string classId;
        Outcome outcome = Outcome::Active;
        std::uint64_t atRequest = 0;
        /** Data block for Data/Mac; counter index for counters;
         * node address for TreeNode; metadata addr for MdCacheLine. */
        std::uint64_t target = 0;
        /** Counter block whose verify path covers the fault. */
        Addr probeCtr = kInvalidAddr;
        /** Pre-corruption value, for repair-on-detection. */
        std::uint64_t savedValue = 0;
        /** Data address whose live counter was tampered. */
        Addr liveAddr = kInvalidAddr;
        /** Live CounterStore value saved before tampering. */
        CounterValue savedLive{};
        bool tamperedLive = false;
        /** Fetched-from-memory this request, awaiting verification. */
        bool armed = false;
        /** Request index at resolution (latency = resolvedAt - atRequest). */
        std::uint64_t resolvedAt = 0;
    };

    struct SpecState
    {
        FaultSpec spec;
        std::uint32_t fired = 0;
        /** MdCacheLine: trigger observed, waiting for a resident line. */
        bool armedForResident = false;
    };

    SecureMemoryController &ctl_;
    const MetadataLayout &layout_;
    FaultPlan plan_;
    Rng rng_;

    /** Clean functional mirror (what the state *should* be). */
    CounterStore mirror_;
    /** Tree over the committed (possibly corrupted) counter digests. */
    IntegrityTree tree_;
    /** Committed digest per counter-block index. */
    std::unordered_map<std::uint64_t, std::uint64_t> ctrDigest_;
    /** Previous committed digest (stale-replay source). */
    std::unordered_map<std::uint64_t, std::uint64_t> ctrDigestPrev_;
    /** Pre-update digest of each tree node (stale-replay source). */
    std::unordered_map<Addr, std::uint64_t> treePrev_;
    /** Stored MAC per data block index. */
    std::unordered_map<std::uint64_t, std::uint64_t> macOf_;
    /** Previous committed MAC (stale-replay source). */
    std::unordered_map<std::uint64_t, std::uint64_t> macPrev_;
    /** Stored data "content" (version) per data block index. */
    std::unordered_map<std::uint64_t, std::uint64_t> dataOf_;
    /** Clean write-version per data block index. */
    std::unordered_map<std::uint64_t, std::uint64_t> dataClean_;
    /** Previous clean version (data stale-replay source). */
    std::unordered_map<std::uint64_t, std::uint64_t> dataPrev_;

    std::vector<SpecState> specs_;
    std::vector<Injected> faults_;
    std::vector<std::string> classOrder_;

    std::uint64_t requestIndex_ = 0;
    std::uint64_t verifies_ = 0;
    std::uint64_t macChecks_ = 0;
    MemoryRequest current_{};
    bool inRequest_ = false;

    void maybeInject(const MemoryRequest &req);
    void inject(SpecState &state, const MemoryRequest &req);
    void injectAt(SpecState &state, FaultSurface surface, Addr data_addr,
                  Addr md_target);
    void resolve(Injected &f, Outcome outcome);
    void repair(Injected &f);

    std::uint64_t committedDigest(std::uint64_t ctr_index) const;
    std::uint64_t cleanDigest(Addr counter_block_addr) const;
    /** Digest with one counter value perturbed (minor or major flip). */
    std::uint64_t corruptDigest(Addr counter_block_addr, Addr victim_blk,
                                FaultSurface surface,
                                std::uint64_t mask) const;
    /** Stored (possibly corrupted) data version / MAC for a block. */
    std::uint64_t dataStored(std::uint64_t block_index) const;
    std::uint64_t storedMac(std::uint64_t block_index) const;
    /** MAC over (block, data version, counter) — the functional HMAC. */
    std::uint64_t macFn(std::uint64_t block_index, std::uint64_t version,
                        const CounterValue &ctr) const;
    void commitCounterBlock(Addr counter_block_addr);

    void registerClass(const std::string &class_id);
};

} // namespace maps::fault

#endif // MAPS_FAULT_FAULT_HPP
