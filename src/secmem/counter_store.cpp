#include "secmem/counter_store.hpp"

#include "check/check.hpp"
#include "util/logging.hpp"

namespace maps {

namespace {

/** maps::check: a write must advance the counter by exactly one step. */
void
checkMonotonicBump(const CounterValue &before, const CounterValue &after,
                   bool page_overflow, CounterMode mode)
{
    check::countChecks();
    bool ok;
    if (mode == CounterMode::MonolithicSgx) {
        ok = after.major == before.major + 1;
    } else if (page_overflow) {
        ok = after.major == before.major + 1 && after.minor == 1;
    } else {
        ok = after.major == before.major &&
             after.minor == before.minor + 1;
    }
    if (!ok) {
        check::fail("secmem.counter",
                    "non-monotonic counter bump: (" +
                        std::to_string(before.major) + "," +
                        std::to_string(before.minor) + ") -> (" +
                        std::to_string(after.major) + "," +
                        std::to_string(after.minor) + ")" +
                        (page_overflow ? " [overflow]" : ""));
    }
}

} // namespace

CounterStore::CounterStore(const MetadataLayout &layout)
    : layout_(layout),
      minorLimit_((1u << 7) - 1) // 7-bit per-block counters (Table II)
{
}

CounterWriteResult
CounterStore::onBlockWrite(Addr data_addr)
{
    CounterWriteResult result;
    const bool checking = check::enabled();
    const bool stuck = checking && check::mutations().stuckCounter;
    const CounterValue before = checking ? read(data_addr)
                                         : CounterValue{};
    const CounterMode mode = layout_.config().counterMode;

    if (mode == CounterMode::MonolithicSgx) {
        std::uint64_t &ctr = sgxCounters_[blockIndex(data_addr)];
        if (!stuck) // seeded bug (check_mutants): drop the bump
            ++ctr;
        if (checking) {
            checkMonotonicBump(before, read(data_addr),
                               result.pageOverflow, mode);
        }
        return result; // 64-bit counters do not overflow in practice
    }

    PageCounters &page = pages_[pageIndex(data_addr)];
    const std::uint64_t block_in_page =
        blockIndex(data_addr) % kBlocksPerPage;
    std::uint8_t &minor = page.minors[block_in_page];
    if (stuck) {
        // Seeded bug (check_mutants): drop the bump entirely.
    } else if (minor >= minorLimit_) {
        // Per-block counter exhausted: bump the per-page counter and
        // reset every minor. All blocks in the page must be fetched and
        // re-encrypted under the new pad (§II-A).
        ++page.major;
        page.minors.fill(0);
        minor = 1;
        ++pageOverflows_;
        result.pageOverflow = true;
        result.blocksToReencrypt =
            static_cast<std::uint32_t>(kBlocksPerPage);
    } else {
        ++minor;
    }
    if (checking) {
        checkMonotonicBump(before, read(data_addr), result.pageOverflow,
                           mode);
    }
    return result;
}

void
CounterStore::tamper(Addr data_addr, const CounterValue &value)
{
    if (layout_.config().counterMode == CounterMode::MonolithicSgx) {
        sgxCounters_[blockIndex(data_addr)] = value.major;
        return;
    }
    PageCounters &page = pages_[pageIndex(data_addr)];
    page.major = value.major;
    page.minors[blockIndex(data_addr) % kBlocksPerPage] =
        static_cast<std::uint8_t>(value.minor & minorLimit_);
}

CounterValue
CounterStore::read(Addr data_addr) const
{
    CounterValue value;
    if (layout_.config().counterMode == CounterMode::MonolithicSgx) {
        const auto it = sgxCounters_.find(blockIndex(data_addr));
        if (it != sgxCounters_.end())
            value.major = it->second;
        return value;
    }
    const auto it = pages_.find(pageIndex(data_addr));
    if (it != pages_.end()) {
        value.major = it->second.major;
        value.minor =
            it->second.minors[blockIndex(data_addr) % kBlocksPerPage];
    }
    return value;
}

} // namespace maps
