#include "secmem/counter_store.hpp"

#include "util/logging.hpp"

namespace maps {

CounterStore::CounterStore(const MetadataLayout &layout)
    : layout_(layout),
      minorLimit_((1u << 7) - 1) // 7-bit per-block counters (Table II)
{
}

CounterWriteResult
CounterStore::onBlockWrite(Addr data_addr)
{
    CounterWriteResult result;

    if (layout_.config().counterMode == CounterMode::MonolithicSgx) {
        ++sgxCounters_[blockIndex(data_addr)];
        return result; // 64-bit counters do not overflow in practice
    }

    PageCounters &page = pages_[pageIndex(data_addr)];
    const std::uint64_t block_in_page =
        blockIndex(data_addr) % kBlocksPerPage;
    std::uint8_t &minor = page.minors[block_in_page];
    if (minor >= minorLimit_) {
        // Per-block counter exhausted: bump the per-page counter and
        // reset every minor. All blocks in the page must be fetched and
        // re-encrypted under the new pad (§II-A).
        ++page.major;
        page.minors.fill(0);
        minor = 1;
        ++pageOverflows_;
        result.pageOverflow = true;
        result.blocksToReencrypt =
            static_cast<std::uint32_t>(kBlocksPerPage);
    } else {
        ++minor;
    }
    return result;
}

CounterValue
CounterStore::read(Addr data_addr) const
{
    CounterValue value;
    if (layout_.config().counterMode == CounterMode::MonolithicSgx) {
        const auto it = sgxCounters_.find(blockIndex(data_addr));
        if (it != sgxCounters_.end())
            value.major = it->second;
        return value;
    }
    const auto it = pages_.find(pageIndex(data_addr));
    if (it != pages_.end()) {
        value.major = it->second.major;
        value.minor =
            it->second.minors[blockIndex(data_addr) % kBlocksPerPage];
    }
    return value;
}

} // namespace maps
