/**
 * @file
 * Functional Bonsai Merkle Tree.
 *
 * Maintains actual (simulated) hash values over the counter blocks so
 * tamper detection can be demonstrated and tested end to end. Hashes are
 * geometry-faithful 64-bit mixers, not cryptographic primitives — MAPS
 * studies access patterns, so only layout and update/verify structure
 * matter (DESIGN.md §1). Storage is sparse; untouched subtrees hash to a
 * deterministic "all-zero" value.
 */
#ifndef MAPS_SECMEM_INTEGRITY_TREE_HPP
#define MAPS_SECMEM_INTEGRITY_TREE_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "secmem/counter_store.hpp"
#include "secmem/layout.hpp"

namespace maps {

/**
 * The BMT over counter blocks. The root digest lives "on chip" (a member
 * of this class, conceptually in secure storage); every other node is in
 * (simulated, attackable) main memory represented by the node map.
 */
class IntegrityTree
{
  public:
    explicit IntegrityTree(const MetadataLayout &layout);

    /**
     * Recompute the path from a counter block to the root after its
     * counter block content changed.
     * @param counter_block_addr encoded counter-block address.
     * @param counter_block_digest digest of the new counter block value.
     */
    void updateCounter(Addr counter_block_addr,
                       std::uint64_t counter_block_digest);

    /**
     * Verify a counter block bottom-up against the on-chip root.
     * @return true if every hash on the path matches.
     */
    bool verifyCounter(Addr counter_block_addr,
                       std::uint64_t counter_block_digest) const;

    /** On-chip root digest. */
    std::uint64_t root() const { return root_; }

    /** Stored digest of a tree node (for tests / tamper injection). */
    std::uint64_t nodeDigest(Addr tree_node_addr) const;

    /** Corrupt a stored node, simulating a physical attack. */
    void tamperNode(Addr tree_node_addr, std::uint64_t new_digest);

    /** Digest helper also used for counter-block contents. */
    static std::uint64_t mix(std::uint64_t a, std::uint64_t b);

    /** Digest assumed for never-written counter blocks. */
    static constexpr std::uint64_t kDefaultCounterDigest =
        0xA0A0A0A0DEADBEEFull;

  private:
    const MetadataLayout &layout_;
    /** Digest of each stored tree node, keyed by encoded address. */
    std::unordered_map<Addr, std::uint64_t> nodes_;
    /** Leaf-input digests: digest of each counter block's content. */
    std::unordered_map<std::uint64_t, std::uint64_t> counterDigests_;
    std::uint64_t root_;

    /** Digest of a tree node computed from its children. */
    std::uint64_t computeNode(std::uint32_t level,
                              std::uint64_t index) const;
    std::uint64_t storedOrDefault(std::uint32_t level,
                                  std::uint64_t index) const;
    std::uint64_t defaultDigest(std::uint32_t level) const;
    std::uint64_t counterDigest(std::uint64_t counter_index) const;
};

} // namespace maps

#endif // MAPS_SECMEM_INTEGRITY_TREE_HPP
