#include "secmem/layout.hpp"

#include "util/bitops.hpp"
#include "util/logging.hpp"

namespace maps {

namespace {

// Address encoding: [type:4 | level:6 | index:48 | offset:6].
constexpr unsigned kIndexShift = kBlockShift;
constexpr unsigned kLevelShift = 54;
constexpr unsigned kTypeShift = 60;
constexpr std::uint64_t kIndexMask = (std::uint64_t{1} << 48) - 1;

// Type tags; 0 is reserved for plain data addresses so any address below
// 2^54 is unambiguously data.
constexpr std::uint64_t kTagCounter = 1;
constexpr std::uint64_t kTagTree = 2;
constexpr std::uint64_t kTagHash = 3;

std::uint64_t
tagFor(MetadataType type)
{
    switch (type) {
      case MetadataType::Counter:
        return kTagCounter;
      case MetadataType::TreeNode:
        return kTagTree;
      case MetadataType::Hash:
        return kTagHash;
      case MetadataType::Data:
        return 0;
    }
    return 0;
}

} // namespace

const char *
counterModeName(CounterMode mode)
{
    switch (mode) {
      case CounterMode::SplitPi:
        return "PI";
      case CounterMode::MonolithicSgx:
        return "SGX";
    }
    return "?";
}

void
LayoutConfig::validate() const
{
    fatalIf(protectedBytes < kPageSize,
            "protected memory must be at least one page");
    fatalIf(!isPow2(protectedBytes),
            "protected memory size must be a power of two");
    fatalIf(treeArity < 2 || !isPow2(treeArity),
            "tree arity must be a power of two >= 2");
}

MetadataLayout::MetadataLayout(LayoutConfig cfg) : cfg_(cfg)
{
    cfg_.validate();

    dataBlocks_ = cfg_.protectedBytes / kBlockSize;

    // One 64B counter block covers a 4KB page under the split-counter
    // organization (64 blocks x 64B), or treeArity blocks (512B) under
    // SGX's monolithic 8B counters.
    counterCoverage_ = cfg_.counterMode == CounterMode::SplitPi
                           ? kPageSize
                           : cfg_.treeArity * kBlockSize;
    counterBlocks_ = ceilDiv(cfg_.protectedBytes, counterCoverage_);

    // Eight 8B data HMACs per 64B block.
    hashBlocks_ = ceilDiv(dataBlocks_, cfg_.treeArity);

    // The BMT reduces counter blocks by the arity per level until one
    // block remains; that last block's hash is the on-chip root, so the
    // level holding a single block is still stored in memory, and the
    // recursion stops there.
    std::uint64_t blocks = counterBlocks_;
    while (blocks > 1) {
        blocks = ceilDiv(blocks, cfg_.treeArity);
        treeLevelBlocks_.push_back(blocks);
    }
    if (treeLevelBlocks_.empty()) {
        // Degenerate tiny memory: a single counter block, directly
        // verified by the on-chip root; keep one stored level so the
        // traversal logic stays uniform.
        treeLevelBlocks_.push_back(1);
    }
}

std::uint64_t
MetadataLayout::totalMetadataBlocks() const
{
    std::uint64_t total = counterBlocks_ + hashBlocks_;
    for (auto blocks : treeLevelBlocks_)
        total += blocks;
    return total;
}

std::uint64_t
MetadataLayout::treeBlockCoverage(std::uint32_t level) const
{
    panicIf(level >= numTreeLevels(), "tree level out of range");
    // A leaf (level 0) covers arity counter blocks; each upper level
    // multiplies by the arity.
    std::uint64_t coverage = counterCoverage_ * cfg_.treeArity;
    for (std::uint32_t l = 0; l < level; ++l)
        coverage *= cfg_.treeArity;
    return coverage;
}

std::uint64_t
MetadataLayout::counterBlockIndex(Addr data_addr) const
{
    panicIf(data_addr >= cfg_.protectedBytes,
            "data address outside the protected region");
    return data_addr / counterCoverage_;
}

std::uint64_t
MetadataLayout::hashBlockIndex(Addr data_addr) const
{
    panicIf(data_addr >= cfg_.protectedBytes,
            "data address outside the protected region");
    return blockIndex(data_addr) / cfg_.treeArity;
}

Addr
MetadataLayout::counterBlockAddr(Addr data_addr) const
{
    return encode(MetadataType::Counter, 0, counterBlockIndex(data_addr));
}

Addr
MetadataLayout::hashBlockAddr(Addr data_addr) const
{
    return encode(MetadataType::Hash, 0, hashBlockIndex(data_addr));
}

Addr
MetadataLayout::treeNodeAddr(std::uint32_t level, std::uint64_t index) const
{
    panicIf(level >= numTreeLevels(), "tree level out of range");
    panicIf(index >= treeLevelBlocks_[level], "tree index out of range");
    return encode(MetadataType::TreeNode, level, index);
}

Addr
MetadataLayout::treeLeafForCounter(Addr counter_block_addr) const
{
    panicIf(typeOf(counter_block_addr) != MetadataType::Counter,
            "expected a counter block address");
    const std::uint64_t leaf = indexOf(counter_block_addr) / cfg_.treeArity;
    return treeNodeAddr(0, leaf);
}

Addr
MetadataLayout::treeParent(Addr tree_node_addr) const
{
    panicIf(typeOf(tree_node_addr) != MetadataType::TreeNode,
            "expected a tree node address");
    const std::uint32_t level = levelOf(tree_node_addr);
    if (level + 1 >= numTreeLevels())
        return kInvalidAddr; // parent is the on-chip root
    return treeNodeAddr(level + 1, indexOf(tree_node_addr) / cfg_.treeArity);
}

std::vector<Addr>
MetadataLayout::treePathForCounter(Addr counter_block_addr) const
{
    std::vector<Addr> path;
    Addr node = treeLeafForCounter(counter_block_addr);
    while (node != kInvalidAddr) {
        path.push_back(node);
        node = treeParent(node);
    }
    return path;
}

MetadataType
MetadataLayout::typeOf(Addr metadata_addr)
{
    switch (metadata_addr >> kTypeShift) {
      case kTagCounter:
        return MetadataType::Counter;
      case kTagTree:
        return MetadataType::TreeNode;
      case kTagHash:
        return MetadataType::Hash;
      default:
        return MetadataType::Data;
    }
}

std::uint32_t
MetadataLayout::levelOf(Addr metadata_addr)
{
    return static_cast<std::uint32_t>(bits(metadata_addr, kLevelShift, 6));
}

std::uint64_t
MetadataLayout::indexOf(Addr metadata_addr)
{
    return (metadata_addr >> kIndexShift) & kIndexMask;
}

bool
MetadataLayout::isMetadataAddr(Addr addr)
{
    return (addr >> kTypeShift) != 0;
}

Addr
MetadataLayout::encode(MetadataType type, std::uint32_t level,
                       std::uint64_t index)
{
    panicIf(index > kIndexMask, "metadata index overflows the encoding");
    panicIf(level >= 64, "metadata level overflows the encoding");
    return (tagFor(type) << kTypeShift) |
           (static_cast<std::uint64_t>(level) << kLevelShift) |
           (index << kIndexShift);
}

} // namespace maps
