/**
 * @file
 * The unified metadata cache: one on-chip SRAM array that may hold
 * counters, data hashes and tree nodes (the paper's central artifact).
 *
 * Extra mechanisms over a plain cache:
 *  - a contents mask selecting which metadata types may be cached
 *    (Figure 1 compares counters-only / counters+hashes / all types);
 *  - partial writes (§IV-E): a hash write that misses may insert a
 *    placeholder block carrying only the written 8B hash, with per-hash
 *    valid bits; the fill read is saved iff the block completes before
 *    eviction;
 *  - way partitioning between counters and hashes (§V-C).
 */
#ifndef MAPS_SECMEM_METADATA_CACHE_HPP
#define MAPS_SECMEM_METADATA_CACHE_HPP

#include <array>
#include <memory>
#include <string>
#include <unordered_map>

#include "cache/cache.hpp"
#include "metrics/derived.hpp"
#include "metrics/metrics.hpp"
#include "secmem/layout.hpp"

namespace maps {

/** Partitioning schemes of Figure 7. */
enum class PartitionScheme : std::uint8_t
{
    None = 0,
    Static = 1,  ///< fixed counter/hash way split
    Dueling = 2, ///< set-dueling between two splits
};

/** Construction parameters for the metadata cache. */
struct MetadataCacheConfig
{
    std::uint64_t sizeBytes = 64_KiB; ///< Figure 6's evaluation point
    std::uint32_t assoc = 8;
    std::string policy = "plru";

    bool cacheCounters = true;
    bool cacheHashes = true;
    bool cacheTree = true;

    bool partialWrites = false;

    PartitionScheme partition = PartitionScheme::None;
    std::uint32_t staticCounterWays = 4;  ///< for Static
    std::uint32_t duelingSplitA = 2;      ///< for Dueling
    std::uint32_t duelingSplitB = 6;      ///< for Dueling

    std::uint64_t seed = 1;

    /** Convenience: mask for Figure 1's three configurations. */
    static MetadataCacheConfig countersOnly(std::uint64_t size);
    static MetadataCacheConfig countersAndHashes(std::uint64_t size);
    static MetadataCacheConfig allTypes(std::uint64_t size);
};

/** Result of a metadata cache access. */
struct MetadataCacheOutcome
{
    bool hit = false;
    /** Type not cacheable: the access bypassed the cache entirely. */
    bool bypassed = false;
    /** Fill read avoided by inserting a partial placeholder. */
    bool placeholderInserted = false;
    /** Memory reads needed to complete a partial line (0 or 1). */
    std::uint32_t completionReads = 0;

    /** Eviction caused by the fill, if any. */
    bool evictedValid = false;
    Addr evictedAddr = kInvalidAddr;
    MetadataType evictedType = MetadataType::Counter;
    bool evictedDirty = false;
    /** Evicted line was a partial hash block with missing hashes. */
    bool evictedIncomplete = false;
};

/**
 * Per-type hit/miss statistics (indexed by MetadataType). Monotonic —
 * never reset; windowed readings come from metrics::Registry phase
 * snapshots.
 */
struct MetadataCacheStats
{
    std::array<std::uint64_t, kNumMetadataTypes> accesses{};
    std::array<std::uint64_t, kNumMetadataTypes> hits{};
    std::array<std::uint64_t, kNumMetadataTypes> misses{};
    std::array<std::uint64_t, kNumMetadataTypes> bypasses{};
    std::uint64_t placeholderInserts = 0;
    std::uint64_t partialCompletions = 0;
    std::uint64_t incompleteEvictions = 0;
    std::uint64_t prefetchInserts = 0;

    std::uint64_t totalMisses() const
    {
        std::uint64_t acc = 0;
        for (auto m : misses)
            acc += m;
        return acc;
    }
    std::uint64_t totalAccesses() const
    {
        std::uint64_t acc = 0;
        for (auto a : accesses)
            acc += a;
        return acc;
    }

    /**
     * Metadata misses (+ bypasses: they always cost a memory access)
     * per kilo-instruction.
     */
    double mpki(InstCount instructions) const
    {
        std::uint64_t missed = totalMisses();
        for (auto b : bypasses)
            missed += b;
        return metrics::perKiloInstructions(missed, instructions);
    }
};

/** metrics::Registry enumeration protocol (attach / measureView). */
template <typename Fn>
void
forEachCounter(MetadataCacheStats &s, Fn &&fn)
{
    static constexpr const char *kTypeSlug[kNumMetadataTypes] = {
        "counter", "tree", "hash"};
    for (unsigned t = 0; t < kNumMetadataTypes; ++t) {
        const std::string slug = kTypeSlug[t];
        fn(slug + ".accesses", s.accesses[t]);
        fn(slug + ".hits", s.hits[t]);
        fn(slug + ".misses", s.misses[t]);
        fn(slug + ".bypasses", s.bypasses[t]);
    }
    fn("placeholder_inserts", s.placeholderInserts);
    fn("partial_completions", s.partialCompletions);
    fn("incomplete_evictions", s.incompleteEvictions);
    fn("prefetch_inserts", s.prefetchInserts);
}

/**
 * Unified metadata cache. Wraps SetAssociativeCache with metadata-type
 * awareness. A disabled type's accesses are reported as bypasses and the
 * array is untouched.
 */
class MetadataCache
{
  public:
    /** @param policy optional override policy (else built from config). */
    explicit MetadataCache(MetadataCacheConfig cfg,
                           std::unique_ptr<ReplacementPolicy> policy
                           = nullptr);

    /**
     * Access one metadata block.
     * @param addr      encoded metadata block address.
     * @param type      the block's metadata type.
     * @param write     update (marks dirty).
     * @param sub_index which 8B hash within the block (partial writes).
     */
    MetadataCacheOutcome access(Addr addr, MetadataType type, bool write,
                                std::uint32_t sub_index = 0);

    /**
     * Insert a block without demand-access accounting (metadata
     * prefetching). Returns hit=true if already resident, bypassed if
     * the type is not cacheable; otherwise inserts clean and reports
     * any eviction exactly like a demand fill.
     */
    MetadataCacheOutcome prefetchInsert(Addr addr, MetadataType type);

    /** Hit test without side effects (false for bypassed types). */
    bool probe(Addr addr, MetadataType type) const;

    bool typeCacheable(MetadataType type) const;

    const MetadataCacheConfig &config() const { return cfg_; }
    const MetadataCacheStats &stats() const { return stats_; }

    /**
     * Register the per-type stats (prefix.mdcache.*) and the underlying
     * SRAM array's counters (prefix.mdcache.array.*).
     */
    void attachMetrics(metrics::Registry &registry,
                       const std::string &prefix);

    /** Underlying array (for inspection in tests). */
    const SetAssociativeCache &array() const { return *cache_; }
    /** Mutable array access (maps::check shadow attachment). */
    SetAssociativeCache &arrayMut() { return *cache_; }

    /** Metadata misses per kilo-instruction given an instruction count. */
    double mpki(InstCount instructions) const;

    /** Active dueling split (counter ways), if partition == Dueling. */
    std::uint32_t activeDuelingSplit() const;

  private:
    MetadataCacheConfig cfg_;
    std::unique_ptr<SetAssociativeCache> cache_;
    /** Valid-bit masks for resident partial hash blocks. */
    std::unordered_map<Addr, std::uint8_t> partialMasks_;
    MetadataCacheStats stats_;
    SetDuelingPartition *dueling_ = nullptr;
};

} // namespace maps

#endif // MAPS_SECMEM_METADATA_CACHE_HPP
