/**
 * @file
 * Metadata address-space geometry for secure memory.
 *
 * Two organizations from the paper's Table II:
 *
 *  - PoisonIvy (PI) split counters: one 8B per-page counter plus 64 7-bit
 *    per-block counters per 64B counter block => a counter block covers a
 *    4KB page of data.
 *  - Intel SGX monolithic counters: eight 8B per-block counters per 64B
 *    counter block => a counter block covers 512B of data.
 *
 * In both, data-hash blocks hold eight 8B HMACs covering 512B of data,
 * and the Bonsai Merkle Tree is an arity-8 hash tree over the counter
 * blocks whose root stays on chip (never stored, never fetched).
 *
 * Metadata lives in a tagged 64-bit address space so one unified cache
 * can hold every type:  [type:4 | level:6 | blockIndex:48 | offset:6].
 */
#ifndef MAPS_SECMEM_LAYOUT_HPP
#define MAPS_SECMEM_LAYOUT_HPP

#include <cstdint>
#include <vector>

#include "trace/record.hpp"
#include "util/types.hpp"

namespace maps {

/** Counter organization (Table II). */
enum class CounterMode : std::uint8_t
{
    SplitPi = 0,      ///< 8B/page + 64 x 7b/block (PoisonIvy [12])
    MonolithicSgx = 1 ///< 8 x 8B per block (Intel SGX [1])
};

const char *counterModeName(CounterMode mode);

/** Configuration of the protected region. */
struct LayoutConfig
{
    /** Bytes of protected data memory (power of two, >= one page). */
    std::uint64_t protectedBytes = 4_GiB;
    CounterMode counterMode = CounterMode::SplitPi;
    /** Integrity-tree arity (hashes per 64B tree block). */
    std::uint32_t treeArity = 8;

    void validate() const;
};

/**
 * Pure geometry: block counts, address mapping between data addresses and
 * metadata block addresses, and tree parent/child arithmetic. Stateless
 * after construction; shared by the controller, the functional tree, and
 * the analyzers.
 */
class MetadataLayout
{
  public:
    explicit MetadataLayout(LayoutConfig cfg = {});

    const LayoutConfig &config() const { return cfg_; }

    /// @name Block counts
    /// @{
    std::uint64_t numDataBlocks() const { return dataBlocks_; }
    std::uint64_t numCounterBlocks() const { return counterBlocks_; }
    std::uint64_t numHashBlocks() const { return hashBlocks_; }
    /** Stored tree levels (level 0 = leaves; the root is on chip). */
    std::uint32_t numTreeLevels() const
    {
        return static_cast<std::uint32_t>(treeLevelBlocks_.size());
    }
    /** Stored blocks at a tree level. */
    std::uint64_t treeLevelBlockCount(std::uint32_t level) const
    {
        return treeLevelBlocks_[level];
    }
    /** Total metadata blocks of every type. */
    std::uint64_t totalMetadataBlocks() const;
    /// @}

    /// @name Coverage (Table II's "data protected")
    /// @{
    /** Data bytes covered by one 64B counter block (4KB PI / 512B SGX). */
    std::uint64_t counterBlockCoverage() const { return counterCoverage_; }
    /** Data bytes covered by one 64B hash block (512B). */
    std::uint64_t hashBlockCoverage() const
    {
        return cfg_.treeArity * kBlockSize;
    }
    /** Data bytes covered by one tree block at a level. */
    std::uint64_t treeBlockCoverage(std::uint32_t level) const;
    /// @}

    /// @name Address mapping (data address -> metadata block address)
    /// @{
    Addr counterBlockAddr(Addr data_addr) const;
    Addr hashBlockAddr(Addr data_addr) const;
    Addr treeNodeAddr(std::uint32_t level, std::uint64_t index) const;

    /** Tree leaf (level 0) protecting a counter block. */
    Addr treeLeafForCounter(Addr counter_block_addr) const;
    /** Parent tree node of a tree node; kInvalidAddr when parent = root. */
    Addr treeParent(Addr tree_node_addr) const;

    /** Full verification path for a counter block: leaf up to (not
     * including) the on-chip root, bottom-up. */
    std::vector<Addr> treePathForCounter(Addr counter_block_addr) const;
    /// @}

    /// @name Metadata address encoding
    /// @{
    static MetadataType typeOf(Addr metadata_addr);
    static std::uint32_t levelOf(Addr metadata_addr);
    static std::uint64_t indexOf(Addr metadata_addr);
    static bool isMetadataAddr(Addr addr);
    static Addr encode(MetadataType type, std::uint32_t level,
                       std::uint64_t index);
    /// @}

    /** Index helpers (block index within its type/level). */
    std::uint64_t counterBlockIndex(Addr data_addr) const;
    std::uint64_t hashBlockIndex(Addr data_addr) const;

  private:
    LayoutConfig cfg_;
    std::uint64_t dataBlocks_;
    std::uint64_t counterBlocks_;
    std::uint64_t hashBlocks_;
    std::uint64_t counterCoverage_;
    std::vector<std::uint64_t> treeLevelBlocks_;
};

} // namespace maps

#endif // MAPS_SECMEM_LAYOUT_HPP
