#include "secmem/metadata_cache.hpp"

#include "util/logging.hpp"

namespace maps {

MetadataCacheConfig
MetadataCacheConfig::countersOnly(std::uint64_t size)
{
    MetadataCacheConfig cfg;
    cfg.sizeBytes = size;
    cfg.cacheCounters = true;
    cfg.cacheHashes = false;
    cfg.cacheTree = false;
    return cfg;
}

MetadataCacheConfig
MetadataCacheConfig::countersAndHashes(std::uint64_t size)
{
    MetadataCacheConfig cfg;
    cfg.sizeBytes = size;
    cfg.cacheCounters = true;
    cfg.cacheHashes = true;
    cfg.cacheTree = false;
    return cfg;
}

MetadataCacheConfig
MetadataCacheConfig::allTypes(std::uint64_t size)
{
    MetadataCacheConfig cfg;
    cfg.sizeBytes = size;
    return cfg;
}

MetadataCache::MetadataCache(MetadataCacheConfig cfg,
                             std::unique_ptr<ReplacementPolicy> policy)
    : cfg_(cfg)
{
    if (!policy)
        policy = makeReplacementPolicy(cfg_.policy, cfg_.seed);

    std::unique_ptr<WayPartition> partition;
    switch (cfg_.partition) {
      case PartitionScheme::None:
        break;
      case PartitionScheme::Static:
        partition = std::make_unique<StaticPartition>(
            cfg_.staticCounterWays);
        break;
      case PartitionScheme::Dueling: {
        auto dueling = std::make_unique<SetDuelingPartition>(
            cfg_.duelingSplitA, cfg_.duelingSplitB);
        dueling_ = dueling.get();
        partition = std::move(dueling);
        break;
      }
    }

    CacheGeometry geom;
    geom.sizeBytes = cfg_.sizeBytes;
    geom.assoc = cfg_.assoc;
    cache_ = std::make_unique<SetAssociativeCache>(
        geom, std::move(policy), std::move(partition));
}

bool
MetadataCache::typeCacheable(MetadataType type) const
{
    switch (type) {
      case MetadataType::Counter:
        return cfg_.cacheCounters;
      case MetadataType::Hash:
        return cfg_.cacheHashes;
      case MetadataType::TreeNode:
        return cfg_.cacheTree;
      case MetadataType::Data:
        return false;
    }
    return false;
}

MetadataCacheOutcome
MetadataCache::access(Addr addr, MetadataType type, bool write,
                      std::uint32_t sub_index)
{
    const auto type_idx = static_cast<std::size_t>(type);
    panicIf(type_idx >= kNumMetadataTypes,
            "metadata cache access with a non-metadata type");
    ++stats_.accesses[type_idx];

    MetadataCacheOutcome outcome;
    if (!typeCacheable(type)) {
        outcome.bypassed = true;
        ++stats_.bypasses[type_idx];
        return outcome;
    }

    const bool resident = cache_->probe(addr);

    // Partial-write placeholder path (§IV-E): a *write* miss to a hash
    // block may insert an empty block holding just the written hash.
    if (!resident && write && cfg_.partialWrites &&
        type == MetadataType::Hash) {
        const auto result = cache_->access(addr, true,
                                           static_cast<std::uint8_t>(type));
        panicIf(result.hit, "probe said miss but access hit");
        partialMasks_[addr] =
            static_cast<std::uint8_t>(1u << (sub_index & 7));
        ++stats_.placeholderInserts;
        ++stats_.misses[type_idx];
        outcome.placeholderInserted = true;
        // The placeholder insertion may itself evict a line.
        if (result.evictedValid) {
            outcome.evictedValid = true;
            outcome.evictedAddr = result.evictedAddr;
            outcome.evictedType =
                static_cast<MetadataType>(result.evictedType);
            outcome.evictedDirty = result.evictedDirty;
            const auto it = partialMasks_.find(result.evictedAddr);
            if (it != partialMasks_.end()) {
                outcome.evictedIncomplete = it->second != 0xFF;
                if (outcome.evictedIncomplete)
                    ++stats_.incompleteEvictions;
                partialMasks_.erase(it);
            }
        }
        return outcome;
    }

    const auto result =
        cache_->access(addr, write, static_cast<std::uint8_t>(type));
    outcome.hit = result.hit;
    if (result.hit)
        ++stats_.hits[type_idx];
    else
        ++stats_.misses[type_idx];

    // Partial-line bookkeeping for resident placeholder blocks.
    if (result.hit && type == MetadataType::Hash) {
        const auto it = partialMasks_.find(addr);
        if (it != partialMasks_.end()) {
            const std::uint8_t bit =
                static_cast<std::uint8_t>(1u << (sub_index & 7));
            if (write) {
                it->second |= bit;
                if (it->second == 0xFF) {
                    partialMasks_.erase(it);
                    ++stats_.partialCompletions;
                }
            } else if (!(it->second & bit)) {
                // The needed hash is not resident: one memory read
                // fetches the missing hashes and completes the block.
                outcome.completionReads = 1;
                partialMasks_.erase(it);
                ++stats_.partialCompletions;
            }
        }
    }

    if (result.evictedValid) {
        outcome.evictedValid = true;
        outcome.evictedAddr = result.evictedAddr;
        outcome.evictedType = static_cast<MetadataType>(result.evictedType);
        outcome.evictedDirty = result.evictedDirty;
        const auto it = partialMasks_.find(result.evictedAddr);
        if (it != partialMasks_.end()) {
            outcome.evictedIncomplete = it->second != 0xFF;
            if (outcome.evictedIncomplete)
                ++stats_.incompleteEvictions;
            partialMasks_.erase(it);
        }
    }
    return outcome;
}

MetadataCacheOutcome
MetadataCache::prefetchInsert(Addr addr, MetadataType type)
{
    MetadataCacheOutcome outcome;
    if (!typeCacheable(type)) {
        outcome.bypassed = true;
        return outcome;
    }
    if (cache_->probe(addr)) {
        outcome.hit = true;
        return outcome;
    }
    const auto result =
        cache_->access(addr, false, static_cast<std::uint8_t>(type));
    panicIf(result.hit, "probe said miss but prefetch insert hit");
    ++stats_.prefetchInserts;
    if (result.evictedValid) {
        outcome.evictedValid = true;
        outcome.evictedAddr = result.evictedAddr;
        outcome.evictedType = static_cast<MetadataType>(result.evictedType);
        outcome.evictedDirty = result.evictedDirty;
        const auto it = partialMasks_.find(result.evictedAddr);
        if (it != partialMasks_.end()) {
            outcome.evictedIncomplete = it->second != 0xFF;
            if (outcome.evictedIncomplete)
                ++stats_.incompleteEvictions;
            partialMasks_.erase(it);
        }
    }
    return outcome;
}

bool
MetadataCache::probe(Addr addr, MetadataType type) const
{
    return typeCacheable(type) && cache_->probe(addr);
}

void
MetadataCache::attachMetrics(metrics::Registry &registry,
                             const std::string &prefix)
{
    registry.attach(prefix + ".mdcache", stats_);
    registry.attach(prefix + ".mdcache.array", cache_->statsMut());
}

double
MetadataCache::mpki(InstCount instructions) const
{
    return stats_.mpki(instructions);
}

std::uint32_t
MetadataCache::activeDuelingSplit() const
{
    return dueling_ ? dueling_->activeSplit() : 0;
}

} // namespace maps
