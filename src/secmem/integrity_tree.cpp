#include "secmem/integrity_tree.hpp"

#include <vector>

#include "util/logging.hpp"

namespace maps {

namespace {

constexpr std::uint64_t kLeafSeed = 0x42D7A965B3C1F00Dull;
constexpr std::uint64_t kNodeSeed = 0x9D2C5680CA3E7B11ull;
constexpr std::uint64_t kRootSalt = 0x5851F42D4C957F2Dull;
constexpr std::uint64_t kZeroDigest =
    IntegrityTree::kDefaultCounterDigest;

} // namespace

std::uint64_t
IntegrityTree::mix(std::uint64_t a, std::uint64_t b)
{
    // A strong 64-bit mixer (splitmix-style finalizer over the pair).
    std::uint64_t z = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

IntegrityTree::IntegrityTree(const MetadataLayout &layout) : layout_(layout)
{
    // Root over a pristine (all-default) tree.
    const std::uint32_t top = layout_.numTreeLevels() - 1;
    root_ = mix(kRootSalt, computeNode(top, 0));
}

std::uint64_t
IntegrityTree::counterDigest(std::uint64_t counter_index) const
{
    const auto it = counterDigests_.find(counter_index);
    return it != counterDigests_.end() ? it->second : kZeroDigest;
}

std::uint64_t
IntegrityTree::defaultDigest(std::uint32_t level) const
{
    // Digest of an entirely untouched node at a tree level. Uniform per
    // level, so untouched subtrees verify without materialization.
    std::uint64_t digest = mix(kLeafSeed, kZeroDigest);
    const std::uint32_t arity = layout_.config().treeArity;
    for (std::uint32_t l = 0; l <= level; ++l) {
        std::uint64_t h = kNodeSeed;
        for (std::uint32_t c = 0; c < arity; ++c)
            h = mix(h, digest);
        digest = h;
    }
    return digest;
}

std::uint64_t
IntegrityTree::storedOrDefault(std::uint32_t level,
                               std::uint64_t index) const
{
    const Addr addr = layout_.treeNodeAddr(level, index);
    const auto it = nodes_.find(addr);
    return it != nodes_.end() ? it->second : defaultDigest(level);
}

std::uint64_t
IntegrityTree::computeNode(std::uint32_t level, std::uint64_t index) const
{
    const std::uint32_t arity = layout_.config().treeArity;
    const std::uint64_t first = index * arity;
    std::uint64_t h = kNodeSeed;
    if (level == 0) {
        for (std::uint32_t c = 0; c < arity; ++c) {
            const std::uint64_t child = first + c;
            const std::uint64_t child_digest =
                child < layout_.numCounterBlocks()
                    ? mix(kLeafSeed, counterDigest(child))
                    : mix(kLeafSeed, kZeroDigest);
            h = mix(h, child_digest);
        }
        return h;
    }
    for (std::uint32_t c = 0; c < arity; ++c) {
        const std::uint64_t child = first + c;
        const std::uint64_t child_digest =
            child < layout_.treeLevelBlockCount(level - 1)
                ? storedOrDefault(level - 1, child)
                : defaultDigest(level - 1);
        h = mix(h, child_digest);
    }
    return h;
}

std::uint64_t
IntegrityTree::nodeDigest(Addr tree_node_addr) const
{
    const auto it = nodes_.find(tree_node_addr);
    if (it != nodes_.end())
        return it->second;
    return storedOrDefault(MetadataLayout::levelOf(tree_node_addr),
                           MetadataLayout::indexOf(tree_node_addr));
}

void
IntegrityTree::tamperNode(Addr tree_node_addr, std::uint64_t new_digest)
{
    nodes_[tree_node_addr] = new_digest;
}

void
IntegrityTree::updateCounter(Addr counter_block_addr,
                             std::uint64_t counter_block_digest)
{
    panicIf(MetadataLayout::typeOf(counter_block_addr) !=
                MetadataType::Counter,
            "expected a counter block address");
    const std::uint64_t idx = MetadataLayout::indexOf(counter_block_addr);
    counterDigests_[idx] = counter_block_digest;

    // Recompute the stored path bottom-up.
    const std::uint32_t arity = layout_.config().treeArity;
    std::uint64_t node_index = idx / arity;
    for (std::uint32_t level = 0; level < layout_.numTreeLevels();
         ++level) {
        nodes_[layout_.treeNodeAddr(level, node_index)] =
            computeNode(level, node_index);
        node_index /= arity;
    }
    const std::uint32_t top = layout_.numTreeLevels() - 1;
    root_ = mix(kRootSalt, nodes_[layout_.treeNodeAddr(top, 0)]);
}

bool
IntegrityTree::verifyCounter(Addr counter_block_addr,
                             std::uint64_t counter_block_digest) const
{
    panicIf(MetadataLayout::typeOf(counter_block_addr) !=
                MetadataType::Counter,
            "expected a counter block address");
    const std::uint64_t idx = MetadataLayout::indexOf(counter_block_addr);
    const std::uint32_t arity = layout_.config().treeArity;

    // Level 0: recompute the leaf from the claimed counter digest plus
    // the trusted sibling digests, and compare to the stored leaf.
    {
        const std::uint64_t leaf_index = idx / arity;
        const std::uint64_t first = leaf_index * arity;
        std::uint64_t h = kNodeSeed;
        for (std::uint32_t c = 0; c < arity; ++c) {
            const std::uint64_t child = first + c;
            std::uint64_t digest;
            if (child == idx) {
                digest = mix(kLeafSeed, counter_block_digest);
            } else if (child < layout_.numCounterBlocks()) {
                digest = mix(kLeafSeed, counterDigest(child));
            } else {
                digest = mix(kLeafSeed, kZeroDigest);
            }
            h = mix(h, digest);
        }
        if (h != storedOrDefault(0, leaf_index))
            return false;
    }

    // Upper levels: recompute each stored node from its (stored)
    // children and compare; finally compare against the on-chip root.
    std::uint64_t node_index = idx / arity;
    for (std::uint32_t level = 1; level < layout_.numTreeLevels();
         ++level) {
        node_index /= arity;
        if (computeNode(level, node_index) !=
            storedOrDefault(level, node_index)) {
            return false;
        }
    }
    const std::uint32_t top = layout_.numTreeLevels() - 1;
    return mix(kRootSalt, storedOrDefault(top, 0)) == root_;
}

} // namespace maps
