/**
 * @file
 * Observer interface the SecureMemoryController reports its
 * security-relevant events through — the attachment point for the
 * maps::fault injection layer (src/fault/).
 *
 * The controller is a timing model; tamper detection is demonstrated by
 * a *functional* model (mirror counters + integrity tree + MAC image)
 * that an observer maintains on the side. For that model to prove the
 * controller's verify path actually covers what it claims, the observer
 * must see, in hardware order:
 *
 *  - every request entering the controller (injection trigger points),
 *  - every metadata-cache access with its hit/bypass outcome (a miss or
 *    bypass is a fetch from attackable memory — the moment corrupted
 *    state is *consumed*),
 *  - every counter verification the controller performs (the real
 *    verify path: traverseTree), so a fetch without a matching verify
 *    is observable as silent corruption,
 *  - every data-MAC check on the read path,
 *  - every functional write commit (counter bump + MAC/data update —
 *    the moment pending corruption of those locations is overwritten).
 *
 * The interface lives in secmem (not fault) so the controller does not
 * depend on the fault library; a null observer costs one branch per
 * event site.
 */
#ifndef MAPS_SECMEM_FAULT_HOOKS_HPP
#define MAPS_SECMEM_FAULT_HOOKS_HPP

#include "trace/record.hpp"

namespace maps {

class SecureMemoryFaultObserver
{
  public:
    virtual ~SecureMemoryFaultObserver() = default;

    /** A request is entering the controller (before any processing). */
    virtual void onRequest(const MemoryRequest &req) = 0;

    /**
     * One metadata-cache access was performed. @p fetched is true when
     * the block came from (attackable) memory — a miss or a bypass.
     */
    virtual void onMetadataAccess(Addr addr, MetadataType type, bool write,
                                  bool hit, bool fetched) = 0;

    /**
     * The controller ran the integrity-tree verification for a counter
     * block fetched from memory (the real verify path).
     */
    virtual void onCounterVerify(Addr counter_block_addr) = 0;

    /** The read path checked the data MAC for a data block. */
    virtual void onDataMacCheck(Addr data_addr) = 0;

    /**
     * A write request committed functionally: counter bumped, data and
     * MAC images updated (and, lazily or not, the tree path refreshed).
     */
    virtual void onWriteCommitted(const MemoryRequest &req) = 0;
};

} // namespace maps

#endif // MAPS_SECMEM_FAULT_HOOKS_HPP
