/**
 * @file
 * SecureMemoryController: the memory encryption engine model.
 *
 * For every LLC-level request it generates the metadata traffic of
 * counter-mode encryption + Bonsai Merkle Tree integrity (§II):
 *
 *  read  @A: fetch data(A); fetch counter block (or hit the metadata
 *            cache); on a counter miss, traverse the tree upward until a
 *            cached (already-verified) ancestor or the on-chip root;
 *            fetch the data-hash block (or hit).
 *  write @A: bump A's counter (possible per-block overflow -> page
 *            re-encryption); update counter block, hash block and —
 *            lazily, on dirty counter eviction — the tree path; write
 *            the data block.
 *
 * Timing is transaction-level: decryption overlaps the data fetch
 * (counter-mode), verification is hidden when speculation [12] is on.
 * Disabling the metadata cache (or individual types) reproduces the
 * paper's no-cache and Figure-1 configurations.
 */
#ifndef MAPS_SECMEM_CONTROLLER_HPP
#define MAPS_SECMEM_CONTROLLER_HPP

#include <array>
#include <functional>
#include <memory>

#include "mem/memory_model.hpp"
#include "metrics/metrics.hpp"
#include "secmem/counter_store.hpp"
#include "secmem/metadata_cache.hpp"
#include "util/histogram.hpp"

namespace maps {

class SecureMemoryFaultObserver;

/** Categories of DRAM traffic for the energy/overhead breakdowns. */
enum class MemCategory : std::uint8_t
{
    Data = 0,
    Counter = 1,
    Hash = 2,
    Tree = 3,
    Reencrypt = 4,
};
inline constexpr unsigned kNumMemCategories = 5;
const char *memCategoryName(MemCategory c);

/** Controller configuration. */
struct SecureMemoryConfig
{
    LayoutConfig layout;
    MetadataCacheConfig cache;
    /** False disables the metadata cache entirely (all types bypass). */
    bool cacheEnabled = true;
    /** Speculative use of unverified data (PoisonIvy [12]). */
    bool speculation = true;
    /** Defer tree updates to dirty-counter eviction (needs the cache). */
    bool lazyTreeUpdate = true;
    /**
     * Spatial metadata prefetching (extension, §VI direction): on a
     * counter or hash demand miss, fetch the next block of the same
     * type into the metadata cache. Prefetched counters are verified
     * in the background like any other fetched counter.
     */
    bool prefetchNextMetadata = false;
    Cycles hashLatency = 40; ///< Table I: 40 cycles per hash
    Cycles aesLatency = 40;  ///< one-time-pad generation
};

/** Timing/traffic outcome for one request. */
struct RequestOutcome
{
    /** Critical-path latency for reads (0 for posted writes). */
    Cycles latency = 0;
    /** Background verification work (hidden when speculating). */
    Cycles verifyLatency = 0;
    /** DRAM block transfers triggered by this request. */
    std::uint32_t memAccesses = 0;
    bool counterHit = false;
    bool hashHit = false;
    std::uint32_t treeLevelsFetched = 0;
};

/**
 * Aggregate controller statistics. Monotonic — never reset; windowed
 * readings come from metrics::Registry phase snapshots.
 */
struct ControllerStats
{
    std::uint64_t readRequests = 0;
    std::uint64_t writeRequests = 0;
    std::array<std::uint64_t, kNumMemCategories> memReads{};
    std::array<std::uint64_t, kNumMemCategories> memWrites{};
    std::uint64_t treeLevelsFetched = 0;
    std::uint64_t pageOverflows = 0;
    std::uint64_t rootUpdates = 0;
    std::uint64_t cascadeTruncations = 0;
    std::uint64_t prefetchesIssued = 0;
    Cycles totalReadLatency = 0;
    Cycles totalVerifyLatency = 0;

    std::uint64_t requests() const { return readRequests + writeRequests; }
    std::uint64_t totalMemAccesses() const;
    std::uint64_t metadataMemAccesses() const;
    double avgReadLatency() const
    {
        return metrics::ratioOrZero(totalReadLatency, readRequests);
    }
};

/** metrics::Registry enumeration protocol (attach / measureView). */
template <typename Fn>
void
forEachCounter(ControllerStats &s, Fn &&fn)
{
    fn("requests.read", s.readRequests);
    fn("requests.write", s.writeRequests);
    static constexpr const char *kCategorySlug[kNumMemCategories] = {
        "data", "counter", "hash", "tree", "reencrypt"};
    for (unsigned c = 0; c < kNumMemCategories; ++c) {
        const std::string slug = std::string("mem.") + kCategorySlug[c];
        fn(slug + ".reads", s.memReads[c]);
        fn(slug + ".writes", s.memWrites[c]);
    }
    fn("tree.levels_fetched", s.treeLevelsFetched);
    fn("page_overflows", s.pageOverflows);
    fn("root_updates", s.rootUpdates);
    fn("cascade_truncations", s.cascadeTruncations);
    fn("prefetches", s.prefetchesIssued);
    fn("latency.read_cycles", s.totalReadLatency);
    fn("latency.verify_cycles", s.totalVerifyLatency);
}

/** The memory encryption engine. */
class SecureMemoryController
{
  public:
    /**
     * @param cfg    configuration (validated).
     * @param memory DRAM model; must outlive the controller.
     * @param policy optional replacement-policy override for the
     *               metadata cache (e.g. an oracle-driven MIN).
     */
    SecureMemoryController(SecureMemoryConfig cfg, MemoryModel &memory,
                           std::unique_ptr<ReplacementPolicy> policy
                           = nullptr);

    /** Service one LLC-level request. */
    RequestOutcome handleRequest(const MemoryRequest &req, Cycles now = 0);

    /**
     * Observe every metadata access *before* the cache (the stream the
     * paper characterizes). Tree accesses appear as the cache state
     * makes them occur; with the cache disabled, every counter access
     * yields a full root-ward traversal.
     */
    using MetadataTap = std::function<void(const MetadataAccess &)>;
    void setMetadataTap(MetadataTap tap) { tap_ = std::move(tap); }

    /**
     * Attach a fault-injection observer (maps::fault). The observer sees
     * every request, metadata-cache access outcome, tree verification
     * and functional write commit, in hardware order (fault_hooks.hpp).
     * Pass nullptr to detach. Must outlive the attachment.
     */
    void setFaultObserver(SecureMemoryFaultObserver *obs)
    {
        faultObs_ = obs;
    }

    /**
     * Corrupt the live counter state for a data block (fault injection
     * only; see CounterStore::tamper). Under --check the shadow model
     * will — by design — diverge on the next write to the block.
     */
    void tamperCounter(Addr data_addr, const CounterValue &value)
    {
        counters_.tamper(data_addr, value);
    }

    const ControllerStats &stats() const { return stats_; }

    /**
     * Register every controller counter under "secmem." — the request
     * and per-category DRAM traffic counters, the metadata cache
     * (secmem.mdcache.*), the functional counter store
     * (secmem.counters.*) and the read-latency distribution
     * (secmem.latency.read histogram).
     */
    void attachMetrics(metrics::Registry &registry);

    /** Distribution of per-request read latencies (whole run). */
    const Log2Histogram &readLatencyHistogram() const
    {
        return readLatencyHist_;
    }

    const MetadataLayout &layout() const { return layout_; }
    const CounterStore &counters() const { return counters_; }
    MetadataCache &metadataCache() { return *mdCache_; }
    const MetadataCache &metadataCache() const { return *mdCache_; }
    const SecureMemoryConfig &config() const { return cfg_; }

  private:
    SecureMemoryConfig cfg_;
    MetadataLayout layout_;
    MemoryModel &memory_;
    CounterStore counters_;
    std::unique_ptr<MetadataCache> mdCache_;
    MetadataTap tap_;
    SecureMemoryFaultObserver *faultObs_ = nullptr;
    ControllerStats stats_;
    Log2Histogram readLatencyHist_;

    /** Physical DRAM base of each metadata region. */
    std::array<Addr, kNumMemCategories> regionBase_{};

    RequestOutcome handleRead(const MemoryRequest &req, Cycles now);
    RequestOutcome handleWrite(const MemoryRequest &req, Cycles now);

    /** One DRAM block transfer; returns its latency. */
    Cycles memAccess(MemCategory category, Addr addr, bool write,
                     Cycles now, RequestOutcome &outcome);

    /** Map a (possibly metadata-encoded) address to DRAM space. */
    Addr physAddrOf(MemCategory category, Addr addr) const;

    /** Root-ward traversal after a counter fetch. Returns verify
     * cycles; fetched nodes are inserted into the cache. */
    Cycles traverseTree(Addr counter_block_addr, InstCount icount,
                        Cycles now, RequestOutcome &outcome);

    /** Immediate (non-lazy) tree path update after a counter write. */
    void writeTreePath(Addr counter_block_addr, InstCount icount,
                       Cycles now, RequestOutcome &outcome);

    /** Handle an eviction chain from a metadata cache fill. */
    void settleEviction(const MetadataCacheOutcome &first, InstCount icount,
                        Cycles now, RequestOutcome &outcome);

    /** Issue one tree-node *write* access through the cache. */
    MetadataCacheOutcome treeNodeWrite(Addr node_addr, InstCount icount,
                                       Cycles now, RequestOutcome &outcome);

    /** Prefetch the next same-type metadata block after a miss. */
    void prefetchNeighbor(Addr md_addr, MetadataType type,
                          InstCount icount, Cycles now,
                          RequestOutcome &outcome);

    void emitTap(Addr addr, MetadataType type, bool write,
                 std::uint8_t level, InstCount icount);

    /** maps::check: verify DRAM region ranges never overlap. */
    void checkRegionDisjointness(std::uint64_t tree_blocks) const;

    static MemCategory categoryOf(MetadataType type);
};

} // namespace maps

#endif // MAPS_SECMEM_CONTROLLER_HPP
