/**
 * @file
 * Functional encryption-counter state.
 *
 * Tracks the actual counter values used by counter-mode encryption so the
 * simulator models per-block counter overflow -> page re-encryption
 * (split-counter organization, §II-A). Storage is sparse: only touched
 * pages take space.
 */
#ifndef MAPS_SECMEM_COUNTER_STORE_HPP
#define MAPS_SECMEM_COUNTER_STORE_HPP

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "metrics/metrics.hpp"
#include "secmem/layout.hpp"

namespace maps {

/** What a counter bump caused. */
struct CounterWriteResult
{
    /** The per-block counter wrapped, bumping the per-page counter. */
    bool pageOverflow = false;
    /** Blocks that must be re-encrypted on overflow (page size / 64). */
    std::uint32_t blocksToReencrypt = 0;
};

/** A (major, minor) counter pair identifying a block's encryption pad. */
struct CounterValue
{
    std::uint64_t major = 0; ///< per-page (PI) or full (SGX) counter
    std::uint32_t minor = 0; ///< 7-bit per-block counter (PI only)

    bool operator==(const CounterValue &other) const = default;
};

/**
 * Sparse counter storage for either counter mode.
 *
 * SplitPi: 7-bit per-block minors with an 8B per-page major; a minor
 * overflow resets every minor in the page and increments the major
 * (requiring page re-encryption). MonolithicSgx: 64-bit per-block
 * counters that never overflow in simulated timescales.
 */
class CounterStore
{
  public:
    explicit CounterStore(const MetadataLayout &layout);

    /** Bump the counter for a data block being written back. */
    CounterWriteResult onBlockWrite(Addr data_addr);

    /** Current counter value for a data block (zero if never written). */
    CounterValue read(Addr data_addr) const;

    /**
     * Overwrite a block's counter with an arbitrary value, bypassing the
     * monotonic-bump bookkeeping. Fault injection only (maps::fault):
     * models an attacker (or soft error) corrupting counter state. Minor
     * values are truncated to the storage width.
     */
    void tamper(Addr data_addr, const CounterValue &value);

    /** Total per-page (major) overflows seen. */
    std::uint64_t pageOverflows() const { return pageOverflows_; }

    /**
     * Register the functional counters under @p prefix (e.g.
     * "secmem.counters.page_overflows"). The accounting audit checks
     * this against the controller's own overflow statistic.
     */
    void attachMetrics(metrics::Registry &registry,
                       const std::string &prefix)
    {
        registry.counter(prefix + ".page_overflows", &pageOverflows_);
    }

    /** Number of pages with any non-zero counter. */
    std::uint64_t touchedPages() const { return pages_.size(); }

    /** Maximum minor value before wrap (127 for 7-bit PI counters). */
    std::uint32_t minorLimit() const { return minorLimit_; }

  private:
    struct PageCounters
    {
        std::uint64_t major = 0;
        std::array<std::uint8_t, kBlocksPerPage> minors{};
    };

    const MetadataLayout &layout_;
    std::uint32_t minorLimit_;
    std::unordered_map<std::uint64_t, PageCounters> pages_;
    std::unordered_map<std::uint64_t, std::uint64_t> sgxCounters_;
    std::uint64_t pageOverflows_ = 0;
};

} // namespace maps

#endif // MAPS_SECMEM_COUNTER_STORE_HPP
