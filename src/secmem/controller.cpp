#include "secmem/controller.hpp"

#include <algorithm>
#include <deque>

#include "check/check.hpp"
#include "secmem/fault_hooks.hpp"
#include "util/logging.hpp"

namespace maps {

namespace {

/** Bound on lazy-update eviction chains; beyond it, remaining tree
 * writes go straight to memory (documented engineering safeguard). */
constexpr unsigned kMaxCascade = 256;

} // namespace

const char *
memCategoryName(MemCategory c)
{
    switch (c) {
      case MemCategory::Data:
        return "data";
      case MemCategory::Counter:
        return "counter";
      case MemCategory::Hash:
        return "hash";
      case MemCategory::Tree:
        return "tree";
      case MemCategory::Reencrypt:
        return "reencrypt";
    }
    return "?";
}

std::uint64_t
ControllerStats::totalMemAccesses() const
{
    std::uint64_t acc = 0;
    for (unsigned c = 0; c < kNumMemCategories; ++c)
        acc += memReads[c] + memWrites[c];
    return acc;
}

std::uint64_t
ControllerStats::metadataMemAccesses() const
{
    return totalMemAccesses() -
           memReads[static_cast<unsigned>(MemCategory::Data)] -
           memWrites[static_cast<unsigned>(MemCategory::Data)];
}

MemCategory
SecureMemoryController::categoryOf(MetadataType type)
{
    switch (type) {
      case MetadataType::Counter:
        return MemCategory::Counter;
      case MetadataType::Hash:
        return MemCategory::Hash;
      case MetadataType::TreeNode:
        return MemCategory::Tree;
      case MetadataType::Data:
        break;
    }
    return MemCategory::Data;
}

SecureMemoryController::SecureMemoryController(
    SecureMemoryConfig cfg, MemoryModel &memory,
    std::unique_ptr<ReplacementPolicy> policy)
    : cfg_(cfg),
      layout_(cfg.layout),
      memory_(memory),
      counters_(layout_)
{
    MetadataCacheConfig cache_cfg = cfg_.cache;
    if (!cfg_.cacheEnabled) {
        // A fully-bypassing cache unifies the no-cache code path.
        cache_cfg.cacheCounters = false;
        cache_cfg.cacheHashes = false;
        cache_cfg.cacheTree = false;
    }
    mdCache_ = std::make_unique<MetadataCache>(cache_cfg,
                                               std::move(policy));

    // Lay metadata regions above the protected data region in DRAM
    // space so the banked memory model sees realistic interleaving.
    Addr base = cfg_.layout.protectedBytes;
    regionBase_[static_cast<unsigned>(MemCategory::Data)] = 0;
    regionBase_[static_cast<unsigned>(MemCategory::Reencrypt)] = 0;
    regionBase_[static_cast<unsigned>(MemCategory::Counter)] = base;
    base += layout_.numCounterBlocks() * kBlockSize;
    regionBase_[static_cast<unsigned>(MemCategory::Tree)] = base;
    std::uint64_t tree_blocks = 0;
    for (std::uint32_t l = 0; l < layout_.numTreeLevels(); ++l)
        tree_blocks += layout_.treeLevelBlockCount(l);
    base += tree_blocks * kBlockSize;
    regionBase_[static_cast<unsigned>(MemCategory::Hash)] = base;

    if (check::enabled())
        checkRegionDisjointness(tree_blocks);
}

void
SecureMemoryController::checkRegionDisjointness(
    std::uint64_t tree_blocks) const
{
    struct Region
    {
        const char *name;
        Addr base;
        std::uint64_t bytes;
    };
    const Region regions[] = {
        {"data", 0, cfg_.layout.protectedBytes},
        {"counter",
         regionBase_[static_cast<unsigned>(MemCategory::Counter)],
         layout_.numCounterBlocks() * kBlockSize},
        {"tree", regionBase_[static_cast<unsigned>(MemCategory::Tree)],
         tree_blocks * kBlockSize},
        {"hash", regionBase_[static_cast<unsigned>(MemCategory::Hash)],
         layout_.numHashBlocks() * kBlockSize},
    };
    check::countChecks();
    for (const auto &a : regions) {
        for (const auto &b : regions) {
            if (&a == &b)
                continue;
            const bool overlap = a.base < b.base + b.bytes &&
                                 b.base < a.base + a.bytes;
            if (overlap) {
                check::fail("secmem.layout",
                            std::string("DRAM regions overlap: ") +
                                a.name + " and " + b.name);
            }
        }
    }
}

Addr
SecureMemoryController::physAddrOf(MemCategory category, Addr addr) const
{
    if (category == MemCategory::Data || category == MemCategory::Reencrypt)
        return blockAlign(addr);

    // Metadata addresses are encoded; linearize per region. Tree levels
    // are packed level by level.
    const std::uint64_t index = MetadataLayout::indexOf(addr);
    std::uint64_t offset = index;
    if (category == MemCategory::Tree) {
        const std::uint32_t level = MetadataLayout::levelOf(addr);
        for (std::uint32_t l = 0; l < level; ++l)
            offset += layout_.treeLevelBlockCount(l);
    }
    return regionBase_[static_cast<unsigned>(category)] +
           offset * kBlockSize;
}

Cycles
SecureMemoryController::memAccess(MemCategory category, Addr addr,
                                  bool write, Cycles now,
                                  RequestOutcome &outcome)
{
    const auto result =
        memory_.access(physAddrOf(category, addr), write, now);
    const auto idx = static_cast<unsigned>(category);
    if (write)
        ++stats_.memWrites[idx];
    else
        ++stats_.memReads[idx];
    ++outcome.memAccesses;
    return result.latency;
}

void
SecureMemoryController::emitTap(Addr addr, MetadataType type, bool write,
                                std::uint8_t level, InstCount icount)
{
    if (!tap_)
        return;
    MetadataAccess acc;
    acc.addr = addr;
    acc.type = type;
    acc.access = write ? AccessType::Write : AccessType::Read;
    acc.level = level;
    acc.icount = icount;
    tap_(acc);
}

RequestOutcome
SecureMemoryController::handleRequest(const MemoryRequest &req, Cycles now)
{
    panicIf(req.addr >= cfg_.layout.protectedBytes,
            "request outside the protected region");
    if (faultObs_)
        faultObs_->onRequest(req);
    if (req.kind == RequestKind::Read) {
        ++stats_.readRequests;
        return handleRead(req, now);
    }
    ++stats_.writeRequests;
    return handleWrite(req, now);
}

Cycles
SecureMemoryController::traverseTree(Addr counter_block_addr,
                                     InstCount icount, Cycles now,
                                     RequestOutcome &outcome)
{
    if (check::enabled() && check::mutations().skipTreeVerify) {
        // Seeded bug (check_mutants): fetched counters are used without
        // authenticating them against the tree.
        return 0;
    }
    // After the mutation gate on purpose: a skipped verification must
    // not announce itself, so fault campaigns classify it as silent.
    if (faultObs_)
        faultObs_->onCounterVerify(counter_block_addr);
    Cycles verify = 0;
    Addr node = layout_.treeLeafForCounter(counter_block_addr);
    while (node != kInvalidAddr) {
        const auto level =
            static_cast<std::uint8_t>(MetadataLayout::levelOf(node));
        emitTap(node, MetadataType::TreeNode, false, level, icount);
        const auto md =
            mdCache_->access(node, MetadataType::TreeNode, false);
        settleEviction(md, icount, now, outcome);
        if (faultObs_) {
            faultObs_->onMetadataAccess(node, MetadataType::TreeNode,
                                        false, md.hit, !md.hit);
        }
        if (md.hit) {
            // A cached node was verified when it was brought on chip:
            // the chain of trust ends here (one compare).
            verify += cfg_.hashLatency;
            return verify;
        }
        verify += memAccess(MemCategory::Tree, node, false, now, outcome) +
                  cfg_.hashLatency;
        ++outcome.treeLevelsFetched;
        ++stats_.treeLevelsFetched;
        node = layout_.treeParent(node);
    }
    // Reached the on-chip root: final compare.
    verify += cfg_.hashLatency;
    return verify;
}

void
SecureMemoryController::prefetchNeighbor(Addr md_addr, MetadataType type,
                                         InstCount icount, Cycles now,
                                         RequestOutcome &outcome)
{
    const std::uint64_t index = MetadataLayout::indexOf(md_addr);
    const std::uint64_t limit = type == MetadataType::Counter
                                    ? layout_.numCounterBlocks()
                                    : layout_.numHashBlocks();
    if (index + 1 >= limit)
        return;
    const Addr next = MetadataLayout::encode(type, 0, index + 1);
    const auto md = mdCache_->prefetchInsert(next, type);
    if (md.hit || md.bypassed)
        return;
    settleEviction(md, icount, now, outcome);
    ++stats_.prefetchesIssued;
    memAccess(type == MetadataType::Counter ? MemCategory::Counter
                                            : MemCategory::Hash,
              next, false, now, outcome);
    if (faultObs_)
        faultObs_->onMetadataAccess(next, type, false, false, true);
    // A prefetched counter must be verified before use; the walk runs
    // in the background alongside the demand verification.
    if (type == MetadataType::Counter)
        traverseTree(next, icount, now, outcome);
}

RequestOutcome
SecureMemoryController::handleRead(const MemoryRequest &req, Cycles now)
{
    RequestOutcome outcome;

    // Data fetch (the request itself).
    const Cycles data_lat =
        memAccess(MemCategory::Data, req.addr, false, now, outcome);

    // Counter (needed for the one-time pad).
    const Addr ctr_addr = layout_.counterBlockAddr(req.addr);
    emitTap(ctr_addr, MetadataType::Counter, false, 0, req.icount);
    const auto ctr_md =
        mdCache_->access(ctr_addr, MetadataType::Counter, false);
    settleEviction(ctr_md, req.icount, now, outcome);
    if (faultObs_) {
        faultObs_->onMetadataAccess(ctr_addr, MetadataType::Counter,
                                    false, ctr_md.hit, !ctr_md.hit);
    }
    Cycles ctr_lat = 0;
    Cycles verify = 0;
    outcome.counterHit = ctr_md.hit;
    if (!ctr_md.hit) {
        ctr_lat =
            memAccess(MemCategory::Counter, ctr_addr, false, now, outcome);
        // Freshly fetched counters must be verified against the tree.
        verify += traverseTree(ctr_addr, req.icount, now, outcome);
        if (check::enabled()) {
            // A counter fetched from (attackable) memory must incur at
            // least one tree hash compare before use.
            check::countChecks();
            if (cfg_.hashLatency > 0 && verify < cfg_.hashLatency) {
                check::fail("secmem.verify",
                            "counter fetched without tree verification"
                            " (read)");
            }
        }
        if (cfg_.prefetchNextMetadata && !ctr_md.bypassed) {
            prefetchNeighbor(ctr_addr, MetadataType::Counter, req.icount,
                             now, outcome);
        }
    }

    // Data hash (needed to verify the data itself).
    const Addr hash_addr = layout_.hashBlockAddr(req.addr);
    const auto sub_index = static_cast<std::uint32_t>(
        blockIndex(req.addr) % cfg_.layout.treeArity);
    emitTap(hash_addr, MetadataType::Hash, false, 0, req.icount);
    const auto hash_md =
        mdCache_->access(hash_addr, MetadataType::Hash, false, sub_index);
    settleEviction(hash_md, req.icount, now, outcome);
    if (faultObs_) {
        faultObs_->onMetadataAccess(hash_addr, MetadataType::Hash, false,
                                    hash_md.hit, !hash_md.hit);
    }
    Cycles hash_lat = 0;
    outcome.hashHit = hash_md.hit && hash_md.completionReads == 0;
    if (!hash_md.hit) {
        hash_lat =
            memAccess(MemCategory::Hash, hash_addr, false, now, outcome);
        if (cfg_.prefetchNextMetadata && !hash_md.bypassed) {
            prefetchNeighbor(hash_addr, MetadataType::Hash, req.icount,
                             now, outcome);
        }
    } else if (hash_md.completionReads) {
        // Partial line missing this hash: one read completes the block.
        hash_lat =
            memAccess(MemCategory::Hash, hash_addr, false, now, outcome);
    }

    // The data-hash (MAC) check over the fetched block.
    if (faultObs_)
        faultObs_->onDataMacCheck(req.addr);

    // Timing (§II-A): pad generation overlaps the data fetch; the XOR
    // costs one cycle. Without speculation, counter verification and the
    // data hash check serialize before data release.
    const Cycles otp_ready = ctr_lat + cfg_.aesLatency;
    Cycles latency = std::max(data_lat, otp_ready) + 1;
    const Cycles data_hash_check = cfg_.hashLatency;
    if (!cfg_.speculation) {
        const Cycles counter_verified = ctr_lat + verify;
        latency = std::max({latency, counter_verified, hash_lat}) +
                  data_hash_check;
    }

    outcome.latency = latency;
    outcome.verifyLatency = verify + data_hash_check;
    stats_.totalReadLatency += outcome.latency;
    stats_.totalVerifyLatency += outcome.verifyLatency;
    readLatencyHist_.add(outcome.latency);
    return outcome;
}

MetadataCacheOutcome
SecureMemoryController::treeNodeWrite(Addr node_addr, InstCount icount,
                                      Cycles now, RequestOutcome &outcome)
{
    const auto level =
        static_cast<std::uint8_t>(MetadataLayout::levelOf(node_addr));
    emitTap(node_addr, MetadataType::TreeNode, true, level, icount);
    const auto md = mdCache_->access(node_addr, MetadataType::TreeNode,
                                     true);
    if (faultObs_) {
        faultObs_->onMetadataAccess(node_addr, MetadataType::TreeNode,
                                    true, md.hit, !md.hit);
    }
    if (md.bypassed) {
        memAccess(MemCategory::Tree, node_addr, true, now, outcome);
    } else if (!md.hit) {
        // Fill before modify (tree nodes hold eight sibling hashes).
        memAccess(MemCategory::Tree, node_addr, false, now, outcome);
    }
    return md;
}

void
SecureMemoryController::writeTreePath(Addr counter_block_addr,
                                      InstCount icount, Cycles now,
                                      RequestOutcome &outcome)
{
    Addr node = layout_.treeLeafForCounter(counter_block_addr);
    while (node != kInvalidAddr) {
        const auto md = treeNodeWrite(node, icount, now, outcome);
        settleEviction(md, icount, now, outcome);
        if (md.hit && cfg_.lazyTreeUpdate) {
            // The dirty cached node defers the rest of the path until
            // its own eviction.
            return;
        }
        if (md.bypassed) {
            // Uncached tree: the whole path is written through.
            node = layout_.treeParent(node);
            continue;
        }
        // Inserted dirty: the path above is deferred to eviction.
        if (cfg_.lazyTreeUpdate)
            return;
        node = layout_.treeParent(node);
    }
    ++stats_.rootUpdates; // reached the on-chip root
}

void
SecureMemoryController::settleEviction(const MetadataCacheOutcome &first,
                                       InstCount icount, Cycles now,
                                       RequestOutcome &outcome)
{
    struct Evicted
    {
        Addr addr;
        MetadataType type;
        bool dirty;
        bool incomplete;
    };

    std::deque<Evicted> queue;
    auto enqueue = [&queue](const MetadataCacheOutcome &md) {
        if (md.evictedValid) {
            queue.push_back({md.evictedAddr, md.evictedType,
                             md.evictedDirty, md.evictedIncomplete});
        }
    };
    enqueue(first);

    unsigned steps = 0;
    while (!queue.empty()) {
        const Evicted ev = queue.front();
        queue.pop_front();

        if (ev.incomplete) {
            // Incomplete partial hash block: read the missing hashes
            // before writing the block back (§IV-E).
            memAccess(MemCategory::Hash, ev.addr, false, now, outcome);
        }
        if (!ev.dirty)
            continue;

        memAccess(categoryOf(ev.type), ev.addr, true, now, outcome);

        // Lazy tree maintenance: a dirty counter (or tree node) leaving
        // the chip changes memory state the tree must re-authenticate.
        Addr parent = kInvalidAddr;
        if (ev.type == MetadataType::Counter) {
            parent = layout_.treeLeafForCounter(ev.addr);
        } else if (ev.type == MetadataType::TreeNode) {
            parent = layout_.treeParent(ev.addr);
            if (parent == kInvalidAddr) {
                ++stats_.rootUpdates;
                continue;
            }
        } else {
            continue; // hash blocks have no ancestors
        }

        if (++steps > kMaxCascade) {
            // Safeguard against pathological ping-pong in tiny caches:
            // finish the chain with direct memory writes.
            ++stats_.cascadeTruncations;
            Addr node = parent;
            while (node != kInvalidAddr) {
                const auto level = static_cast<std::uint8_t>(
                    MetadataLayout::levelOf(node));
                emitTap(node, MetadataType::TreeNode, true, level, icount);
                memAccess(MemCategory::Tree, node, true, now, outcome);
                node = layout_.treeParent(node);
            }
            ++stats_.rootUpdates;
            continue;
        }

        const auto md = treeNodeWrite(parent, icount, now, outcome);
        enqueue(md);
    }
}

RequestOutcome
SecureMemoryController::handleWrite(const MemoryRequest &req, Cycles now)
{
    RequestOutcome outcome;

    // 1. Bump the encryption counter; a per-block overflow forces the
    //    whole page to be re-encrypted under the new page counter.
    const auto bump = counters_.onBlockWrite(req.addr);
    if (bump.pageOverflow) {
        ++stats_.pageOverflows;
        const Addr page_base = req.addr & ~(kPageSize - 1);
        for (std::uint32_t b = 0; b < bump.blocksToReencrypt; ++b) {
            const Addr blk = page_base + b * kBlockSize;
            memAccess(MemCategory::Reencrypt, blk, false, now, outcome);
            memAccess(MemCategory::Reencrypt, blk, true, now, outcome);
        }
    }

    // 2. Update the counter block.
    const Addr ctr_addr = layout_.counterBlockAddr(req.addr);
    emitTap(ctr_addr, MetadataType::Counter, true, 0, req.icount);
    const auto ctr_md =
        mdCache_->access(ctr_addr, MetadataType::Counter, true);
    settleEviction(ctr_md, req.icount, now, outcome);
    if (faultObs_) {
        faultObs_->onMetadataAccess(ctr_addr, MetadataType::Counter,
                                    true, ctr_md.hit, !ctr_md.hit);
    }
    outcome.counterHit = ctr_md.hit;
    if (ctr_md.bypassed) {
        // Uncached counters: read-modify-write, and the fetched value
        // must be verified before use.
        memAccess(MemCategory::Counter, ctr_addr, false, now, outcome);
        outcome.verifyLatency +=
            traverseTree(ctr_addr, req.icount, now, outcome);
        memAccess(MemCategory::Counter, ctr_addr, true, now, outcome);
    } else if (!ctr_md.hit) {
        // Fill before modify; the fetched counter block needs
        // verification just like a read miss.
        memAccess(MemCategory::Counter, ctr_addr, false, now, outcome);
        outcome.verifyLatency +=
            traverseTree(ctr_addr, req.icount, now, outcome);
    }
    if (check::enabled() && !ctr_md.hit) {
        check::countChecks();
        if (cfg_.hashLatency > 0 &&
            outcome.verifyLatency < cfg_.hashLatency) {
            check::fail("secmem.verify",
                        "counter fetched without tree verification"
                        " (write)");
        }
    }

    // 3. Tree path: immediate when updates cannot be deferred to a dirty
    //    counter eviction (uncached counters or lazy updates disabled).
    const bool deferred = cfg_.lazyTreeUpdate &&
                          mdCache_->typeCacheable(MetadataType::Counter);
    if (!deferred)
        writeTreePath(ctr_addr, req.icount, now, outcome);

    // 4. Update the data-hash block.
    const Addr hash_addr = layout_.hashBlockAddr(req.addr);
    const auto sub_index = static_cast<std::uint32_t>(
        blockIndex(req.addr) % cfg_.layout.treeArity);
    emitTap(hash_addr, MetadataType::Hash, true, 0, req.icount);
    const auto hash_md =
        mdCache_->access(hash_addr, MetadataType::Hash, true, sub_index);
    settleEviction(hash_md, req.icount, now, outcome);
    if (faultObs_) {
        const bool fetched =
            hash_md.bypassed ||
            (!hash_md.hit && !hash_md.placeholderInserted);
        faultObs_->onMetadataAccess(hash_addr, MetadataType::Hash, true,
                                    hash_md.hit, fetched);
    }
    outcome.hashHit = hash_md.hit;
    if (hash_md.bypassed) {
        memAccess(MemCategory::Hash, hash_addr, false, now, outcome);
        memAccess(MemCategory::Hash, hash_addr, true, now, outcome);
    } else if (!hash_md.hit && !hash_md.placeholderInserted) {
        memAccess(MemCategory::Hash, hash_addr, false, now, outcome);
    }

    // 5. The data block itself.
    memAccess(MemCategory::Data, req.addr, true, now, outcome);

    // The write is now functionally committed (counter, MAC, data).
    if (faultObs_)
        faultObs_->onWriteCommitted(req);

    // Writebacks are posted; they do not stall the core.
    stats_.totalVerifyLatency += outcome.verifyLatency;
    return outcome;
}

void
SecureMemoryController::attachMetrics(metrics::Registry &registry)
{
    registry.attach("secmem", stats_);
    mdCache_->attachMetrics(registry, "secmem");
    counters_.attachMetrics(registry, "secmem.counters");
    registry.histogram("secmem.latency.read", &readLatencyHist_);
}

} // namespace maps
