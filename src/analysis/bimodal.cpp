#include "analysis/bimodal.hpp"

namespace maps {

const char *
reuseClassName(unsigned cls)
{
    switch (cls) {
      case 0:
        return "<=128blk(8KB)";
      case 1:
        return "128-256blk";
      case 2:
        return "256-512blk";
      case 3:
        return ">512blk(32KB)";
    }
    return "?";
}

unsigned
reuseClassOf(std::uint64_t distance_blocks)
{
    for (unsigned cls = 0; cls < kReuseClassBounds.size(); ++cls) {
        if (distance_blocks <= kReuseClassBounds[cls])
            return cls;
    }
    return kNumReuseClasses - 1;
}

std::array<double, kNumReuseClasses>
classifyReuse(const ExactHistogram &distances)
{
    std::array<std::uint64_t, kNumReuseClasses> counts{};
    for (const auto &[distance, count] : distances.cells())
        counts[reuseClassOf(distance)] += count;

    std::array<double, kNumReuseClasses> fractions{};
    const std::uint64_t total = distances.totalCount();
    if (total == 0)
        return fractions;
    for (unsigned cls = 0; cls < kNumReuseClasses; ++cls) {
        fractions[cls] = static_cast<double>(counts[cls]) /
                         static_cast<double>(total);
    }
    return fractions;
}

double
bimodalityScore(const ExactHistogram &distances)
{
    const auto fractions = classifyReuse(distances);
    return fractions.front() + fractions.back();
}

} // namespace maps
