#include "analysis/reuse.hpp"

namespace maps {

ReuseDistanceAnalyzer::ReuseDistanceAnalyzer()
{
    last_.reserve(1 << 16);
}

void
ReuseDistanceAnalyzer::observe(Addr block_addr, MetadataType type,
                               AccessType access)
{
    const auto type_idx = static_cast<std::size_t>(type);
    ++accesses_[type_idx];
    ++time_;

    const auto it = last_.find(block_addr);
    if (it == last_.end()) {
        ++coldMisses_[type_idx];
        last_.emplace(block_addr, LastInfo{time_, access});
        active_.add(time_, +1);
        return;
    }

    const std::uint64_t prev_time = it->second.time;
    // Distinct blocks accessed strictly between the two touches: count
    // the blocks whose *last* access falls in (prev_time, now).
    const auto distance = static_cast<std::uint64_t>(
        active_.rangeSum(prev_time + 1, time_ - 1));

    typeHist_[type_idx].add(distance);
    const ReuseTransition transition =
        classifyTransition(it->second.access, access);
    transitionHist_[type_idx][static_cast<std::size_t>(transition)].add(
        distance);

    active_.add(prev_time, -1);
    active_.add(time_, +1);
    it->second.time = time_;
    it->second.access = access;
}

ExactHistogram
ReuseDistanceAnalyzer::combinedHistogram() const
{
    ExactHistogram combined;
    for (const auto &hist : typeHist_)
        combined.merge(hist);
    return combined;
}

} // namespace maps
