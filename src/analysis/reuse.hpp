/**
 * @file
 * Reuse-distance analysis over the metadata access stream (§IV-C/D/E).
 *
 * Reuse distance of an access = number of *distinct* blocks (of any
 * type) touched since the previous access to the same block, in 64B
 * blocks (multiply by 64 for the paper's bytes axis). Computed online
 * with a Fenwick tree over last-access timestamps: O(log N) per access.
 *
 * Distances are recorded per metadata type and, for Figure 5, per
 * request transition (RAR/RAW/WAR/WAW). First-touch (cold) accesses have
 * no reuse distance and are counted separately.
 */
#ifndef MAPS_ANALYSIS_REUSE_HPP
#define MAPS_ANALYSIS_REUSE_HPP

#include <array>
#include <cstdint>
#include <unordered_map>

#include "analysis/fenwick.hpp"
#include "trace/record.hpp"
#include "util/histogram.hpp"

namespace maps {

/** Online reuse-distance analyzer for a (metadata) block stream. */
class ReuseDistanceAnalyzer
{
  public:
    ReuseDistanceAnalyzer();

    /** Observe one access (block granularity). */
    void observe(Addr block_addr, MetadataType type, AccessType access);

    /** Convenience overload. */
    void observe(const MetadataAccess &acc)
    {
        observe(acc.addr, acc.type, acc.access);
    }

    /** Distances (in blocks) for one metadata type; index by type. */
    const ExactHistogram &typeHistogram(MetadataType type) const
    {
        return typeHist_[static_cast<std::size_t>(type)];
    }

    /** Distances for (type, transition) pairs (Figure 5). */
    const ExactHistogram &transitionHistogram(MetadataType type,
                                              ReuseTransition t) const
    {
        return transitionHist_[static_cast<std::size_t>(type)]
                              [static_cast<std::size_t>(t)];
    }

    /** Merged distances across every metadata type. */
    ExactHistogram combinedHistogram() const;

    std::uint64_t coldMisses(MetadataType type) const
    {
        return coldMisses_[static_cast<std::size_t>(type)];
    }
    std::uint64_t accesses(MetadataType type) const
    {
        return accesses_[static_cast<std::size_t>(type)];
    }
    std::uint64_t totalAccesses() const { return time_; }

    /** Distinct blocks seen so far (across all types). */
    std::uint64_t uniqueBlocks() const { return last_.size(); }

  private:
    struct LastInfo
    {
        std::uint64_t time;
        AccessType access;
    };

    static constexpr std::size_t kTypes = 4; // three metadata types + Data

    FenwickTree active_; ///< 1 at each block's last-access time
    std::unordered_map<Addr, LastInfo> last_;
    std::uint64_t time_ = 0;

    std::array<ExactHistogram, kTypes> typeHist_;
    std::array<std::array<ExactHistogram, 4>, kTypes> transitionHist_;
    std::array<std::uint64_t, kTypes> coldMisses_{};
    std::array<std::uint64_t, kTypes> accesses_{};
};

} // namespace maps

#endif // MAPS_ANALYSIS_REUSE_HPP
