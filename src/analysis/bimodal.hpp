/**
 * @file
 * Figure 4's reuse-distance classification: four classes in blocks,
 * (i) <=128, (ii) 128-256, (iii) 256-512, (iv) >512.
 */
#ifndef MAPS_ANALYSIS_BIMODAL_HPP
#define MAPS_ANALYSIS_BIMODAL_HPP

#include <array>
#include <string>

#include "util/histogram.hpp"

namespace maps {

inline constexpr unsigned kNumReuseClasses = 4;

/** Class boundaries in blocks (64B each): 8KB / 16KB / 32KB. */
inline constexpr std::array<std::uint64_t, 3> kReuseClassBounds{128, 256,
                                                                512};

const char *reuseClassName(unsigned cls);

/** Which class a distance (in blocks) falls into. */
unsigned reuseClassOf(std::uint64_t distance_blocks);

/** Fraction of accesses per class (cold misses excluded). */
std::array<double, kNumReuseClasses>
classifyReuse(const ExactHistogram &distances);

/**
 * Bimodality score: fraction of accesses in the extreme classes
 * (i) + (iv). The paper observes most benchmarks are near 1.0, with
 * canneal and cactusADM as exceptions.
 */
double bimodalityScore(const ExactHistogram &distances);

} // namespace maps

#endif // MAPS_ANALYSIS_BIMODAL_HPP
