/**
 * @file
 * Fenwick (binary indexed) tree over access timestamps — the core of the
 * O(N log N) reuse-distance algorithm.
 *
 * Growable: the structure keeps the raw per-position values and rebuilds
 * the tree on capacity doubling (a plain resize would leave the new
 * nodes without the counts of the positions they cover). Amortized O(1)
 * per growth step.
 */
#ifndef MAPS_ANALYSIS_FENWICK_HPP
#define MAPS_ANALYSIS_FENWICK_HPP

#include <cstdint>
#include <vector>

namespace maps {

/** Prefix-sum tree of small counters, growable on the right. */
class FenwickTree
{
  public:
    explicit FenwickTree(std::size_t capacity = 0)
    {
        if (capacity)
            grow(capacity);
    }

    std::size_t size() const { return tree_.empty() ? 0 : tree_.size() - 1; }

    /** Add delta at position i (1-based). Grows as needed. */
    void
    add(std::size_t i, std::int32_t delta)
    {
        if (i > size())
            grow(i + i / 2 + 1);
        raw_[i] = static_cast<std::int32_t>(raw_[i] + delta);
        for (; i < tree_.size(); i += i & (~i + 1))
            tree_[i] += delta;
    }

    /** Sum of positions [1, i]. */
    std::int64_t
    prefixSum(std::size_t i) const
    {
        if (i > size())
            i = size();
        std::int64_t sum = 0;
        for (; i > 0; i -= i & (~i + 1))
            sum += tree_[i];
        return sum;
    }

    /** Sum of positions [lo, hi]; 0 when lo > hi. */
    std::int64_t
    rangeSum(std::size_t lo, std::size_t hi) const
    {
        if (lo > hi)
            return 0;
        return prefixSum(hi) - (lo > 1 ? prefixSum(lo - 1) : 0);
    }

  private:
    std::vector<std::int32_t> tree_; // 1-based; [0] unused
    std::vector<std::int32_t> raw_;  // per-position values

    /** Grow to at least n positions and rebuild the tree in O(n). */
    void
    grow(std::size_t n)
    {
        if (n + 1 <= tree_.size())
            return;
        raw_.resize(n + 1, 0);
        tree_.assign(n + 1, 0);
        // Linear-time Fenwick construction from the raw values.
        for (std::size_t i = 1; i <= n; ++i) {
            tree_[i] += raw_[i];
            const std::size_t parent = i + (i & (~i + 1));
            if (parent <= n)
                tree_[parent] += tree_[i];
        }
    }
};

} // namespace maps

#endif // MAPS_ANALYSIS_FENWICK_HPP
